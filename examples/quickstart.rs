//! Quickstart: co-locate memcached with raytrace on a power-constrained
//! node and let Sturgeon manage the shared resources.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sturgeon::prelude::*;

fn main() {
    // 1. Pick a co-location pair. The node (Table II Xeon), the power
    //    budget (LS solo peak power) and the interference environment all
    //    come from the paper's defaults.
    let pair = ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace);
    let setup = ExperimentSetup::new(pair, 42);
    println!(
        "node: {} cores, {} LLC ways, {:.1}–{:.1} GHz",
        setup.spec().total_cores,
        setup.spec().total_llc_ways,
        setup.spec().min_freq_ghz(),
        setup.spec().max_freq_ghz()
    );
    println!(
        "pair: {} (QoS target {} ms, peak {} QPS), power budget {:.1} W",
        pair.label(),
        setup.qos_target_ms(),
        setup.peak_qps(),
        setup.budget_w()
    );

    // 2. Offline phase: profile the applications on a "dedicated cluster"
    //    and train the performance/power models (paper §V-A).
    println!("\nprofiling and training the predictor (offline phase)...");
    let predictor = setup.train_default_predictor();

    // 3. Online phase: run the Algorithm 1 controller for ten minutes of
    //    the paper's fluctuating load (20% → 80% → 20% of peak), keeping
    //    the last few hundred decision-trace events and an aggregate
    //    metrics registry on the side.
    let controller = SturgeonController::new(
        predictor,
        setup.spec().clone(),
        setup.budget_w(),
        setup.qos_target_ms(),
        ControllerParams::default(),
    );
    let mut trace = RingSink::new(512);
    let metrics = MetricsRegistry::new();
    let result = setup
        .runner()
        .controller(controller)
        .load(LoadProfile::paper_fluctuating(600.0))
        .intervals(600)
        .trace(&mut trace)
        .metrics(&metrics)
        .go()
        .expect("run succeeds");

    // 4. The paper's three success criteria.
    println!("\n== results over {} intervals ==", result.log.len());
    println!(
        "QoS guarantee rate:        {:.2}%  (target ≥ 95%)",
        result.qos_rate * 100.0
    );
    println!(
        "mean BE throughput:        {:.3}   (normalized to raytrace's solo run)",
        result.mean_be_throughput
    );
    println!(
        "power: peak {:.1} W vs budget {:.1} W — overloaded intervals: {:.1}%",
        result.peak_power_w,
        result.budget_w,
        result.overload_fraction * 100.0
    );
    assert!(result.qos_rate >= 0.95, "QoS guarantee violated");
    assert!(!result.suffers_overload(), "power budget violated");
    println!("\nSturgeon kept the tail latency under target, never overloaded the budget,");
    println!(
        "and still extracted {:.0}% of raytrace's solo throughput from the leftovers.",
        result.mean_be_throughput * 100.0
    );

    // 5. What the observability layer saw: the searches the controller
    //    ran, the balancer's harvest/revert steps, predictor cache hits —
    //    all without touching the control trajectory.
    println!("\n== decision trace (last {} events kept) ==", trace.len());
    for kind in TraceEvent::kinds() {
        let n = trace.count_of(kind);
        if n > 0 {
            println!("{kind:<16} {n}");
        }
    }
    println!("\n{}", metrics.text_summary());
}
