//! Multi-tenant node: two LS services (xapian + img-dnn) and two BE
//! applications (raytrace + swaptions) on one power-constrained node,
//! managed by the multi-application extension of §V-B ("independently
//! searching the configuration for each application").
//!
//! ```sh
//! cargo run --release --example multi_tenant_node
//! ```

use sturgeon::multi::{MultiProfiler, MultiProfilerConfig, MultiSturgeonController};
use sturgeon::prelude::*;
use sturgeon_simnode::PowerModel;
use sturgeon_workloads::catalog::{be_app, ls_service};
use sturgeon_workloads::interference::InterferenceParams;
use sturgeon_workloads::multienv::MultiColocationEnv;

fn main() {
    let spec = NodeSpec::xeon_e5_2630_v4();
    let mut env = MultiColocationEnv::new(
        spec.clone(),
        PowerModel::default(),
        vec![
            ls_service(LsServiceId::Xapian),
            ls_service(LsServiceId::ImgDnn),
        ],
        vec![be_app(BeAppId::Raytrace), be_app(BeAppId::Swaptions)],
        InterferenceParams::default(),
        42,
    );
    println!("multi-tenant node: xapian + img-dnn (LS) with raytrace + swaptions (BE)");
    println!("power budget {:.1} W\n", env.budget_w());

    println!("offline phase: profiling all four applications and training their models...");
    let (ls_models, be_models) = MultiProfiler::new(&env, MultiProfilerConfig::default())
        .train(PredictorConfig::default())
        .expect("training succeeds");

    let mut controller = MultiSturgeonController::new(
        spec,
        env.budget_w(),
        env.static_power_w(),
        ls_models,
        be_models,
    );
    let mut config = controller.initial_config();

    // The two services follow different, phase-shifted load curves —
    // xapian peaks while img-dnn is quiet and vice versa.
    let xapian_load = LoadProfile::Triangle {
        low: 0.2,
        high: 0.7,
        period_s: 400.0,
    };
    let imgdnn_load = LoadProfile::Triangle {
        low: 0.15,
        high: 0.6,
        period_s: 400.0,
    };
    let duration = 400u32;

    let mut qos_ok = [0usize; 2];
    let mut intervals = 0usize;
    let mut be_work = [0.0f64; 2];
    let mut peak_power: f64 = 0.0;
    println!(
        "\n{:>5} {:>7} {:>7} {:>8} {:>8} {:>7} {:>22}",
        "t", "xap qps", "img qps", "xap p95", "img p95", "power", "BE cores/levels"
    );
    for t in 0..duration {
        let qps = [
            xapian_load.qps_at(t as f64, 3_500.0),
            // Phase-shift img-dnn by half a period.
            imgdnn_load.qps_at(t as f64 + 200.0, 3_000.0),
        ];
        let obs = env.step(&config, &qps);
        intervals += 1;
        for i in 0..2 {
            if obs.ls[i].p95_ms <= env.ls_models()[i].params.qos_target_ms {
                qos_ok[i] += 1;
            }
            be_work[i] += obs.be_throughput[i];
        }
        peak_power = peak_power.max(obs.power_w);
        if t % 40 == 0 {
            println!(
                "{:>5} {:>7.0} {:>7.0} {:>7.2}ms {:>7.2}ms {:>6.1}W  rt:{}c@F{} sp:{}c@F{}",
                t,
                qps[0],
                qps[1],
                obs.ls[0].p95_ms,
                obs.ls[1].p95_ms,
                obs.power_w,
                config.be[0].cores,
                config.be[0].freq_level,
                config.be[1].cores,
                config.be[1].freq_level,
            );
        }
        config = controller.decide(&obs, &config);
    }

    println!("\n== summary over {duration} intervals ==");
    println!(
        "xapian QoS-interval rate:  {:.1}%   img-dnn: {:.1}%",
        qos_ok[0] as f64 / intervals as f64 * 100.0,
        qos_ok[1] as f64 / intervals as f64 * 100.0
    );
    println!(
        "mean BE throughput:        raytrace {:.3}, swaptions {:.3}",
        be_work[0] / intervals as f64,
        be_work[1] / intervals as f64
    );
    println!(
        "peak power {peak_power:.1} W vs budget {:.1} W | searches: {}, harvests: {}",
        env.budget_w(),
        controller.search_count(),
        controller.harvest_count()
    );
    println!("\nthe controller re-partitions as the two services' peaks alternate, keeping both");
    println!("QoS targets while the BE pair absorbs whatever the phase-shifted loads leave free.");
}
