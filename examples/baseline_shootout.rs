//! Head-to-head of every controller in the crate on one co-location pair:
//! Sturgeon, Sturgeon-NoB (balancer disabled), enhanced PARTIES, original
//! power-oblivious PARTIES, and the static LS reservation — all facing the
//! identical load and interference sequence.
//!
//! ```sh
//! cargo run --release --example baseline_shootout [duration_s]
//! ```

use sturgeon::baselines::{PartiesController, PartiesParams, StaticReservationController};
use sturgeon::heracles::{HeraclesController, HeraclesParams};
use sturgeon::prelude::*;

fn main() {
    let duration: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(600);
    let pair = ColocationPair::new(LsServiceId::Memcached, BeAppId::Fluidanimate);
    let setup = ExperimentSetup::new(pair, 42);
    let load = LoadProfile::paper_fluctuating(duration as f64);
    println!(
        "shootout: {} for {duration}s, budget {:.1} W, QoS {} ms\n",
        pair.label(),
        setup.budget_w(),
        setup.qos_target_ms()
    );

    let mut results: Vec<RunResult> = Vec::new();

    for balancer in [true, false] {
        let predictor = setup.train_default_predictor();
        let controller = SturgeonController::new(
            predictor,
            setup.spec().clone(),
            setup.budget_w(),
            setup.qos_target_ms(),
            ControllerParams {
                balancer_enabled: balancer,
                ..ControllerParams::default()
            },
        );
        results.push(
            setup
                .runner()
                .controller(controller)
                .load(load.clone())
                .intervals(duration)
                .go()
                .expect("sturgeon run"),
        );
    }
    for power_aware in [true, false] {
        let controller = PartiesController::new(
            setup.spec().clone(),
            setup.budget_w(),
            setup.qos_target_ms(),
            PartiesParams {
                power_aware,
                ..PartiesParams::default()
            },
        );
        results.push(
            setup
                .runner()
                .controller(controller)
                .load(load.clone())
                .intervals(duration)
                .go()
                .expect("parties run"),
        );
    }
    results.push(
        setup
            .runner()
            .controller(HeraclesController::new(
                setup.spec().clone(),
                setup.budget_w(),
                setup.qos_target_ms(),
                HeraclesParams::default(),
            ))
            .load(load.clone())
            .intervals(duration)
            .go()
            .expect("heracles run"),
    );
    results.push(
        setup
            .runner()
            .controller(StaticReservationController)
            .load(load)
            .intervals(duration)
            .go()
            .expect("reserved run"),
    );

    println!(
        "{:<14} {:>9} {:>9} {:>11} {:>11} {:>9}",
        "controller", "QoS rate", "BE tput", "peak W", "over-budget", "verdict"
    );
    for r in &results {
        let verdict = match (r.meets_qos_guarantee(), r.suffers_overload()) {
            (true, false) => "OK",
            (true, true) => "OVERLOAD",
            (false, false) => "QOS-VIOL",
            (false, true) => "BOTH-BAD",
        };
        println!(
            "{:<14} {:>8.2}% {:>9.3} {:>11.1} {:>10.1}% {:>9}",
            r.controller,
            r.qos_rate * 100.0,
            r.mean_be_throughput,
            r.peak_power_w,
            r.overload_fraction * 100.0,
            verdict
        );
    }

    println!("\nreading the table:");
    println!("- Sturgeon: QoS held, budget held, highest safe BE throughput;");
    println!("- Sturgeon-NoB: more BE throughput but the QoS guarantee is gone (§VII-C);");
    println!("- PARTIES: safe but leaves BE throughput on the table (Fig. 10);");
    println!("- PARTIES-orig: power-oblivious — watch the over-budget column (Fig. 2's problem);");
    println!("- Heracles: power-safe via BE-DVFS only — preference-blind, so throughput suffers;");
    println!("- LS-reserved: the status quo the whole paper argues against.");
}
