//! Explore the offline modeling pipeline: profile a co-location pair,
//! train all five model families (DT / KNN / SV / MLP / LR), score them on
//! held-out data (the Figs. 6/7 methodology), run the §V-A Lasso feature
//! selection, and poke the deployed predictor with ad-hoc what-if queries.
//!
//! ```sh
//! cargo run --release --example model_explorer
//! ```

use sturgeon::predictor::evaluation::{lasso_select_features, score_families};
use sturgeon::prelude::*;
use sturgeon::profiler::ProfilerConfig;

fn main() {
    let pair = ColocationPair::new(LsServiceId::Xapian, BeAppId::Facesim);
    let setup = ExperimentSetup::new(pair, 42);
    println!("modeling pipeline for {}\n", pair.label());

    // Offline profiling sweep (interference-free, §V-A).
    let datasets = setup
        .profile(ProfilerConfig::default())
        .expect("profiling succeeds");
    println!(
        "profiled {} LS samples and {} BE samples over the full load/config space",
        datasets.ls_qos.len(),
        datasets.be_throughput.len()
    );

    // Model-family bake-off (Figs. 6/7).
    let scores = score_families(&datasets, 42).expect("scoring succeeds");
    println!(
        "\n{:<6} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "model", "QoS acc", "QoS R²", "BE perf", "LS power", "BE power"
    );
    for s in &scores {
        println!(
            "{:<6} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            s.kind.name(),
            s.ls_qos_accuracy,
            s.ls_qos_r2,
            s.be_perf_r2,
            s.ls_power_r2,
            s.be_power_r2
        );
    }

    // Lasso feature selection over an augmented candidate set.
    let names = ["input/QPS", "cores", "frequency", "LLC ways"];
    let kept = lasso_select_features(&datasets.ls_power, 0.01).expect("lasso fits");
    println!(
        "\nLasso kept these base features for the LS power model: {:?}",
        kept.iter().map(|&i| names[i]).collect::<Vec<_>>()
    );

    // Deploy the paper's picks and ask what-if questions.
    let predictor = setup.train_default_predictor();
    println!("\nwhat-if queries against the deployed predictor:");
    let qps = 0.4 * setup.peak_qps();
    for (cores, level, ways) in [(4u32, 9usize, 8u32), (6, 5, 8), (8, 2, 10), (2, 9, 4)] {
        let f = setup.spec().freq_ghz(level);
        let feasible = predictor.ls_feasible(cores, f, ways, qps);
        let power = predictor.ls_power_w(cores, f, ways, qps);
        println!(
            "  xapian on {cores} cores @ {f:.2} GHz with {ways} ways at {qps:.0} QPS: \
             QoS {} | partition power ≈ {power:.1} W",
            if feasible { "OK " } else { "VIOLATED" }
        );
    }
    for (cores, level, ways) in [(16u32, 9usize, 12u32), (12, 4, 12), (8, 9, 4)] {
        let f = setup.spec().freq_ghz(level);
        println!(
            "  facesim on {cores} cores @ {f:.2} GHz with {ways} ways: \
             throughput ≈ {:.2}× solo | power ≈ {:.1} W",
            predictor.be_throughput(cores, f, ways),
            predictor.be_power_w(cores, f, ways)
        );
    }
    println!(
        "\n{} model calls were answered in this session; each costs microseconds (§VII-E).",
        predictor.prediction_count()
    );
}
