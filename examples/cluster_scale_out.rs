//! Cluster scale-out: the paper's Fig. 4 deployment model — a
//! cluster-level scheduler dispatching the query stream across several
//! Sturgeon nodes, each managing its own co-location autonomously.
//!
//! Compares dispatch policies (even vs latency-aware) on a 4-node
//! cluster riding the paper's fluctuating load.
//!
//! ```sh
//! cargo run --release --example cluster_scale_out [duration_s]
//! ```

use sturgeon::cluster::{Cluster, DispatchPolicy};
use sturgeon::prelude::*;

fn main() {
    let duration: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(300);
    let pair = ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace);
    let nodes = 4;
    println!(
        "cluster: {nodes} nodes of {} under a fluctuating aggregate load ({duration}s)\n",
        pair.label()
    );

    for (name, policy) in [
        ("even dispatch", DispatchPolicy::Even),
        ("latency-aware dispatch", DispatchPolicy::LatencyAware),
    ] {
        println!("== {name} ==");
        let mut cluster =
            Cluster::try_new(pair, nodes, policy, 42).expect("valid cluster configuration");
        let registry = MetricsRegistry::new();
        let result = cluster.run_with_metrics(
            LoadProfile::paper_fluctuating(duration as f64),
            duration,
            &registry,
        );
        for n in &result.nodes {
            println!(
                "  node {}: QoS {:.2}%  BE tput {:.3}  mean power {:.1} W  overload {:.1}%",
                n.node,
                n.qos_rate * 100.0,
                n.mean_be_throughput,
                n.mean_power_w,
                n.overload_fraction * 100.0
            );
        }
        println!(
            "  cluster: QoS {:.2}% | batch work recovered {:.2} machine-equivalents | power {:.0}/{:.0} W",
            result.qos_rate * 100.0,
            result.total_be_throughput,
            result.mean_cluster_power_w,
            result.cluster_budget_w
        );
        let p95 = registry
            .histogram("interval.p95_ms")
            .expect("run_with_metrics fills interval.p95_ms");
        println!(
            "  fleet latency histogram: p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms over {} intervals\n",
            p95.p50, p95.p95, p95.p99, p95.count
        );
    }

    println!("each node runs Sturgeon independently — no cross-node coordination is needed,");
    println!("exactly the per-node autonomy the paper's deployment model (Fig. 4) relies on.");
}
