//! A compressed "day in the life" of a co-located node: the LS service
//! follows a diurnal load curve (low at night, peaking at midday, §II-B)
//! while Sturgeon harvests the idle capacity for a BE application.
//!
//! Compares against the datacenter status quo — a static whole-node
//! reservation for the LS service — and reports the utilization and
//! energy-efficiency win co-location buys.
//!
//! ```sh
//! cargo run --release --example diurnal_colocation
//! ```

use sturgeon::baselines::StaticReservationController;
use sturgeon::prelude::*;

fn main() {
    let pair = ColocationPair::new(LsServiceId::Xapian, BeAppId::Ferret);
    let setup = ExperimentSetup::new(pair, 7);
    // One simulated "day" compressed into 20 minutes of 1 s intervals.
    let day = LoadProfile::Diurnal {
        low: 0.15,
        high: 0.85,
        day_s: 1200.0,
    };

    println!(
        "diurnal co-location: {} under a compressed 24h load curve",
        pair.label()
    );
    println!(
        "budget {:.1} W, QoS target {} ms\n",
        setup.budget_w(),
        setup.qos_target_ms()
    );

    let predictor = setup.train_default_predictor();
    let controller = SturgeonController::new(
        predictor,
        setup.spec().clone(),
        setup.budget_w(),
        setup.qos_target_ms(),
        ControllerParams::default(),
    );
    let sturgeon = setup
        .runner()
        .controller(controller)
        .load(day.clone())
        .intervals(1200)
        .go()
        .expect("sturgeon run");
    let reserved = setup
        .runner()
        .controller(StaticReservationController)
        .load(day)
        .intervals(1200)
        .go()
        .expect("reserved run");

    // Hourly digest of the Sturgeon run.
    println!(
        "{:>5} {:>7} {:>8} {:>9} {:>22}",
        "hour", "load%", "p95 ms", "BE tput", "config"
    );
    for (hour, chunk) in sturgeon.log.samples().chunks(50).enumerate() {
        let mid = &chunk[chunk.len() / 2];
        println!(
            "{:>5} {:>6.0}% {:>8.2} {:>9.3} {:>22}",
            hour,
            mid.qps / setup.peak_qps() * 100.0,
            mid.p95_ms,
            mid.be_throughput_norm,
            mid.config.to_string()
        );
    }

    // The business case: identical QoS, plus a day of BE work for a few
    // extra joules.
    let mean_power =
        |r: &RunResult| r.log.samples().iter().map(|s| s.power_w).sum::<f64>() / r.log.len() as f64;
    let sp = mean_power(&sturgeon);
    let rp = mean_power(&reserved);
    println!("\n== day summary ==");
    println!(
        "QoS guarantee:   Sturgeon {:.2}%  vs  LS-reserved {:.2}%",
        sturgeon.qos_rate * 100.0,
        reserved.qos_rate * 100.0
    );
    println!(
        "BE work done:    Sturgeon {:.3}   vs  LS-reserved {:.3} (normalized throughput-seconds/s)",
        sturgeon.mean_be_throughput, reserved.mean_be_throughput
    );
    println!("mean power:      Sturgeon {sp:.1} W vs LS-reserved {rp:.1} W");
    let work_per_joule =
        sturgeon.mean_be_throughput / sp.max(1e-9) / (reserved.mean_be_throughput / rp).max(1e-9);
    let _ = work_per_joule;
    println!(
        "=> co-location turned {:.0}% of a solo BE machine's output out of otherwise-idle,",
        sturgeon.mean_be_throughput * 100.0
    );
    println!(
        "   already-powered silicon, for {:.1}× the average power of an idle-provisioned node.",
        sp / rp
    );
}
