//! Validate the analytic Erlang-C latency surface against the query-level
//! discrete-event simulator: sweep load on a fixed allocation and print
//! both p95 curves side by side, then demonstrate backlog dynamics around
//! a saturation episode.
//!
//! ```sh
//! cargo run --release --example querysim_validation
//! ```

use sturgeon_workloads::catalog::{ls_service, LsServiceId};
use sturgeon_workloads::querysim::QueryLevelSim;

fn main() {
    let ls = ls_service(LsServiceId::Memcached);
    let cores = 8u32;
    let (freq, ways) = (2.2, 10u32);
    let service_ms = ls.service_time_ms(freq, ways, 1.0);
    let capacity = cores as f64 * 1000.0 / service_ms;
    println!(
        "memcached on {cores} cores @ {freq} GHz / {ways} ways: mean service {service_ms:.3} ms, capacity ≈ {capacity:.0} QPS\n"
    );

    println!(
        "{:>8} {:>6} {:>14} {:>14} {:>14}",
        "QPS", "ρ", "analytic p95", "measured p95", "measured p99"
    );
    for frac in [0.3, 0.5, 0.65, 0.8, 0.9, 0.95, 0.99] {
        let qps = frac * capacity;
        let analytic = ls.latency(cores, freq, ways, qps, 1.0);
        let mut sim = QueryLevelSim::new(ls.clone(), 42);
        // Warm up then average to tame sampling noise.
        let mut p95s = Vec::new();
        let mut p99s = Vec::new();
        for i in 0..14 {
            let m = sim.simulate_interval(cores, service_ms, qps, 1.0);
            if i >= 4 {
                p95s.push(m.p95_ms);
                p99s.push(m.p99_ms);
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "{:>8.0} {:>6.2} {:>12.2}ms {:>12.2}ms {:>12.2}ms",
            qps,
            analytic.utilization,
            analytic.p95_ms,
            avg(&p95s),
            avg(&p99s)
        );
    }

    println!(
        "\nboth backends show the same hockey stick: flat tail until ρ ≈ 0.9, then a cliff.\n"
    );

    // Saturation episode: overload for 5 s, then recover and watch the
    // backlog drain — the inter-interval dynamics the analytic model
    // cannot express.
    println!("saturation episode: 4 cores vs 120% of their capacity for 5 s, then 50%:");
    let cores = 4u32;
    let capacity = cores as f64 * 1000.0 / service_ms;
    let mut sim = QueryLevelSim::new(ls.clone(), 7);
    println!(
        "{:>5} {:>8} {:>12} {:>10} {:>9}",
        "t", "QPS", "p95 (ms)", "in-target", "backlog"
    );
    for t in 0..12 {
        let qps = if t < 5 {
            1.2 * capacity
        } else {
            0.5 * capacity
        };
        let m = sim.simulate_interval(cores, service_ms, qps, 1.0);
        println!(
            "{:>5} {:>8.0} {:>12.2} {:>9.1}% {:>8.2}s",
            t,
            qps,
            m.p95_ms,
            m.in_target_fraction * 100.0,
            sim.backlog_horizon_s()
        );
    }
    println!("\nthe backlog built during overload keeps violating QoS for a while after the");
    println!("load drops — which is why Sturgeon's balancer watches real intervals instead of");
    println!("trusting the predictor blindly.");
}
