//! `sturgeon_sim` — the command-line driver for ad-hoc co-location
//! experiments.
//!
//! ```text
//! sturgeon_sim [--ls memcached] [--be raytrace] [--controller sturgeon]
//!              [--load triangle|constant|ramp|diurnal] [--fraction 0.3]
//!              [--duration 600] [--seed 42] [--export PATH_STEM]
//!              [--trace PATH.jsonl] [--metrics PATH.json]
//!              [--faults none|telemetry|actuation|shocks|everything]
//!              [--search heuristic|pruned]
//! ```
//!
//! Runs one experiment and prints the paper's three metrics; `--export`
//! additionally writes `<stem>.json` (summary) and `<stem>.csv`
//! (per-interval telemetry) via `sturgeon::report`. `--trace` streams
//! every decision-trace event of the run as JSON Lines, and `--metrics`
//! dumps the aggregated metrics registry as JSON (with a one-page text
//! summary on stderr).

use std::path::PathBuf;
use std::process::ExitCode;
use sturgeon::baselines::{PartiesController, PartiesParams, StaticReservationController};
use sturgeon::heracles::{HeraclesController, HeraclesParams};
use sturgeon::prelude::*;
use sturgeon::report;

#[derive(Debug)]
struct Args {
    ls: LsServiceId,
    be: BeAppId,
    controller: String,
    load: String,
    fraction: f64,
    duration: u32,
    seed: u64,
    export: Option<PathBuf>,
    trace: Option<PathBuf>,
    metrics: Option<PathBuf>,
    faults: String,
    search: String,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            ls: LsServiceId::Memcached,
            be: BeAppId::Raytrace,
            controller: "sturgeon".into(),
            load: "triangle".into(),
            fraction: 0.3,
            duration: 600,
            seed: 42,
            export: None,
            trace: None,
            metrics: None,
            faults: "none".into(),
            search: "heuristic".into(),
        }
    }
}

fn parse_ls(s: &str) -> Option<LsServiceId> {
    LsServiceId::all().into_iter().find(|id| id.name() == s)
}

fn parse_be(s: &str) -> Option<BeAppId> {
    BeAppId::all()
        .into_iter()
        .find(|id| id.name() == s || id.abbrev() == s)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if flag == "--help" || flag == "-h" {
            return Err(String::new()); // triggers usage
        }
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("missing value for {flag}"))?;
        match flag {
            "--ls" => args.ls = parse_ls(value).ok_or(format!("unknown LS service {value}"))?,
            "--be" => args.be = parse_be(value).ok_or(format!("unknown BE app {value}"))?,
            "--controller" => args.controller = value.clone(),
            "--load" => args.load = value.clone(),
            "--fraction" => {
                args.fraction = value.parse().map_err(|_| format!("bad fraction {value}"))?
            }
            "--duration" => {
                args.duration = value.parse().map_err(|_| format!("bad duration {value}"))?
            }
            "--seed" => args.seed = value.parse().map_err(|_| format!("bad seed {value}"))?,
            "--export" => args.export = Some(PathBuf::from(value)),
            "--trace" => args.trace = Some(PathBuf::from(value)),
            "--metrics" => args.metrics = Some(PathBuf::from(value)),
            "--faults" => args.faults = value.clone(),
            "--search" => args.search = value.clone(),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "usage: sturgeon_sim [--ls memcached|xapian|img-dnn] \\
                    [--be blackscholes|facesim|ferret|raytrace|swaptions|fluidanimate] \\
                    [--controller sturgeon|sturgeon-nob|parties|parties-orig|heracles|reserved] \\
                    [--load triangle|constant|ramp|diurnal] [--fraction F] \\
                    [--duration SECONDS] [--seed N] [--export PATH_STEM] \\
                    [--trace PATH.jsonl] [--metrics PATH.json] \\
                    [--faults none|telemetry|actuation|shocks|everything] \\
                    [--search heuristic|pruned]"
    );
}

/// Builds and executes one run through the builder, attaching whatever
/// observability the CLI asked for.
fn run_one(
    setup: &ExperimentSetup,
    controller: impl ResourceController,
    load: LoadProfile,
    duration: u32,
    plan: FaultPlan,
    sink: Option<&mut dyn TraceSink>,
    metrics: Option<&MetricsRegistry>,
) -> Result<RunResult, SturgeonError> {
    let mut run = setup
        .runner()
        .controller(controller)
        .load(load)
        .intervals(duration)
        .faults(plan);
    if let Some(sink) = sink {
        run = run.trace(sink);
    }
    if let Some(registry) = metrics {
        run = run.metrics(registry);
    }
    run.go()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            usage();
            return ExitCode::FAILURE;
        }
    };

    let pair = ColocationPair::new(args.ls, args.be);
    let setup = ExperimentSetup::new(pair, args.seed);
    let load = match args.load.as_str() {
        "triangle" => LoadProfile::paper_fluctuating(args.duration as f64),
        "constant" => LoadProfile::Constant {
            fraction: args.fraction,
        },
        "ramp" => LoadProfile::Ramp {
            from: 0.2,
            to: args.fraction.max(0.2),
            duration_s: args.duration as f64,
        },
        "diurnal" => LoadProfile::Diurnal {
            low: 0.15,
            high: args.fraction.max(0.2),
            day_s: args.duration as f64,
        },
        other => {
            eprintln!("error: unknown load profile {other}");
            usage();
            return ExitCode::FAILURE;
        }
    };

    eprintln!(
        "running {} under `{}` for {}s (load {}, seed {})...",
        pair.label(),
        args.controller,
        args.duration,
        args.load,
        args.seed
    );

    let plan = match args.faults.as_str() {
        "none" => FaultPlan::none(args.seed),
        "telemetry" => FaultPlan::telemetry_dropout(args.seed, 0.1),
        "actuation" => FaultPlan::actuation_faults(args.seed, 0.2),
        "shocks" => FaultPlan::shocks(args.seed, 0.1),
        "everything" => FaultPlan::everything(args.seed),
        other => {
            eprintln!("error: unknown fault plan {other}");
            usage();
            return ExitCode::FAILURE;
        }
    };

    let strategy = match args.search.as_str() {
        "heuristic" => SearchStrategy::Heuristic,
        "pruned" => SearchStrategy::FrontierPruned,
        other => {
            eprintln!("error: unknown search strategy {other}");
            usage();
            return ExitCode::FAILURE;
        }
    };

    let registry = MetricsRegistry::new();
    let metrics_ref = args.metrics.as_ref().map(|_| &registry);
    let mut trace_sink = match &args.trace {
        Some(path) => match JsonlSink::create(path) {
            Ok(sink) => Some(sink),
            Err(e) => {
                eprintln!("error: cannot open trace file {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let sink_ref = trace_sink.as_mut().map(|sink| sink as &mut dyn TraceSink);

    let run = match args.controller.as_str() {
        "sturgeon" | "sturgeon-nob" => {
            eprintln!("offline phase: profiling + training the predictor...");
            let predictor = setup.train_default_predictor();
            let controller = SturgeonController::new(
                predictor,
                setup.spec().clone(),
                setup.budget_w(),
                setup.qos_target_ms(),
                ControllerParams {
                    balancer_enabled: args.controller == "sturgeon",
                    search: SearchParams {
                        strategy,
                        ..SearchParams::default()
                    },
                    ..ControllerParams::default()
                },
            );
            run_one(
                &setup,
                controller,
                load,
                args.duration,
                plan,
                sink_ref,
                metrics_ref,
            )
        }
        "parties" | "parties-orig" => {
            let controller = PartiesController::new(
                setup.spec().clone(),
                setup.budget_w(),
                setup.qos_target_ms(),
                PartiesParams {
                    power_aware: args.controller == "parties",
                    ..PartiesParams::default()
                },
            );
            run_one(
                &setup,
                controller,
                load,
                args.duration,
                plan,
                sink_ref,
                metrics_ref,
            )
        }
        "heracles" => {
            let controller = HeraclesController::new(
                setup.spec().clone(),
                setup.budget_w(),
                setup.qos_target_ms(),
                HeraclesParams::default(),
            );
            run_one(
                &setup,
                controller,
                load,
                args.duration,
                plan,
                sink_ref,
                metrics_ref,
            )
        }
        "reserved" => run_one(
            &setup,
            StaticReservationController,
            load,
            args.duration,
            plan,
            sink_ref,
            metrics_ref,
        ),
        other => {
            eprintln!("error: unknown controller {other}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let result = match run {
        Ok(result) => result,
        Err(e) => {
            eprintln!("error: run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("{}", report::run_summary_json(&result));
    eprintln!(
        "\nQoS {:.2}% | BE throughput {:.3} | peak {:.1} W / budget {:.1} W | overload {:.2}%",
        result.qos_rate * 100.0,
        result.mean_be_throughput,
        result.peak_power_w,
        result.budget_w,
        result.overload_fraction * 100.0
    );
    if let Some(stem) = &args.export {
        if let Err(e) = report::export_run(&result, stem) {
            eprintln!("error: export failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "exported {} and {}",
            stem.with_extension("json").display(),
            stem.with_extension("csv").display()
        );
    }
    if let Some(path) = &args.trace {
        eprintln!("wrote decision trace to {}", path.display());
    }
    if let Some(path) = &args.metrics {
        if let Err(e) = std::fs::write(path, registry.to_json().to_string()) {
            eprintln!("error: cannot write metrics file {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprint!("{}", registry.text_summary());
        eprintln!("wrote metrics to {}", path.display());
    }
    ExitCode::SUCCESS
}
