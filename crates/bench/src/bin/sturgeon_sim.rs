//! `sturgeon_sim` — the command-line driver for ad-hoc co-location
//! experiments.
//!
//! ```text
//! sturgeon_sim [--manifest scenario.toml]
//!              [--ls memcached] [--be raytrace] [--controller sturgeon]
//!              [--load triangle|constant|ramp|diurnal] [--fraction 0.3]
//!              [--duration 600] [--seed 42] [--export PATH_STEM]
//!              [--trace PATH.jsonl] [--metrics PATH.json]
//!              [--faults none|telemetry|actuation|shocks|everything]
//!              [--search heuristic|pruned]
//! ```
//!
//! Both entry points lower onto the same [`sturgeon::scenario`] code:
//! `--manifest` loads a TOML scenario, while the ad-hoc flags build the
//! equivalent [`Scenario`] in memory — so the two paths cannot drift.
//! Runs one experiment and prints the paper's three metrics; `--export`
//! additionally writes `<stem>.json` (summary) and `<stem>.csv`
//! (per-interval telemetry) via `sturgeon::report`. `--trace` streams
//! every decision-trace event of the run as JSON Lines, and `--metrics`
//! dumps the aggregated metrics registry as JSON (with a one-page text
//! summary on stderr).

use std::path::PathBuf;
use std::process::ExitCode;
use sturgeon::prelude::*;
use sturgeon::report;
use sturgeon::scenario;

#[derive(Debug)]
struct Args {
    manifest: Option<PathBuf>,
    ls: LsServiceId,
    be: BeAppId,
    controller: String,
    load: String,
    fraction: f64,
    duration: u32,
    seed: u64,
    export: Option<PathBuf>,
    trace: Option<PathBuf>,
    metrics: Option<PathBuf>,
    faults: String,
    search: String,
    /// Ad-hoc configuration flags the user passed explicitly (they
    /// conflict with `--manifest`, which owns the configuration).
    explicit: Vec<&'static str>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            manifest: None,
            ls: LsServiceId::Memcached,
            be: BeAppId::Raytrace,
            controller: "sturgeon".into(),
            load: "triangle".into(),
            fraction: 0.3,
            duration: 600,
            seed: 42,
            export: None,
            trace: None,
            metrics: None,
            faults: "none".into(),
            search: "heuristic".into(),
            explicit: Vec::new(),
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if flag == "--help" || flag == "-h" {
            return Err(String::new()); // triggers usage
        }
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("missing value for {flag}"))?;
        match flag {
            "--manifest" => args.manifest = Some(PathBuf::from(value)),
            "--ls" => {
                args.ls = scenario::parse_ls(value).ok_or(format!("unknown LS service {value}"))?;
                args.explicit.push("--ls");
            }
            "--be" => {
                args.be = scenario::parse_be(value).ok_or(format!("unknown BE app {value}"))?;
                args.explicit.push("--be");
            }
            "--controller" => {
                args.controller = value.clone();
                args.explicit.push("--controller");
            }
            "--load" => {
                args.load = value.clone();
                args.explicit.push("--load");
            }
            "--fraction" => {
                args.fraction = value.parse().map_err(|_| format!("bad fraction {value}"))?;
                args.explicit.push("--fraction");
            }
            "--duration" => {
                args.duration = value.parse().map_err(|_| format!("bad duration {value}"))?;
                args.explicit.push("--duration");
            }
            "--seed" => {
                args.seed = value.parse().map_err(|_| format!("bad seed {value}"))?;
                args.explicit.push("--seed");
            }
            "--export" => args.export = Some(PathBuf::from(value)),
            "--trace" => args.trace = Some(PathBuf::from(value)),
            "--metrics" => args.metrics = Some(PathBuf::from(value)),
            "--faults" => {
                args.faults = value.clone();
                args.explicit.push("--faults");
            }
            "--search" => {
                args.search = value.clone();
                args.explicit.push("--search");
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    if args.manifest.is_some() && !args.explicit.is_empty() {
        return Err(format!(
            "--manifest owns the run configuration; drop {}",
            args.explicit.join(", ")
        ));
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "usage: sturgeon_sim [--manifest scenario.toml] \\
                    [--ls memcached|xapian|img-dnn] \\
                    [--be blackscholes|facesim|ferret|raytrace|swaptions|fluidanimate] \\
                    [--controller sturgeon|sturgeon-nob|parties|parties-orig|heracles|reserved] \\
                    [--load triangle|constant|ramp|diurnal] [--fraction F] \\
                    [--duration SECONDS] [--seed N] [--export PATH_STEM] \\
                    [--trace PATH.jsonl] [--metrics PATH.json] \\
                    [--faults none|telemetry|actuation|shocks|everything] \\
                    [--search heuristic|pruned]"
    );
}

/// Builds the scenario the legacy ad-hoc flags describe — the same
/// profiles, fault presets and controller composition the CLI has
/// always used, now expressed through the shared lowering code.
fn scenario_from_flags(args: &Args) -> Result<Scenario, String> {
    let kind = scenario::ControllerKind::parse(&args.controller)
        .ok_or_else(|| format!("unknown controller {}", args.controller))?;
    let strategy = scenario::parse_search_strategy(&args.search)
        .ok_or_else(|| format!("unknown search strategy {}", args.search))?;
    let load = scenario::cli_load_profile(&args.load, args.fraction, args.duration)
        .ok_or_else(|| format!("unknown load profile {}", args.load))?;
    let faults = scenario::cli_fault_plan(&args.faults, args.seed)
        .ok_or_else(|| format!("unknown fault plan {}", args.faults))?;
    Ok(Scenario {
        name: "cli".into(),
        kind: ScenarioKind::Node,
        seed: args.seed,
        intervals: args.duration,
        pair: ColocationPair::new(args.ls, args.be),
        controller: ControllerSpec {
            kind,
            strategy,
            hardened: false,
        },
        load,
        region_loads: Vec::new(),
        faults,
        policy: ActuationPolicy::hardened(),
        fleet: None,
        budget: None,
        placement: None,
        scoring: None,
        probe: None,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            usage();
            return ExitCode::FAILURE;
        }
    };

    let scenario = match &args.manifest {
        Some(path) => match Scenario::load(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => match scenario_from_flags(&args) {
            Ok(s) => s,
            Err(msg) => {
                eprintln!("error: {msg}");
                usage();
                return ExitCode::FAILURE;
            }
        },
    };
    if scenario.kind != ScenarioKind::Node {
        eprintln!("error: fleet scenarios run under `fleet_sim --manifest`");
        return ExitCode::FAILURE;
    }

    eprintln!(
        "running {} under `{}` for {}s (load {}, seed {})...",
        scenario.pair.label(),
        scenario.controller.kind.name(),
        scenario.intervals,
        scenario.load.name(),
        scenario.seed
    );
    if scenario.controller.kind.is_sturgeon() {
        eprintln!("offline phase: profiling + training the predictor...");
    }

    let registry = MetricsRegistry::new();
    let metrics_ref = args.metrics.as_ref().map(|_| &registry);
    let mut trace_sink = match &args.trace {
        Some(path) => match JsonlSink::create(path) {
            Ok(sink) => Some(sink),
            Err(e) => {
                eprintln!("error: cannot open trace file {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let sink_ref = trace_sink.as_mut().map(|sink| sink as &mut dyn TraceSink);

    let result = match scenario.run_node_observed(sink_ref, metrics_ref) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("error: run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("{}", report::run_summary_json(&result));
    eprintln!(
        "\nQoS {:.2}% | BE throughput {:.3} | peak {:.1} W / budget {:.1} W | overload {:.2}%",
        result.qos_rate * 100.0,
        result.mean_be_throughput,
        result.peak_power_w,
        result.budget_w,
        result.overload_fraction * 100.0
    );
    if let Some(stem) = &args.export {
        if let Err(e) = report::export_run(&result, stem) {
            eprintln!("error: export failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "exported {} and {}",
            stem.with_extension("json").display(),
            stem.with_extension("csv").display()
        );
    }
    if let Some(path) = &args.trace {
        eprintln!("wrote decision trace to {}", path.display());
    }
    if let Some(path) = &args.metrics {
        if let Err(e) = std::fs::write(path, registry.to_json().to_string()) {
            eprintln!("error: cannot write metrics file {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprint!("{}", registry.text_summary());
        eprintln!("wrote metrics to {}", path.display());
    }
    ExitCode::SUCCESS
}
