//! Generalization check: the paper's 18 pairs drove our calibration, so a
//! fair question is whether Sturgeon's machinery works on co-locations it
//! was never tuned against. This binary runs the three LS services against
//! the *extended* PARSEC catalog (x264, canneal, dedup, streamcluster —
//! characteristics taken from the PARSEC literature, untouched by any
//! calibration pass) and reports the same Fig. 9/10 metrics.
//!
//! Expected: QoS held, no overloads, throughput gains over PARTIES of the
//! same flavour as the paper pairs — i.e. the mechanism generalizes.

use rayon::prelude::*;
use sturgeon::baselines::{PartiesController, PartiesParams};
use sturgeon::prelude::*;
use sturgeon_simnode::PowerModel;
use sturgeon_workloads::catalog::{extended_be_app, ls_service, ExtendedBeAppId};
use sturgeon_workloads::env::CoLocationEnv;
use sturgeon_workloads::interference::InterferenceParams;

/// Builds an ExperimentSetup-equivalent run for an extended pair by hand
/// (ExperimentSetup's constructor only knows the paper's six BE apps).
fn run_extended(
    ls_id: LsServiceId,
    be_id: ExtendedBeAppId,
    duration: u32,
) -> (f64, f64, f64, f64, f64) {
    let spec = NodeSpec::xeon_e5_2630_v4();
    let env = CoLocationEnv::new(
        spec.clone(),
        PowerModel::default(),
        ls_service(ls_id),
        extended_be_app(be_id),
        InterferenceParams::default(),
        42,
    );

    // Offline phase against this env.
    let datasets = sturgeon::profiler::Profiler::new(&env, Default::default())
        .collect()
        .expect("profiling succeeds");
    let predictor = sturgeon::predictor::PerfPowerPredictor::train(
        &datasets,
        PredictorConfig::default(),
        env.static_power_w(),
        env.be().params.input_level as f64,
        env.ls().params.qos_target_ms,
    )
    .expect("training succeeds");

    let run = |mut controller: Box<dyn ResourceController>| {
        use sturgeon_simnode::{IntervalSample, SimActuators, TelemetryLog};
        let mut env = env.clone();
        let actuators = SimActuators::new(spec.clone());
        let mut log = TelemetryLog::new();
        let load = LoadProfile::paper_fluctuating(duration as f64);
        let mut config = controller.initial_config(&spec);
        actuators.apply(config).expect("valid");
        for t in 0..duration {
            let qps = load.qps_at(t as f64, env.ls().params.peak_qps);
            let obs = env.step(&actuators.config(), qps);
            actuators.push_power(obs.power_w);
            log.push(IntervalSample {
                t_s: obs.t_s,
                qps: obs.qps,
                p95_ms: obs.p95_ms,
                in_target_fraction: obs.in_target_fraction,
                power_w: obs.power_w,
                be_throughput_norm: obs.be_throughput_norm,
                config: actuators.config(),
            });
            let next = controller.decide(&obs, config);
            if next != config {
                actuators.apply(next).expect("valid");
                config = next;
            }
        }
        (
            log.qos_guarantee_rate(),
            log.mean_be_throughput(),
            log.overload_fraction(env.budget_w()),
        )
    };

    let sturgeon_ctl: Box<dyn ResourceController> = Box::new(SturgeonController::new(
        predictor,
        spec.clone(),
        env.budget_w(),
        env.ls().params.qos_target_ms,
        ControllerParams::default(),
    ));
    let (s_qos, s_tput, s_over) = run(sturgeon_ctl);
    let parties_ctl: Box<dyn ResourceController> = Box::new(PartiesController::new(
        spec.clone(),
        env.budget_w(),
        env.ls().params.qos_target_ms,
        PartiesParams::default(),
    ));
    let (_p_qos, p_tput, _p_over) = run(parties_ctl);
    (s_qos, s_tput, s_over, p_tput, env.budget_w())
}

fn main() {
    let duration = sturgeon_bench::duration_from_args().min(400);
    println!("Generalization sweep: uncalibrated extended-catalog pairs ({duration}s, seed 42)\n");
    println!(
        "{:<26} {:>9} {:>9} {:>9} {:>10}",
        "pair", "S QoS", "S tput", "P tput", "S overload"
    );
    let mut qos_ok = 0;
    let mut total = 0;
    let mut gains = Vec::new();
    // All 12 pairs are independent experiments — run them across the
    // rayon pool and print the rows in sweep order.
    let pairs: Vec<(LsServiceId, ExtendedBeAppId)> = [
        LsServiceId::Memcached,
        LsServiceId::Xapian,
        LsServiceId::ImgDnn,
    ]
    .into_iter()
    .flat_map(|ls| ExtendedBeAppId::all().into_iter().map(move |be| (ls, be)))
    .collect();
    type Row = ((LsServiceId, ExtendedBeAppId), (f64, f64, f64, f64, f64));
    let rows: Vec<Row> = pairs
        .into_par_iter()
        .map(|(ls, be)| ((ls, be), run_extended(ls, be, duration)))
        .collect();
    for ((ls, be), (s_qos, s_tput, s_over, p_tput, _)) in rows {
        total += 1;
        if s_qos >= 0.95 {
            qos_ok += 1;
        }
        gains.push(s_tput / p_tput - 1.0);
        println!(
            "{:<26} {:>8.2}% {:>9.3} {:>9.3} {:>9.2}%",
            format!("{}+{}", ls.name(), be.name()),
            s_qos * 100.0,
            s_tput,
            p_tput,
            s_over * 100.0
        );
    }
    let mean_gain = gains.iter().sum::<f64>() / gains.len() as f64;
    println!("\nSturgeon ≥95% QoS on {qos_ok}/{total} uncalibrated pairs");
    println!(
        "mean throughput gain over PARTIES: {:+.1}%",
        mean_gain * 100.0
    );
    println!("=> power safety and the PARTIES advantage generalize to every uncalibrated pair.");
    println!("   canneal/streamcluster generate more memory traffic than any paper app, so");
    println!("   their interference exceeds what the balancer was designed to absorb — these");
    println!("   are the co-runners `sturgeon::placement::BePlacer` exists to steer away from");
    println!("   latency-critical nodes in the first place.");
}
