//! Fig. 9 reproduction: "The QoS guarantee rate of 18 co-location pairs" —
//! the fraction of queries completed within the QoS target under Sturgeon,
//! (enhanced) PARTIES, and Sturgeon-NoB, driven by the paper's fluctuating
//! load (20% → 80% → 20% of peak).
//!
//! Expected shape (paper §VII-B/§VII-C): Sturgeon and PARTIES keep every
//! pair at or above the 95% line; disabling the balancer (Sturgeon-NoB)
//! drops most pairs below it. Also reports the §VII-B power-overload
//! verdicts (Sturgeon 0/18; enhanced PARTIES still overloads in several).

use sturgeon_bench::{duration_from_args, evaluate_all, short_label, DEFAULT_SEED};

fn main() {
    let duration = duration_from_args();
    println!(
        "Fig. 9 — QoS guarantee rate (duration {duration}s, fluctuating 20%→80%→20%, seed {DEFAULT_SEED})\n"
    );
    println!(
        "{:<16} {:>10} {:>10} {:>13} | overload S/P/N",
        "pair", "Sturgeon", "PARTIES", "Sturgeon-NoB"
    );

    let evals = evaluate_all(DEFAULT_SEED, duration);
    let mut sturgeon_ok = 0;
    let mut parties_ok = 0;
    let mut nob_violations = 0;
    let mut sturgeon_over = 0;
    let mut parties_over = 0;
    for e in &evals {
        if e.sturgeon.meets_qos_guarantee() {
            sturgeon_ok += 1;
        }
        if e.parties.meets_qos_guarantee() {
            parties_ok += 1;
        }
        if !e.nob.meets_qos_guarantee() {
            nob_violations += 1;
        }
        if e.sturgeon.suffers_overload() {
            sturgeon_over += 1;
        }
        if e.parties.suffers_overload() {
            parties_over += 1;
        }
        println!(
            "{:<16} {:>9.2}% {:>9.2}% {:>12.2}% | {}/{}/{}",
            short_label(&e.pair),
            e.sturgeon.qos_rate * 100.0,
            e.parties.qos_rate * 100.0,
            e.nob.qos_rate * 100.0,
            if e.sturgeon.suffers_overload() {
                "Y"
            } else {
                "-"
            },
            if e.parties.suffers_overload() {
                "Y"
            } else {
                "-"
            },
            if e.nob.suffers_overload() { "Y" } else { "-" },
        );
    }
    println!("\nSturgeon meets the 95% guarantee in {sturgeon_ok}/18 pairs (paper: 18/18)");
    println!("PARTIES  meets the 95% guarantee in {parties_ok}/18 pairs (paper: 18/18)");
    println!("Sturgeon-NoB violates QoS in {nob_violations}/18 pairs (paper: 12/18)");
    println!("power overload: Sturgeon {sturgeon_over}/18 (paper: 0/18), PARTIES {parties_over}/18 (paper: 7/18)");
}
