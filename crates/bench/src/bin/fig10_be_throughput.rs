//! Fig. 10 reproduction: "The normalized throughput of BE applications of
//! 18 co-locations" — BE throughput relative to the app's whole-node solo
//! run, under Sturgeon, (enhanced) PARTIES, and Sturgeon-NoB.
//!
//! Headline result to match: Sturgeon improves BE throughput over PARTIES
//! by ≈24.96% on average while Sturgeon-NoB gains only ≈4.38% more than
//! Sturgeon (the small cost the balancer charges for QoS safety, §VII-C).

use sturgeon_bench::{duration_from_args, evaluate_all, mean, short_label, DEFAULT_SEED};

fn main() {
    let duration = duration_from_args();
    println!(
        "Fig. 10 — normalized BE throughput (duration {duration}s, fluctuating load, seed {DEFAULT_SEED})\n"
    );
    println!(
        "{:<16} {:>10} {:>10} {:>13} {:>12}",
        "pair", "Sturgeon", "PARTIES", "Sturgeon-NoB", "S vs P"
    );

    let evals = evaluate_all(DEFAULT_SEED, duration);
    let mut s = Vec::new();
    let mut p = Vec::new();
    let mut n = Vec::new();
    for e in &evals {
        s.push(e.sturgeon.mean_be_throughput);
        p.push(e.parties.mean_be_throughput);
        n.push(e.nob.mean_be_throughput);
        println!(
            "{:<16} {:>10.3} {:>10.3} {:>13.3} {:>+11.1}%",
            short_label(&e.pair),
            e.sturgeon.mean_be_throughput,
            e.parties.mean_be_throughput,
            e.nob.mean_be_throughput,
            (e.sturgeon.mean_be_throughput / e.parties.mean_be_throughput - 1.0) * 100.0
        );
    }
    let (ms, mp, mn) = (mean(&s), mean(&p), mean(&n));
    println!(
        "\nmean normalized throughput: Sturgeon {ms:.3}, PARTIES {mp:.3}, Sturgeon-NoB {mn:.3}"
    );
    println!(
        "Sturgeon vs PARTIES: {:+.2}%  (paper: +24.96%)",
        (ms / mp - 1.0) * 100.0
    );
    println!(
        "Sturgeon-NoB vs Sturgeon: {:+.2}%  (paper: +4.38% — the balancer's throughput cost)",
        (mn / ms - 1.0) * 100.0
    );
    let wins = evals
        .iter()
        .filter(|e| e.sturgeon.mean_be_throughput > e.parties.mean_be_throughput)
        .count();
    println!("Sturgeon outperforms PARTIES in {wins}/18 pairs (paper: 18/18)");
}
