//! Fig. 7 reproduction: "The coefficient of determination R² of power
//! models" across the five regressor families for LS-partition and
//! BE-partition power.
//!
//! The paper concludes KNN regression is the most suitable family for both
//! power models; the ranking below should agree.

use sturgeon::predictor::evaluation::score_families;
use sturgeon::prelude::*;
use sturgeon::profiler::ProfilerConfig;

fn main() {
    let seed = 42u64;
    println!("Fig. 7 — power-model accuracy (R² on held-out 30% splits), seed {seed}\n");
    let mut knn_best_ls = 0;
    let mut knn_best_be = 0;
    let mut panels = 0;
    for ls in [
        LsServiceId::Memcached,
        LsServiceId::Xapian,
        LsServiceId::ImgDnn,
    ] {
        for be in [
            BeAppId::Blackscholes,
            BeAppId::Ferret,
            BeAppId::Fluidanimate,
        ] {
            let pair = ColocationPair::new(ls, be);
            let setup = ExperimentSetup::new(pair, seed);
            let datasets = setup
                .profile(ProfilerConfig::default())
                .expect("profiling succeeds");
            let scores = score_families(&datasets, seed).expect("scoring succeeds");
            println!("-- {} --", pair.label());
            println!("{:<6} {:>14} {:>14}", "model", "LS power R²", "BE power R²");
            for s in &scores {
                println!(
                    "{:<6} {:>14.3} {:>14.3}",
                    s.kind.name(),
                    s.ls_power_r2,
                    s.be_power_r2
                );
            }
            let best_ls = scores
                .iter()
                .max_by(|a, b| a.ls_power_r2.total_cmp(&b.ls_power_r2))
                .expect("non-empty");
            let best_be = scores
                .iter()
                .max_by(|a, b| a.be_power_r2.total_cmp(&b.be_power_r2))
                .expect("non-empty");
            println!(
                "best: LS {} ({:.3}), BE {} ({:.3})\n",
                best_ls.kind.name(),
                best_ls.ls_power_r2,
                best_be.kind.name(),
                best_be.be_power_r2
            );
            panels += 1;
            if best_ls.kind == ModelKind::Knn {
                knn_best_ls += 1;
            }
            if best_be.kind == ModelKind::Knn {
                knn_best_be += 1;
            }
        }
    }
    println!(
        "KNN regression ranked first in {knn_best_ls}/{panels} LS-power panels and {knn_best_be}/{panels} BE-power panels"
    );
    println!("=> the non-parametric families (KNN/MLP/DT, R² ≈ 0.99+) clearly beat the linear");
    println!("   ones (SV/LR, R² ≈ 0.88), matching the paper's Fig. 7 ranking shape. In our");
    println!("   noiseless simulator MLP edges out KNN at the top; on the paper's real,");
    println!("   noisy measurements KNN won — see EXPERIMENTS.md for the discussion.");
}
