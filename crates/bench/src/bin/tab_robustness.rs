//! Robustness experiment (DESIGN.md fault model): QoS guarantee rate and
//! power overload per injected fault class, against the fault-free
//! baseline, on the paper's flagship pair (memcached+raytrace) under the
//! fluctuating load.
//!
//! The headline comparison is the actuator-failure scenario run twice:
//! once with the hardened stack (bounded retry + read-back verification +
//! stale-telemetry safe mode) and once with every defence disabled. The
//! hardened controller should stay within a few points of the fault-free
//! QoS guarantee rate while the unhardened one measurably degrades —
//! silent actuation failures desynchronize its believed configuration
//! from the node.
//!
//! Usage: `tab_robustness [duration_s] [seed]` (defaults 600 / 42).

use sturgeon::prelude::*;
use sturgeon_bench::{duration_from_args, robust_sturgeon_controller, seed_from_args};

struct Scenario {
    label: &'static str,
    plan: FaultPlan,
    hardened: bool,
}

fn main() {
    let duration = duration_from_args();
    let seed = seed_from_args();
    let fault_seed = seed.wrapping_mul(31).wrapping_add(7);
    println!("tab_robustness  duration={duration}s  seed={seed}  fault_seed={fault_seed}");
    println!("pair memcached+raytrace, paper fluctuating load\n");

    let setup = ExperimentSetup::new(
        ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace),
        seed,
    );
    // Four load cycles per run (not one): every rise and fall forces
    // reconfigurations, which is exactly when actuation faults bite.
    let load = LoadProfile::paper_fluctuating((duration as f64 / 4.0).max(60.0));

    let scenarios = [
        Scenario {
            label: "baseline (fault-free)",
            plan: FaultPlan::none(fault_seed),
            hardened: true,
        },
        Scenario {
            label: "telemetry noise 15%/±25%",
            plan: FaultPlan::telemetry_noise(fault_seed, 0.15, 0.25),
            hardened: true,
        },
        Scenario {
            label: "telemetry dropout 10%",
            plan: FaultPlan::telemetry_dropout(fault_seed, 0.10),
            hardened: true,
        },
        Scenario {
            label: "actuator faults 10% (hardened)",
            plan: FaultPlan::actuation_faults(fault_seed, 0.10),
            hardened: true,
        },
        Scenario {
            label: "actuator faults 10% (unhardened)",
            plan: FaultPlan::actuation_faults(fault_seed, 0.10),
            hardened: false,
        },
        Scenario {
            label: "load/power shocks 5%",
            plan: FaultPlan::shocks(fault_seed, 0.05),
            hardened: true,
        },
        Scenario {
            label: "everything (stress)",
            plan: FaultPlan::everything(fault_seed),
            hardened: true,
        },
    ];

    println!(
        "{:<34} {:>7} {:>9} {:>8} {:>7} {:>8} {:>10}",
        "scenario", "qos%", "overload%", "be-tput", "faults", "retries", "safe-mode"
    );
    let mut baseline_qos = 0.0;
    let mut hardened_qos = 0.0;
    let mut unhardened_qos = 0.0;
    for s in &scenarios {
        let controller = robust_sturgeon_controller(&setup, s.hardened);
        let policy = if s.hardened {
            ActuationPolicy::hardened()
        } else {
            ActuationPolicy::unhardened()
        };
        let r = setup
            .runner()
            .controller(controller)
            .load(load.clone())
            .intervals(duration)
            .faults(s.plan)
            .policy(policy)
            .go()
            .expect("robustness run");
        println!(
            "{:<34} {:>7.2} {:>9.2} {:>8.3} {:>7} {:>8} {:>10}",
            s.label,
            r.qos_rate * 100.0,
            r.overload_fraction * 100.0,
            r.mean_be_throughput,
            r.faults.faults_seen,
            r.faults.retries,
            r.faults.safe_mode_entries,
        );
        match s.label {
            "baseline (fault-free)" => baseline_qos = r.qos_rate,
            "actuator faults 10% (hardened)" => hardened_qos = r.qos_rate,
            "actuator faults 10% (unhardened)" => unhardened_qos = r.qos_rate,
            _ => {}
        }
    }

    let hardened_gap = (baseline_qos - hardened_qos) * 100.0;
    let unhardened_gap = (baseline_qos - unhardened_qos) * 100.0;
    println!();
    println!("hardened QoS gap vs fault-free:   {hardened_gap:+.2} points");
    println!("unhardened QoS gap vs fault-free: {unhardened_gap:+.2} points");
    println!(
        "verdict: hardening {} the actuator-fault degradation ({}{:.2} points recovered)",
        if unhardened_gap > hardened_gap {
            "reduces"
        } else {
            "does not reduce"
        },
        if unhardened_gap > hardened_gap {
            ""
        } else {
            "-"
        },
        (unhardened_gap - hardened_gap).abs()
    );
}
