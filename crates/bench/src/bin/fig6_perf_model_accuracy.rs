//! Fig. 6 reproduction: "The coefficient of determination R² of
//! performance models" across the five model families (DT, KNN, SV, MLP,
//! LR) for both the LS-service QoS model (classification) and the
//! BE-application throughput model (regression).
//!
//! The paper concludes DT classification suits the LS performance model
//! and KNN/MLP regression suit the BE performance model; the table below
//! should show the same ranking shape. Also demonstrates the §V-A Lasso
//! feature-selection step.

use sturgeon::predictor::evaluation::{lasso_select_features, score_families};
use sturgeon::prelude::*;
use sturgeon::profiler::ProfilerConfig;

fn main() {
    let seed = 42u64;
    println!("Fig. 6 — performance-model accuracy (R² on held-out 30% splits), seed {seed}\n");
    for ls in [
        LsServiceId::Memcached,
        LsServiceId::Xapian,
        LsServiceId::ImgDnn,
    ] {
        // The BE partner only matters for the BE columns; raytrace is the
        // paper's Fig. 11 example app.
        let pair = ColocationPair::new(ls, BeAppId::Raytrace);
        let setup = ExperimentSetup::new(pair, seed);
        let datasets = setup
            .profile(ProfilerConfig::default())
            .expect("profiling succeeds");
        let scores = score_families(&datasets, seed).expect("scoring succeeds");
        println!("-- LS service: {} (BE: raytrace) --", ls.name());
        println!(
            "{:<6} {:>12} {:>12} {:>12}",
            "model", "LS QoS R²", "LS QoS acc", "BE perf R²"
        );
        for s in &scores {
            println!(
                "{:<6} {:>12.3} {:>12.3} {:>12.3}",
                s.kind.name(),
                s.ls_qos_r2,
                s.ls_qos_accuracy,
                s.be_perf_r2
            );
        }
        println!();
    }

    // §V-A: Lasso feature selection over the BE throughput dataset
    // (features: input size, cores, frequency, LLC ways + distractors).
    let pair = ColocationPair::new(LsServiceId::Memcached, BeAppId::Ferret);
    let setup = ExperimentSetup::new(pair, seed);
    let datasets = setup
        .profile(ProfilerConfig::default())
        .expect("profiling succeeds");
    let names = ["input", "cores", "freq", "ways"];
    let kept = lasso_select_features(&datasets.be_throughput, 0.01).expect("lasso fits");
    let kept_names: Vec<&str> = kept.iter().map(|&i| names[i]).collect();
    println!("Lasso feature selection (BE throughput, ferret): kept {kept_names:?}");
    let kept_power = lasso_select_features(&datasets.be_power, 0.01).expect("lasso fits");
    let kept_power_names: Vec<&str> = kept_power.iter().map(|&i| names[i]).collect();
    println!("Lasso feature selection (BE power, ferret):      kept {kept_power_names:?}");
    println!("=> Lasso keeps exactly the resource features that drive each target (ferret's");
    println!("   weak frequency sensitivity drops `freq` from its throughput model while the");
    println!("   power model keeps it), reproducing the paper's §V-A selection step.");
}
