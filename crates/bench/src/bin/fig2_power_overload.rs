//! Fig. 2 reproduction: "The power consumption of the computer at
//! co-location normalized to the power budget."
//!
//! Setup (paper §III-B): each LS service runs at 20% of its peak load with
//! a "just enough" allocation (minimal cores at a mid frequency with
//! just-enough LLC ways); the BE application receives every remaining core
//! and way at the **maximum** frequency — the power-oblivious policy prior
//! co-location work applies. The paper measures overloads of 2.04%–12.57%
//! across all 18 pairs; this binary prints our simulated equivalents.

use sturgeon_simnode::{Allocation, NodeSpec, PairConfig, PowerModel};
use sturgeon_workloads::catalog::{all_pairs, be_app, ls_service};
use sturgeon_workloads::env::CoLocationEnv;
use sturgeon_workloads::interference::InterferenceParams;

fn main() {
    let spec = NodeSpec::xeon_e5_2630_v4();
    println!("Fig. 2 — normalized power at co-location (LS at 20% load, BE at max frequency)");
    println!("paper band: +2.04% .. +12.57% over budget\n");
    println!(
        "{:<26} {:>8} {:>10} {:>10} {:>9}",
        "pair", "budget W", "power W", "normalized", "overload"
    );

    let mut min_over = f64::INFINITY;
    let mut max_over = f64::NEG_INFINITY;
    for (ls_id, be_id) in all_pairs() {
        let env = CoLocationEnv::new(
            spec.clone(),
            PowerModel::default(),
            ls_service(ls_id),
            be_app(be_id),
            InterferenceParams::none(),
            0,
        );
        let ls = env.ls().clone();
        let qps = 0.2 * ls.params.peak_qps;
        // "Just enough" for the LS service: §III-B quotes ~4 cores at
        // 1.6–1.8 GHz with 5–6 ways; we find the minimal core count at a
        // mid frequency and 6 ways.
        let ways = 6u32;
        let freq_level = 5usize;
        let f_ghz = spec.freq_ghz(freq_level);
        let min_cores = (1..=spec.total_cores - 1)
            .find(|&c| ls.meets_qos(c, f_ghz, ways, qps))
            .expect("20% load must be servable");
        let config = PairConfig::new(
            Allocation::new(min_cores, freq_level, ways),
            Allocation::new(
                spec.total_cores - min_cores,
                spec.max_freq_level(),
                spec.total_llc_ways - ways,
            ),
        );
        let power = env.total_power(&config, qps);
        let budget = env.budget_w();
        let norm = power / budget;
        let over = norm - 1.0;
        min_over = min_over.min(over);
        max_over = max_over.max(over);
        println!(
            "{:<26} {:>8.2} {:>10.2} {:>10.3} {:>+8.2}%",
            format!("{}+{}", ls_id.name(), be_id.abbrev()),
            budget,
            power,
            norm,
            over * 100.0
        );
    }
    println!(
        "\nmeasured band: {:+.2}% .. {:+.2}% (paper: +2.04% .. +12.57%)",
        min_over * 100.0,
        max_over * 100.0
    );
    println!("=> every pair overloads the budget when co-location ignores power, as in the paper");
}
