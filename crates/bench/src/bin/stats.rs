//! `stats` — the regression gate: compares a metrics JSON document
//! against a committed baseline with per-metric tolerances.
//!
//! ```text
//! stats BASELINE.json CURRENT.json [--tolerances FILE.toml] [--subset]
//! ```
//!
//! Deterministic metrics (QoS, throughput, counters) gate tightly;
//! wall-clock-derived metrics get loose multiplicative bands (see
//! `sturgeon::scenario::gate::default_rules`). Arrays of rows align by
//! row identity (`label` / `scenario` / `name`, else the composite of
//! string fields), not position. `--subset` lets a quick smoke run
//! check against a larger committed baseline: unexercised baseline rows
//! are noted instead of failing. `--tolerances` prepends overrides from
//! a `[tolerances]` TOML table (`key = "exact" | "ignore" |
//! { rel = 0.05 } | { ceiling = 8 } | { floor = 8 }`).
//!
//! Exit codes: `0` within tolerance, `1` regression detected (with a
//! readable diff table on stderr), `2` usage or parse failure.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use sturgeon::scenario::gate;

struct Args {
    baseline: PathBuf,
    current: PathBuf,
    tolerances: Option<PathBuf>,
    subset: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut tolerances = None;
    let mut subset = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--subset" => {
                subset = true;
                i += 1;
            }
            "--tolerances" => {
                let value = argv.get(i + 1).ok_or("missing value for --tolerances")?;
                tolerances = Some(PathBuf::from(value));
                i += 2;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            path => {
                positional.push(PathBuf::from(path));
                i += 1;
            }
        }
    }
    match positional.len() {
        2 => {
            let mut it = positional.into_iter();
            Ok(Args {
                baseline: it.next().expect("two positionals"),
                current: it.next().expect("two positionals"),
                tolerances,
                subset,
            })
        }
        n => Err(format!("expected BASELINE and CURRENT, got {n} paths")),
    }
}

fn usage() {
    eprintln!("usage: stats BASELINE.json CURRENT.json [--tolerances FILE.toml] [--subset]");
}

fn read_json(path: &Path) -> Result<serde::Value, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            usage();
            return ExitCode::from(2);
        }
    };

    let (baseline, current) = match (read_json(&args.baseline), read_json(&args.current)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    // A lone metrics object (e.g. `fleet_sim --json`) gates against an
    // array baseline as a one-row batch.
    let wrap = |v: serde::Value| match v {
        obj @ serde::Value::Object(_) => serde::Value::Array(vec![obj]),
        other => other,
    };
    let (baseline, current) = match (&baseline, &current) {
        (serde::Value::Array(_), serde::Value::Object(_))
        | (serde::Value::Object(_), serde::Value::Array(_)) => (wrap(baseline), wrap(current)),
        _ => (baseline, current),
    };

    let mut rules = match &args.tolerances {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            match gate::parse_tolerance_overrides(&text) {
                Ok(rules) => rules,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => Vec::new(),
    };
    rules.extend(gate::default_rules());

    let report = gate::compare(&baseline, &current, &rules, args.subset);
    eprint!("{}", report.table());
    if report.passed() {
        eprintln!(
            "gate passed: {} metrics within tolerance ({} vs {})",
            report.checks,
            args.current.display(),
            args.baseline.display()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "gate FAILED: {} of {} metrics out of tolerance ({} vs {})",
            report.violations.len(),
            report.checks,
            args.current.display(),
            args.baseline.display()
        );
        ExitCode::FAILURE
    }
}
