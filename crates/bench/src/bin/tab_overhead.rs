//! §VII-E reproduction: the overhead accounting of Sturgeon's predictor
//! and balancer.
//!
//! The paper's arithmetic on its platform (20 cores × 10 frequencies × 20
//! ways × 10 frequencies = 40 000 configurations, 4 models per check,
//! 0.04 ms per model call):
//!
//! * exhaustive search: 40 000 × 4 × 0.04 ms ≈ **6.4 s** — unusable at a
//!   1 s control interval;
//! * binary search: ≤ (16 + 11·19) model-call *rounds* ≈ **36 ms**, and at
//!   most ~120 ms end-to-end in their implementation;
//! * balancer: 3 candidate configurations ≈ **0.48 ms**.
//!
//! This binary measures the same quantities on our implementation: model
//! calls consumed and wall-clock time for the heuristic binary search,
//! the exhaustive oracle, and the frontier-pruned engine (exhaustive-
//! equivalent results at a fraction of the evaluations, both cold and
//! with a warm frontier cache), plus the per-prediction latency. Pass
//! `--json PATH` to write the row summary as JSON (the committed
//! `BENCH_search.json` numbers come from this).

use std::time::Instant;
use sturgeon::prelude::*;
use sturgeon::report::OverheadSummary;

fn main() {
    let json_path = {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut path = None;
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--json" => {
                    path = argv.get(i + 1).cloned();
                    i += 2;
                }
                other => {
                    eprintln!("unknown flag {other} (usage: tab_overhead [--json PATH])");
                    std::process::exit(2);
                }
            }
        }
        path
    };

    let pair = ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace);
    let setup = ExperimentSetup::new(pair, 42);
    let predictor = setup.train_default_predictor();
    println!("§VII-E — search and prediction overhead (memcached+raytrace)\n");
    println!(
        "configuration space: {} candidates (paper: 40 000)",
        setup.spec().config_space_size()
    );

    // Per-prediction latency (paper: 0.04 ms per model).
    let reps = 20_000u64;
    let started = Instant::now();
    let mut sink = 0.0;
    for i in 0..reps {
        sink += predictor.be_throughput(1 + (i % 19) as u32, 1.2 + (i % 10) as f64 * 0.1, 10);
    }
    let per_pred_us = started.elapsed().as_secs_f64() * 1e6 / reps as f64;
    println!("per-prediction latency: {per_pred_us:.2} µs (paper: 40 µs/model) [sink {sink:.1}]");

    let frontiers = FrontierCache::default();
    let mut summaries = Vec::new();
    for frac in [0.2, 0.35, 0.5, 0.8] {
        let qps = frac * setup.peak_qps();
        let search = ConfigSearch::new(
            &predictor,
            setup.spec().clone(),
            setup.budget_w(),
            SearchParams::default(),
        );
        let fast = search.best_config(qps);
        let full = search.exhaustive(qps);
        let pruned = search.pruned(qps);
        // Warm variant: frontier cache seeded by a first pass at the same
        // bucket — the steady-state cost of the pruned engine.
        let seeded = search.with_frontiers(&frontiers);
        let _ = seeded.pruned(qps);
        let pruned_warm = seeded.pruned(qps);
        println!("\n-- load {:.0}% of peak --", frac * 100.0);
        let fast_row =
            OverheadSummary::from_stats(format!("binary@{:.0}%", frac * 100.0), &fast.stats);
        let full_row =
            OverheadSummary::from_stats(format!("exhaustive@{:.0}%", frac * 100.0), &full.stats);
        let pruned_row =
            OverheadSummary::from_stats(format!("pruned@{:.0}%", frac * 100.0), &pruned.stats);
        let warm_row = OverheadSummary::from_stats(
            format!("pruned-warm@{:.0}%", frac * 100.0),
            &pruned_warm.stats,
        );
        println!("{}  tput {:.3}", fast_row.row(), fast.predicted_throughput);
        println!("{}  tput {:.3}", full_row.row(), full.predicted_throughput);
        println!(
            "{}  tput {:.3}  (pruned {} cells, {} slices; oracle-equal: {})",
            pruned_row.row(),
            pruned.predicted_throughput,
            pruned.stats.pruned_candidates,
            pruned.stats.pruned_subspaces,
            pruned.best == full.best
        );
        println!(
            "{}  tput {:.3}  (frontier reuses {})",
            warm_row.row(),
            pruned_warm.predicted_throughput,
            pruned_warm.stats.frontier_reuses
        );
        println!(
            "speedup: binary {:.0}× fewer queries; pruned evaluates {:.0}× fewer candidates than exhaustive",
            full.stats.model_calls as f64 / fast.stats.model_calls.max(1) as f64,
            full.stats.candidates as f64 / pruned.stats.candidates.max(1) as f64,
        );
        let within_interval = fast.stats.duration.as_millis() < 1000;
        println!(
            "binary search fits the 1 s control interval: {}",
            if within_interval { "yes" } else { "NO" }
        );
        summaries.push(fast_row);
        summaries.push(full_row);
        summaries.push(pruned_row);
        summaries.push(warm_row);
    }

    println!(
        "\npredictor totals: {} queries, {} cache hits, {} cache misses",
        predictor.prediction_count(),
        predictor.cache_hits(),
        predictor.cache_misses()
    );
    let json = sturgeon::report::overhead_summary_json(&summaries);
    println!("\noverhead summary JSON:");
    println!("{json}");
    if let Some(path) = json_path {
        std::fs::write(&path, format!("{json}\n")).expect("write --json output");
        eprintln!("wrote {path}");
    }

    println!("\n=> the O(N log N) search replaces the paper's 6.4 s exhaustive sweep with a");
    println!("   millisecond-scale search, exactly the §VII-E argument; the pruned engine");
    println!("   returns the oracle's own answer while the table bounds discard most of");
    println!("   the lattice, and the memo cache answers repeat queries without models.");
}
