//! §VII-E reproduction: the overhead accounting of Sturgeon's predictor
//! and balancer.
//!
//! The paper's arithmetic on its platform (20 cores × 10 frequencies × 20
//! ways × 10 frequencies = 40 000 configurations, 4 models per check,
//! 0.04 ms per model call):
//!
//! * exhaustive search: 40 000 × 4 × 0.04 ms ≈ **6.4 s** — unusable at a
//!   1 s control interval;
//! * binary search: ≤ (16 + 11·19) model-call *rounds* ≈ **36 ms**, and at
//!   most ~120 ms end-to-end in their implementation;
//! * balancer: 3 candidate configurations ≈ **0.48 ms**.
//!
//! This binary measures the same quantities on our implementation: model
//! calls consumed and wall-clock time for the heuristic binary search,
//! the exhaustive oracle, and the latticed frontier-pruned engine — cold
//! (no parked state), warm (verbatim memo reuse in the same QPS bucket)
//! and incremental (one-bucket QPS walk, changed slices rescanned) —
//! plus the per-prediction latency. Every engine is exercised once
//! untimed before measurement so the rows report steady state rather
//! than first-call lazy-initialization (table and slab builds), and each
//! row runs a repetition loop whose p50/p95/p99 per-search latencies are
//! reported alongside the single-shot stats. Pass `--json PATH` to write
//! the row summary as JSON (the committed `BENCH_search.json` numbers
//! come from this).

use std::time::Instant;
use sturgeon::prelude::*;
use sturgeon::report::OverheadSummary;

/// Runs `search` `reps` times, returning the last outcome and the sorted
/// per-search latencies in microseconds.
fn timed_reps(reps: usize, mut search: impl FnMut() -> SearchOutcome) -> (SearchOutcome, Vec<f64>) {
    let mut durations_us: Vec<f64> = Vec::with_capacity(reps);
    let mut last = search();
    durations_us.push(last.stats.duration.as_secs_f64() * 1e6);
    for _ in 1..reps {
        last = search();
        durations_us.push(last.stats.duration.as_secs_f64() * 1e6);
    }
    durations_us.sort_by(f64::total_cmp);
    (last, durations_us)
}

fn main() {
    let json_path = {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut path = None;
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--json" => {
                    path = argv.get(i + 1).cloned();
                    i += 2;
                }
                other => {
                    eprintln!("unknown flag {other} (usage: tab_overhead [--json PATH])");
                    std::process::exit(2);
                }
            }
        }
        path
    };

    let pair = ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace);
    let setup = ExperimentSetup::new(pair, 42);
    let predictor = setup.train_default_predictor();
    println!("§VII-E — search and prediction overhead (memcached+raytrace)\n");
    println!(
        "configuration space: {} candidates (paper: 40 000)",
        setup.spec().config_space_size()
    );

    // Per-prediction latency (paper: 0.04 ms per model).
    let reps = 20_000u64;
    let started = Instant::now();
    let mut sink = 0.0;
    for i in 0..reps {
        sink += predictor.be_throughput(1 + (i % 19) as u32, 1.2 + (i % 10) as f64 * 0.1, 10);
    }
    let per_pred_us = started.elapsed().as_secs_f64() * 1e6 / reps as f64;
    println!("per-prediction latency: {per_pred_us:.2} µs (paper: 40 µs/model) [sink {sink:.1}]");

    let fracs = [0.2, 0.35, 0.5, 0.8];
    let params = SearchParams::default();
    let quantum = predictor
        .ls_slabs(setup.spec(), params.power_load_headroom)
        .quantum();

    // Warm-up: drive every engine once at every measured load so the
    // lazy one-time builds (BE tables, QPS slabs, memo-cache fills) land
    // here and not in a measured row — the old binary@20% row read 55 ms
    // of first-call initialization against ~1 ms of steady state.
    let warmup = ConfigSearch::new(&predictor, setup.spec().clone(), setup.budget_w(), params);
    for frac in fracs {
        let qps = frac * setup.peak_qps();
        let _ = warmup.best_config(qps);
        let _ = warmup.exhaustive(qps);
        let _ = warmup.pruned(qps);
        let _ = warmup.pruned(qps + quantum);
    }

    let mut summaries = Vec::new();
    for frac in fracs {
        let qps = frac * setup.peak_qps();
        let search = ConfigSearch::new(&predictor, setup.spec().clone(), setup.budget_w(), params);
        let (fast, fast_us) = timed_reps(100, || search.best_config(qps));
        let (full, full_us) = timed_reps(5, || search.exhaustive(qps));
        // Cold: no frontier cache attached, so every repetition pays the
        // full latticed sweep with neither seed nor parked slice state.
        let (pruned, pruned_us) = timed_reps(200, || search.pruned(qps));
        let latticed = search.exhaustive_latticed(qps);
        // Warm: same QPS bucket every time — after the first pass the
        // parked state answers verbatim.
        let frontiers = FrontierCache::default();
        let seeded = search.with_frontiers(&frontiers);
        let _ = seeded.pruned(qps);
        let (pruned_warm, warm_us) = timed_reps(200, || seeded.pruned(qps));
        // Incremental: alternate between adjacent QPS buckets so every
        // repetition crosses exactly one slab boundary and rescans only
        // the slices whose envelope changed.
        let mut flip = false;
        let (pruned_inc, inc_us) = timed_reps(200, || {
            flip = !flip;
            seeded.pruned(if flip { qps + quantum } else { qps })
        });
        println!("\n-- load {:.0}% of peak --", frac * 100.0);
        let fast_row =
            OverheadSummary::from_stats(format!("binary@{:.0}%", frac * 100.0), &fast.stats)
                .with_percentiles(&fast_us);
        let full_row =
            OverheadSummary::from_stats(format!("exhaustive@{:.0}%", frac * 100.0), &full.stats)
                .with_percentiles(&full_us);
        let pruned_row =
            OverheadSummary::from_stats(format!("pruned@{:.0}%", frac * 100.0), &pruned.stats)
                .with_percentiles(&pruned_us);
        let warm_row = OverheadSummary::from_stats(
            format!("pruned-warm@{:.0}%", frac * 100.0),
            &pruned_warm.stats,
        )
        .with_percentiles(&warm_us);
        let inc_row = OverheadSummary::from_stats(
            format!("pruned-incremental@{:.0}%", frac * 100.0),
            &pruned_inc.stats,
        )
        .with_percentiles(&inc_us);
        println!("{}  tput {:.3}", fast_row.row(), fast.predicted_throughput);
        println!("{}  tput {:.3}", full_row.row(), full.predicted_throughput);
        println!(
            "{}  tput {:.3}  (pruned {} cells, {} slices; envelope-oracle-equal: {})",
            pruned_row.row(),
            pruned.predicted_throughput,
            pruned.stats.pruned_candidates,
            pruned.stats.pruned_subspaces,
            pruned.best == latticed.best
        );
        println!(
            "{}  tput {:.3}  (slices reused {})",
            warm_row.row(),
            pruned_warm.predicted_throughput,
            pruned_warm.stats.incremental_slices_reused
        );
        println!(
            "{}  tput {:.3}  (slices reused {}, rescanned {})",
            inc_row.row(),
            pruned_inc.predicted_throughput,
            pruned_inc.stats.incremental_slices_reused,
            pruned_inc.stats.incremental_slices_rescanned
        );
        println!(
            "speedup: binary {:.0}× fewer queries; pruned evaluates {:.0}× fewer candidates than exhaustive",
            full.stats.model_calls as f64 / fast.stats.model_calls.max(1) as f64,
            full.stats.candidates as f64 / pruned.stats.candidates.max(1) as f64,
        );
        let within_interval = fast.stats.duration.as_millis() < 1000;
        println!(
            "binary search fits the 1 s control interval: {}",
            if within_interval { "yes" } else { "NO" }
        );
        summaries.push(fast_row);
        summaries.push(full_row);
        summaries.push(pruned_row);
        summaries.push(warm_row);
        summaries.push(inc_row);
    }

    println!(
        "\npredictor totals: {} queries, {} cache hits, {} cache misses",
        predictor.prediction_count(),
        predictor.cache_hits(),
        predictor.cache_misses()
    );
    let json = sturgeon::report::overhead_summary_json(&summaries);
    println!("\noverhead summary JSON:");
    println!("{json}");
    if let Some(path) = json_path {
        std::fs::write(&path, format!("{json}\n")).expect("write --json output");
        eprintln!("wrote {path}");
    }

    println!("\n=> the O(N log N) search replaces the paper's 6.4 s exhaustive sweep with a");
    println!("   millisecond-scale search, exactly the §VII-E argument; the latticed pruned");
    println!("   engine answers from flat slab envelopes with zero model calls in the inner");
    println!("   loop, and the incremental path rescans only the slices a one-bucket QPS");
    println!("   move actually changed.");
}
