//! §VII-E reproduction: the overhead accounting of Sturgeon's predictor
//! and balancer.
//!
//! The paper's arithmetic on its platform (20 cores × 10 frequencies × 20
//! ways × 10 frequencies = 40 000 configurations, 4 models per check,
//! 0.04 ms per model call):
//!
//! * exhaustive search: 40 000 × 4 × 0.04 ms ≈ **6.4 s** — unusable at a
//!   1 s control interval;
//! * binary search: ≤ (16 + 11·19) model-call *rounds* ≈ **36 ms**, and at
//!   most ~120 ms end-to-end in their implementation;
//! * balancer: 3 candidate configurations ≈ **0.48 ms**.
//!
//! This binary measures the same quantities on our implementation: model
//! calls consumed and wall-clock time for both search strategies plus the
//! per-prediction latency, and checks the search still fits comfortably
//! inside the 1 s interval.

use std::time::Instant;
use sturgeon::prelude::*;
use sturgeon::report::OverheadSummary;

fn main() {
    let pair = ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace);
    let setup = ExperimentSetup::new(pair, 42);
    let predictor = setup.train_default_predictor();
    println!("§VII-E — search and prediction overhead (memcached+raytrace)\n");
    println!(
        "configuration space: {} candidates (paper: 40 000)",
        setup.spec().config_space_size()
    );

    // Per-prediction latency (paper: 0.04 ms per model).
    let reps = 20_000u64;
    let started = Instant::now();
    let mut sink = 0.0;
    for i in 0..reps {
        sink += predictor.be_throughput(1 + (i % 19) as u32, 1.2 + (i % 10) as f64 * 0.1, 10);
    }
    let per_pred_us = started.elapsed().as_secs_f64() * 1e6 / reps as f64;
    println!("per-prediction latency: {per_pred_us:.2} µs (paper: 40 µs/model) [sink {sink:.1}]");

    let mut summaries = Vec::new();
    for frac in [0.2, 0.35, 0.5, 0.8] {
        let qps = frac * setup.peak_qps();
        let search = ConfigSearch::new(
            &predictor,
            setup.spec().clone(),
            setup.budget_w(),
            SearchParams::default(),
        );
        let fast = search.best_config(qps);
        let full = search.exhaustive(qps);
        println!("\n-- load {:.0}% of peak --", frac * 100.0);
        let fast_row =
            OverheadSummary::from_stats(format!("binary@{:.0}%", frac * 100.0), &fast.stats);
        let full_row =
            OverheadSummary::from_stats(format!("exhaustive@{:.0}%", frac * 100.0), &full.stats);
        println!("{}  tput {:.3}", fast_row.row(), fast.predicted_throughput);
        println!("{}  tput {:.3}", full_row.row(), full.predicted_throughput);
        println!(
            "speedup: {:.0}× fewer prediction queries, {:.0}× faster wall-clock",
            full.stats.model_calls as f64 / fast.stats.model_calls.max(1) as f64,
            full.stats.duration.as_secs_f64() / fast.stats.duration.as_secs_f64().max(1e-9)
        );
        let within_interval = fast.stats.duration.as_millis() < 1000;
        println!(
            "binary search fits the 1 s control interval: {}",
            if within_interval { "yes" } else { "NO" }
        );
        summaries.push(fast_row);
        summaries.push(full_row);
    }

    println!(
        "\npredictor totals: {} queries, {} cache hits, {} cache misses",
        predictor.prediction_count(),
        predictor.cache_hits(),
        predictor.cache_misses()
    );
    println!("\noverhead summary JSON:");
    println!("{}", sturgeon::report::overhead_summary_json(&summaries));

    println!("\n=> the O(N log N) search replaces the paper's 6.4 s exhaustive sweep with a");
    println!("   millisecond-scale search, exactly the §VII-E argument; the memo cache");
    println!("   answers repeat lattice queries without re-running any model.");
}
