//! `fleet_sim` — the fleet-scale control-plane benchmark driver.
//!
//! ```text
//! fleet_sim [--manifest scenario.toml]
//!           [--nodes 10000] [--intervals 1000] [--shards 0] [--regions 1]
//!           [--ls memcached] [--be raytrace]
//!           [--profile diurnal|triangle|constant|flash|failover]
//!           [--fraction 0.3] [--policy even|latency] [--search heuristic|pruned]
//!           [--training shared|per-node] [--sampled 0] [--seed 42]
//!           [--trace PATH.jsonl] [--json PATH.json]
//! ```
//!
//! Both entry points lower onto the same [`sturgeon::scenario`] code:
//! `--manifest` loads a TOML fleet scenario, while the ad-hoc flags
//! build the equivalent [`Scenario`] in memory — so the two paths
//! cannot drift. Runs one fleet sweep and prints the paper's
//! QoS/throughput metrics together with the control-plane accounting
//! this benchmark exists to demonstrate: wall-clock, peak RSS (from
//! `/proc/self/status`, so the streaming-aggregation memory claim is
//! checkable), and how many predictor trainings / `ModelTables` builds
//! the whole fleet paid. `--json` writes the measurements as one
//! machine-readable row — `BENCH_fleet.json` is an array of such rows;
//! CI replays the 1k-node smoke row and gates it with `stats`.
//! `--trace` streams shard 0's decision trace as JSON Lines (validated
//! by `trace_validate`).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;
use sturgeon::fleet::Fleet;
use sturgeon::prelude::*;
use sturgeon::scenario;

#[derive(Debug)]
struct Args {
    manifest: Option<PathBuf>,
    nodes: usize,
    intervals: u32,
    shards: usize,
    regions: usize,
    ls: LsServiceId,
    be: BeAppId,
    profile: String,
    fraction: f64,
    policy: String,
    search: String,
    training: String,
    sampled: usize,
    seed: u64,
    trace: Option<PathBuf>,
    json: Option<PathBuf>,
    /// Ad-hoc configuration flags the user passed explicitly (they
    /// conflict with `--manifest`, which owns the configuration).
    explicit: Vec<&'static str>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            manifest: None,
            nodes: 10_000,
            intervals: 1000,
            shards: 0,
            regions: 1,
            ls: LsServiceId::Memcached,
            be: BeAppId::Raytrace,
            profile: "diurnal".into(),
            fraction: 0.3,
            policy: "even".into(),
            search: "heuristic".into(),
            training: "shared".into(),
            sampled: 0,
            seed: 42,
            trace: None,
            json: None,
            explicit: Vec::new(),
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("missing value for {flag}"))?;
        let mut explicit = |name: &'static str| args.explicit.push(name);
        match flag {
            "--manifest" => args.manifest = Some(PathBuf::from(value)),
            "--nodes" => {
                args.nodes = value.parse().map_err(|_| format!("bad nodes {value}"))?;
                explicit("--nodes");
            }
            "--intervals" => {
                args.intervals = value
                    .parse()
                    .map_err(|_| format!("bad intervals {value}"))?;
                explicit("--intervals");
            }
            "--shards" => {
                args.shards = value.parse().map_err(|_| format!("bad shards {value}"))?;
                explicit("--shards");
            }
            "--regions" => {
                args.regions = value.parse().map_err(|_| format!("bad regions {value}"))?;
                explicit("--regions");
            }
            "--ls" => {
                args.ls = scenario::parse_ls(value).ok_or(format!("unknown LS service {value}"))?;
                explicit("--ls");
            }
            "--be" => {
                args.be = scenario::parse_be(value).ok_or(format!("unknown BE app {value}"))?;
                explicit("--be");
            }
            "--profile" => {
                args.profile = value.clone();
                explicit("--profile");
            }
            "--fraction" => {
                args.fraction = value.parse().map_err(|_| format!("bad fraction {value}"))?;
                explicit("--fraction");
            }
            "--policy" => {
                args.policy = value.clone();
                explicit("--policy");
            }
            "--search" => {
                args.search = value.clone();
                explicit("--search");
            }
            "--training" => {
                args.training = value.clone();
                explicit("--training");
            }
            "--sampled" => {
                args.sampled = value.parse().map_err(|_| format!("bad sampled {value}"))?;
                explicit("--sampled");
            }
            "--seed" => {
                args.seed = value.parse().map_err(|_| format!("bad seed {value}"))?;
                explicit("--seed");
            }
            "--trace" => args.trace = Some(PathBuf::from(value)),
            "--json" => args.json = Some(PathBuf::from(value)),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    if args.manifest.is_some() && !args.explicit.is_empty() {
        return Err(format!(
            "--manifest owns the run configuration; drop {}",
            args.explicit.join(", ")
        ));
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "usage: fleet_sim [--manifest scenario.toml] \\
                 [--nodes N] [--intervals N] [--shards N|0=auto] [--regions N] \\
                 [--ls memcached|xapian|img-dnn] [--be raytrace|...] \\
                 [--profile diurnal|triangle|constant|flash|failover] [--fraction F] \\
                 [--policy even|latency] [--search heuristic|pruned] \\
                 [--training shared|per-node] [--sampled N] [--seed N] \\
                 [--trace PATH.jsonl] [--json PATH.json]"
    );
}

/// Peak resident set size (MiB) from `/proc/self/status` (`VmHWM`);
/// `None` off Linux.
fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

/// Builds the fleet scenario the legacy ad-hoc flags describe — the
/// same profile algebra and controller composition the CLI has always
/// used, now expressed through the shared lowering code.
fn scenario_from_flags(args: &Args) -> Result<Scenario, String> {
    let strategy = scenario::parse_search_strategy(&args.search)
        .ok_or_else(|| format!("unknown search strategy {}", args.search))?;
    let training = scenario::parse_training(&args.training)
        .ok_or_else(|| format!("unknown training mode {}", args.training))?;
    let dispatch = FleetDispatch::parse(&args.policy)
        .ok_or_else(|| format!("unknown policy {}", args.policy))?;
    let region_loads =
        scenario::regional_profiles(&args.profile, args.fraction, args.intervals, args.regions)
            .ok_or_else(|| {
                format!(
                    "unknown profile {} (failover needs --regions >= 2)",
                    args.profile
                )
            })?;
    let load = region_loads[0].clone();
    let s = Scenario {
        name: "cli".into(),
        kind: ScenarioKind::Fleet,
        seed: args.seed,
        intervals: args.intervals,
        pair: ColocationPair::new(args.ls, args.be),
        controller: ControllerSpec {
            kind: scenario::ControllerKind::Sturgeon,
            strategy,
            hardened: false,
        },
        load,
        region_loads,
        faults: FaultPlan::none(args.seed),
        policy: ActuationPolicy::hardened(),
        fleet: Some(FleetSpec {
            nodes: args.nodes,
            shards: args.shards,
            regions: args.regions,
            training,
            dispatch,
            sampled_nodes: args.sampled,
        }),
        budget: None,
        placement: None,
        scoring: None,
        probe: None,
    };
    s.validate().map_err(|e| e.to_string())?;
    Ok(s)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            usage();
            return ExitCode::FAILURE;
        }
    };

    let scenario = match &args.manifest {
        Some(path) => match Scenario::load(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => match scenario_from_flags(&args) {
            Ok(s) => s,
            Err(msg) => {
                eprintln!("error: {msg}");
                usage();
                return ExitCode::FAILURE;
            }
        },
    };
    if scenario.kind != ScenarioKind::Fleet {
        eprintln!("error: node scenarios run under `sturgeon_sim --manifest`");
        return ExitCode::FAILURE;
    }
    let spec = scenario.fleet.expect("validated fleet scenario");
    let profiles = scenario.fleet_profiles();
    let profile_label = profiles[0].name().to_string();
    let mut params = match scenario.fleet_params() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    params.traced_shard = args.trace.as_ref().map(|_| 0);

    let build_start = Instant::now();
    let mut fleet = match Fleet::try_new(scenario.pair, spec.nodes, params, scenario.seed) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let build_s = build_start.elapsed().as_secs_f64();
    eprintln!(
        "fleet: {} nodes, {} shards, {} regions ({}, {} training) built in {:.2}s",
        fleet.len(),
        fleet.shard_count(),
        fleet.region_count(),
        scenario.pair.label(),
        scenario::training_name(spec.training),
        build_s
    );

    let run_start = Instant::now();
    let result = if let Some(path) = &args.trace {
        let mut sink = match JsonlSink::create(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot create trace file: {e}");
                return ExitCode::FAILURE;
            }
        };
        let r = match fleet.run_regional_traced(&profiles, scenario.intervals, &mut sink) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = sink.flush() {
            eprintln!("error: cannot flush trace file: {e}");
            return ExitCode::FAILURE;
        }
        r
    } else {
        match fleet.run_regional(&profiles, scenario.intervals) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let run_s = run_start.elapsed().as_secs_f64();
    let peak_rss = peak_rss_mib().unwrap_or(-1.0);
    let node_intervals = spec.nodes as f64 * scenario.intervals as f64;
    let policy_label = spec.dispatch.name();
    let search_label = scenario::search_strategy_name(scenario.controller.strategy);

    println!(
        "profile {}  policy {}  search {}  seed {}",
        profile_label, policy_label, search_label, scenario.seed
    );
    println!(
        "QoS guarantee rate: {:.4}   total BE throughput: {:.1} machines   mean power: {:.0} W / budget {:.0} W",
        result.qos_rate, result.total_be_throughput, result.mean_fleet_power_w, result.fleet_budget_w
    );
    println!(
        "wall: build {:.2}s + run {:.2}s   {:.2} M node-intervals/s   peak RSS {:.0} MiB",
        build_s,
        run_s,
        node_intervals / run_s / 1e6,
        peak_rss
    );
    println!(
        "artifacts: {} trainings, {} table builds, {} searches  (faults: {} stale, {} safe-mode, {} balancer retries)",
        result.trainings,
        result.table_builds,
        result.searches,
        result.fault_counters.stale_intervals,
        result.fault_counters.safe_mode_entries,
        result.fault_counters.balancer_retry_rounds
    );
    if scenario.budget.is_some() || scenario.placement.is_some() {
        println!(
            "placement: {} reclaims, {} migrations, {} evictions, {} assignments",
            result.budget_reclaims, result.migrations, result.evictions, result.assignments
        );
    }

    if let Some(path) = &args.json {
        // Budget/placement counters only appear when those subsystems
        // are configured, so rows from plain runs keep their legacy key
        // set and stay comparable against committed baselines.
        let extra = if scenario.budget.is_some() || scenario.placement.is_some() {
            format!(
                ",\n  \"budget_reclaims\": {},\n  \"migrations\": {},\n  \"evictions\": {},\n  \"assignments\": {}",
                result.budget_reclaims, result.migrations, result.evictions, result.assignments
            )
        } else {
            String::new()
        };
        let row = format!(
            "{{\n  \"nodes\": {},\n  \"intervals\": {},\n  \"shards\": {},\n  \"regions\": {},\n  \"profile\": \"{}\",\n  \"policy\": \"{}\",\n  \"search\": \"{}\",\n  \"training\": \"{}\",\n  \"seed\": {},\n  \"build_s\": {:.3},\n  \"run_s\": {:.3},\n  \"node_intervals_per_s\": {:.0},\n  \"peak_rss_mib\": {:.1},\n  \"qos_rate\": {:.6},\n  \"total_be_throughput\": {:.3},\n  \"mean_power_w\": {:.1},\n  \"budget_w\": {:.1},\n  \"trainings\": {},\n  \"table_builds\": {},\n  \"searches\": {}{extra}\n}}",
            spec.nodes,
            scenario.intervals,
            fleet.shard_count(),
            fleet.region_count(),
            profile_label,
            policy_label,
            search_label,
            scenario::training_name(spec.training),
            scenario.seed,
            build_s,
            run_s,
            node_intervals / run_s,
            peak_rss,
            result.qos_rate,
            result.total_be_throughput,
            result.mean_fleet_power_w,
            result.fleet_budget_w,
            result.trainings,
            result.table_builds,
            result.searches
        );
        if let Err(e) = std::fs::write(path, format!("{row}\n")) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}
