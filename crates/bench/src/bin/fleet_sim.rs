//! `fleet_sim` — the fleet-scale control-plane benchmark driver.
//!
//! ```text
//! fleet_sim [--nodes 10000] [--intervals 1000] [--shards 0] [--regions 1]
//!           [--ls memcached] [--be raytrace]
//!           [--profile diurnal|triangle|constant|flash|failover]
//!           [--fraction 0.3] [--policy even|latency] [--search heuristic|pruned]
//!           [--training shared|per-node] [--sampled 0] [--seed 42]
//!           [--trace PATH.jsonl] [--json PATH.json]
//! ```
//!
//! Runs one fleet sweep and prints the paper's QoS/throughput metrics
//! together with the control-plane accounting this benchmark exists to
//! demonstrate: wall-clock, peak RSS (from `/proc/self/status`, so the
//! streaming-aggregation memory claim is checkable), and how many
//! predictor trainings / `ModelTables` builds the whole fleet paid.
//! `--json` writes the measurements as one machine-readable row —
//! `BENCH_fleet.json` is an array of such rows; CI replays the 1k-node
//! smoke row and asserts against it. `--trace` streams shard 0's
//! decision trace as JSON Lines (validated by `trace_validate`).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;
use sturgeon::fleet::{Fleet, FleetParams, TrainingMode};
use sturgeon::prelude::*;
use sturgeon::search::{SearchParams, SearchStrategy};

#[derive(Debug)]
struct Args {
    nodes: usize,
    intervals: u32,
    shards: usize,
    regions: usize,
    ls: LsServiceId,
    be: BeAppId,
    profile: String,
    fraction: f64,
    policy: String,
    search: String,
    training: String,
    sampled: usize,
    seed: u64,
    trace: Option<PathBuf>,
    json: Option<PathBuf>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            nodes: 10_000,
            intervals: 1000,
            shards: 0,
            regions: 1,
            ls: LsServiceId::Memcached,
            be: BeAppId::Raytrace,
            profile: "diurnal".into(),
            fraction: 0.3,
            policy: "even".into(),
            search: "heuristic".into(),
            training: "shared".into(),
            sampled: 0,
            seed: 42,
            trace: None,
            json: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("missing value for {flag}"))?;
        match flag {
            "--nodes" => args.nodes = value.parse().map_err(|_| format!("bad nodes {value}"))?,
            "--intervals" => {
                args.intervals = value
                    .parse()
                    .map_err(|_| format!("bad intervals {value}"))?
            }
            "--shards" => args.shards = value.parse().map_err(|_| format!("bad shards {value}"))?,
            "--regions" => {
                args.regions = value.parse().map_err(|_| format!("bad regions {value}"))?
            }
            "--ls" => {
                args.ls = LsServiceId::all()
                    .into_iter()
                    .find(|id| id.name() == value)
                    .ok_or(format!("unknown LS service {value}"))?
            }
            "--be" => {
                args.be = BeAppId::all()
                    .into_iter()
                    .find(|id| id.name() == value || id.abbrev() == value)
                    .ok_or(format!("unknown BE app {value}"))?
            }
            "--profile" => args.profile = value.clone(),
            "--fraction" => {
                args.fraction = value.parse().map_err(|_| format!("bad fraction {value}"))?
            }
            "--policy" => args.policy = value.clone(),
            "--search" => args.search = value.clone(),
            "--training" => args.training = value.clone(),
            "--sampled" => {
                args.sampled = value.parse().map_err(|_| format!("bad sampled {value}"))?
            }
            "--seed" => args.seed = value.parse().map_err(|_| format!("bad seed {value}"))?,
            "--trace" => args.trace = Some(PathBuf::from(value)),
            "--json" => args.json = Some(PathBuf::from(value)),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "usage: fleet_sim [--nodes N] [--intervals N] [--shards N|0=auto] [--regions N] \\
                 [--ls memcached|xapian|img-dnn] [--be raytrace|...] \\
                 [--profile diurnal|triangle|constant|flash|failover] [--fraction F] \\
                 [--policy even|latency] [--search heuristic|pruned] \\
                 [--training shared|per-node] [--sampled N] [--seed N] \\
                 [--trace PATH.jsonl] [--json PATH.json]"
    );
}

/// Peak resident set size (MiB) from `/proc/self/status` (`VmHWM`);
/// `None` off Linux.
fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

/// The per-region load profiles for a named scenario. Every scenario is
/// built from the composable [`LoadProfile`] algebra; `failover` needs
/// at least two regions (region 0 fails, the rest absorb its traffic).
fn profiles(name: &str, fraction: f64, intervals: u32, regions: usize) -> Option<Vec<LoadProfile>> {
    let day = intervals as f64;
    let base = match name {
        "constant" => LoadProfile::Constant { fraction },
        "triangle" => LoadProfile::paper_fluctuating(day),
        "diurnal" => LoadProfile::Diurnal {
            low: 0.2,
            high: 0.8,
            day_s: day,
        },
        "flash" => LoadProfile::FlashCrowd {
            base: Box::new(LoadProfile::Diurnal {
                low: 0.2,
                high: 0.6,
                day_s: day,
            }),
            at_s: day * 0.25,
            ramp_s: day * 0.05,
            hold_s: day * 0.10,
            decay_s: day * 0.10,
            magnitude: 1.8,
        },
        "failover" => {
            if regions < 2 {
                return None;
            }
            let steady = LoadProfile::Constant { fraction: 0.4 };
            let mut out = vec![LoadProfile::Failover {
                base: Box::new(steady.clone()),
                at_s: day * 0.3,
                outage_s: day * 0.3,
                takeover: 1.0 / (regions - 1) as f64,
                role: sturgeon_workloads::loadgen::FailoverRole::Failing,
            }];
            for _ in 1..regions {
                out.push(LoadProfile::Failover {
                    base: Box::new(steady.clone()),
                    at_s: day * 0.3,
                    outage_s: day * 0.3,
                    takeover: 1.0 / (regions - 1) as f64,
                    role: sturgeon_workloads::loadgen::FailoverRole::Survivor,
                });
            }
            return Some(out);
        }
        _ => return None,
    };
    Some(vec![base; regions])
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            usage();
            return ExitCode::FAILURE;
        }
    };

    let training = match args.training.as_str() {
        "shared" => TrainingMode::Shared,
        "per-node" => TrainingMode::PerNode,
        other => {
            eprintln!("error: unknown training mode {other}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let policy = match args.policy.as_str() {
        "even" => DispatchPolicy::Even,
        "latency" => DispatchPolicy::LatencyAware,
        other => {
            eprintln!("error: unknown policy {other}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let strategy = match args.search.as_str() {
        "heuristic" => SearchStrategy::Heuristic,
        "pruned" => SearchStrategy::FrontierPruned,
        other => {
            eprintln!("error: unknown search strategy {other}");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let Some(profiles) = profiles(&args.profile, args.fraction, args.intervals, args.regions)
    else {
        eprintln!(
            "error: unknown profile {} (failover needs --regions >= 2)",
            args.profile
        );
        usage();
        return ExitCode::FAILURE;
    };

    let pair = ColocationPair::new(args.ls, args.be);
    let params = FleetParams {
        shards: args.shards,
        regions: args.regions,
        training,
        policy,
        controller: ControllerParams {
            search: SearchParams {
                strategy,
                ..SearchParams::default()
            },
            ..ControllerParams::default()
        },
        sampled_nodes: args.sampled,
        traced_shard: args.trace.as_ref().map(|_| 0),
    };

    let build_start = Instant::now();
    let mut fleet = match Fleet::try_new(pair, args.nodes, params, args.seed) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let build_s = build_start.elapsed().as_secs_f64();
    eprintln!(
        "fleet: {} nodes, {} shards, {} regions ({}+{}, {} training) built in {:.2}s",
        fleet.len(),
        fleet.shard_count(),
        fleet.region_count(),
        args.ls.name(),
        args.be.name(),
        args.training,
        build_s
    );

    let run_start = Instant::now();
    let result = if let Some(path) = &args.trace {
        let mut sink = match JsonlSink::create(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot create trace file: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Tracing only supports a single fleet-wide profile; region 0's
        // profile drives everyone (scenarios that differ per region are
        // benchmarked untraced).
        let r = fleet.run_traced(profiles[0].clone(), args.intervals, &mut sink);
        if let Err(e) = sink.flush() {
            eprintln!("error: cannot flush trace file: {e}");
            return ExitCode::FAILURE;
        }
        r
    } else {
        match fleet.run_regional(&profiles, args.intervals) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let run_s = run_start.elapsed().as_secs_f64();
    let peak_rss = peak_rss_mib().unwrap_or(-1.0);
    let node_intervals = args.nodes as f64 * args.intervals as f64;

    println!(
        "profile {}  policy {}  search {}  seed {}",
        args.profile, args.policy, args.search, args.seed
    );
    println!(
        "QoS guarantee rate: {:.4}   total BE throughput: {:.1} machines   mean power: {:.0} W / budget {:.0} W",
        result.qos_rate, result.total_be_throughput, result.mean_fleet_power_w, result.fleet_budget_w
    );
    println!(
        "wall: build {:.2}s + run {:.2}s   {:.2} M node-intervals/s   peak RSS {:.0} MiB",
        build_s,
        run_s,
        node_intervals / run_s / 1e6,
        peak_rss
    );
    println!(
        "artifacts: {} trainings, {} table builds, {} searches  (faults: {} stale, {} safe-mode, {} balancer retries)",
        result.trainings,
        result.table_builds,
        result.searches,
        result.fault_counters.stale_intervals,
        result.fault_counters.safe_mode_entries,
        result.fault_counters.balancer_retry_rounds
    );

    if let Some(path) = &args.json {
        let row = format!(
            "{{\n  \"nodes\": {},\n  \"intervals\": {},\n  \"shards\": {},\n  \"regions\": {},\n  \"profile\": \"{}\",\n  \"policy\": \"{}\",\n  \"search\": \"{}\",\n  \"training\": \"{}\",\n  \"seed\": {},\n  \"build_s\": {:.3},\n  \"run_s\": {:.3},\n  \"node_intervals_per_s\": {:.0},\n  \"peak_rss_mib\": {:.1},\n  \"qos_rate\": {:.6},\n  \"total_be_throughput\": {:.3},\n  \"mean_power_w\": {:.1},\n  \"budget_w\": {:.1},\n  \"trainings\": {},\n  \"table_builds\": {},\n  \"searches\": {}\n}}",
            args.nodes,
            args.intervals,
            fleet.shard_count(),
            fleet.region_count(),
            args.profile,
            args.policy,
            args.search,
            args.training,
            args.seed,
            build_s,
            run_s,
            node_intervals / run_s,
            peak_rss,
            result.qos_rate,
            result.total_be_throughput,
            result.mean_fleet_power_w,
            result.fleet_budget_w,
            result.trainings,
            result.table_builds,
            result.searches
        );
        if let Err(e) = std::fs::write(path, format!("{row}\n")) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}
