//! Fig. 3 reproduction: "The throughput of BE applications co-located with
//! memcached under different resource configurations at different loads."
//!
//! For every BE application and each load level (20% and 35% of memcached's
//! peak, as in the paper's figure) we enumerate *feasible* configurations
//! (ground-truth QoS met, ground-truth power within budget) and report:
//!
//! * the feasible configuration giving the BE side the **most cores**,
//! * the feasible configuration giving the BE side the **highest
//!   frequency**, and
//! * the best feasible configuration overall —
//!
//! exposing the paper's finding that neither "more cores" nor "higher
//! frequency" always wins: the preference depends on the application and
//! the load (ferret prefers cores; most others flip with load).

use rayon::prelude::*;
use sturgeon_simnode::{Allocation, NodeSpec, PairConfig, PowerModel};
use sturgeon_workloads::catalog::{be_app, ls_service, BeAppId, LsServiceId};
use sturgeon_workloads::env::CoLocationEnv;
use sturgeon_workloads::interference::InterferenceParams;

/// Enumerates feasible configurations at one load and returns
/// (most-cores candidate, max-frequency candidate, best candidate) with
/// their normalized BE throughput.
fn preference_at(env: &CoLocationEnv, qps: f64) -> Option<[(PairConfig, f64); 3]> {
    let spec = env.spec();
    let ls = env.ls();
    let budget = env.budget_w();
    let mut candidates: Vec<(PairConfig, f64)> = Vec::new();
    for c1 in 1..spec.total_cores {
        // Minimal (f1, l1) for this core count, ground truth.
        let mut found = None;
        'outer: for f1 in 0..spec.freq_level_count() {
            for l1 in 1..spec.total_llc_ways {
                if ls.meets_qos(c1, spec.freq_ghz(f1), l1, qps) {
                    found = Some((f1, l1));
                    break 'outer;
                }
            }
        }
        let Some((f1, l1)) = found else { continue };
        let c2 = spec.total_cores - c1;
        let l2 = spec.total_llc_ways - l1;
        // Highest BE frequency within the budget.
        let f2 = (0..spec.freq_level_count()).rev().find(|&f2| {
            let cfg = PairConfig::new(Allocation::new(c1, f1, l1), Allocation::new(c2, f2, l2));
            env.total_power(&cfg, qps) <= budget
        });
        let Some(f2) = f2 else { continue };
        let cfg = PairConfig::new(Allocation::new(c1, f1, l1), Allocation::new(c2, f2, l2));
        let t = env.be().normalized_throughput(c2, spec.freq_ghz(f2), l2);
        candidates.push((cfg, t));
    }
    if candidates.is_empty() {
        return None;
    }
    let most_cores = *candidates
        .iter()
        .max_by(|a, b| a.0.be.cores.cmp(&b.0.be.cores).then(a.1.total_cmp(&b.1)))?;
    let max_freq = *candidates.iter().max_by(|a, b| {
        a.0.be
            .freq_level
            .cmp(&b.0.be.freq_level)
            .then(a.1.total_cmp(&b.1))
    })?;
    let best = *candidates.iter().max_by(|a, b| a.1.total_cmp(&b.1))?;
    Some([most_cores, max_freq, best])
}

fn main() {
    let spec = NodeSpec::xeon_e5_2630_v4();
    let ls = ls_service(LsServiceId::Memcached);
    println!("Fig. 3 — BE throughput under feasible configurations (memcached co-runner)");
    println!("paper finding: preference depends on load and application; ferret prefers cores\n");

    let mut cores_pref = 0;
    let mut freq_pref = 0;
    let mut mid_pref = 0;
    for load in [0.2, 0.35] {
        let qps = load * ls.params.peak_qps;
        println!("-- load {:.0}% of peak ({qps:.0} QPS) --", load * 100.0);
        // Each BE app's feasibility sweep is independent: fan out across
        // the rayon pool, then print in catalog order.
        let apps = BeAppId::all().to_vec();
        type Preference = Option<[(PairConfig, f64); 3]>;
        let results: Vec<(BeAppId, Preference)> = apps
            .into_par_iter()
            .map(|be_id| {
                let env = CoLocationEnv::new(
                    spec.clone(),
                    PowerModel::default(),
                    ls.clone(),
                    be_app(be_id),
                    InterferenceParams::none(),
                    0,
                );
                (be_id, preference_at(&env, qps))
            })
            .collect();
        for (be_id, result) in results {
            let Some([mc, mf, best]) = result else {
                println!("{:>13}: no feasible configuration", be_id.name());
                continue;
            };
            let pref = if best.0.be.cores == mc.0.be.cores {
                cores_pref += 1;
                "CORES"
            } else if best.0.be.freq_level == mf.0.be.freq_level {
                freq_pref += 1;
                "FREQ"
            } else {
                mid_pref += 1;
                "MID"
            };
            println!(
                "{:>13}: most-cores {} t={:.3} | max-freq {} t={:.3} | best {} t={:.3} -> {}",
                be_id.name(),
                mc.0,
                mc.1,
                mf.0,
                mf.1,
                best.0,
                best.1,
                pref
            );
        }
        println!();
    }
    println!(
        "preference split over 12 (app, load) points: {cores_pref} cores / {freq_pref} freq / {mid_pref} intermediate"
    );
    println!(
        "=> both preferences occur and flip with load, reproducing the paper's Fig. 3 insight"
    );
}
