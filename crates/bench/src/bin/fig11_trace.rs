//! Fig. 11 reproduction: "The normalized throughput and resource
//! allocations of a co-location pair (memcached and raytrace) with
//! Sturgeon and PARTIES. The load of memcached increases from 20% to 50%
//! of its peak load."
//!
//! Prints the time series (BE throughput, core split, frequency levels)
//! for both controllers so the allocation-strategy difference is visible:
//! Sturgeon jumps straight to preference-aware configurations from the
//! predictor, PARTIES creeps one resource unit at a time.

use sturgeon::prelude::*;
use sturgeon_bench::{duration_from_args, parties_controller, sturgeon_controller, DEFAULT_SEED};

fn main() {
    let duration = duration_from_args();
    let pair = ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace);
    let setup = ExperimentSetup::new(pair, DEFAULT_SEED);
    let load = LoadProfile::fig11_ramp(duration as f64);
    println!(
        "Fig. 11 — memcached + raytrace, load 20% → 50% of peak over {duration}s (seed {DEFAULT_SEED})\n"
    );

    let sturgeon = setup
        .runner()
        .controller(sturgeon_controller(&setup, true))
        .load(load.clone())
        .intervals(duration)
        .go()
        .expect("sturgeon run");
    let parties = setup
        .runner()
        .controller(parties_controller(&setup))
        .load(load)
        .intervals(duration)
        .go()
        .expect("parties run");

    println!(
        "{:>5} {:>7} | {:>22} {:>7} | {:>22} {:>7}",
        "t(s)",
        "qps",
        "Sturgeon <C1,F1,L1;C2,F2,L2>",
        "BE tput",
        "PARTIES <C1,F1,L1;C2,F2,L2>",
        "BE tput"
    );
    let step = (duration as usize / 30).max(1);
    for (s_row, p_row) in sturgeon
        .log
        .samples()
        .iter()
        .zip(parties.log.samples())
        .step_by(step)
    {
        println!(
            "{:>5.0} {:>7.0} | {:>22} {:>7.3} | {:>22} {:>7.3}",
            s_row.t_s,
            s_row.qps,
            s_row.config.to_string(),
            s_row.be_throughput_norm,
            p_row.config.to_string(),
            p_row.be_throughput_norm
        );
    }

    println!(
        "\nmean BE throughput: Sturgeon {:.3} vs PARTIES {:.3} ({:+.1}%)",
        sturgeon.mean_be_throughput,
        parties.mean_be_throughput,
        (sturgeon.mean_be_throughput / parties.mean_be_throughput - 1.0) * 100.0
    );
    println!(
        "QoS guarantee rate: Sturgeon {:.2}% vs PARTIES {:.2}%",
        sturgeon.qos_rate * 100.0,
        parties.qos_rate * 100.0
    );
    println!(
        "peak power: Sturgeon {:.1} W vs PARTIES {:.1} W (budget {:.1} W)",
        sturgeon.peak_power_w, parties.peak_power_w, sturgeon.budget_w
    );
    println!("=> Sturgeon converges in one prediction step and tracks raytrace's core preference;");
    println!("   PARTIES creeps unit-by-unit and settles on a lower-throughput allocation.");
}
