//! `scenario_run` — executes scenario manifests and emits the canonical
//! metrics JSON the `stats` gate consumes.
//!
//! ```text
//! scenario_run MANIFEST.toml [MANIFEST.toml ...] [--out PATH.json]
//! ```
//!
//! Each manifest is lowered through `sturgeon::scenario` (the same code
//! path as `sturgeon_sim --manifest` / `fleet_sim --manifest`), run to
//! completion, and distilled into one metrics row: QoS rate and
//! latency percentiles, mean/peak power, BE throughput, fault and
//! safe-mode counters, optional search-latency percentiles, and
//! wall-clock. The batch is written as a pretty JSON array to stdout
//! (or `--out`), with a one-line human summary per scenario on stderr.
//! Typical loop:
//!
//! ```text
//! scenario_run scenarios/smoke_node.toml --out current.json
//! stats baselines/smoke.json current.json
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use sturgeon::prelude::*;
use sturgeon::scenario::metrics_json;

struct Args {
    manifests: Vec<PathBuf>,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut manifests = Vec::new();
    let mut out = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--out" => {
                let value = argv.get(i + 1).ok_or("missing value for --out")?;
                out = Some(PathBuf::from(value));
                i += 2;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            path => {
                manifests.push(PathBuf::from(path));
                i += 1;
            }
        }
    }
    if manifests.is_empty() {
        return Err("no manifests given".into());
    }
    Ok(Args { manifests, out })
}

fn usage() {
    eprintln!("usage: scenario_run MANIFEST.toml [MANIFEST.toml ...] [--out PATH.json]");
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            usage();
            return ExitCode::FAILURE;
        }
    };

    let mut rows = Vec::new();
    for path in &args.manifests {
        let scenario = match Scenario::load(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprintln!(
            "running `{}` ({}, {} under {}, {} intervals, seed {})...",
            scenario.name,
            scenario.kind.name(),
            scenario.pair.label(),
            scenario.controller.kind.name(),
            scenario.intervals,
            scenario.seed
        );
        let outcome = match scenario.run() {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: scenario `{}` failed: {e}", scenario.name);
                return ExitCode::FAILURE;
            }
        };
        let m = &outcome.metrics;
        eprintln!(
            "  QoS {:.2}% (p95 {:.2} ms, p99 {:.2} ms) | BE {:.3} | power {:.0}/{:.0} W | {:.2}s",
            m.qos_rate * 100.0,
            m.qos_p95_ms,
            m.qos_p99_ms,
            m.be_throughput,
            m.mean_power_w,
            m.budget_w,
            m.wall_s
        );
        rows.push(outcome.metrics);
    }

    let json = metrics_json(&rows);
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {} rows to {}", rows.len(), path.display());
        }
        None => println!("{json}"),
    }
    ExitCode::SUCCESS
}
