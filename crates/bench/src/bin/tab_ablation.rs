//! Quality-level ablations of Sturgeon's design choices (DESIGN.md):
//!
//! 1. **Conservative power margin** — peak-power-style training margin vs
//!    no margin: overload rate and throughput cost.
//! 2. **Slack band (α, β)** — tighter/looser bands vs the paper's 10/20%.
//! 3. **Preference-aware harvest** vs cores-only harvest: the balancer's
//!    target selection matters for throughput retention.
//! 4. **Model family swap** — DT-everything vs the paper's §V-C picks.

use rayon::prelude::*;
use sturgeon::balancer::BalancerParams;
use sturgeon::prelude::*;

const PAIR_SET: [(LsServiceId, BeAppId); 4] = [
    (LsServiceId::Memcached, BeAppId::Raytrace),
    (LsServiceId::Memcached, BeAppId::Ferret),
    (LsServiceId::Xapian, BeAppId::Fluidanimate),
    (LsServiceId::ImgDnn, BeAppId::Blackscholes),
];

fn run_variant(
    label: &str,
    predictor_cfg: PredictorConfig,
    controller_cfg: ControllerParams,
    duration: u32,
) {
    // The four pairs are independent end-to-end experiments (own env,
    // profiling, training, run): fan them out across the rayon pool.
    let rows: Vec<(f64, f64, f64)> = PAIR_SET
        .to_vec()
        .into_par_iter()
        .map(|(ls, be)| {
            let setup = ExperimentSetup::new(ColocationPair::new(ls, be), 42);
            let predictor = setup
                .train_predictor(Default::default(), predictor_cfg)
                .expect("training succeeds");
            let controller = SturgeonController::new(
                predictor,
                setup.spec().clone(),
                setup.budget_w(),
                setup.qos_target_ms(),
                controller_cfg,
            );
            let r = setup
                .runner()
                .controller(controller)
                .load(LoadProfile::paper_fluctuating(duration as f64))
                .intervals(duration)
                .go()
                .expect("ablation run");
            (r.qos_rate, r.mean_be_throughput, r.overload_fraction)
        })
        .collect();
    let qos: Vec<f64> = rows.iter().map(|r| r.0).collect();
    let tput: Vec<f64> = rows.iter().map(|r| r.1).collect();
    let over: Vec<f64> = rows.iter().map(|r| r.2).collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "{:<34} qos {:>6.3}  tput {:>6.3}  overload {:>6.4}",
        label,
        mean(&qos),
        mean(&tput),
        mean(&over)
    );
}

fn main() {
    let duration = sturgeon_bench::duration_from_args().min(400);
    println!("Design-choice ablations over 4 representative pairs ({duration}s runs, seed 42)\n");

    println!("-- power-margin ablation (paper: conservative peak-power training) --");
    for margin in [0.0, 0.04, 0.10] {
        run_variant(
            &format!("power_margin = {margin:.2}"),
            PredictorConfig {
                power_margin: margin,
                ..PredictorConfig::default()
            },
            ControllerParams::default(),
            duration,
        );
    }

    println!("\n-- slack-band ablation (paper default α=10%, β=20%) --");
    for (alpha, beta) in [(0.05, 0.10), (0.10, 0.20), (0.20, 0.40)] {
        run_variant(
            &format!("alpha={alpha:.2}, beta={beta:.2}"),
            PredictorConfig::default(),
            ControllerParams {
                alpha,
                beta,
                balancer: BalancerParams {
                    alpha,
                    beta,
                    ..BalancerParams::default()
                },
                ..ControllerParams::default()
            },
            duration,
        );
    }

    println!("\n-- balancer ablation (paper §VII-C) --");
    run_variant(
        "balancer enabled (Sturgeon)",
        PredictorConfig::default(),
        ControllerParams::default(),
        duration,
    );
    run_variant(
        "balancer disabled (Sturgeon-NoB)",
        PredictorConfig::default(),
        ControllerParams {
            balancer_enabled: false,
            ..ControllerParams::default()
        },
        duration,
    );

    println!("\n-- model-family ablation (paper §V-C picks vs DT-everything vs LR-everything) --");
    run_variant(
        "paper picks (DT cls + KNN reg)",
        PredictorConfig::default(),
        ControllerParams::default(),
        duration,
    );
    run_variant(
        "DT everywhere",
        PredictorConfig {
            ls_qos: ModelKind::DecisionTree,
            ls_latency: ModelKind::DecisionTree,
            ls_power: ModelKind::DecisionTree,
            be_perf: ModelKind::DecisionTree,
            be_power: ModelKind::DecisionTree,
            ..PredictorConfig::default()
        },
        ControllerParams::default(),
        duration,
    );
    run_variant(
        "LR everywhere",
        PredictorConfig {
            ls_qos: ModelKind::Lr,
            ls_latency: ModelKind::Lr,
            ls_power: ModelKind::Lr,
            be_perf: ModelKind::Lr,
            be_power: ModelKind::Lr,
            ..PredictorConfig::default()
        },
        ControllerParams::default(),
        duration,
    );
}
