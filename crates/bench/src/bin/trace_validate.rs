//! `trace_validate` — checks a decision-trace JSONL file (as written by
//! `sturgeon_sim --trace` or [`sturgeon::obs::JsonlSink`]) for structural
//! integrity.
//!
//! ```text
//! trace_validate PATH.jsonl [--min-types N]
//! ```
//!
//! Every line must be a JSON object with exactly one top-level key naming
//! a known [`sturgeon::obs::TraceEvent`] variant, that variant's required
//! fields must be present with the right JSON types, and timestamps must
//! be non-decreasing. With `--min-types N` the file must additionally
//! cover at least `N` distinct event types (CI uses this to prove a run
//! exercised the taxonomy). Exits nonzero on the first violation.

use std::collections::BTreeMap;
use std::process::ExitCode;
use sturgeon::obs::TraceEvent;

fn field_is_number(body: &serde_json::Value, field: &str) -> bool {
    body[field].as_f64().is_some()
}

/// Validates one event body against its variant's schema; returns an
/// error message naming the offending field.
fn validate_body(kind: &str, body: &serde_json::Value) -> Result<(), String> {
    if !body.is_object() {
        return Err(format!("{kind}: body is not an object"));
    }
    let numbers: &[&str] = match kind {
        "TelemetrySample" => &["t_s", "qps", "p95_ms", "power_w", "be_throughput_norm"],
        "SearchRan" => &[
            "t_s",
            "qps",
            "model_calls",
            "cache_hits",
            "cache_misses",
            "candidates",
            "predicted_throughput",
            "predicted_power_w",
        ],
        "BalancerStep" => &["t_s"],
        "SafeModeEntered" => &["t_s", "qps"],
        "SafeModeExited" => &["t_s"],
        "ActuationRetry" => &["t_s", "attempts"],
        "ConfigApplied" => &["t_s"],
        "FaultInjected" => &["t_s"],
        "SearchPruned" => &[
            "t_s",
            "evaluated",
            "pruned_candidates",
            "pruned_subspaces",
            "frontier_reuses",
        ],
        "SearchIncremental" => &["t_s", "slices_reused", "slices_rescanned"],
        "CacheSnapshot" => &["t_s", "entries", "hits", "misses"],
        other => return Err(format!("unknown event type {other}")),
    };
    for field in numbers {
        if !field_is_number(body, field) {
            return Err(format!("{kind}: missing or non-numeric field `{field}`"));
        }
    }
    let ok = match kind {
        "SearchRan" => {
            body["reason"].as_str().is_some()
                && body["fallback"].as_bool().is_some()
                && (body["chosen"].is_object() || body["chosen"].is_null())
        }
        "BalancerStep" => body["action"].is_object() && body["config"].is_object(),
        "SafeModeEntered" => body["reason"].as_str().is_some(),
        "ActuationRetry" => body["recovered"].as_bool().is_some(),
        "ConfigApplied" => {
            body["from"].is_object() && body["to"].is_object() && body["outcome"].as_str().is_some()
        }
        "FaultInjected" => body["classes"].is_array(),
        _ => true,
    };
    if !ok {
        return Err(format!("{kind}: malformed variant-specific fields"));
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut min_types = 0usize;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--min-types" => {
                let v = argv
                    .get(i + 1)
                    .ok_or_else(|| "missing value for --min-types".to_string())?;
                min_types = v.parse().map_err(|_| format!("bad --min-types {v}"))?;
                i += 2;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            p => {
                path = Some(p.to_string());
                i += 1;
            }
        }
    }
    let path =
        path.ok_or_else(|| "usage: trace_validate PATH.jsonl [--min-types N]".to_string())?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;

    let known = TraceEvent::kinds();
    let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut last_t = f64::NEG_INFINITY;
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.trim().is_empty() {
            return Err(format!("line {n}: empty line"));
        }
        let value = serde_json::from_str(line).map_err(|e| format!("line {n}: bad JSON: {e:?}"))?;
        let fields = match &value {
            serde_json::Value::Object(fields) if fields.len() == 1 => fields,
            _ => {
                return Err(format!(
                    "line {n}: expected an object with exactly one event-type key"
                ))
            }
        };
        let (kind, body) = &fields[0];
        let kind = *known
            .iter()
            .find(|k| *k == kind)
            .ok_or_else(|| format!("line {n}: unknown event type {kind}"))?;
        validate_body(kind, body).map_err(|e| format!("line {n}: {e}"))?;
        let t_s = body["t_s"].as_f64().expect("validated above");
        if t_s < last_t {
            return Err(format!(
                "line {n}: timestamp {t_s} goes backwards (previous {last_t})"
            ));
        }
        last_t = t_s;
        *counts.entry(kind).or_insert(0) += 1;
    }

    let total: u64 = counts.values().sum();
    println!("{total} events, {} distinct types:", counts.len());
    for (kind, count) in &counts {
        println!("  {kind:<16} {count}");
    }
    if counts.len() < min_types {
        return Err(format!(
            "only {} distinct event types, need at least {min_types}",
            counts.len()
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
