//! Cold-start scoring evaluation: reconstruction quality and latency of
//! the collaborative-filtering profile predictor.
//!
//! The CuttleSys-style recipe lives or dies on two numbers: how well the
//! factorization reconstructs *held-out* profile cells (including the
//! fully-masked cold app's row), and how cheap a prediction is once the
//! factors are fitted. This binary measures both against the same masked
//! matrix the `golden_cold_start` scenario trains on, and puts the
//! no-model column-statistics fallback next to the factorization so the
//! accuracy gain that justifies the subsystem is a committed, gated
//! artifact. Pass `--json PATH` to write the row summary as JSON (the
//! committed `BENCH_scoring.json` numbers come from this).

use std::time::Instant;

use serde::Value;
use sturgeon::prelude::*;
use sturgeon::scoring::{fallback_be_datasets, PROBE_CELLS};
use sturgeon_workloads::catalog::BeAppId;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num(v: f64) -> Value {
    Value::Number(v)
}

/// RMSE of `pred(col)` against the plane's truth over the cold row's
/// hidden columns — the cells admission control actually has to guess.
fn cold_row_rmse(
    matrix: &ProfileMatrix,
    metric: ScoreMetric,
    row: usize,
    hidden: &[usize],
    pred: impl Fn(usize) -> f64,
) -> f64 {
    let se: f64 = hidden
        .iter()
        .map(|&c| {
            let e = pred(c) - matrix.truth(metric, row, c);
            e * e
        })
        .sum();
    (se / hidden.len().max(1) as f64).sqrt()
}

fn main() {
    let json_path = {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut path = None;
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--json" => {
                    path = argv.get(i + 1).cloned();
                    i += 2;
                }
                other => {
                    eprintln!("unknown flag {other} (usage: scoring_eval [--json PATH])");
                    std::process::exit(2);
                }
            }
        }
        path
    };

    // The exact setup of scenarios/golden_cold_start.toml: raytrace is
    // the never-profiled app, default mask and seed.
    let params = ScoringParams {
        masked_app: Some(BeAppId::Raytrace.name().to_string()),
        ..ScoringParams::default()
    };
    let spec = NodeSpec::xeon_e5_2630_v4();
    let power = PowerModel::default();
    let matrix = ProfileMatrix::build(&spec, &power, &params).expect("matrix builds");
    let row = matrix.app_row("raytrace").expect("raytrace row");
    let cols = matrix.configs().len();
    let hidden_cols: Vec<usize> = {
        // The cold row's hidden columns are everything the probe pass
        // did not reveal; recover them from the held-out cell list.
        let hidden = matrix.hidden_cells(ScoreMetric::Throughput);
        hidden
            .iter()
            .filter(|&&(r, _, _)| r == row)
            .map(|&(_, c, _)| c)
            .collect()
    };
    println!("cold-start scoring evaluation (masked app: raytrace)\n");
    println!(
        "matrix: {} apps x {} configs, {} observed / {} hidden cells, {} probe cells",
        matrix.apps().len(),
        cols,
        matrix.cells_observed(),
        matrix.cells_hidden(),
        PROBE_CELLS
    );

    let fit_started = Instant::now();
    let cf = ColdStartPredictor::fit(matrix.clone(), &params).expect("factorization fits");
    let build_s = fit_started.elapsed().as_secs_f64();
    println!(
        "factorization fit: {build_s:.3} s (3 planes, latent dim {})",
        params.latent_dim
    );

    // Per-prediction latency over the full grid, all three planes.
    let reps = 30_000usize;
    let started = Instant::now();
    let mut sink = 0.0;
    for i in 0..reps {
        let metric = match i % 3 {
            0 => ScoreMetric::Throughput,
            1 => ScoreMetric::Ipc,
            _ => ScoreMetric::Power,
        };
        sink += cf.predict(metric, i % matrix.apps().len(), i % cols);
    }
    let per_pred_us = started.elapsed().as_secs_f64() * 1e6 / reps as f64;
    println!("per-prediction latency: {per_pred_us:.3} µs [sink {sink:.1}]\n");

    let fallback = fallback_be_datasets(&matrix, row, 4.0).expect("fallback datasets build");
    let fallback_plane = |metric: ScoreMetric| -> &[f64] {
        match metric {
            ScoreMetric::Throughput => &fallback.0.y,
            ScoreMetric::Ipc => &fallback.1.y,
            ScoreMetric::Power => &fallback.2.y,
        }
    };

    let mut rows = vec![obj(vec![
        ("label", Value::String("matrix".into())),
        ("apps", num(matrix.apps().len() as f64)),
        ("configs", num(cols as f64)),
        ("cells_observed", num(matrix.cells_observed() as f64)),
        ("cells_hidden", num(matrix.cells_hidden() as f64)),
        ("cold_start_cells", num(cols as f64)),
        ("probe_cells", num(PROBE_CELLS as f64)),
    ])];
    let mut cf_cold = [0.0f64; 3];
    let mut fb_cold = [0.0f64; 3];
    for (i, (metric, name)) in [
        (ScoreMetric::Throughput, "tput"),
        (ScoreMetric::Ipc, "ipc"),
        (ScoreMetric::Power, "power"),
    ]
    .into_iter()
    .enumerate()
    {
        let fit = cf.plane_fit(metric);
        cf_cold[i] = cold_row_rmse(&matrix, metric, row, &hidden_cols, |c| {
            cf.predict(metric, row, c)
        });
        fb_cold[i] = cold_row_rmse(&matrix, metric, row, &hidden_cols, |c| {
            fallback_plane(metric)[c]
        });
        println!(
            "{name:6} rmse: observed {:.4}  held-out {:.4}  cold row {:.4} (fallback {:.4}, {:.1}x worse)",
            fit.rmse_observed,
            fit.rmse_heldout,
            cf_cold[i],
            fb_cold[i],
            fb_cold[i] / cf_cold[i].max(1e-12),
        );
        rows.push(obj(vec![
            ("label", Value::String(format!("cf@{name}"))),
            ("rmse_observed", num(fit.rmse_observed)),
            ("rmse_heldout", num(fit.rmse_heldout)),
            ("rmse_cold_row", num(cf_cold[i])),
        ]));
        rows.push(obj(vec![
            ("label", Value::String(format!("fallback@{name}"))),
            ("rmse_cold_row", num(fb_cold[i])),
        ]));
    }
    rows.push(obj(vec![
        ("label", Value::String("gain".into())),
        ("tput_rmse_ratio", num(fb_cold[0] / cf_cold[0].max(1e-12))),
        ("power_rmse_ratio", num(fb_cold[2] / cf_cold[2].max(1e-12))),
    ]));
    rows.push(obj(vec![
        ("label", Value::String("latency".into())),
        ("build_s", num(build_s)),
        ("per_pred_us", num(per_pred_us)),
    ]));

    if cf_cold[0] >= fb_cold[0] {
        eprintln!(
            "FAIL: factorization cold-row throughput RMSE {:.4} does not beat the fallback's {:.4}",
            cf_cold[0], fb_cold[0]
        );
        std::process::exit(1);
    }
    println!(
        "\n=> the factorization reconstructs the never-profiled app's row {:.1}x more",
        fb_cold[0] / cf_cold[0].max(1e-12)
    );
    println!("   accurately than the app-agnostic column prior, from {PROBE_CELLS} probe cells.");

    let json = serde_json::to_string_pretty(&Value::Array(rows)).expect("rows serialize");
    println!("\nscoring summary JSON:\n{json}");
    if let Some(path) = json_path {
        std::fs::write(&path, format!("{json}\n")).expect("write --json output");
        eprintln!("wrote {path}");
    }
}
