//! # sturgeon-bench
//!
//! The benchmark/report harness that regenerates every table and figure of
//! the Sturgeon paper's evaluation. Each `src/bin/figN_*.rs` binary prints
//! the rows/series of one paper artifact; the Criterion benches under
//! `benches/` cover the §VII-E overhead numbers and design-choice
//! ablations.
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig2_power_overload`  | Fig. 2 — power at co-location vs budget |
//! | `fig3_feasible_configs`| Fig. 3 — BE throughput under feasible configs |
//! | `fig6_perf_model_accuracy` | Fig. 6 — R² of performance models |
//! | `fig7_power_model_accuracy`| Fig. 7 — R² of power models |
//! | `fig9_qos_guarantee`   | Fig. 9 — QoS guarantee rate, 18 pairs |
//! | `fig10_be_throughput`  | Fig. 10 — normalized BE throughput, 18 pairs |
//! | `fig11_trace`          | Fig. 11 — memcached+raytrace time series |
//! | `tab_overhead`         | §VII-E — search/balancer overhead accounting |
//! | `tab_ablation`         | DESIGN.md ablations (quality-level) |
//! | `tab_robustness`       | DESIGN.md fault model — QoS/overload per fault class |
//!
//! Every binary accepts an optional first argument overriding the run
//! duration in seconds (default 600) and prints the seed it used, so all
//! numbers are bit-for-bit reproducible.

use sturgeon::baselines::{PartiesController, PartiesParams};
use sturgeon::prelude::*;

/// Default experiment duration (matches the probe runs in EXPERIMENTS.md).
pub const DEFAULT_DURATION_S: u32 = 600;
/// Default RNG seed used by every report binary.
pub const DEFAULT_SEED: u64 = 42;

/// Reads the run duration from the first CLI argument (seconds).
pub fn duration_from_args() -> u32 {
    std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(DEFAULT_DURATION_S)
}

/// Reads the RNG seed from the second CLI argument.
pub fn seed_from_args() -> u64 {
    std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// Results of one pair under the three evaluated systems.
pub struct PairEval {
    /// The co-location pair.
    pub pair: ColocationPair,
    /// Sturgeon (full system).
    pub sturgeon: RunResult,
    /// Enhanced PARTIES baseline.
    pub parties: RunResult,
    /// Sturgeon with the balancer disabled (§VII-C ablation).
    pub nob: RunResult,
}

/// Builds a Sturgeon controller for a setup (offline profiling + training
/// included).
pub fn sturgeon_controller(setup: &ExperimentSetup, balancer: bool) -> SturgeonController {
    let predictor = setup.train_default_predictor();
    SturgeonController::new(
        predictor,
        setup.spec().clone(),
        setup.budget_w(),
        setup.qos_target_ms(),
        ControllerParams {
            balancer_enabled: balancer,
            ..ControllerParams::default()
        },
    )
}

/// Builds a Sturgeon controller with the robustness layer (stale-telemetry
/// detection + safe-mode fallback) enabled or disabled — the two arms of
/// the `tab_robustness` comparison.
pub fn robust_sturgeon_controller(setup: &ExperimentSetup, hardened: bool) -> SturgeonController {
    let predictor = setup.train_default_predictor();
    SturgeonController::new(
        predictor,
        setup.spec().clone(),
        setup.budget_w(),
        setup.qos_target_ms(),
        if hardened {
            ControllerParams::hardened()
        } else {
            ControllerParams::default()
        },
    )
}

/// Builds the enhanced-PARTIES controller for a setup.
pub fn parties_controller(setup: &ExperimentSetup) -> PartiesController {
    PartiesController::new(
        setup.spec().clone(),
        setup.budget_w(),
        setup.qos_target_ms(),
        PartiesParams::default(),
    )
}

/// Runs one pair under Sturgeon, PARTIES and Sturgeon-NoB with the paper's
/// fluctuating load (20% → 80% → 20% of peak).
pub fn evaluate_pair(pair: ColocationPair, seed: u64, duration_s: u32) -> PairEval {
    let setup = ExperimentSetup::new(pair, seed);
    let load = LoadProfile::paper_fluctuating(duration_s as f64);
    let sturgeon = setup
        .runner()
        .controller(sturgeon_controller(&setup, true))
        .load(load.clone())
        .intervals(duration_s)
        .go()
        .expect("sturgeon run");
    let nob = setup
        .runner()
        .controller(sturgeon_controller(&setup, false))
        .load(load.clone())
        .intervals(duration_s)
        .go()
        .expect("sturgeon-nob run");
    let parties = setup
        .runner()
        .controller(parties_controller(&setup))
        .load(load)
        .intervals(duration_s)
        .go()
        .expect("parties run");
    PairEval {
        pair,
        sturgeon,
        parties,
        nob,
    }
}

/// Runs the full 18-pair evaluation (the Figs. 9/10 sweep).
pub fn evaluate_all(seed: u64, duration_s: u32) -> Vec<PairEval> {
    ColocationPair::all()
        .map(|pair| evaluate_pair(pair, seed, duration_s))
        .collect()
}

/// Mean of a slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Short `ls+be` label using the paper's abbreviations (e.g. `mc+bs`).
pub fn short_label(pair: &ColocationPair) -> String {
    let ls = match pair.ls {
        LsServiceId::Memcached => "memcached",
        LsServiceId::Xapian => "xapian",
        LsServiceId::ImgDnn => "img-dnn",
    };
    format!("{}+{}", ls, pair.be.abbrev())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_pair_produces_all_three_systems() {
        let pair = ColocationPair::new(LsServiceId::Memcached, BeAppId::Swaptions);
        let eval = evaluate_pair(pair, 1, 60);
        assert_eq!(eval.sturgeon.controller, "Sturgeon");
        assert_eq!(eval.parties.controller, "PARTIES");
        assert_eq!(eval.nob.controller, "Sturgeon-NoB");
        assert_eq!(eval.sturgeon.log.len(), 60);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn short_labels_use_abbreviations() {
        let pair = ColocationPair::new(LsServiceId::Xapian, BeAppId::Fluidanimate);
        assert_eq!(short_label(&pair), "xapian+fd");
    }
}
