//! Criterion bench: offline training cost of each model family on a real
//! profiling dataset (the paper's Fig. 6/7 candidates). Training runs
//! offline in a dedicated cluster, so this is not on the control path —
//! the bench documents that even the slowest family retrains in well under
//! a control interval.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sturgeon::predictor::{make_classifier, make_regressor};
use sturgeon::prelude::*;
use sturgeon::profiler::ProfilerConfig;

fn bench_training(c: &mut Criterion) {
    let pair = ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace);
    let setup = ExperimentSetup::new(pair, 42);
    let datasets = setup
        .profile(ProfilerConfig {
            ls_samples_per_load: 80,
            ls_load_fractions: vec![0.2, 0.4, 0.6, 0.8],
            be_samples: 400,
            seed: 7,
        })
        .expect("profiling succeeds");

    let mut group = c.benchmark_group("train");
    group.sample_size(10);
    for kind in ModelKind::all() {
        group.bench_function(format!("classifier_{}", kind.name()), |b| {
            b.iter(|| {
                let mut m = make_classifier(kind);
                m.fit(black_box(&datasets.ls_qos)).expect("fit succeeds");
                black_box(m.predict_score(&[12_000.0, 8.0, 1.8, 10.0]))
            })
        });
        group.bench_function(format!("regressor_{}", kind.name()), |b| {
            b.iter(|| {
                let mut m = make_regressor(kind);
                m.fit(black_box(&datasets.be_power)).expect("fit succeeds");
                black_box(m.predict(&[5.0, 8.0, 1.8, 10.0]))
            })
        });
    }
    group.finish();

    // End-to-end offline phase: profiling + training all five models.
    let mut group = c.benchmark_group("offline_phase");
    group.sample_size(10);
    group.bench_function("profile_and_train_default", |b| {
        b.iter(|| {
            black_box(
                setup
                    .train_predictor(
                        ProfilerConfig {
                            ls_samples_per_load: 60,
                            ls_load_fractions: vec![0.2, 0.5, 0.8],
                            be_samples: 200,
                            seed: 9,
                        },
                        PredictorConfig::default(),
                    )
                    .expect("training succeeds"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
