//! Criterion bench: runtime ablations of the search design choices called
//! out in DESIGN.md — the cost of the monotone-consistency probes, of the
//! power-drift headroom, and of the balancer's three-way candidate
//! evaluation (paper: 3 × 4 × 0.04 ms ≈ 0.48 ms per invocation).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sturgeon::balancer::{BalancerParams, ResourceBalancer};
use sturgeon::prelude::*;
use sturgeon_workloads::env::Observation;

fn bench_ablation(c: &mut Criterion) {
    let pair = ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace);
    let setup = ExperimentSetup::new(pair, 42);
    let predictor = setup.train_default_predictor();
    let spec = setup.spec().clone();
    let budget = setup.budget_w();
    let peak = setup.peak_qps();

    // Search-parameter ablation: how much latency do the safety features
    // (drift headroom) add to the per-interval search?
    let mut group = c.benchmark_group("search_params");
    for (label, params) in [
        ("default", SearchParams::default()),
        (
            "no_drift_headroom",
            SearchParams {
                power_load_headroom: 0.0,
                ..SearchParams::default()
            },
        ),
        (
            "wide_be_reserve",
            SearchParams {
                min_be_cores: 4,
                min_be_ways: 4,
                ..SearchParams::default()
            },
        ),
    ] {
        group.bench_function(label, |b| {
            let search = ConfigSearch::new(&predictor, spec.clone(), budget, params);
            b.iter(|| black_box(search.best_config(black_box(0.35 * peak))))
        });
    }
    group.finish();

    // Balancer invocation cost (paper: ≈0.48 ms for the 3-candidate
    // evaluation).
    let mut group = c.benchmark_group("balancer");
    group.bench_function("adjust_violation", |b| {
        let current = PairConfig::new(Allocation::new(6, 5, 8), Allocation::new(14, 8, 12));
        let obs = Observation {
            t_s: 1.0,
            qps: 0.25 * peak,
            p95_ms: 11.5,
            in_target_fraction: 0.9,
            ls_utilization: 0.9,
            power_w: budget - 5.0,
            be_throughput_norm: 0.5,
            be_ipc: 0.5,
            interference: 1.1,
        };
        b.iter(|| {
            let mut balancer = ResourceBalancer::new(BalancerParams::default());
            black_box(balancer.adjust(&predictor, &spec, budget, &obs, 10.0, current))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
