//! Criterion bench: per-prediction latency of the trained models. The
//! paper measures 0.04 ms (40 µs) per model call on its platform and the
//! whole §VII-E overhead argument rests on it; this bench verifies our
//! models predict in comparable (or better) time.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sturgeon::predictor::{make_classifier, make_regressor};
use sturgeon::prelude::*;
use sturgeon::profiler::ProfilerConfig;
use sturgeon_mlkit::{GbrtRegressor, Regressor};

fn bench_prediction(c: &mut Criterion) {
    let pair = ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace);
    let setup = ExperimentSetup::new(pair, 42);
    let datasets = setup
        .profile(ProfilerConfig::default())
        .expect("profiling succeeds");

    let mut group = c.benchmark_group("predict");
    // Individual families on full-size training sets.
    for kind in ModelKind::all() {
        let mut clf = make_classifier(kind);
        clf.fit(&datasets.ls_qos).expect("fit succeeds");
        group.bench_function(format!("classifier_{}", kind.name()), |b| {
            b.iter(|| black_box(clf.predict_score(black_box(&[12_000.0, 8.0, 1.8, 10.0]))))
        });
        let mut reg = make_regressor(kind);
        reg.fit(&datasets.be_throughput).expect("fit succeeds");
        group.bench_function(format!("regressor_{}", kind.name()), |b| {
            b.iter(|| black_box(reg.predict(black_box(&[5.0, 8.0, 1.8, 10.0]))))
        });
    }
    // Extension family: gradient-boosted trees (O(depth) prediction).
    let mut gbrt = GbrtRegressor::default();
    gbrt.fit(&datasets.be_throughput).expect("fit succeeds");
    group.bench_function("regressor_GBRT", |b| {
        b.iter(|| black_box(gbrt.predict(black_box(&[5.0, 8.0, 1.8, 10.0]))))
    });
    group.finish();

    // The composed predictor operations the search actually issues — with
    // the memo cache on (steady-state repeat queries) and off (every call
    // runs the models), quantifying what a cache hit saves.
    let predictor = setup.train_default_predictor();
    let spec = setup.spec().clone();
    let mut group = c.benchmark_group("predictor_ops");
    let cfg = PairConfig::new(Allocation::new(6, 5, 8), Allocation::new(14, 8, 12));
    group.bench_function("ls_feasible_cached", |b| {
        b.iter(|| black_box(predictor.ls_feasible(8, 1.8, 10, black_box(12_000.0))))
    });
    group.bench_function("be_throughput_cached", |b| {
        b.iter(|| black_box(predictor.be_throughput(12, 2.0, 12)))
    });
    group.bench_function("total_power_cached", |b| {
        b.iter(|| black_box(predictor.total_power_w(&cfg, &spec, black_box(12_000.0))))
    });
    predictor.set_caching(false);
    group.bench_function("ls_feasible_uncached", |b| {
        b.iter(|| black_box(predictor.ls_feasible(8, 1.8, 10, black_box(12_000.0))))
    });
    group.bench_function("be_throughput_uncached", |b| {
        b.iter(|| black_box(predictor.be_throughput(12, 2.0, 12)))
    });
    group.bench_function("total_power_uncached", |b| {
        b.iter(|| black_box(predictor.total_power_w(&cfg, &spec, black_box(12_000.0))))
    });
    predictor.set_caching(true);
    group.finish();
}

criterion_group!(benches, bench_prediction);
criterion_main!(benches);
