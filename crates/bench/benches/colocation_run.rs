//! Criterion bench: end-to-end co-location simulation throughput — the
//! cost of one simulated control interval (environment step + controller
//! decision) and of a full 120 s run, for Sturgeon and PARTIES. This is
//! the harness behind Figs. 9–11; its speed determines how much paper
//! surface a CI run can re-verify.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sturgeon::prelude::*;
use sturgeon_bench::{parties_controller, sturgeon_controller};

fn bench_runs(c: &mut Criterion) {
    let pair = ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace);
    let setup = ExperimentSetup::new(pair, 42);
    let load = LoadProfile::paper_fluctuating(120.0);

    let mut group = c.benchmark_group("colocation_run");
    group.sample_size(10);
    group.bench_function("sturgeon_120s", |b| {
        b.iter(|| {
            let controller = sturgeon_controller(&setup, true);
            black_box(
                setup
                    .runner()
                    .controller(controller)
                    .load(load.clone())
                    .intervals(120)
                    .go()
                    .unwrap(),
            )
        })
    });
    group.bench_function("parties_120s", |b| {
        b.iter(|| {
            let controller = parties_controller(&setup);
            black_box(
                setup
                    .runner()
                    .controller(controller)
                    .load(load.clone())
                    .intervals(120)
                    .go()
                    .unwrap(),
            )
        })
    });
    // Tracing overhead: the same Sturgeon run with every decision-trace
    // event recorded into an in-memory ring (DESIGN.md's overhead number).
    group.bench_function("sturgeon_120s_traced", |b| {
        b.iter(|| {
            let controller = sturgeon_controller(&setup, true);
            let mut sink = RingSink::new(4096);
            black_box(
                setup
                    .runner()
                    .controller(controller)
                    .load(load.clone())
                    .intervals(120)
                    .trace(&mut sink)
                    .go()
                    .unwrap(),
            )
        })
    });
    group.finish();

    // One environment step in isolation (the simulator's unit of work).
    let mut group = c.benchmark_group("env_step");
    group.bench_function("step", |b| {
        let mut env = setup.env().clone();
        let cfg = PairConfig::new(Allocation::new(6, 5, 8), Allocation::new(14, 8, 12));
        b.iter(|| black_box(env.step(&cfg, black_box(15_000.0))))
    });
    group.finish();
}

criterion_group!(benches, bench_runs);
criterion_main!(benches);
