//! Criterion bench backing the §VII-E overhead table: wall-clock time of
//! the O(N log N) binary configuration search vs the O(N⁴) exhaustive
//! sweep, at low and high LS load.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sturgeon::prelude::*;

fn bench_search(c: &mut Criterion) {
    let pair = ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace);
    let setup = ExperimentSetup::new(pair, 42);
    let predictor = setup.train_default_predictor();
    let spec = setup.spec().clone();
    let budget = setup.budget_w();
    let peak = setup.peak_qps();

    let mut group = c.benchmark_group("search");
    for frac in [0.2, 0.5, 0.8] {
        let qps = frac * peak;
        group.bench_function(format!("binary_{:.0}pct", frac * 100.0), |b| {
            let search =
                ConfigSearch::new(&predictor, spec.clone(), budget, SearchParams::default());
            b.iter(|| black_box(search.best_config(black_box(qps))))
        });
    }
    // The exhaustive sweep is orders of magnitude slower; keep one load and
    // a reduced sample count so the bench suite stays tractable.
    group.sample_size(10);
    group.bench_function("exhaustive_20pct", |b| {
        let search = ConfigSearch::new(&predictor, spec.clone(), budget, SearchParams::default());
        b.iter(|| black_box(search.exhaustive(black_box(0.2 * peak))))
    });
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
