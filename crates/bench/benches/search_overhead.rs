//! Criterion bench backing the §VII-E overhead table: wall-clock time of
//! the O(N log N) binary configuration search, the O(N⁴) exhaustive
//! sweep, and the frontier-pruned engine (exhaustive-equivalent results)
//! at low and high LS load — each in cached and uncached flavours (the
//! prediction memo cache), with warm-start / frontier-reuse variants, and
//! for the exhaustive oracle serial vs parallel (the rayon C1 fan-out).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sturgeon::prelude::*;

fn bench_search(c: &mut Criterion) {
    let pair = ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace);
    let setup = ExperimentSetup::new(pair, 42);
    let predictor = setup.train_default_predictor();
    let spec = setup.spec().clone();
    let budget = setup.budget_w();
    let peak = setup.peak_qps();

    let mut group = c.benchmark_group("search");
    for frac in [0.2, 0.5, 0.8] {
        let qps = frac * peak;
        group.bench_function(format!("binary_{:.0}pct", frac * 100.0), |b| {
            let search =
                ConfigSearch::new(&predictor, spec.clone(), budget, SearchParams::default());
            b.iter(|| black_box(search.best_config(black_box(qps))))
        });
    }
    // Memo-cache ablation on the fast path: same search with the
    // prediction cache disabled (every query runs the models).
    group.bench_function("binary_50pct_uncached", |b| {
        let search = ConfigSearch::new(&predictor, spec.clone(), budget, SearchParams::default());
        predictor.set_caching(false);
        b.iter(|| black_box(search.best_config(black_box(0.5 * peak))));
        predictor.set_caching(true);
    });
    // Warm start: the previous interval's config seeds a narrow C1 window.
    group.bench_function("binary_50pct_warm", |b| {
        let search = ConfigSearch::new(&predictor, spec.clone(), budget, SearchParams::default());
        let prev_qps = 0.48 * peak;
        let prev = search.best_config(prev_qps).best.expect("feasible");
        b.iter(|| {
            black_box(search.best_config_warm(black_box(0.5 * peak), Some((&prev, prev_qps))))
        })
    });
    // The frontier-pruned engine: exhaustive-equivalent answers from the
    // table-driven branch-and-bound sweep.
    for frac in [0.2, 0.5] {
        let qps = frac * peak;
        group.bench_function(format!("pruned_{:.0}pct", frac * 100.0), |b| {
            let search =
                ConfigSearch::new(&predictor, spec.clone(), budget, SearchParams::default());
            b.iter(|| black_box(search.pruned(black_box(qps))))
        });
    }
    group.bench_function("pruned_50pct_uncached", |b| {
        let search = ConfigSearch::new(&predictor, spec.clone(), budget, SearchParams::default());
        predictor.set_caching(false);
        b.iter(|| black_box(search.pruned(black_box(0.5 * peak))));
        predictor.set_caching(true);
    });
    // Steady state: the frontier cache supplies the incumbent, so the
    // bisection warm-up disappears and only the pruned sweep remains.
    group.bench_function("pruned_50pct_frontier_warm", |b| {
        let frontiers = FrontierCache::default();
        let search = ConfigSearch::new(&predictor, spec.clone(), budget, SearchParams::default())
            .with_frontiers(&frontiers);
        let _ = search.pruned(0.5 * peak);
        b.iter(|| black_box(search.pruned(black_box(0.5 * peak))))
    });
    // The exhaustive sweep is orders of magnitude slower; keep one load and
    // a reduced sample count so the bench suite stays tractable.
    group.sample_size(10);
    group.bench_function("exhaustive_20pct", |b| {
        let search = ConfigSearch::new(&predictor, spec.clone(), budget, SearchParams::default());
        b.iter(|| black_box(search.exhaustive(black_box(0.2 * peak))))
    });
    // The pre-optimization baseline: single-threaded sweep, no memo cache.
    group.bench_function("exhaustive_20pct_serial_uncached", |b| {
        let search = ConfigSearch::new(&predictor, spec.clone(), budget, SearchParams::default());
        predictor.set_caching(false);
        b.iter(|| black_box(search.exhaustive_serial(black_box(0.2 * peak))));
        predictor.set_caching(true);
    });
    // Isolate the two layers: parallel-only (cache off) and cached-only
    // (serial) exhaustive sweeps.
    group.bench_function("exhaustive_20pct_parallel_uncached", |b| {
        let search = ConfigSearch::new(&predictor, spec.clone(), budget, SearchParams::default());
        predictor.set_caching(false);
        b.iter(|| black_box(search.exhaustive(black_box(0.2 * peak))));
        predictor.set_caching(true);
    });
    group.bench_function("exhaustive_20pct_serial_cached", |b| {
        let search = ConfigSearch::new(&predictor, spec.clone(), budget, SearchParams::default());
        b.iter(|| black_box(search.exhaustive_serial(black_box(0.2 * peak))))
    });
    group.finish();

    // Per-node control sweep: the searches a 16-node fleet issues in one
    // control interval (16 nearby loads), cached vs uncached — the case
    // the shared memo cache is built for.
    let mut group = c.benchmark_group("node_sweep");
    group.sample_size(10);
    let loads: Vec<f64> = (0..16).map(|i| (0.30 + 0.01 * i as f64) * peak).collect();
    group.bench_function("sweep16_cached", |b| {
        let search = ConfigSearch::new(&predictor, spec.clone(), budget, SearchParams::default());
        b.iter(|| {
            for &q in &loads {
                black_box(search.best_config(black_box(q)));
            }
        })
    });
    group.bench_function("sweep16_uncached", |b| {
        let search = ConfigSearch::new(&predictor, spec.clone(), budget, SearchParams::default());
        predictor.set_caching(false);
        b.iter(|| {
            for &q in &loads {
                black_box(search.best_config(black_box(q)));
            }
        });
        predictor.set_caching(true);
    });
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
