//! Hardware topology of the simulated node (paper Table II).

use serde::{Deserialize, Serialize};

/// Static description of a node's partitionable resources.
///
/// The paper's experiments use one socket of a Xeon E5-2630 v4 with
/// hyper-threading enabled: 20 logical cores, 10 frequency steps from
/// 1.2 GHz to 2.2 GHz, and a 25 MB last-level cache with 20 ways.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Logical cores available for partitioning.
    pub total_cores: u32,
    /// Discrete DVFS operating points in GHz, ascending.
    pub freq_levels_ghz: Vec<f64>,
    /// LLC ways available for CAT partitioning.
    pub total_llc_ways: u32,
    /// Total LLC capacity in MiB (25 MB on the paper's machine).
    pub llc_mb: f64,
}

impl NodeSpec {
    /// The paper's evaluation platform (Table II), one socket,
    /// hyper-threading on: 20 logical cores, 1.2–2.2 GHz in 10 steps,
    /// 20 LLC ways.
    pub fn xeon_e5_2630_v4() -> Self {
        // 10 levels spanning 1.2–2.2 GHz inclusive (paper: "20 cores,
        // 10-level frequencies and 20 LLC ways").
        let freq_levels_ghz: Vec<f64> = (0..10)
            .map(|i| 1.2 + 0.1111111111111111 * i as f64)
            .collect();
        Self {
            total_cores: 20,
            freq_levels_ghz,
            total_llc_ways: 20,
            llc_mb: 25.0,
        }
    }

    /// Number of DVFS levels.
    pub fn freq_level_count(&self) -> usize {
        self.freq_levels_ghz.len()
    }

    /// Frequency in GHz of a level, clamped to the valid range.
    pub fn freq_ghz(&self, level: usize) -> f64 {
        let idx = level.min(self.freq_levels_ghz.len() - 1);
        self.freq_levels_ghz[idx]
    }

    /// Maximum frequency (GHz).
    pub fn max_freq_ghz(&self) -> f64 {
        *self
            .freq_levels_ghz
            .last()
            .expect("spec has at least one frequency level")
    }

    /// Minimum frequency (GHz).
    pub fn min_freq_ghz(&self) -> f64 {
        self.freq_levels_ghz[0]
    }

    /// Index of the highest DVFS level.
    pub fn max_freq_level(&self) -> usize {
        self.freq_levels_ghz.len() - 1
    }

    /// Size of the exhaustive `<C1,F1,L1,F2>` search space the paper
    /// quotes (§V-B): cores × freqs × ways × freqs = 40 000 on this spec.
    /// (C2 and L2 are determined by subtraction.)
    pub fn config_space_size(&self) -> usize {
        self.total_cores as usize
            * self.freq_level_count()
            * self.total_llc_ways as usize
            * self.freq_level_count()
    }

    /// Validates internal consistency (non-empty, ascending frequencies,
    /// non-zero resources).
    pub fn validate(&self) -> Result<(), String> {
        if self.total_cores == 0 || self.total_llc_ways == 0 {
            return Err("node must have at least one core and one LLC way".into());
        }
        if self.freq_levels_ghz.is_empty() {
            return Err("node must have at least one frequency level".into());
        }
        if self.freq_levels_ghz.iter().any(|f| *f <= 0.0) {
            return Err("frequencies must be positive".into());
        }
        if self.freq_levels_ghz.windows(2).any(|w| w[1] <= w[0]) {
            return Err("frequency levels must be strictly ascending".into());
        }
        Ok(())
    }
}

impl Default for NodeSpec {
    fn default() -> Self {
        Self::xeon_e5_2630_v4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_platform_matches_table_ii() {
        let s = NodeSpec::xeon_e5_2630_v4();
        assert_eq!(s.total_cores, 20);
        assert_eq!(s.total_llc_ways, 20);
        assert_eq!(s.freq_level_count(), 10);
        assert!((s.min_freq_ghz() - 1.2).abs() < 1e-9);
        assert!((s.max_freq_ghz() - 2.2).abs() < 1e-9);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn search_space_is_40000_as_in_section_v_b() {
        assert_eq!(NodeSpec::xeon_e5_2630_v4().config_space_size(), 40_000);
    }

    #[test]
    fn freq_lookup_clamps() {
        let s = NodeSpec::xeon_e5_2630_v4();
        assert_eq!(s.freq_ghz(999), s.max_freq_ghz());
        assert_eq!(s.freq_ghz(0), s.min_freq_ghz());
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut s = NodeSpec::xeon_e5_2630_v4();
        s.total_cores = 0;
        assert!(s.validate().is_err());

        let mut s = NodeSpec::xeon_e5_2630_v4();
        s.freq_levels_ghz = vec![2.0, 1.0];
        assert!(s.validate().is_err());

        let mut s = NodeSpec::xeon_e5_2630_v4();
        s.freq_levels_ghz.clear();
        assert!(s.validate().is_err());
    }

    #[test]
    fn frequency_levels_ascending() {
        let s = NodeSpec::xeon_e5_2630_v4();
        for w in s.freq_levels_ghz.windows(2) {
            assert!(w[1] > w[0]);
        }
    }
}
