//! Deterministic fault injection for the simulated node.
//!
//! The control loop's offline models already mispredict under
//! "unpredictable interference" (paper §V-C); a production deployment
//! additionally faces *infrastructure* faults the paper's testbed never
//! shows: RAPL readings that glitch or freeze, cpuset/resctrl writes that
//! fail or apply partially, load spikes and power-budget cuts arriving
//! mid-interval. This module injects exactly those fault classes into a
//! run, reproducibly: a [`FaultPlan`] is a pure function of its `u64`
//! seed, so the same plan always yields the bit-identical fault sequence
//! and therefore the bit-identical experiment report.
//!
//! Fault classes (one [`IntervalFault`] drawn per monitoring interval):
//!
//! * **Telemetry noise** — multiplicative perturbation of the measured
//!   p95 latency and package power (sensor glitch).
//! * **Telemetry dropout** — the sample stream freezes and the previous
//!   interval's values are repeated verbatim (collector died, RAPL MSR
//!   stuck).
//! * **Actuation faults** — a configuration write fails for the whole
//!   interval and *latches* the interface wedged
//!   ([`ActuationFault::Stuck`]), fails transiently so a retry succeeds
//!   ([`ActuationFault::Transient`]), or applies only the core split
//!   while ways/frequency silently keep their old values
//!   ([`ActuationFault::Partial`]). A wedged interface keeps failing in
//!   later intervals until a caller that checks errors issues an explicit
//!   retry — fire-and-forget controllers never recover it, which is the
//!   cost the robustness experiments measure.
//! * **Load/power shocks** — the offered QPS is multiplied by a spike
//!   factor, or the node's effective power budget is cut for the
//!   interval (cluster-level power capping).

use crate::actuator::SimActuators;
use crate::alloc::{ConfigError, PairConfig};
use crate::spec::NodeSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Per-interval fault probabilities and magnitudes, plus the seed that
/// makes the drawn sequence reproducible. All rates are per-interval
/// probabilities in `[0, 1]`; a plan with every rate zero injects nothing
/// and leaves a run bit-identical to a fault-free one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultPlan {
    /// Seed of the fault stream (independent of the environment's seed).
    pub seed: u64,
    /// Probability of multiplicative telemetry noise in an interval.
    pub telemetry_noise_rate: f64,
    /// Maximum relative perturbation of p95/power when noise fires
    /// (`0.3` means each reading is scaled by a factor in `[0.7, 1.3]`).
    pub telemetry_noise_frac: f64,
    /// Probability that the interval's sample is a stale repeat.
    pub telemetry_dropout_rate: f64,
    /// Probability that every actuation in the interval fails.
    pub actuation_stuck_rate: f64,
    /// Probability that the first actuation attempt fails but a retry
    /// within the same interval succeeds.
    pub actuation_transient_rate: f64,
    /// Probability that an actuation applies only the core split.
    pub actuation_partial_rate: f64,
    /// Probability of a QPS spike in an interval.
    pub qps_spike_rate: f64,
    /// Load multiplier applied when a spike fires.
    pub qps_spike_mult: f64,
    /// Probability the power budget is cut for an interval.
    pub budget_cut_rate: f64,
    /// Relative cut depth (`0.1` → the effective budget is 90%).
    pub budget_cut_frac: f64,
}

impl FaultPlan {
    /// A plan that injects nothing (the fault-free control).
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            telemetry_noise_rate: 0.0,
            telemetry_noise_frac: 0.0,
            telemetry_dropout_rate: 0.0,
            actuation_stuck_rate: 0.0,
            actuation_transient_rate: 0.0,
            actuation_partial_rate: 0.0,
            qps_spike_rate: 0.0,
            qps_spike_mult: 1.0,
            budget_cut_rate: 0.0,
            budget_cut_frac: 0.0,
        }
    }

    /// Sensor-glitch preset: noisy p95/power readings.
    pub fn telemetry_noise(seed: u64, rate: f64, frac: f64) -> Self {
        Self {
            telemetry_noise_rate: rate,
            telemetry_noise_frac: frac,
            ..Self::none(seed)
        }
    }

    /// Frozen-collector preset: stale-repeat samples.
    pub fn telemetry_dropout(seed: u64, rate: f64) -> Self {
        Self {
            telemetry_dropout_rate: rate,
            ..Self::none(seed)
        }
    }

    /// Failing-actuator preset: `rate` is the total per-interval fault
    /// probability, split across stuck / transient / partial failures.
    pub fn actuation_faults(seed: u64, rate: f64) -> Self {
        Self {
            actuation_stuck_rate: 0.4 * rate,
            actuation_transient_rate: 0.4 * rate,
            actuation_partial_rate: 0.2 * rate,
            ..Self::none(seed)
        }
    }

    /// Load/power-shock preset: QPS spikes plus budget cuts.
    pub fn shocks(seed: u64, rate: f64) -> Self {
        Self {
            qps_spike_rate: rate,
            qps_spike_mult: 1.3,
            budget_cut_rate: rate,
            budget_cut_frac: 0.1,
            ..Self::none(seed)
        }
    }

    /// Everything at once (the stress preset).
    pub fn everything(seed: u64) -> Self {
        Self {
            telemetry_noise_rate: 0.10,
            telemetry_noise_frac: 0.25,
            telemetry_dropout_rate: 0.05,
            actuation_stuck_rate: 0.04,
            actuation_transient_rate: 0.04,
            actuation_partial_rate: 0.02,
            qps_spike_rate: 0.03,
            qps_spike_mult: 1.25,
            budget_cut_rate: 0.03,
            budget_cut_frac: 0.08,
            ..Self::none(seed)
        }
    }

    /// True when no fault class can ever fire.
    pub fn is_zero(&self) -> bool {
        self.telemetry_noise_rate == 0.0
            && self.telemetry_dropout_rate == 0.0
            && self.actuation_stuck_rate == 0.0
            && self.actuation_transient_rate == 0.0
            && self.actuation_partial_rate == 0.0
            && self.qps_spike_rate == 0.0
            && self.budget_cut_rate == 0.0
    }

    /// Builds the injector that realizes this plan.
    pub fn injector(&self) -> FaultInjector {
        FaultInjector::new(*self)
    }
}

/// Telemetry perturbation drawn for one interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TelemetryFault {
    /// Clean sample.
    None,
    /// Multiplicative sensor noise on the two measured channels.
    Noise {
        /// Factor applied to the measured p95 latency.
        p95_mult: f64,
        /// Factor applied to the measured package power.
        power_mult: f64,
    },
    /// Stale repeat: the previous delivered sample is replayed.
    Dropout,
}

/// Actuator behaviour drawn for one interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActuationFault {
    /// Actuations succeed normally.
    None,
    /// Every apply in the interval fails, and the interface stays wedged
    /// into later intervals until an explicit retry clears it.
    Stuck,
    /// The first apply attempt fails; retries succeed.
    Transient,
    /// Applies install only the core split (ways/frequency keep their
    /// previous values) while still reporting success.
    Partial,
}

/// The complete fault draw for one monitoring interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalFault {
    /// Telemetry perturbation.
    pub telemetry: TelemetryFault,
    /// Actuator behaviour.
    pub actuation: ActuationFault,
    /// Load multiplier (1.0 = no spike).
    pub qps_mult: f64,
    /// Effective-budget multiplier (1.0 = no cut).
    pub budget_mult: f64,
}

impl IntervalFault {
    /// The fault-free draw.
    pub fn none() -> Self {
        Self {
            telemetry: TelemetryFault::None,
            actuation: ActuationFault::None,
            qps_mult: 1.0,
            budget_mult: 1.0,
        }
    }

    /// True when nothing is perturbed this interval.
    pub fn is_none(&self) -> bool {
        *self == Self::none()
    }

    /// Labels of the fault classes active this interval (empty when
    /// nothing fires) — the observability layer's `FaultInjected` tags.
    pub fn classes(&self) -> Vec<&'static str> {
        let mut classes = Vec::new();
        match self.telemetry {
            TelemetryFault::None => {}
            TelemetryFault::Noise { .. } => classes.push("telemetry_noise"),
            TelemetryFault::Dropout => classes.push("telemetry_dropout"),
        }
        match self.actuation {
            ActuationFault::None => {}
            ActuationFault::Stuck => classes.push("actuation_stuck"),
            ActuationFault::Transient => classes.push("actuation_transient"),
            ActuationFault::Partial => classes.push("actuation_partial"),
        }
        if self.qps_mult != 1.0 {
            classes.push("qps_spike");
        }
        if self.budget_mult != 1.0 {
            classes.push("budget_cut");
        }
        classes
    }
}

/// Counts of every fault the injector has drawn so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct FaultStats {
    /// Intervals with noisy telemetry.
    pub telemetry_noise: u64,
    /// Intervals with stale-repeat telemetry.
    pub telemetry_dropouts: u64,
    /// Intervals whose actuations all failed.
    pub actuation_stuck: u64,
    /// Intervals whose first actuation attempt failed.
    pub actuation_transient: u64,
    /// Intervals whose actuations applied partially.
    pub actuation_partial: u64,
    /// Intervals with a QPS spike.
    pub qps_spikes: u64,
    /// Intervals with a budget cut.
    pub budget_cuts: u64,
}

impl FaultStats {
    /// Total faults of any class.
    pub fn total(&self) -> u64 {
        self.telemetry_noise
            + self.telemetry_dropouts
            + self.actuation_stuck
            + self.actuation_transient
            + self.actuation_partial
            + self.qps_spikes
            + self.budget_cuts
    }
}

/// Draws one [`IntervalFault`] per interval, deterministically from the
/// plan's seed.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    stats: FaultStats,
}

impl FaultInjector {
    /// Builds the injector for a plan.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            rng: StdRng::seed_from_u64(plan.seed),
            stats: FaultStats::default(),
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counters of everything drawn so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    fn noise_mult(&mut self) -> f64 {
        1.0 + self.plan.telemetry_noise_frac * (2.0 * self.rng.gen::<f64>() - 1.0)
    }

    /// Draws the next interval's faults. Classes are drawn in a fixed
    /// order so a given seed always yields the same sequence.
    pub fn next_interval(&mut self) -> IntervalFault {
        let telemetry = if self.rng.gen_bool(self.plan.telemetry_dropout_rate) {
            self.stats.telemetry_dropouts += 1;
            TelemetryFault::Dropout
        } else if self.rng.gen_bool(self.plan.telemetry_noise_rate) {
            self.stats.telemetry_noise += 1;
            TelemetryFault::Noise {
                p95_mult: self.noise_mult(),
                power_mult: self.noise_mult(),
            }
        } else {
            TelemetryFault::None
        };

        let actuation = if self.rng.gen_bool(self.plan.actuation_stuck_rate) {
            self.stats.actuation_stuck += 1;
            ActuationFault::Stuck
        } else if self.rng.gen_bool(self.plan.actuation_transient_rate) {
            self.stats.actuation_transient += 1;
            ActuationFault::Transient
        } else if self.rng.gen_bool(self.plan.actuation_partial_rate) {
            self.stats.actuation_partial += 1;
            ActuationFault::Partial
        } else {
            ActuationFault::None
        };

        let qps_mult = if self.rng.gen_bool(self.plan.qps_spike_rate) {
            self.stats.qps_spikes += 1;
            self.plan.qps_spike_mult
        } else {
            1.0
        };

        let budget_mult = if self.rng.gen_bool(self.plan.budget_cut_rate) {
            self.stats.budget_cuts += 1;
            1.0 - self.plan.budget_cut_frac
        } else {
            1.0
        };

        IntervalFault {
            telemetry,
            actuation,
            qps_mult,
            budget_mult,
        }
    }
}

/// [`SimActuators`] wrapped with the interval's actuation fault: applies
/// can fail outright, fail transiently (a retry succeeds), or install
/// only part of the requested configuration while reporting success —
/// which is exactly why a hardened controller must *verify* actuations by
/// reading the installed configuration back.
#[derive(Debug, Clone)]
pub struct FaultyActuators {
    inner: SimActuators,
    fault: ActuationFault,
    attempts_this_interval: u32,
    /// A [`ActuationFault::Stuck`] interval wedges the interface: applies
    /// keep failing in later intervals until an explicit retry (second or
    /// later attempt within one interval) clears the latch. Callers that
    /// never check errors never issue that retry.
    latched: bool,
    failed_applies: u64,
    partial_applies: u64,
}

impl FaultyActuators {
    /// Wraps a simulated backend.
    pub fn new(inner: SimActuators) -> Self {
        Self {
            inner,
            fault: ActuationFault::None,
            attempts_this_interval: 0,
            latched: false,
            failed_applies: 0,
            partial_applies: 0,
        }
    }

    /// The node spec the backend enforces.
    pub fn spec(&self) -> &NodeSpec {
        self.inner.spec()
    }

    /// Arms the interval's actuation fault and resets the attempt count.
    pub fn begin_interval(&mut self, fault: ActuationFault) {
        self.fault = fault;
        self.attempts_this_interval = 0;
    }

    /// Attempts to apply a configuration under the armed fault. Partial
    /// applies return `Ok` — only a read-back of [`Self::config`] reveals
    /// the mismatch.
    pub fn apply(&mut self, config: PairConfig) -> Result<(), ConfigError> {
        config.validate(self.inner.spec())?;
        let attempt = self.attempts_this_interval;
        self.attempts_this_interval += 1;
        if self.latched && self.fault != ActuationFault::Stuck {
            // Wedged from an earlier Stuck interval. Only a deliberate
            // retry — a second attempt after seeing the first one error —
            // resets the interface; a caller that ignores errors keeps
            // writing into the void.
            if attempt == 0 {
                self.failed_applies += 1;
                return Err(ConfigError::ActuationFailed);
            }
            self.latched = false;
        }
        match self.fault {
            ActuationFault::None => self.inner.apply(config),
            ActuationFault::Stuck => {
                self.latched = true;
                self.failed_applies += 1;
                Err(ConfigError::ActuationFailed)
            }
            ActuationFault::Transient => {
                if attempt == 0 {
                    self.failed_applies += 1;
                    Err(ConfigError::ActuationFailed)
                } else {
                    self.inner.apply(config)
                }
            }
            ActuationFault::Partial => {
                // Only the cpuset write lands; CAT and DVFS keep their
                // previous values. The core split alone is always valid
                // because the partition totals are unchanged.
                let mut partial = self.inner.config();
                partial.ls.cores = config.ls.cores;
                partial.be.cores = config.be.cores;
                if partial != self.inner.config() {
                    self.partial_applies += 1;
                }
                self.inner.apply(partial)
            }
        }
    }

    /// The configuration actually installed (the read-back a hardened
    /// controller verifies against).
    pub fn config(&self) -> PairConfig {
        self.inner.config()
    }

    /// True while the interface is wedged from an unrecovered Stuck fault.
    pub fn is_latched(&self) -> bool {
        self.latched
    }

    /// Publishes measured package power (delegates).
    pub fn push_power(&self, watts: f64) {
        self.inner.push_power(watts);
    }

    /// Configuration changes actually installed (delegates).
    pub fn actuation_count(&self) -> u64 {
        self.inner.actuation_count()
    }

    /// Apply calls that returned an error.
    pub fn failed_applies(&self) -> u64 {
        self.failed_applies
    }

    /// Apply calls that silently installed only the core split.
    pub fn partial_applies(&self) -> u64 {
        self.partial_applies
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::Allocation;

    fn actuators() -> FaultyActuators {
        FaultyActuators::new(SimActuators::new(NodeSpec::xeon_e5_2630_v4()))
    }

    fn cfg(c1: u32, f1: usize, l1: u32) -> PairConfig {
        PairConfig::new(
            Allocation::new(c1, f1, l1),
            Allocation::new(20 - c1, 9, 20 - l1),
        )
    }

    #[test]
    fn same_seed_same_sequence() {
        let plan = FaultPlan::everything(99);
        let mut a = plan.injector();
        let mut b = plan.injector();
        for _ in 0..500 {
            assert_eq!(a.next_interval(), b.next_interval());
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().total() > 0, "stress plan must inject something");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultPlan::everything(1).injector();
        let mut b = FaultPlan::everything(2).injector();
        let same = (0..200).all(|_| a.next_interval() == b.next_interval());
        assert!(!same, "different seeds should yield different sequences");
    }

    #[test]
    fn zero_plan_never_fires() {
        let mut inj = FaultPlan::none(7).injector();
        for _ in 0..1_000 {
            assert!(inj.next_interval().is_none());
        }
        assert_eq!(inj.stats().total(), 0);
        assert!(FaultPlan::none(7).is_zero());
        assert!(!FaultPlan::everything(7).is_zero());
    }

    #[test]
    fn rates_are_respected_approximately() {
        let mut inj = FaultPlan::telemetry_dropout(3, 0.25).injector();
        let n = 4_000;
        for _ in 0..n {
            inj.next_interval();
        }
        let rate = inj.stats().telemetry_dropouts as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.03, "dropout rate {rate}");
    }

    #[test]
    fn noise_multipliers_stay_in_band() {
        let mut inj = FaultPlan::telemetry_noise(5, 1.0, 0.3).injector();
        for _ in 0..500 {
            if let TelemetryFault::Noise {
                p95_mult,
                power_mult,
            } = inj.next_interval().telemetry
            {
                assert!((0.7..=1.3).contains(&p95_mult));
                assert!((0.7..=1.3).contains(&power_mult));
            }
        }
        assert!(inj.stats().telemetry_noise > 400);
    }

    #[test]
    fn stuck_fault_fails_every_attempt() {
        let mut a = actuators();
        let before = a.config();
        a.begin_interval(ActuationFault::Stuck);
        for _ in 0..4 {
            assert_eq!(a.apply(cfg(8, 5, 9)), Err(ConfigError::ActuationFailed));
        }
        assert_eq!(a.config(), before, "config must be untouched");
        assert_eq!(a.failed_applies(), 4);
    }

    #[test]
    fn transient_fault_succeeds_on_retry() {
        let mut a = actuators();
        a.begin_interval(ActuationFault::Transient);
        assert!(a.apply(cfg(8, 5, 9)).is_err());
        assert!(a.apply(cfg(8, 5, 9)).is_ok());
        assert_eq!(a.config(), cfg(8, 5, 9));
        assert_eq!(a.failed_applies(), 1);
    }

    #[test]
    fn partial_fault_installs_only_cores() {
        let mut a = actuators();
        a.begin_interval(ActuationFault::None);
        a.apply(cfg(10, 4, 10)).unwrap();
        a.begin_interval(ActuationFault::Partial);
        assert!(a.apply(cfg(6, 9, 15)).is_ok(), "partial applies report Ok");
        let installed = a.config();
        assert_eq!(installed.ls.cores, 6, "core split must land");
        assert_eq!(installed.ls.llc_ways, 10, "ways must keep old value");
        assert_eq!(installed.ls.freq_level, 4, "freq must keep old value");
        assert!(installed.validate(a.spec()).is_ok());
        assert_eq!(a.partial_applies(), 1);
    }

    #[test]
    fn transient_faults_clear_at_interval_boundaries() {
        let mut a = actuators();
        a.begin_interval(ActuationFault::Transient);
        assert!(a.apply(cfg(8, 5, 9)).is_err());
        a.begin_interval(ActuationFault::None);
        assert!(a.apply(cfg(8, 5, 9)).is_ok());
    }

    #[test]
    fn stuck_fault_latches_until_an_explicit_retry() {
        let mut a = actuators();
        let before = a.config();
        a.begin_interval(ActuationFault::Stuck);
        assert!(a.apply(cfg(8, 5, 9)).is_err());
        assert!(a.is_latched());
        // Next interval is fault-free, but the interface is still wedged:
        // a lone (fire-and-forget) attempt keeps failing.
        a.begin_interval(ActuationFault::None);
        assert!(a.apply(cfg(8, 5, 9)).is_err());
        assert_eq!(a.config(), before);
        // A second attempt in the same interval — an error-checking
        // caller's retry — resets the interface and lands the write.
        assert!(a.apply(cfg(8, 5, 9)).is_ok());
        assert!(!a.is_latched());
        assert_eq!(a.config(), cfg(8, 5, 9));
    }

    #[test]
    fn fire_and_forget_never_recovers_a_latched_interface() {
        let mut a = actuators();
        let before = a.config();
        a.begin_interval(ActuationFault::Stuck);
        let _ = a.apply(cfg(8, 5, 9));
        for _ in 0..10 {
            a.begin_interval(ActuationFault::None);
            assert!(
                a.apply(cfg(6, 4, 7)).is_err(),
                "single attempts stay wedged"
            );
        }
        assert!(a.is_latched());
        assert_eq!(a.config(), before);
    }

    #[test]
    fn invalid_configs_still_rejected_under_faults() {
        let mut a = actuators();
        a.begin_interval(ActuationFault::Partial);
        let bad = PairConfig::new(Allocation::new(15, 0, 10), Allocation::new(15, 0, 10));
        assert!(matches!(
            a.apply(bad),
            Err(ConfigError::CoreOversubscription { .. })
        ));
    }
}
