//! Resource allocations and the paired co-location configuration
//! `<C1, F1, L1; C2, F2, L2>` from the paper.

use crate::spec::NodeSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised when a configuration does not fit the node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Combined core demand exceeds the node's cores.
    CoreOversubscription { requested: u32, available: u32 },
    /// Combined LLC way demand exceeds the node's ways.
    WayOversubscription { requested: u32, available: u32 },
    /// A partition was given zero cores or zero ways.
    EmptyPartition,
    /// A frequency level index beyond the spec's DVFS table.
    BadFrequencyLevel { level: usize, levels: usize },
    /// The configuration is valid but the actuator failed to install it
    /// (injected fault or backend write error).
    ActuationFailed,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::CoreOversubscription {
                requested,
                available,
            } => {
                write!(f, "requested {requested} cores but node has {available}")
            }
            ConfigError::WayOversubscription {
                requested,
                available,
            } => {
                write!(f, "requested {requested} LLC ways but node has {available}")
            }
            ConfigError::EmptyPartition => write!(f, "partitions need ≥ 1 core and ≥ 1 way"),
            ConfigError::BadFrequencyLevel { level, levels } => {
                write!(
                    f,
                    "frequency level {level} out of range (node has {levels})"
                )
            }
            ConfigError::ActuationFailed => write!(f, "actuator failed to install configuration"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Resources granted to one application: cores, a DVFS level for those
/// cores, and LLC ways.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Allocation {
    /// Number of logical cores.
    pub cores: u32,
    /// Index into [`NodeSpec::freq_levels_ghz`].
    pub freq_level: usize,
    /// Number of LLC ways.
    pub llc_ways: u32,
}

impl Allocation {
    /// Convenience constructor.
    pub fn new(cores: u32, freq_level: usize, llc_ways: u32) -> Self {
        Self {
            cores,
            freq_level,
            llc_ways,
        }
    }

    /// Frequency in GHz under the given spec.
    pub fn freq_ghz(&self, spec: &NodeSpec) -> f64 {
        spec.freq_ghz(self.freq_level)
    }

    /// Checks this allocation alone against the spec.
    pub fn validate(&self, spec: &NodeSpec) -> Result<(), ConfigError> {
        if self.cores == 0 || self.llc_ways == 0 {
            return Err(ConfigError::EmptyPartition);
        }
        if self.cores > spec.total_cores {
            return Err(ConfigError::CoreOversubscription {
                requested: self.cores,
                available: spec.total_cores,
            });
        }
        if self.llc_ways > spec.total_llc_ways {
            return Err(ConfigError::WayOversubscription {
                requested: self.llc_ways,
                available: spec.total_llc_ways,
            });
        }
        if self.freq_level >= spec.freq_level_count() {
            return Err(ConfigError::BadFrequencyLevel {
                level: self.freq_level,
                levels: spec.freq_level_count(),
            });
        }
        Ok(())
    }

    /// Allocation of the whole node at maximum frequency — Algorithm 1's
    /// initialization gives everything to the LS service.
    pub fn whole_node(spec: &NodeSpec) -> Self {
        Self {
            cores: spec.total_cores,
            freq_level: spec.max_freq_level(),
            llc_ways: spec.total_llc_ways,
        }
    }
}

/// A co-location configuration: the LS service's and the BE application's
/// allocations. Rendered as the paper's `<C1,F1,L1; C2,F2,L2>` notation.
///
/// ```
/// use sturgeon_simnode::{Allocation, NodeSpec, PairConfig};
///
/// let spec = NodeSpec::xeon_e5_2630_v4();
/// let cfg = PairConfig::new(Allocation::new(8, 3, 7), Allocation::new(12, 9, 13));
/// assert!(cfg.validate(&spec).is_ok());
/// assert_eq!(cfg.to_string(), "<8C, F3, 7L; 12C, F9, 13L>");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PairConfig {
    /// Latency-sensitive service's share.
    pub ls: Allocation,
    /// Best-effort application's share.
    pub be: Allocation,
}

impl PairConfig {
    /// Convenience constructor.
    pub fn new(ls: Allocation, be: Allocation) -> Self {
        Self { ls, be }
    }

    /// Validates both allocations and their combined footprint. Cores and
    /// LLC ways are strictly partitioned (cpuset/CAT semantics); the two
    /// partitions may run at different frequency levels (per-core DVFS).
    pub fn validate(&self, spec: &NodeSpec) -> Result<(), ConfigError> {
        self.ls.validate(spec)?;
        self.be.validate(spec)?;
        let cores = self.ls.cores + self.be.cores;
        if cores > spec.total_cores {
            return Err(ConfigError::CoreOversubscription {
                requested: cores,
                available: spec.total_cores,
            });
        }
        let ways = self.ls.llc_ways + self.be.llc_ways;
        if ways > spec.total_llc_ways {
            return Err(ConfigError::WayOversubscription {
                requested: ways,
                available: spec.total_llc_ways,
            });
        }
        Ok(())
    }

    /// The complementary BE allocation that uses every core and way the LS
    /// allocation leaves free ("determined by a simple subtraction
    /// according to the CPU/cache capacity", §V-B).
    pub fn complement_be(spec: &NodeSpec, ls: Allocation, be_freq_level: usize) -> Option<Self> {
        if ls.cores >= spec.total_cores || ls.llc_ways >= spec.total_llc_ways {
            return None;
        }
        let be = Allocation {
            cores: spec.total_cores - ls.cores,
            freq_level: be_freq_level,
            llc_ways: spec.total_llc_ways - ls.llc_ways,
        };
        let cfg = Self { ls, be };
        cfg.validate(spec).ok()?;
        Some(cfg)
    }
}

impl fmt::Display for PairConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "<{}C, F{}, {}L; {}C, F{}, {}L>",
            self.ls.cores,
            self.ls.freq_level,
            self.ls.llc_ways,
            self.be.cores,
            self.be.freq_level,
            self.be.llc_ways
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> NodeSpec {
        NodeSpec::xeon_e5_2630_v4()
    }

    #[test]
    fn valid_pair_passes() {
        let cfg = PairConfig::new(Allocation::new(8, 3, 7), Allocation::new(12, 9, 13));
        assert!(cfg.validate(&spec()).is_ok());
    }

    #[test]
    fn core_oversubscription_detected() {
        let cfg = PairConfig::new(Allocation::new(12, 0, 5), Allocation::new(12, 0, 5));
        assert!(matches!(
            cfg.validate(&spec()),
            Err(ConfigError::CoreOversubscription { requested: 24, .. })
        ));
    }

    #[test]
    fn way_oversubscription_detected() {
        let cfg = PairConfig::new(Allocation::new(4, 0, 15), Allocation::new(4, 0, 15));
        assert!(matches!(
            cfg.validate(&spec()),
            Err(ConfigError::WayOversubscription { requested: 30, .. })
        ));
    }

    #[test]
    fn empty_partition_detected() {
        let cfg = PairConfig::new(Allocation::new(0, 0, 5), Allocation::new(4, 0, 5));
        assert_eq!(cfg.validate(&spec()), Err(ConfigError::EmptyPartition));
        let cfg = PairConfig::new(Allocation::new(4, 0, 0), Allocation::new(4, 0, 5));
        assert_eq!(cfg.validate(&spec()), Err(ConfigError::EmptyPartition));
    }

    #[test]
    fn bad_frequency_level_detected() {
        let cfg = PairConfig::new(Allocation::new(4, 10, 5), Allocation::new(4, 0, 5));
        assert!(matches!(
            cfg.validate(&spec()),
            Err(ConfigError::BadFrequencyLevel {
                level: 10,
                levels: 10
            })
        ));
    }

    #[test]
    fn whole_node_uses_everything_at_max_freq() {
        let s = spec();
        let a = Allocation::whole_node(&s);
        assert_eq!(a.cores, 20);
        assert_eq!(a.llc_ways, 20);
        assert_eq!(a.freq_level, 9);
        assert!(a.validate(&s).is_ok());
    }

    #[test]
    fn complement_be_fills_remaining_resources() {
        let s = spec();
        let ls = Allocation::new(4, 4, 6);
        let cfg = PairConfig::complement_be(&s, ls, 7).unwrap();
        assert_eq!(cfg.be.cores, 16);
        assert_eq!(cfg.be.llc_ways, 14);
        assert_eq!(cfg.be.freq_level, 7);
        assert!(cfg.validate(&s).is_ok());
    }

    #[test]
    fn complement_be_refuses_when_nothing_left() {
        let s = spec();
        let ls = Allocation::whole_node(&s);
        assert!(PairConfig::complement_be(&s, ls, 0).is_none());
    }

    #[test]
    fn display_uses_paper_notation() {
        let cfg = PairConfig::new(Allocation::new(8, 1, 7), Allocation::new(12, 9, 13));
        assert_eq!(cfg.to_string(), "<8C, F1, 7L; 12C, F9, 13L>");
    }

    #[test]
    fn freq_ghz_maps_levels() {
        let s = spec();
        let a = Allocation::new(4, 0, 4);
        assert!((a.freq_ghz(&s) - 1.2).abs() < 1e-9);
        let a = Allocation::new(4, 9, 4);
        assert!((a.freq_ghz(&s) - 2.2).abs() < 1e-9);
    }
}
