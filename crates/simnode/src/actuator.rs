//! Actuation and measurement interfaces mirroring the paper's Table III,
//! plus the in-memory simulated backend.
//!
//! | Paper tool | Trait here |
//! |---|---|
//! | Linux cpuset cgroups | [`CoreAllocator`] |
//! | Intel Cache Allocation Technology | [`CacheAllocator`] |
//! | ACPI frequency driver | [`FrequencyDriver`] |
//! | Intel RAPL | [`PowerMeter`] |
//!
//! The controller only ever talks to these traits; swapping
//! [`SimActuators`] for a sysfs/resctrl implementation would port Sturgeon
//! to real hardware without touching any control logic.

use crate::alloc::{Allocation, ConfigError, PairConfig};
use crate::spec::NodeSpec;
use parking_lot::Mutex;
use std::sync::Arc;

/// cpuset-style partitioning of logical cores between LS and BE.
pub trait CoreAllocator {
    /// Repartitions cores. Both partitions must stay non-empty and fit.
    fn set_cores(&self, ls_cores: u32, be_cores: u32) -> Result<(), ConfigError>;
    /// Current `(ls, be)` core counts.
    fn cores(&self) -> (u32, u32);
}

/// CAT-style partitioning of LLC ways.
pub trait CacheAllocator {
    /// Repartitions LLC ways.
    fn set_ways(&self, ls_ways: u32, be_ways: u32) -> Result<(), ConfigError>;
    /// Current `(ls, be)` way counts.
    fn ways(&self) -> (u32, u32);
}

/// ACPI-driver-style per-partition DVFS control.
pub trait FrequencyDriver {
    /// Sets the DVFS level of each partition.
    fn set_freq_levels(&self, ls_level: usize, be_level: usize) -> Result<(), ConfigError>;
    /// Current `(ls, be)` DVFS levels.
    fn freq_levels(&self) -> (usize, usize);
}

/// RAPL-style package power measurement.
pub trait PowerMeter {
    /// Most recent package power in watts.
    fn power_w(&self) -> f64;
}

#[derive(Debug)]
struct SimState {
    config: PairConfig,
    power_w: f64,
    actuations: u64,
    rejected: u64,
}

/// Simulated backend for all four Table III interfaces.
///
/// Holds the live [`PairConfig`]; the workload simulator reads it every
/// interval and feeds measured power back through [`SimActuators::push_power`].
/// Cheap to clone (shared state behind an `Arc`).
#[derive(Debug, Clone)]
pub struct SimActuators {
    spec: NodeSpec,
    state: Arc<Mutex<SimState>>,
}

impl SimActuators {
    /// Creates actuators over `spec`, starting from Algorithm 1's initial
    /// allocation: everything to the LS service, one core/way left for the
    /// (idle) BE partition so the partition invariant holds.
    pub fn new(spec: NodeSpec) -> Self {
        let ls = Allocation::new(
            spec.total_cores - 1,
            spec.max_freq_level(),
            spec.total_llc_ways - 1,
        );
        let be = Allocation::new(1, 0, 1);
        let config = PairConfig::new(ls, be);
        debug_assert!(config.validate(&spec).is_ok());
        Self {
            spec,
            state: Arc::new(Mutex::new(SimState {
                config,
                power_w: 0.0,
                actuations: 0,
                rejected: 0,
            })),
        }
    }

    /// The node spec these actuators enforce.
    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    /// Atomically applies a full configuration (validated against the spec).
    pub fn apply(&self, config: PairConfig) -> Result<(), ConfigError> {
        if let Err(e) = config.validate(&self.spec) {
            self.state.lock().rejected += 1;
            return Err(e);
        }
        let mut st = self.state.lock();
        if st.config != config {
            st.config = config;
            st.actuations += 1;
        }
        Ok(())
    }

    /// Current configuration snapshot.
    pub fn config(&self) -> PairConfig {
        self.state.lock().config
    }

    /// Called by the environment simulator after each interval to publish
    /// the measured package power.
    pub fn push_power(&self, watts: f64) {
        self.state.lock().power_w = watts;
    }

    /// Number of configuration changes applied (no-op applies excluded);
    /// used by the overhead accounting of §VII-E.
    pub fn actuation_count(&self) -> u64 {
        self.state.lock().actuations
    }

    /// Number of applies rejected by spec validation — a nonzero count in
    /// production telemetry means some layer is emitting invalid configs.
    pub fn rejected_count(&self) -> u64 {
        self.state.lock().rejected
    }
}

impl CoreAllocator for SimActuators {
    fn set_cores(&self, ls_cores: u32, be_cores: u32) -> Result<(), ConfigError> {
        let mut cfg = self.config();
        cfg.ls.cores = ls_cores;
        cfg.be.cores = be_cores;
        self.apply(cfg)
    }

    fn cores(&self) -> (u32, u32) {
        let cfg = self.config();
        (cfg.ls.cores, cfg.be.cores)
    }
}

impl CacheAllocator for SimActuators {
    fn set_ways(&self, ls_ways: u32, be_ways: u32) -> Result<(), ConfigError> {
        let mut cfg = self.config();
        cfg.ls.llc_ways = ls_ways;
        cfg.be.llc_ways = be_ways;
        self.apply(cfg)
    }

    fn ways(&self) -> (u32, u32) {
        let cfg = self.config();
        (cfg.ls.llc_ways, cfg.be.llc_ways)
    }
}

impl FrequencyDriver for SimActuators {
    fn set_freq_levels(&self, ls_level: usize, be_level: usize) -> Result<(), ConfigError> {
        let mut cfg = self.config();
        cfg.ls.freq_level = ls_level;
        cfg.be.freq_level = be_level;
        self.apply(cfg)
    }

    fn freq_levels(&self) -> (usize, usize) {
        let cfg = self.config();
        (cfg.ls.freq_level, cfg.be.freq_level)
    }
}

impl PowerMeter for SimActuators {
    fn power_w(&self) -> f64 {
        self.state.lock().power_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acts() -> SimActuators {
        SimActuators::new(NodeSpec::xeon_e5_2630_v4())
    }

    #[test]
    fn initial_allocation_favours_ls() {
        let a = acts();
        let cfg = a.config();
        assert_eq!(cfg.ls.cores, 19);
        assert_eq!(cfg.ls.llc_ways, 19);
        assert_eq!(cfg.ls.freq_level, 9);
        assert!(cfg.validate(a.spec()).is_ok());
    }

    #[test]
    fn apply_validates_against_spec() {
        let a = acts();
        let bad = PairConfig::new(Allocation::new(15, 0, 10), Allocation::new(15, 0, 10));
        assert!(a.apply(bad).is_err());
        // State unchanged after a rejected apply, and the rejection counted.
        assert_eq!(a.config().ls.cores, 19);
        assert_eq!(a.rejected_count(), 1);
        assert_eq!(a.actuation_count(), 0);
    }

    #[test]
    fn set_cores_roundtrip() {
        let a = acts();
        a.set_cores(8, 12).unwrap();
        assert_eq!(a.cores(), (8, 12));
    }

    #[test]
    fn set_ways_roundtrip() {
        let a = acts();
        a.set_ways(7, 13).unwrap();
        assert_eq!(a.ways(), (7, 13));
    }

    #[test]
    fn set_freq_levels_roundtrip() {
        let a = acts();
        a.set_freq_levels(3, 9).unwrap();
        assert_eq!(a.freq_levels(), (3, 9));
    }

    #[test]
    fn rejects_oversubscribed_cores() {
        let a = acts();
        assert!(a.set_cores(12, 12).is_err());
    }

    #[test]
    fn power_meter_reflects_pushed_power() {
        let a = acts();
        assert_eq!(a.power_w(), 0.0);
        a.push_power(97.5);
        assert_eq!(a.power_w(), 97.5);
    }

    #[test]
    fn actuation_count_skips_noop_applies() {
        let a = acts();
        let cfg = a.config();
        a.apply(cfg).unwrap();
        assert_eq!(a.actuation_count(), 0);
        a.set_cores(10, 10).unwrap();
        assert_eq!(a.actuation_count(), 1);
    }

    #[test]
    fn clones_share_state() {
        let a = acts();
        let b = a.clone();
        a.set_cores(5, 15).unwrap();
        assert_eq!(b.cores(), (5, 15));
    }
}
