//! # sturgeon-simnode
//!
//! A simulated power-constrained server node. This crate is the substrate
//! substitution for the paper's physical testbed (Table II: a 2-socket
//! Intel Xeon E5-2630 v4, 20 logical cores per socket with hyper-threading,
//! 10 DVFS steps between 1.2 and 2.2 GHz, a 25 MB / 20-way L3) and for the
//! partitioning/measurement tools of Table III (cpuset cgroups, Intel CAT,
//! the ACPI frequency driver, and RAPL).
//!
//! Everything Sturgeon's controller touches goes through the same four
//! interfaces the paper uses:
//!
//! * [`actuator::CoreAllocator`] — cpuset-style core partitioning
//! * [`actuator::CacheAllocator`] — CAT-style LLC way partitioning
//! * [`actuator::FrequencyDriver`] — ACPI-style per-partition DVFS
//! * [`actuator::PowerMeter`] — RAPL-style package power readings
//!
//! The simulated backends ([`actuator::SimActuators`]) implement those
//! traits over an in-memory [`alloc::PairConfig`]; a real backend would
//! implement them over sysfs/resctrl without touching the controller.
//!
//! The [`power`] module contains the analytic CMOS power model used as
//! ground truth: per-core dynamic power scales with `f³` (frequency ×
//! voltage², with voltage roughly linear in frequency over the DVFS
//! range), plus frequency-dependent leakage and a constant uncore/static
//! component. Applications modulate it through an *activity factor* — the
//! mechanism by which best-effort applications draw more power than
//! latency-sensitive services at equal allocations, which is exactly what
//! creates the paper's Fig. 2 overload.

pub mod actuator;
pub mod alloc;
pub mod audit;
pub mod energy;
pub mod faults;
pub mod power;
pub mod spec;
pub mod telemetry;

pub use actuator::{CacheAllocator, CoreAllocator, FrequencyDriver, PowerMeter, SimActuators};
pub use alloc::{Allocation, ConfigError, PairConfig};
pub use audit::{ActuationOutcome, AuditEntry, AuditLog};
pub use energy::{EnergyMeter, PowerWindow};
pub use faults::{
    ActuationFault, FaultInjector, FaultPlan, FaultStats, FaultyActuators, IntervalFault,
    TelemetryFault,
};
pub use power::{CorePowerParams, PowerModel};
pub use spec::NodeSpec;
pub use telemetry::{IntervalSample, TelemetryLog};
