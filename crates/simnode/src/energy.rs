//! RAPL-style energy accounting.
//!
//! Real RAPL exposes a monotonically increasing *energy* counter
//! (microjoules since boot, wrapping); controllers derive power by
//! differencing reads over a window. [`EnergyMeter`] reproduces that
//! interface over the simulator's per-interval power values, including
//! the counter wrap, so telemetry code written against it would port to
//! `/sys/class/powercap/intel-rapl` unchanged.

use serde::{Deserialize, Serialize};

/// Simulated package energy counter with RAPL-like wraparound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyMeter {
    /// Counter value in microjoules (wraps at `max_energy_uj`).
    counter_uj: u64,
    /// Wrap point; real RAPL packages commonly wrap at 2^32 µJ ≈ 4.3 kJ.
    max_energy_uj: u64,
    /// Total simulated time (s).
    elapsed_s: f64,
    /// Total energy since construction (J), wrap-free, for reporting.
    total_j: f64,
}

impl Default for EnergyMeter {
    fn default() -> Self {
        Self::new()
    }
}

impl EnergyMeter {
    /// A fresh counter with the conventional 2³² µJ wrap.
    pub fn new() -> Self {
        Self::with_wrap(1 << 32)
    }

    /// A counter wrapping at `max_energy_uj` microjoules.
    pub fn with_wrap(max_energy_uj: u64) -> Self {
        assert!(max_energy_uj > 0, "wrap point must be positive");
        Self {
            counter_uj: 0,
            max_energy_uj,
            elapsed_s: 0.0,
            total_j: 0.0,
        }
    }

    /// Accumulates `power_w` watts over `dt_s` seconds.
    pub fn accumulate(&mut self, power_w: f64, dt_s: f64) {
        let joules = power_w.max(0.0) * dt_s.max(0.0);
        let uj = (joules * 1e6).round() as u64;
        self.counter_uj = (self.counter_uj + uj) % self.max_energy_uj;
        self.elapsed_s += dt_s.max(0.0);
        self.total_j += joules;
    }

    /// The raw counter in microjoules, exactly as sysfs would report it.
    pub fn energy_uj(&self) -> u64 {
        self.counter_uj
    }

    /// Wrap point in microjoules (`max_energy_range_uj` in sysfs).
    pub fn max_energy_range_uj(&self) -> u64 {
        self.max_energy_uj
    }

    /// Total energy since construction in joules (reporting convenience;
    /// real RAPL cannot give this directly).
    pub fn total_joules(&self) -> f64 {
        self.total_j
    }

    /// Mean power since construction (W).
    pub fn mean_power_w(&self) -> f64 {
        if self.elapsed_s <= 0.0 {
            return 0.0;
        }
        self.total_j / self.elapsed_s
    }

    /// Derives average power between two raw counter reads taken `dt_s`
    /// apart, handling one wrap — the computation every RAPL consumer
    /// performs.
    pub fn power_from_counters(&self, before_uj: u64, after_uj: u64, dt_s: f64) -> f64 {
        if dt_s <= 0.0 {
            return 0.0;
        }
        let delta = if after_uj >= before_uj {
            after_uj - before_uj
        } else {
            // One wrap occurred.
            self.max_energy_uj - before_uj + after_uj
        };
        delta as f64 / 1e6 / dt_s
    }
}

/// A sliding-window power averager built on counter reads, mirroring how
/// power-capping firmware and Heracles-style controllers smooth RAPL.
#[derive(Debug, Clone, Default)]
pub struct PowerWindow {
    samples: Vec<f64>,
    capacity: usize,
    cursor: usize,
    filled: bool,
}

impl PowerWindow {
    /// A window averaging the last `capacity` power samples.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        Self {
            samples: vec![0.0; capacity],
            capacity,
            cursor: 0,
            filled: false,
        }
    }

    /// Pushes one per-interval power sample (W).
    pub fn push(&mut self, power_w: f64) {
        self.samples[self.cursor] = power_w;
        self.cursor = (self.cursor + 1) % self.capacity;
        if self.cursor == 0 {
            self.filled = true;
        }
    }

    /// Mean over the window (over the pushed prefix until it fills).
    pub fn mean_w(&self) -> f64 {
        let n = self.len();
        if n == 0 {
            return 0.0;
        }
        self.samples[..n].iter().sum::<f64>() / n as f64
    }

    /// Number of samples currently contributing to the mean.
    pub fn len(&self) -> usize {
        if self.filled {
            self.capacity
        } else {
            self.cursor
        }
    }

    /// True before any sample arrives.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_energy_and_mean_power() {
        let mut m = EnergyMeter::new();
        m.accumulate(100.0, 1.0);
        m.accumulate(50.0, 1.0);
        assert!((m.total_joules() - 150.0).abs() < 1e-9);
        assert!((m.mean_power_w() - 75.0).abs() < 1e-9);
        assert_eq!(m.energy_uj(), 150_000_000);
    }

    #[test]
    fn counter_wraps_like_rapl() {
        let mut m = EnergyMeter::with_wrap(1_000_000); // 1 J wrap
        m.accumulate(0.7, 1.0); // 0.7 J
        let before = m.energy_uj();
        m.accumulate(0.6, 1.0); // crosses the wrap
        let after = m.energy_uj();
        assert!(after < before, "counter must wrap");
        // Differencing with wrap handling recovers the true power.
        let p = m.power_from_counters(before, after, 1.0);
        assert!((p - 0.6).abs() < 1e-6, "recovered {p}");
    }

    #[test]
    fn power_from_counters_without_wrap() {
        let m = EnergyMeter::new();
        let p = m.power_from_counters(1_000_000, 91_000_000, 1.0);
        assert!((p - 90.0).abs() < 1e-9);
        assert_eq!(m.power_from_counters(0, 100, 0.0), 0.0);
    }

    #[test]
    fn negative_inputs_are_clamped() {
        let mut m = EnergyMeter::new();
        m.accumulate(-50.0, 1.0);
        m.accumulate(50.0, -1.0);
        assert_eq!(m.total_joules(), 0.0);
        assert_eq!(m.mean_power_w(), 0.0);
    }

    #[test]
    fn window_fills_then_slides() {
        let mut w = PowerWindow::new(3);
        assert!(w.is_empty());
        w.push(60.0);
        assert_eq!(w.len(), 1);
        assert!((w.mean_w() - 60.0).abs() < 1e-9);
        w.push(80.0);
        w.push(100.0);
        assert_eq!(w.len(), 3);
        assert!((w.mean_w() - 80.0).abs() < 1e-9);
        // Slides: 60 is evicted.
        w.push(110.0);
        assert!((w.mean_w() - (80.0 + 100.0 + 110.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_window_rejected() {
        let _ = PowerWindow::new(0);
    }
}
