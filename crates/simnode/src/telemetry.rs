//! Per-interval telemetry samples and aggregate statistics.
//!
//! The paper's evaluation metrics are all derivable from a per-second
//! sample stream: *QoS guarantee rate* (fraction of queries completed
//! within the QoS target, Fig. 9), *normalized BE throughput* (Fig. 10),
//! and *power overload* (§VII-B). Modern datacenters collect exactly this
//! kind of telemetry (citations 22 and 29 in the paper).

use crate::alloc::PairConfig;
use serde::{Deserialize, Serialize};

/// One monitoring interval's worth of observations (1 s in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalSample {
    /// Interval end time in seconds since experiment start.
    pub t_s: f64,
    /// Offered LS load during the interval (queries/s).
    pub qps: f64,
    /// Measured 95th-percentile LS latency (ms).
    pub p95_ms: f64,
    /// Fraction of this interval's queries that completed within the QoS
    /// target (drives the QoS guarantee rate).
    pub in_target_fraction: f64,
    /// Measured package power (W).
    pub power_w: f64,
    /// BE throughput normalized to the BE app's solo run on the whole node.
    pub be_throughput_norm: f64,
    /// Configuration in force during the interval.
    pub config: PairConfig,
}

/// Append-only log of interval samples with the paper's aggregates.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TelemetryLog {
    samples: Vec<IntervalSample>,
}

impl TelemetryLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one interval.
    pub fn push(&mut self, sample: IntervalSample) {
        self.samples.push(sample);
    }

    /// All recorded samples in order.
    pub fn samples(&self) -> &[IntervalSample] {
        &self.samples
    }

    /// Number of recorded intervals.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// QoS guarantee rate: query-weighted fraction of queries completed
    /// within the QoS target over the whole run (Fig. 9's metric).
    pub fn qos_guarantee_rate(&self) -> f64 {
        let total_q: f64 = self.samples.iter().map(|s| s.qps).sum();
        if total_q == 0.0 {
            return 1.0;
        }
        let in_target: f64 = self
            .samples
            .iter()
            .map(|s| s.qps * s.in_target_fraction)
            .sum();
        in_target / total_q
    }

    /// Mean normalized BE throughput across intervals (Fig. 10's metric).
    pub fn mean_be_throughput(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .map(|s| s.be_throughput_norm)
            .sum::<f64>()
            / self.samples.len() as f64
    }

    /// Fraction of intervals whose power exceeded `budget_w`.
    pub fn overload_fraction(&self, budget_w: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let over = self.samples.iter().filter(|s| s.power_w > budget_w).count();
        over as f64 / self.samples.len() as f64
    }

    /// Mean package power across intervals (the golden-trace regression
    /// aggregate; 0 for an empty log).
    pub fn mean_power_w(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.power_w).sum::<f64>() / self.samples.len() as f64
    }

    /// Highest power observed in any interval.
    pub fn peak_power_w(&self) -> f64 {
        self.samples.iter().map(|s| s.power_w).fold(0.0, f64::max)
    }

    /// Highest p95 latency observed in any interval.
    pub fn worst_p95_ms(&self) -> f64 {
        self.samples.iter().map(|s| s.p95_ms).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::Allocation;

    fn sample(t: f64, qps: f64, frac: f64, power: f64, tput: f64) -> IntervalSample {
        IntervalSample {
            t_s: t,
            qps,
            p95_ms: 5.0,
            in_target_fraction: frac,
            power_w: power,
            be_throughput_norm: tput,
            config: PairConfig::new(Allocation::new(4, 4, 6), Allocation::new(16, 7, 14)),
        }
    }

    #[test]
    fn empty_log_defaults() {
        let log = TelemetryLog::new();
        assert!(log.is_empty());
        assert_eq!(log.qos_guarantee_rate(), 1.0);
        assert_eq!(log.mean_be_throughput(), 0.0);
        assert_eq!(log.overload_fraction(100.0), 0.0);
    }

    #[test]
    fn qos_rate_is_query_weighted() {
        let mut log = TelemetryLog::new();
        // 1000 queries all in target, 3000 queries half in target.
        log.push(sample(1.0, 1000.0, 1.0, 90.0, 0.5));
        log.push(sample(2.0, 3000.0, 0.5, 90.0, 0.5));
        let expected = (1000.0 + 1500.0) / 4000.0;
        assert!((log.qos_guarantee_rate() - expected).abs() < 1e-12);
    }

    #[test]
    fn mean_throughput_averages_intervals() {
        let mut log = TelemetryLog::new();
        log.push(sample(1.0, 10.0, 1.0, 90.0, 0.4));
        log.push(sample(2.0, 10.0, 1.0, 90.0, 0.8));
        assert!((log.mean_be_throughput() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn overload_fraction_counts_intervals() {
        let mut log = TelemetryLog::new();
        log.push(sample(1.0, 10.0, 1.0, 120.0, 0.5));
        log.push(sample(2.0, 10.0, 1.0, 95.0, 0.5));
        log.push(sample(3.0, 10.0, 1.0, 130.0, 0.5));
        assert!((log.overload_fraction(100.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn peaks_track_maxima() {
        let mut log = TelemetryLog::new();
        log.push(sample(1.0, 10.0, 1.0, 120.0, 0.5));
        log.push(sample(2.0, 10.0, 1.0, 95.0, 0.5));
        assert_eq!(log.peak_power_w(), 120.0);
        assert_eq!(log.worst_p95_ms(), 5.0);
    }

    #[test]
    fn mean_power_averages_intervals() {
        let mut log = TelemetryLog::new();
        assert_eq!(log.mean_power_w(), 0.0);
        log.push(sample(1.0, 10.0, 1.0, 120.0, 0.5));
        log.push(sample(2.0, 10.0, 1.0, 100.0, 0.5));
        assert!((log.mean_power_w() - 110.0).abs() < 1e-12);
    }
}
