//! Ground-truth analytic power model (the RAPL substitution).
//!
//! First-order CMOS physics: per-core dynamic power is
//! `a · c_dyn · f³ · util` (activity factor × switched capacitance ×
//! frequency × voltage², with voltage ≈ linear in frequency over the DVFS
//! range) plus leakage `c_leak · f`, on top of a constant package
//! static/uncore term. The paper's two load-bearing facts both fall out:
//!
//! 1. power rises superlinearly with frequency, so the *power budget
//!    matters* when choosing between "more cores" and "higher frequency"
//!    (§III-C), and
//! 2. applications differ in activity factor, so a BE application can
//!    draw more power than the LS service on the same allocation — the
//!    root cause of the Fig. 2 overload.

use serde::{Deserialize, Serialize};

/// Per-core electrical coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorePowerParams {
    /// Dynamic coefficient in W/GHz³ per logical core at activity 1.0.
    pub dyn_w_per_ghz3: f64,
    /// Leakage coefficient in W/GHz per logical core.
    pub leak_w_per_ghz: f64,
}

impl Default for CorePowerParams {
    fn default() -> Self {
        // Tuned so one socket lands in a realistic envelope: a logical core
        // at 2.2 GHz and full activity draws ≈ 3.9 W dynamic + 0.7 W
        // leakage; 20 such cores plus static ≈ 110 W package power.
        Self {
            dyn_w_per_ghz3: 0.36,
            leak_w_per_ghz: 0.32,
        }
    }
}

/// One partition's contribution to node power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionLoad {
    /// Logical cores in the partition.
    pub cores: u32,
    /// Operating frequency in GHz.
    pub freq_ghz: f64,
    /// Application activity factor in `[0, ~1.2]`: how aggressively the
    /// code exercises the execution units (AVX-heavy BE apps exceed 1.0).
    pub activity: f64,
    /// Fraction of time the cores are busy in `[0, 1]` (LS services are
    /// mostly idle at low load; BE apps pin their cores at 1.0).
    pub utilization: f64,
}

/// Analytic node power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Package static + uncore power in watts (fans/VRs excluded).
    pub static_w: f64,
    /// Per-core coefficients.
    pub core: CorePowerParams,
}

impl Default for PowerModel {
    fn default() -> Self {
        Self {
            static_w: 22.0,
            core: CorePowerParams::default(),
        }
    }
}

impl PowerModel {
    /// Power drawn by one partition, excluding the static term.
    pub fn partition_power_w(&self, load: &PartitionLoad) -> f64 {
        let f = load.freq_ghz.max(0.0);
        let dynamic = self.core.dyn_w_per_ghz3 * f * f * f * load.activity * load.utilization;
        // Idle cores still leak; leakage does not scale with utilization.
        let leakage = self.core.leak_w_per_ghz * f;
        load.cores as f64 * (dynamic + leakage)
    }

    /// Total node power for a set of partitions.
    pub fn node_power_w(&self, loads: &[PartitionLoad]) -> f64 {
        self.static_w + loads.iter().map(|l| self.partition_power_w(l)).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(cores: u32, f: f64, a: f64, u: f64) -> PartitionLoad {
        PartitionLoad {
            cores,
            freq_ghz: f,
            activity: a,
            utilization: u,
        }
    }

    #[test]
    fn zero_partitions_give_static_power() {
        let m = PowerModel::default();
        assert_eq!(m.node_power_w(&[]), m.static_w);
    }

    #[test]
    fn power_monotonic_in_frequency() {
        let m = PowerModel::default();
        let lo = m.partition_power_w(&load(8, 1.2, 0.8, 1.0));
        let hi = m.partition_power_w(&load(8, 2.2, 0.8, 1.0));
        assert!(hi > lo);
    }

    #[test]
    fn power_superlinear_in_frequency() {
        // Doubling frequency should far more than double dynamic power.
        let m = PowerModel {
            static_w: 0.0,
            core: CorePowerParams {
                dyn_w_per_ghz3: 1.0,
                leak_w_per_ghz: 0.0,
            },
        };
        let p1 = m.partition_power_w(&load(1, 1.0, 1.0, 1.0));
        let p2 = m.partition_power_w(&load(1, 2.0, 1.0, 1.0));
        assert!((p2 / p1 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn power_linear_in_cores() {
        let m = PowerModel::default();
        let p4 = m.partition_power_w(&load(4, 1.8, 0.7, 0.9));
        let p8 = m.partition_power_w(&load(8, 1.8, 0.7, 0.9));
        assert!((p8 - 2.0 * p4).abs() < 1e-9);
    }

    #[test]
    fn higher_activity_draws_more_power() {
        let m = PowerModel::default();
        let ls = m.partition_power_w(&load(10, 2.2, 0.5, 1.0));
        let be = m.partition_power_w(&load(10, 2.2, 0.9, 1.0));
        assert!(be > ls, "BE apps must out-draw LS services at equal shares");
    }

    #[test]
    fn idle_cores_still_leak() {
        let m = PowerModel::default();
        let p = m.partition_power_w(&load(10, 2.2, 0.8, 0.0));
        assert!(p > 0.0);
        let expected = 10.0 * m.core.leak_w_per_ghz * 2.2;
        assert!((p - expected).abs() < 1e-9);
    }

    #[test]
    fn node_power_sums_partitions() {
        let m = PowerModel::default();
        let a = load(4, 1.6, 0.5, 0.5);
        let b = load(16, 2.2, 0.9, 1.0);
        let total = m.node_power_w(&[a, b]);
        let expected = m.static_w + m.partition_power_w(&a) + m.partition_power_w(&b);
        assert!((total - expected).abs() < 1e-9);
    }

    #[test]
    fn default_envelope_is_realistic() {
        // Whole socket busy at max frequency lands near a Xeon's package
        // power (between 80 W and 150 W).
        let m = PowerModel::default();
        let p = m.node_power_w(&[load(20, 2.2, 1.0, 1.0)]);
        assert!((80.0..150.0).contains(&p), "package power {p} W");
    }
}
