//! Actuation audit trail and resctrl-style rendering.
//!
//! Production resource managers keep an audit log of every knob they
//! turn — both for postmortems ("who throttled the BE partition at
//! 03:12?") and because resctrl/cpuset writes are the system's source of
//! truth. This module records configuration transitions with timestamps
//! and renders each state in the textual formats the real interfaces use:
//!
//! * CAT ways as a resctrl `schemata` line (`L3:0=3ff00`-style hex masks,
//!   LS ways packed from the low end, BE from the high end);
//! * cpuset core lists (`0-7` / `8-19` ranges).

use crate::alloc::PairConfig;
use crate::spec::NodeSpec;
use serde::Serialize;
use std::fmt::Write as _;

/// Renders a contiguous core range as a cpuset list (`"4-11"`, `"7"`).
fn cpuset_range(start: u32, len: u32) -> String {
    match len {
        0 => String::new(),
        1 => format!("{start}"),
        _ => format!("{}-{}", start, start + len - 1),
    }
}

/// cpuset strings for a configuration: LS cores packed from CPU 0, BE
/// cores packed after them (the layout a cpuset backend would install).
pub fn cpuset_lists(config: &PairConfig) -> (String, String) {
    (
        cpuset_range(0, config.ls.cores),
        cpuset_range(config.ls.cores, config.be.cores),
    )
}

/// Contiguous way mask of `len` ways starting at bit `start`.
fn way_mask(start: u32, len: u32) -> u64 {
    if len == 0 {
        return 0;
    }
    (((1u128 << len) - 1) << start) as u64
}

/// resctrl `schemata` lines for a configuration on the given node: the LS
/// partition takes the low ways, the BE partition the high ways, with any
/// unallocated ways left to neither (as CAT permits).
pub fn resctrl_schemata(spec: &NodeSpec, config: &PairConfig) -> (String, String) {
    let ls_mask = way_mask(0, config.ls.llc_ways);
    let be_mask = way_mask(spec.total_llc_ways - config.be.llc_ways, config.be.llc_ways);
    (format!("L3:0={ls_mask:x}"), format!("L3:0={be_mask:x}"))
}

/// What happened to a requested configuration change. Production
/// actuators fail: a cpuset/resctrl write can error out or land only
/// partially, and postmortems need the attempt on record either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ActuationOutcome {
    /// The full configuration was installed.
    Applied,
    /// Only part of the configuration landed (`to` records what was
    /// actually installed, not what was requested).
    Partial,
    /// The write failed and the previous configuration stayed in force.
    Failed,
}

/// One recorded configuration change.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AuditEntry {
    /// Time of the change (s since experiment start).
    pub t_s: f64,
    /// Configuration before.
    pub from: PairConfig,
    /// Configuration after.
    pub to: PairConfig,
    /// Who asked (controller name or subsystem).
    pub actor: String,
    /// Whether the change actually landed.
    pub outcome: ActuationOutcome,
}

impl AuditEntry {
    /// Human-readable one-line description of what moved.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        let (f, t) = (&self.from, &self.to);
        if f.ls.cores != t.ls.cores {
            parts.push(format!("LS cores {}→{}", f.ls.cores, t.ls.cores));
        }
        if f.ls.freq_level != t.ls.freq_level {
            parts.push(format!("LS freq F{}→F{}", f.ls.freq_level, t.ls.freq_level));
        }
        if f.ls.llc_ways != t.ls.llc_ways {
            parts.push(format!("LS ways {}→{}", f.ls.llc_ways, t.ls.llc_ways));
        }
        if f.be.freq_level != t.be.freq_level {
            parts.push(format!("BE freq F{}→F{}", f.be.freq_level, t.be.freq_level));
        }
        if parts.is_empty() {
            parts.push("no-op".to_string());
        }
        let mut out = format!("[{:>8.1}s] {}: ", self.t_s, self.actor);
        out.push_str(&parts.join(", "));
        match self.outcome {
            ActuationOutcome::Applied => {}
            ActuationOutcome::Partial => out.push_str(" [partial]"),
            ActuationOutcome::Failed => out.push_str(" [FAILED]"),
        }
        out
    }
}

/// Append-only audit log of configuration changes.
#[derive(Debug, Clone, Default, Serialize)]
pub struct AuditLog {
    entries: Vec<AuditEntry>,
}

impl AuditLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a successful transition (no-ops are skipped).
    pub fn record(&mut self, t_s: f64, actor: &str, from: PairConfig, to: PairConfig) {
        self.record_outcome(t_s, actor, from, to, ActuationOutcome::Applied);
    }

    /// Records a transition attempt with its outcome. Failed and partial
    /// actuations are recorded even when `from == to` (the attempt itself
    /// is the postmortem evidence); clean no-ops are skipped.
    pub fn record_outcome(
        &mut self,
        t_s: f64,
        actor: &str,
        from: PairConfig,
        to: PairConfig,
        outcome: ActuationOutcome,
    ) {
        if from == to && outcome == ActuationOutcome::Applied {
            return;
        }
        self.entries.push(AuditEntry {
            t_s,
            from,
            to,
            actor: actor.to_string(),
            outcome,
        });
    }

    /// Number of recorded attempts that did not fully land.
    pub fn degraded_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.outcome != ActuationOutcome::Applied)
            .count()
    }

    /// All entries in order.
    pub fn entries(&self) -> &[AuditEntry] {
        &self.entries
    }

    /// Number of recorded changes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Changes per simulated second over a window — the actuation-rate
    /// metric operators alarm on (thrashing controllers flap knobs).
    pub fn change_rate_per_s(&self, window_s: f64) -> f64 {
        if window_s <= 0.0 || self.entries.is_empty() {
            return 0.0;
        }
        let end = self.entries.last().expect("non-empty").t_s;
        let start = end - window_s;
        let count = self.entries.iter().filter(|e| e.t_s > start).count();
        count as f64 / window_s
    }

    /// Renders the whole log as text, one line per change.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let _ = writeln!(out, "{}", e.describe());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::Allocation;

    fn cfg(c1: u32, f1: usize, l1: u32, c2: u32, f2: usize, l2: u32) -> PairConfig {
        PairConfig::new(Allocation::new(c1, f1, l1), Allocation::new(c2, f2, l2))
    }

    #[test]
    fn cpuset_lists_pack_cores() {
        let (ls, be) = cpuset_lists(&cfg(8, 0, 10, 12, 0, 10));
        assert_eq!(ls, "0-7");
        assert_eq!(be, "8-19");
        let (ls, be) = cpuset_lists(&cfg(1, 0, 10, 1, 0, 10));
        assert_eq!(ls, "0");
        assert_eq!(be, "1");
    }

    #[test]
    fn schemata_masks_are_disjoint_and_sized() {
        let spec = NodeSpec::xeon_e5_2630_v4();
        let c = cfg(8, 0, 7, 12, 0, 13);
        let (ls, be) = resctrl_schemata(&spec, &c);
        assert_eq!(ls, "L3:0=7f"); // 7 low ways
        let be_mask = u64::from_str_radix(be.strip_prefix("L3:0=").unwrap(), 16).unwrap();
        let ls_mask = 0x7fu64;
        assert_eq!(be_mask.count_ones(), 13);
        assert_eq!(be_mask & ls_mask, 0, "masks must not overlap");
    }

    #[test]
    fn full_way_allocation_renders() {
        let spec = NodeSpec::xeon_e5_2630_v4();
        let c = cfg(10, 0, 19, 10, 0, 1);
        let (ls, be) = resctrl_schemata(&spec, &c);
        assert_eq!(ls, "L3:0=7ffff");
        assert_eq!(be, "L3:0=80000");
    }

    #[test]
    fn audit_records_and_describes_changes() {
        let mut log = AuditLog::new();
        let a = cfg(8, 5, 10, 12, 9, 10);
        let mut b = a;
        b.ls.cores += 1;
        b.be.cores -= 1;
        b.be.freq_level = 7;
        log.record(10.0, "balancer", a, b);
        assert_eq!(log.len(), 1);
        let line = log.entries()[0].describe();
        assert!(line.contains("LS cores 8→9"), "{line}");
        assert!(line.contains("BE freq F9→F7"), "{line}");
        assert!(line.contains("balancer"), "{line}");
        assert_eq!(log.degraded_count(), 0);
    }

    #[test]
    fn failed_and_partial_attempts_are_recorded() {
        let mut log = AuditLog::new();
        let a = cfg(8, 5, 10, 12, 9, 10);
        let mut b = a;
        b.ls.cores += 2;
        b.be.cores -= 2;
        // A failed attempt keeps from == to (nothing landed) but is kept.
        log.record_outcome(1.0, "controller", a, a, ActuationOutcome::Failed);
        log.record_outcome(2.0, "controller", a, b, ActuationOutcome::Partial);
        assert_eq!(log.len(), 2);
        assert_eq!(log.degraded_count(), 2);
        assert!(log.entries()[0].describe().contains("[FAILED]"));
        assert!(log.entries()[1].describe().contains("[partial]"));
    }

    #[test]
    fn noop_transitions_are_skipped() {
        let mut log = AuditLog::new();
        let a = cfg(8, 5, 10, 12, 9, 10);
        log.record(1.0, "controller", a, a);
        assert!(log.is_empty());
    }

    #[test]
    fn change_rate_counts_recent_window() {
        let mut log = AuditLog::new();
        let a = cfg(8, 5, 10, 12, 9, 10);
        let mut b = a;
        for t in 0..10 {
            b.ls.freq_level = (t % 2) + 4;
            log.record(t as f64, "controller", a, b);
        }
        // All 9 non-noop... every t flips level 4/5 alternately vs a's 5:
        // t even -> level 4 (change), t odd -> 5 (no-op vs a).
        assert!(log.change_rate_per_s(10.0) > 0.0);
        assert_eq!(log.change_rate_per_s(0.0), 0.0);
    }

    #[test]
    fn render_emits_one_line_per_change() {
        let mut log = AuditLog::new();
        let a = cfg(8, 5, 10, 12, 9, 10);
        let mut b = a;
        b.ls.llc_ways += 2;
        b.be.llc_ways -= 2;
        log.record(3.0, "search", a, b);
        let text = log.render();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("LS ways 10→12"));
    }
}
