//! A lightweight metrics registry: counters, gauges, and fixed-bucket
//! histograms with no external dependencies.
//!
//! The registry is `Send + Sync` (interior mutability behind a mutex) so
//! cluster runs can feed it from parallel node stepping, and fully
//! deterministic: names are kept sorted and values carry no timestamps,
//! so two identical runs export identical JSON.

use crate::obs::TraceEvent;
use serde::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Default histogram bucket upper bounds — a decade-spanning ladder that
/// covers milliseconds, watts, and counts alike. A final `+inf` bucket
/// is always implicit.
pub const DEFAULT_BUCKETS: [f64; 11] = [
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
];

/// A fixed-bucket histogram with running sum/min/max.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Sorted upper bounds; observations land in the first bucket whose
    /// bound is ≥ the value, or in the implicit overflow bucket.
    bounds: Vec<f64>,
    /// Per-bucket counts (`bounds.len() + 1` entries, last = overflow).
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram over the given upper bounds (sorted and deduplicated;
    /// non-finite bounds are discarded).
    pub fn new(bounds: &[f64]) -> Self {
        let mut bounds: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        bounds.sort_by(|a, b| a.partial_cmp(b).expect("finite bounds compare"));
        bounds.dedup();
        let counts = vec![0; bounds.len() + 1];
        Self {
            bounds,
            counts,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation (non-finite values are dropped).
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Bucket-interpolated quantile estimate (`q` in `[0, 1]`); exact at
    /// the observed min/max, linear within a bucket otherwise.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cumulative + c;
            if (next as f64) >= rank {
                let lower = if i == 0 {
                    self.min
                } else {
                    self.bounds[i - 1].max(self.min)
                };
                let upper = if i < self.bounds.len() {
                    self.bounds[i].min(self.max)
                } else {
                    self.max
                };
                let within = (rank - cumulative as f64) / c as f64;
                return (lower + (upper - lower) * within.clamp(0.0, 1.0))
                    .clamp(self.min, self.max);
            }
            cumulative = next;
        }
        self.max
    }

    /// The bucket upper bounds (the overflow bucket is implicit).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Folds another histogram into this one bucket-by-bucket. Both
    /// histograms must share the same bounds (the merge is the shard →
    /// fleet aggregation step, and shards are built from one template);
    /// returns `false` without mutating anything when they differ.
    pub fn merge(&mut self, other: &Histogram) -> bool {
        if self.bounds != other.bounds {
            return false;
        }
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        true
    }

    /// An owned snapshot for export.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.counts.clone(),
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Streaming count/mean/extrema accumulator — the O(1)-memory summary a
/// shard keeps per channel instead of a full sample log. Merging two
/// accumulators gives exactly the stats of the concatenated streams.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation (non-finite values are dropped, matching
    /// [`Histogram::observe`]).
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another accumulator into this one.
    pub fn merge(&mut self, other: &RunningStats) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// Exported view of one histogram.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (the overflow bucket is implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket counts, `bounds.len() + 1` entries.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: Option<f64>,
    /// Largest observation.
    pub max: Option<f64>,
    /// Mean observation.
    pub mean: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// The registry: named counters, gauges, and histograms behind interior
/// mutability, so one registry can be shared by reference across a run
/// harness, a cluster's parallel node loops, and the caller that
/// exports it afterwards.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        // A poisoned registry only means another thread panicked while
        // recording; the data is still sound for export.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Increments a counter by 1.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Increments a counter by `n`.
    pub fn add(&self, name: &str, n: u64) {
        *self.lock().counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Sets a gauge to `value`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.lock().gauges.insert(name.to_string(), value);
    }

    /// Records a histogram observation; the histogram is created with
    /// [`DEFAULT_BUCKETS`] on first touch.
    pub fn observe(&self, name: &str, value: f64) {
        self.observe_with(name, &DEFAULT_BUCKETS, value);
    }

    /// Records an observation, creating the histogram with the given
    /// bucket bounds on first touch (later calls ignore `bounds`).
    pub fn observe_with(&self, name: &str, bounds: &[f64], value: f64) {
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Folds a pre-aggregated histogram into the named registry
    /// histogram, creating it as an empty clone of `other`'s bounds on
    /// first touch. This is the streaming-aggregation entry point: shards
    /// accumulate locally without taking the registry lock per sample,
    /// then merge once. Returns `false` (registry untouched) on a bucket
    ///-bounds mismatch with an existing histogram.
    pub fn merge_histogram(&self, name: &str, other: &Histogram) -> bool {
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(other.bounds()))
            .merge(other)
    }

    /// Current value of a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    /// Snapshot of one histogram.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.lock().histograms.get(name).map(Histogram::snapshot)
    }

    /// Folds one trace event into the registry — the single place that
    /// maps the event taxonomy onto metric names, shared by every run
    /// harness.
    pub fn observe_event(&self, event: &TraceEvent) {
        match event {
            TraceEvent::TelemetrySample {
                p95_ms,
                power_w,
                be_throughput_norm,
                ..
            } => {
                self.inc("run.intervals");
                self.observe("interval.p95_ms", *p95_ms);
                self.observe("interval.power_w", *power_w);
                self.observe_with(
                    "interval.be_throughput",
                    &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0],
                    *be_throughput_norm,
                );
            }
            TraceEvent::SearchRan {
                model_calls,
                cache_hits,
                cache_misses,
                candidates,
                fallback,
                ..
            } => {
                self.inc("search.runs");
                self.add("search.model_calls", *model_calls);
                self.add("search.candidates", *candidates as u64);
                self.add("predictor.cache_hits", *cache_hits);
                self.add("predictor.cache_misses", *cache_misses);
                if *fallback {
                    self.inc("search.fallbacks");
                }
            }
            TraceEvent::BalancerStep { action, .. } => match action {
                crate::balancer::BalancerAction::Harvest { .. } => self.inc("balancer.harvests"),
                crate::balancer::BalancerAction::Revert { .. } => self.inc("balancer.reverts"),
            },
            TraceEvent::SafeModeEntered { .. } => self.inc("controller.safe_mode_entries"),
            TraceEvent::SafeModeExited { .. } => self.inc("controller.safe_mode_exits"),
            TraceEvent::ActuationRetry {
                attempts,
                recovered,
                ..
            } => {
                self.add("actuation.retries", *attempts as u64);
                if *recovered {
                    self.inc("actuation.retry_successes");
                }
            }
            TraceEvent::ConfigApplied { outcome, .. } => {
                self.inc("actuation.config_changes");
                match outcome {
                    sturgeon_simnode::ActuationOutcome::Applied => {}
                    sturgeon_simnode::ActuationOutcome::Partial => {
                        self.inc("actuation.partial_applies")
                    }
                    sturgeon_simnode::ActuationOutcome::Failed => {
                        self.inc("actuation.failed_applies")
                    }
                }
            }
            TraceEvent::FaultInjected { classes, .. } => {
                self.inc("faults.injected");
                for class in classes {
                    self.add(&format!("faults.{class}"), 1);
                }
            }
            TraceEvent::SearchPruned {
                pruned_candidates,
                pruned_subspaces,
                frontier_reuses,
                ..
            } => {
                self.inc("search.pruned_runs");
                self.add("search.pruned_candidates", *pruned_candidates);
                self.add("search.pruned_subspaces", *pruned_subspaces);
                self.add("search.frontier_reuses", *frontier_reuses);
            }
            TraceEvent::SearchIncremental {
                slices_reused,
                slices_rescanned,
                ..
            } => {
                self.inc("search.incremental_runs");
                self.add("search.incremental_slices_reused", *slices_reused);
                self.add("search.incremental_slices_rescanned", *slices_rescanned);
            }
            TraceEvent::CacheSnapshot {
                entries,
                hits,
                misses,
                ..
            } => {
                self.set_gauge("predictor.cache_entries", *entries as f64);
                self.set_gauge("predictor.cache_hit_total", *hits as f64);
                self.set_gauge("predictor.cache_miss_total", *misses as f64);
            }
            TraceEvent::BudgetReclaimed { reclaimed_w, .. } => {
                self.inc("budget.reclaims");
                self.set_gauge("budget.reclaimed_w", *reclaimed_w);
            }
            TraceEvent::BeMigrated { action, .. } => match *action {
                "assign" => self.inc("placement.assignments"),
                "evict" => self.inc("placement.evictions"),
                _ => self.inc("placement.migrations"),
            },
            TraceEvent::ColdStartPredicted {
                cells,
                rmse_heldout,
                ..
            } => {
                self.inc("scoring.cold_starts");
                self.add("scoring.cold_start_cells", *cells as u64);
                self.set_gauge("scoring.rmse_heldout", *rmse_heldout);
            }
            TraceEvent::SetScored { score, .. } => {
                self.inc("scoring.set_scores");
                self.set_gauge("scoring.last_set_score", *score);
            }
        }
    }

    /// Exports everything as a JSON value tree
    /// (`{"counters": {...}, "gauges": {...}, "histograms": {...}}`).
    pub fn to_json(&self) -> Value {
        let inner = self.lock();
        let counters = Value::Object(
            inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), Value::Number(*v as f64)))
                .collect(),
        );
        let gauges = Value::Object(
            inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), Value::Number(*v)))
                .collect(),
        );
        let histograms = Value::Object(
            inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), serde::Serialize::to_value(&h.snapshot())))
                .collect(),
        );
        Value::Object(vec![
            ("counters".into(), counters),
            ("gauges".into(), gauges),
            ("histograms".into(), histograms),
        ])
    }

    /// The one-page human-readable summary.
    pub fn text_summary(&self) -> String {
        let inner = self.lock();
        let mut out = String::from("== metrics summary ==\n");
        if !inner.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &inner.counters {
                let _ = writeln!(out, "  {k:<32} {v}");
            }
        }
        if !inner.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &inner.gauges {
                let _ = writeln!(out, "  {k:<32} {v:.3}");
            }
        }
        if !inner.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (k, h) in &inner.histograms {
                let _ = writeln!(
                    out,
                    "  {k:<32} n={} mean={:.3} p50={:.3} p95={:.3} max={:.3}",
                    h.count(),
                    h.mean(),
                    h.quantile(0.50),
                    h.quantile(0.95),
                    h.max().unwrap_or(0.0),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let m = MetricsRegistry::new();
        m.inc("a");
        m.add("a", 4);
        m.set_gauge("g", 1.5);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("untouched"), 0);
        assert_eq!(m.gauge("g"), Some(1.5));
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 2.0, 3.0, 50.0, 200.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(200.0));
        assert!((h.sum() - 255.5).abs() < 1e-9);
        let p50 = h.quantile(0.5);
        assert!((1.0..=10.0).contains(&p50), "p50 {p50}");
        assert_eq!(h.quantile(1.0), 200.0);
        // Non-finite observations are dropped.
        h.observe(f64::NAN);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn histogram_merge_matches_single_stream() {
        let bounds = [1.0, 10.0, 100.0];
        let mut whole = Histogram::new(&bounds);
        let mut a = Histogram::new(&bounds);
        let mut b = Histogram::new(&bounds);
        for (i, v) in [0.5, 2.0, 3.0, 50.0, 200.0, 7.0].iter().enumerate() {
            whole.observe(*v);
            if i % 2 == 0 { &mut a } else { &mut b }.observe(*v);
        }
        assert!(a.merge(&b));
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.sum(), whole.sum());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        assert_eq!(a.snapshot().counts, whole.snapshot().counts);
        // Mismatched bounds refuse to merge and leave the target alone.
        let other = Histogram::new(&[5.0]);
        let before = a.snapshot();
        assert!(!a.merge(&other));
        assert_eq!(a.snapshot(), before);
    }

    #[test]
    fn running_stats_merge_matches_single_stream() {
        let mut whole = RunningStats::new();
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for (i, v) in [3.0, -1.0, f64::NAN, 8.5, 0.0].iter().enumerate() {
            whole.observe(*v);
            if i < 2 { &mut a } else { &mut b }.observe(*v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.count(), 4);
        assert_eq!(a.min(), Some(-1.0));
        assert_eq!(a.max(), Some(8.5));
        assert!((a.mean() - 10.5 / 4.0).abs() < 1e-12);
        assert_eq!(RunningStats::new().mean(), 0.0);
        assert_eq!(RunningStats::new().min(), None);
    }

    #[test]
    fn registry_merges_shard_histograms() {
        let m = MetricsRegistry::new();
        let mut shard = Histogram::new(&DEFAULT_BUCKETS);
        shard.observe(3.0);
        shard.observe(40.0);
        assert!(m.merge_histogram("lat", &shard));
        assert!(m.merge_histogram("lat", &shard));
        let snap = m.histogram("lat").unwrap();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 86.0);
        // Bounds mismatch against the existing histogram is rejected.
        assert!(!m.merge_histogram("lat", &Histogram::new(&[1.0])));
        assert_eq!(m.histogram("lat").unwrap().count, 4);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = Histogram::new(&DEFAULT_BUCKETS);
        assert_eq!(h.quantile(0.95), 0.0);
    }

    #[test]
    fn json_export_has_the_three_sections() {
        let m = MetricsRegistry::new();
        m.inc("runs");
        m.set_gauge("load", 0.4);
        m.observe("lat", 3.0);
        let v = m.to_json();
        assert_eq!(v["counters"]["runs"], 1);
        assert_eq!(v["gauges"]["load"], 0.4);
        assert_eq!(v["histograms"]["lat"]["count"], 1);
        let text = m.text_summary();
        assert!(text.contains("runs"));
        assert!(text.contains("lat"));
    }

    #[test]
    fn events_map_onto_stable_metric_names() {
        let m = MetricsRegistry::new();
        m.observe_event(&TraceEvent::TelemetrySample {
            t_s: 1.0,
            qps: 10_000.0,
            p95_ms: 4.0,
            power_w: 70.0,
            be_throughput_norm: 0.6,
        });
        m.observe_event(&TraceEvent::FaultInjected {
            t_s: 1.0,
            classes: vec!["qps_spike", "budget_cut"],
        });
        m.observe_event(&TraceEvent::ActuationRetry {
            t_s: 2.0,
            attempts: 2,
            recovered: true,
        });
        assert_eq!(m.counter("run.intervals"), 1);
        assert_eq!(m.counter("faults.injected"), 1);
        assert_eq!(m.counter("faults.qps_spike"), 1);
        assert_eq!(m.counter("actuation.retries"), 2);
        assert_eq!(m.counter("actuation.retry_successes"), 1);
        assert_eq!(m.histogram("interval.p95_ms").unwrap().count, 1);
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let m = MetricsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        m.inc("hits");
                        m.observe("v", 1.0);
                    }
                });
            }
        });
        assert_eq!(m.counter("hits"), 400);
        assert_eq!(m.histogram("v").unwrap().count, 400);
    }
}
