//! Structured observability: decision traces and a metrics registry.
//!
//! Sturgeon's value lies in *why* the controller picked each
//! `<C1,F1,L1; C2,F2,L2>` configuration; end-of-run aggregates cannot
//! answer that. This module gives every run an optional instrumentation
//! spine:
//!
//! * [`TraceEvent`] — one typed record per controller decision or
//!   harness action (searches, balancer harvests, safe-mode entries,
//!   actuation retries, cache snapshots, per-interval telemetry).
//! * [`TraceSink`] — where events go: [`NullSink`] (default, free),
//!   [`RingSink`] (bounded in-memory buffer for tests), [`JsonlSink`]
//!   (one JSON object per line, for benches and offline analysis).
//! * [`MetricsRegistry`] — counters / gauges / fixed-bucket histograms
//!   derived from the same event stream, exportable as JSON or a
//!   one-page text summary.
//!
//! The layer is zero-cost when disabled: with no sink and no registry
//! attached the harness never constructs an event and the controller
//! never buffers one, so a traced-off run is bit-identical to a pre-
//! observability run (asserted by `tests/observability.rs`).
//!
//! Events deliberately carry no wall-clock fields (durations, machine
//! timestamps): a pinned-seed trace is byte-identical across runs and
//! machines, which makes JSONL traces diffable test artifacts.

mod metrics;
mod trace;

pub use metrics::{Histogram, HistogramSnapshot, MetricsRegistry, RunningStats, DEFAULT_BUCKETS};
pub use trace::{JsonlSink, NullSink, RingSink, SearchReason, TraceEvent, TraceSink};
