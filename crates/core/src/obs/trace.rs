//! Typed decision-trace events and the pluggable sinks they flow into.

use crate::balancer::BalancerAction;
use serde::Serialize;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use sturgeon_simnode::{ActuationOutcome, PairConfig};

/// Why the controller ran a fresh configuration search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SearchReason {
    /// First observation of the run: no prior load to compare against.
    Initial,
    /// The offered load moved past `research_load_delta` (Algorithm 1
    /// line 6).
    LoadChanged,
    /// Slack above β with a balancer-modified configuration installed:
    /// re-optimize for throughput.
    SlackRelease,
}

/// One record of the per-interval decision trace.
///
/// Every variant serializes as `{"VariantName": {fields...}}` — one JSON
/// object per event, with the variant name as the single top-level key.
/// Events carry the interval timestamp `t_s` but never wall-clock
/// durations, so a pinned-seed trace is byte-identical across runs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum TraceEvent {
    /// Ground-truth telemetry of one monitoring interval.
    TelemetrySample {
        /// Interval timestamp (s).
        t_s: f64,
        /// Offered load (QPS).
        qps: f64,
        /// Measured p95 latency (ms).
        p95_ms: f64,
        /// Measured package power (W).
        power_w: f64,
        /// Normalized BE throughput.
        be_throughput_norm: f64,
    },
    /// The §V-B search ran and proposed a configuration.
    SearchRan {
        /// Interval timestamp (s).
        t_s: f64,
        /// Load the search optimized for (QPS).
        qps: f64,
        /// What triggered the search.
        reason: SearchReason,
        /// Prediction queries consumed (cached or not).
        model_calls: u64,
        /// Of `model_calls`, answered from the prediction memo cache.
        cache_hits: u64,
        /// Of `model_calls`, answered by running the models.
        cache_misses: u64,
        /// Candidate configurations fully evaluated.
        candidates: usize,
        /// The configuration the controller will install (`None` only
        /// when even all-to-LS cannot meet QoS and the fallback applies).
        chosen: Option<PairConfig>,
        /// Predicted normalized BE throughput of the chosen config.
        predicted_throughput: f64,
        /// Predicted package power of the installed config (W).
        predicted_power_w: f64,
        /// True when no feasible configuration existed and the
        /// all-to-LS fallback was installed instead.
        fallback: bool,
    },
    /// Algorithm 2 acted: a binary harvest or a partial revert.
    BalancerStep {
        /// Interval timestamp (s).
        t_s: f64,
        /// What moved, which direction, and by how much.
        action: BalancerAction,
        /// The configuration after the step.
        config: PairConfig,
    },
    /// The controller dropped to its safe-mode configuration.
    SafeModeEntered {
        /// Interval timestamp (s).
        t_s: f64,
        /// `"stale_telemetry"` or `"balancer_exhausted"`.
        reason: &'static str,
        /// Load at entry (QPS), which sizes the safe configuration.
        qps: f64,
    },
    /// Fresh telemetry ended a safe-mode episode.
    SafeModeExited {
        /// Interval timestamp (s).
        t_s: f64,
    },
    /// The actuation policy re-applied a failed configuration write.
    ActuationRetry {
        /// Interval timestamp (s).
        t_s: f64,
        /// Re-apply attempts made this interval.
        attempts: u32,
        /// True when a retry got the configuration installed.
        recovered: bool,
    },
    /// A configuration change was pushed to the node.
    ConfigApplied {
        /// Interval timestamp (s).
        t_s: f64,
        /// The configuration believed installed before the change.
        from: PairConfig,
        /// The configuration actually installed after the change.
        to: PairConfig,
        /// How the actuation went.
        outcome: ActuationOutcome,
    },
    /// The fault injector perturbed this interval.
    FaultInjected {
        /// Interval timestamp (s).
        t_s: f64,
        /// Active fault classes (e.g. `"telemetry_dropout"`).
        classes: Vec<&'static str>,
    },
    /// The frontier-pruned engine's accounting for one search: how much
    /// of the configuration space the table bounds eliminated. Emitted
    /// right after `SearchRan` when the pruned strategy is active.
    SearchPruned {
        /// Interval timestamp (s).
        t_s: f64,
        /// Candidate configurations fully evaluated.
        evaluated: usize,
        /// `(F1, L1)` cells skipped by the admissible table bound.
        pruned_candidates: u64,
        /// Whole C1 slices skipped outright.
        pruned_subspaces: u64,
        /// 1 when the incumbent came from the cross-interval frontier
        /// cache, 0 when the bisection warm-up supplied it.
        frontier_reuses: u64,
    },
    /// The incremental re-search accounting for one pruned search: how
    /// many C1 slices the cross-interval memo answered without a rescan.
    /// Emitted right after `SearchPruned` when the pruned strategy is
    /// active; both counters are zero when the search ran the full sweep
    /// (cold start, retrain, budget change, or multi-bucket QPS drift).
    SearchIncremental {
        /// Interval timestamp (s).
        t_s: f64,
        /// C1 slices whose stored outcome was reused verbatim.
        slices_reused: u64,
        /// C1 slices rescanned because their slab envelope changed.
        slices_rescanned: u64,
    },
    /// Prediction-cache occupancy after a search.
    CacheSnapshot {
        /// Interval timestamp (s).
        t_s: f64,
        /// Entries resident across all shards.
        entries: usize,
        /// Lifetime cache hits.
        hits: u64,
        /// Lifetime cache misses.
        misses: u64,
    },
    /// A budget-tree cap changed and the reclaimed apportionment was
    /// pushed into the node controllers.
    BudgetReclaimed {
        /// Interval timestamp (s).
        t_s: f64,
        /// Tree level the cap event targeted (see
        /// [`crate::budget::BudgetLevel::as_str`]).
        level: &'static str,
        /// Index within the level.
        index: usize,
        /// The new cap at that level (W, resolved).
        cap_w: f64,
        /// Watts currently withheld from the leaves fleet-wide.
        reclaimed_w: f64,
    },
    /// The placement engine moved a best-effort job.
    BeMigrated {
        /// Interval timestamp (s).
        t_s: f64,
        /// `"assign"`, `"migrate"`, or `"evict"`.
        action: &'static str,
        /// Source unit (`None` for an assignment from the queue).
        from: Option<usize>,
        /// Target unit (`None` for an eviction to the queue).
        to: Option<usize>,
        /// The job's application.
        be: &'static str,
    },
    /// Collaborative filtering synthesized a cold-start row: the fleet
    /// admitted an app whose profile matrix row was never measured.
    ColdStartPredicted {
        /// Interval timestamp (s; 0 for offline training-time events).
        t_s: f64,
        /// The unprofiled application.
        app: String,
        /// Cells synthesized for its row.
        cells: usize,
        /// Held-out reconstruction RMSE of the throughput plane.
        rmse_heldout: f64,
    },
    /// The learned set scorer valued a co-runner candidate set.
    SetScored {
        /// Interval timestamp (s).
        t_s: f64,
        /// Placement unit the set was evaluated on.
        unit: usize,
        /// Candidate set cardinality.
        k: usize,
        /// The learned `score(S)` value.
        score: f64,
    },
}

impl TraceEvent {
    /// The variant name — the single top-level key of the JSONL record.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::TelemetrySample { .. } => "TelemetrySample",
            TraceEvent::SearchRan { .. } => "SearchRan",
            TraceEvent::BalancerStep { .. } => "BalancerStep",
            TraceEvent::SafeModeEntered { .. } => "SafeModeEntered",
            TraceEvent::SafeModeExited { .. } => "SafeModeExited",
            TraceEvent::ActuationRetry { .. } => "ActuationRetry",
            TraceEvent::ConfigApplied { .. } => "ConfigApplied",
            TraceEvent::FaultInjected { .. } => "FaultInjected",
            TraceEvent::SearchPruned { .. } => "SearchPruned",
            TraceEvent::SearchIncremental { .. } => "SearchIncremental",
            TraceEvent::CacheSnapshot { .. } => "CacheSnapshot",
            TraceEvent::BudgetReclaimed { .. } => "BudgetReclaimed",
            TraceEvent::BeMigrated { .. } => "BeMigrated",
            TraceEvent::ColdStartPredicted { .. } => "ColdStartPredicted",
            TraceEvent::SetScored { .. } => "SetScored",
        }
    }

    /// Every variant name, in a stable order (the validator's schema).
    pub fn kinds() -> [&'static str; 15] {
        [
            "TelemetrySample",
            "SearchRan",
            "BalancerStep",
            "SafeModeEntered",
            "SafeModeExited",
            "ActuationRetry",
            "ConfigApplied",
            "FaultInjected",
            "SearchPruned",
            "SearchIncremental",
            "CacheSnapshot",
            "BudgetReclaimed",
            "BeMigrated",
            "ColdStartPredicted",
            "SetScored",
        ]
    }

    /// The interval timestamp the event belongs to.
    pub fn t_s(&self) -> f64 {
        match self {
            TraceEvent::TelemetrySample { t_s, .. }
            | TraceEvent::SearchRan { t_s, .. }
            | TraceEvent::BalancerStep { t_s, .. }
            | TraceEvent::SafeModeEntered { t_s, .. }
            | TraceEvent::SafeModeExited { t_s }
            | TraceEvent::ActuationRetry { t_s, .. }
            | TraceEvent::ConfigApplied { t_s, .. }
            | TraceEvent::FaultInjected { t_s, .. }
            | TraceEvent::SearchPruned { t_s, .. }
            | TraceEvent::SearchIncremental { t_s, .. }
            | TraceEvent::CacheSnapshot { t_s, .. }
            | TraceEvent::BudgetReclaimed { t_s, .. }
            | TraceEvent::BeMigrated { t_s, .. }
            | TraceEvent::ColdStartPredicted { t_s, .. }
            | TraceEvent::SetScored { t_s, .. } => *t_s,
        }
    }
}

/// Where trace events go. The harness checks [`TraceSink::enabled`]
/// before building any event, so a disabled sink costs one branch per
/// interval and nothing else.
pub trait TraceSink {
    /// Cheap gate: when false the producer skips event construction
    /// entirely. Defaults to true.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one event. Sinks that can fail (e.g. file-backed ones)
    /// must latch the error internally and surface it from
    /// [`TraceSink::flush`] — `record` is on the per-interval hot path.
    fn record(&mut self, event: &TraceEvent);

    /// Flushes buffered output and reports any latched write error.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The default sink: reports itself disabled, so attaching it is
/// indistinguishable from attaching nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: &TraceEvent) {}
}

/// A bounded in-memory buffer keeping the most recent events — the test
/// and debugging sink.
#[derive(Debug, Clone)]
pub struct RingSink {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    /// Events discarded because the buffer was full.
    dropped: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Events currently buffered, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Buffered event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Buffered events of one kind (see [`TraceEvent::kind`]).
    pub fn count_of(&self, kind: &str) -> usize {
        self.events.iter().filter(|e| e.kind() == kind).count()
    }

    /// Drops all buffered events (the drop counter is untouched).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: &TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event.clone());
    }
}

/// Writes one compact JSON object per line — the bench/offline-analysis
/// sink. Write errors latch and surface from [`TraceSink::flush`]; once
/// latched, later events are discarded.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    error: Option<io::Error>,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) a JSONL trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps any writer (e.g. `Vec<u8>` in tests).
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            error: None,
        }
    }

    /// Consumes the sink and returns the underlying writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let line = match serde_json::to_string(event) {
            Ok(line) => line,
            Err(_) => return,
        };
        if let Err(e) = writeln!(self.writer, "{line}") {
            self.error = Some(e);
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balancer::HarvestTarget;

    fn sample(t_s: f64) -> TraceEvent {
        TraceEvent::TelemetrySample {
            t_s,
            qps: 12_000.0,
            p95_ms: 4.5,
            power_w: 80.0,
            be_throughput_norm: 0.5,
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
    }

    #[test]
    fn ring_sink_keeps_the_most_recent_events() {
        let mut ring = RingSink::new(3);
        for t in 0..5 {
            ring.record(&sample(t as f64));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let first = ring.events().next().unwrap();
        assert_eq!(first.t_s(), 2.0);
        assert_eq!(ring.count_of("TelemetrySample"), 3);
        assert_eq!(ring.count_of("SearchRan"), 0);
    }

    #[test]
    fn jsonl_sink_writes_one_object_per_line() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&sample(1.0));
        sink.record(&TraceEvent::BalancerStep {
            t_s: 2.0,
            action: BalancerAction::Harvest {
                target: HarvestTarget::Cores,
                amount: 2,
            },
            config: sturgeon_simnode::PairConfig::new(
                sturgeon_simnode::Allocation::new(10, 5, 10),
                sturgeon_simnode::Allocation::new(10, 5, 10),
            ),
        });
        sink.flush().unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let v = serde_json::from_str(lines[0]).unwrap();
        assert!(v.get("TelemetrySample").is_some());
        assert_eq!(v["TelemetrySample"]["qps"], 12_000.0);
        let v = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(v["BalancerStep"]["action"]["Harvest"]["amount"], 2);
    }

    #[test]
    fn every_kind_is_listed() {
        assert!(TraceEvent::kinds().contains(&sample(0.0).kind()));
        assert_eq!(TraceEvent::kinds().len(), 15);
    }
}
