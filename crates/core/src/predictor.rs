//! The online performance/power predictor (paper §V).
//!
//! Four offline-trained models answer the Fig. 5 questions for a
//! configuration `<C1,F1,L1; C2,F2,L2>` at load Q:
//!
//! 1. **LS performance** — a classifier: does `<C1,F1,L1>` at Q meet the
//!    QoS target? (The paper notes the LS model "only needs to tell
//!    whether the QoS is violated or not", §V-C.)
//! 2. **LS power** — regression: watts drawn by the LS partition.
//! 3. **BE performance** — regression: throughput of `<C2,F2,L2>`.
//! 4. **BE power** — regression: watts drawn by the BE partition.
//!
//! A configuration is *feasible* when the QoS classifier approves it and
//! the summed power prediction (with a conservative margin, mirroring the
//! paper's peak-power training) stays within the budget.
//!
//! The [`evaluation`] submodule reproduces the Fig. 6 / Fig. 7 model-family
//! comparison (DT, KNN, SV, MLP, logistic/linear regression) and the
//! Lasso feature-selection step of §V-A.

use crate::cache::{Family, PredictionCache};
use crate::profiler::{features, ProfileDatasets, FEATURE_DIM};
use crate::tables::{LsSlab, LsSlabs, ModelTables};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use sturgeon_mlkit::{
    Classifier, Dataset, DecisionTreeClassifier, DecisionTreeRegressor, KnnClassifier,
    KnnRegressor, LinearRegression, LogisticRegression, MlError, MlpClassifier, MlpRegressor,
    RandomForestClassifier, RandomForestRegressor, Regressor, SvmClassifier, SvmRegressor,
};
use sturgeon_simnode::{NodeSpec, PairConfig};

/// The model families evaluated in Figs. 6 and 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// CART decision tree.
    DecisionTree,
    /// K-nearest neighbours (k = 5).
    Knn,
    /// Linear support-vector model.
    Sv,
    /// Multi-layer perceptron.
    Mlp,
    /// "LR": logistic regression for classification, linear regression
    /// for regression (the paper's Fig. 6 caption makes the same split).
    Lr,
    /// Random forest — not in the paper's Fig. 6/7 lineup; provided as an
    /// extension (bagging smooths single-tree feasible-island artifacts).
    RandomForest,
}

impl ModelKind {
    /// The five families of the paper's Figs. 6/7, in figure order.
    pub fn all() -> [ModelKind; 5] {
        [
            ModelKind::DecisionTree,
            ModelKind::Knn,
            ModelKind::Sv,
            ModelKind::Mlp,
            ModelKind::Lr,
        ]
    }

    /// The paper's five families plus this crate's extensions.
    pub fn all_extended() -> [ModelKind; 6] {
        [
            ModelKind::DecisionTree,
            ModelKind::Knn,
            ModelKind::Sv,
            ModelKind::Mlp,
            ModelKind::Lr,
            ModelKind::RandomForest,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::DecisionTree => "DT",
            ModelKind::Knn => "KNN",
            ModelKind::Sv => "SV",
            ModelKind::Mlp => "MLP",
            ModelKind::Lr => "LR",
            ModelKind::RandomForest => "RF",
        }
    }
}

/// Instantiates an untrained classifier of the given family.
pub fn make_classifier(kind: ModelKind) -> Box<dyn Classifier + Send + Sync> {
    match kind {
        ModelKind::DecisionTree => Box::new(DecisionTreeClassifier::default()),
        ModelKind::Knn => Box::new(KnnClassifier::new(5)),
        ModelKind::Sv => Box::new(SvmClassifier::default()),
        ModelKind::Mlp => Box::new(MlpClassifier::default()),
        ModelKind::Lr => Box::new(LogisticRegression::new()),
        ModelKind::RandomForest => Box::new(RandomForestClassifier::default()),
    }
}

/// Instantiates an untrained regressor of the given family.
pub fn make_regressor(kind: ModelKind) -> Box<dyn Regressor + Send + Sync> {
    match kind {
        ModelKind::DecisionTree => Box::new(DecisionTreeRegressor::default()),
        ModelKind::Knn => Box::new(KnnRegressor::weighted(5)),
        ModelKind::Sv => Box::new(SvmRegressor::default()),
        ModelKind::Mlp => Box::new(MlpRegressor::default()),
        ModelKind::Lr => Box::new(LinearRegression::new()),
        ModelKind::RandomForest => Box::new(RandomForestRegressor::default()),
    }
}

/// Per-model feature selection for the BE power model (paper §V-A): a BE
/// app's power draw is driven by its pinned cores and frequency, not by
/// its LLC partition, so the `ways` column is masked to a constant before
/// fitting. Leaving the irrelevant dimension in lets it dominate the
/// instance-based models' distance metric and inflates error at the
/// sparsely-sampled corners of the configuration grid.
fn mask_ways(data: &Dataset) -> Result<Dataset, MlError> {
    let x = data
        .x
        .iter()
        .map(|row| {
            let mut r = row.clone();
            if r.len() == FEATURE_DIM {
                r[3] = 0.0;
            }
            r
        })
        .collect();
    Dataset::new(x, data.y.clone())
}

/// Which family backs each of the four models, plus the safety margin.
#[derive(Debug, Clone, Copy)]
pub struct PredictorConfig {
    /// LS QoS classifier family (paper's pick: DT classification).
    pub ls_qos: ModelKind,
    /// LS latency regressor family used as a second opinion on
    /// feasibility (classifiers can hallucinate feasible islands in
    /// sparsely-profiled corners; an instance-based regressor cannot).
    pub ls_latency: ModelKind,
    /// LS power regressor family (paper's pick: KNN regression).
    pub ls_power: ModelKind,
    /// BE throughput regressor family (paper's pick: KNN/MLP regression).
    pub be_perf: ModelKind,
    /// BE power regressor family (paper's pick: KNN regression).
    pub be_power: ModelKind,
    /// Multiplicative headroom on power predictions; mirrors the paper's
    /// conservative peak-power training ("to resolve \[spikes\], Sturgeon
    /// builds power models based on their peak powers conservatively").
    pub power_margin: f64,
    /// Relative load headroom applied when classifying QoS feasibility:
    /// the classifier is queried at `qps · (1 + qos_load_margin)` so the
    /// chosen configuration does not sit exactly on the latency cliff.
    pub qos_load_margin: f64,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            ls_qos: ModelKind::DecisionTree,
            ls_latency: ModelKind::Knn,
            ls_power: ModelKind::Knn,
            be_perf: ModelKind::Knn,
            be_power: ModelKind::Knn,
            power_margin: 0.04,
            qos_load_margin: 0.10,
        }
    }
}

/// The trained predictor. Thread-safe; prediction counts are tracked for
/// the §VII-E overhead accounting.
pub struct PerfPowerPredictor {
    config: PredictorConfig,
    ls_qos: Box<dyn Classifier + Send + Sync>,
    ls_latency: Box<dyn Regressor + Send + Sync>,
    ls_power: Box<dyn Regressor + Send + Sync>,
    be_perf: Box<dyn Regressor + Send + Sync>,
    be_power: Box<dyn Regressor + Send + Sync>,
    static_power_w: f64,
    be_input_level: f64,
    /// Highest LS load seen during profiling; loads beyond the trained
    /// domain (plus 10% headroom) are conservatively declared infeasible
    /// rather than extrapolated.
    max_trained_qps: f64,
    /// QoS target (ms) the latency second-opinion is compared against.
    qos_target_ms: f64,
    predictions: AtomicU64,
    /// Memoized answers for the four hot query families. Keys are exact
    /// by default, so the cache never changes a result, only its cost.
    cache: PredictionCache,
    /// Training generation: bumped by every [`retrain`](Self::retrain),
    /// so table/frontier consumers can detect that their flattened model
    /// state went stale.
    generation: AtomicU64,
    /// Lazily built flattened BE lattices (see [`ModelTables`]), rebuilt
    /// when the generation moves or a different node spec is asked for.
    tables: Mutex<Option<Arc<ModelTables>>>,
    /// How many times [`model_tables`](Self::model_tables) actually built
    /// tables (cache refreshes included). A fleet sharing one predictor
    /// reads this to prove table construction was paid exactly once.
    table_builds: AtomicU64,
    /// Lazily built QPS-slab family for the LS-side models (see
    /// [`LsSlabs`]), invalidated alongside [`Self::tables`] on retrain.
    slabs: Mutex<Option<Arc<LsSlabs>>>,
}

impl std::fmt::Debug for PerfPowerPredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PerfPowerPredictor")
            .field("config", &self.config)
            .field("static_power_w", &self.static_power_w)
            .field("predictions", &self.predictions.load(Ordering::Relaxed))
            .field("cache", &self.cache)
            .finish()
    }
}

impl PerfPowerPredictor {
    /// Trains all four models on profiled datasets.
    ///
    /// `static_power_w` is the node's uncore/static power (needed to turn
    /// two partition predictions into a total), `be_input_level` the BE
    /// app's input-size feature value at runtime.
    pub fn train(
        datasets: &ProfileDatasets,
        config: PredictorConfig,
        static_power_w: f64,
        be_input_level: f64,
        qos_target_ms: f64,
    ) -> Result<Self, MlError> {
        let mut ls_qos = make_classifier(config.ls_qos);
        ls_qos.fit(&datasets.ls_qos)?;
        let mut ls_latency = make_regressor(config.ls_latency);
        ls_latency.fit(&datasets.ls_latency)?;
        let mut ls_power = make_regressor(config.ls_power);
        ls_power.fit(&datasets.ls_power)?;
        let mut be_perf = make_regressor(config.be_perf);
        be_perf.fit(&datasets.be_throughput)?;
        let mut be_power = make_regressor(config.be_power);
        be_power.fit(&mask_ways(&datasets.be_power)?)?;
        // Feature 0 of the LS datasets is the offered load (QPS).
        let max_trained_qps = datasets.ls_qos.x.iter().map(|r| r[0]).fold(0.0, f64::max);
        Ok(Self {
            config,
            ls_qos,
            ls_latency,
            ls_power,
            be_perf,
            be_power,
            static_power_w,
            be_input_level,
            max_trained_qps,
            qos_target_ms,
            predictions: AtomicU64::new(0),
            cache: PredictionCache::new(),
            generation: AtomicU64::new(0),
            tables: Mutex::new(None),
            table_builds: AtomicU64::new(0),
            slabs: Mutex::new(None),
        })
    }

    fn count(&self) {
        self.predictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Total prediction queries answered since construction or the last
    /// reset. Counts every query whether it ran the models or was served
    /// from the memo cache — the stable measure of search work; subtract
    /// [`cache_hits`](Self::cache_hits) for actual model executions.
    pub fn prediction_count(&self) -> u64 {
        self.predictions.load(Ordering::Relaxed)
    }

    /// Resets the query counter (used by the overhead benches).
    pub fn reset_prediction_count(&self) {
        self.predictions.store(0, Ordering::Relaxed);
    }

    /// The prediction memo cache (enable/disable, quantum, accounting).
    pub fn cache(&self) -> &PredictionCache {
        &self.cache
    }

    /// Queries served from the memo cache without running any model.
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Queries that ran the underlying models and populated the cache.
    pub fn cache_misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Turns prediction memoization on or off (on by default). Results
    /// are identical either way; only the cost changes.
    pub fn set_caching(&self, enabled: bool) {
        self.cache.set_enabled(enabled);
    }

    /// Refits every model on fresh datasets in place and invalidates the
    /// memo cache — stale entries would otherwise keep answering for the
    /// old models. Query/hit counters are preserved so §VII-E accounting
    /// can span retraining events.
    pub fn retrain(&mut self, datasets: &ProfileDatasets) -> Result<(), MlError> {
        let mut ls_qos = make_classifier(self.config.ls_qos);
        ls_qos.fit(&datasets.ls_qos)?;
        let mut ls_latency = make_regressor(self.config.ls_latency);
        ls_latency.fit(&datasets.ls_latency)?;
        let mut ls_power = make_regressor(self.config.ls_power);
        ls_power.fit(&datasets.ls_power)?;
        let mut be_perf = make_regressor(self.config.be_perf);
        be_perf.fit(&datasets.be_throughput)?;
        let mut be_power = make_regressor(self.config.be_power);
        be_power.fit(&mask_ways(&datasets.be_power)?)?;
        self.ls_qos = ls_qos;
        self.ls_latency = ls_latency;
        self.ls_power = ls_power;
        self.be_perf = be_perf;
        self.be_power = be_power;
        self.max_trained_qps = datasets.ls_qos.x.iter().map(|r| r[0]).fold(0.0, f64::max);
        self.cache.clear();
        // The flattened tables answer for the old models; bump the
        // generation and drop them alongside the memo entries.
        self.generation.fetch_add(1, Ordering::Relaxed);
        *self.tables.lock() = None;
        *self.slabs.lock() = None;
        Ok(())
    }

    /// The configuration this predictor was built with.
    pub fn config(&self) -> &PredictorConfig {
        &self.config
    }

    /// The training generation (0 after [`train`](Self::train), +1 per
    /// [`retrain`](Self::retrain)).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// The flattened QPS-independent model tables for `spec`, built on
    /// first use and cached until the next retrain (or a different spec).
    ///
    /// Entries are computed by the same paths as
    /// [`be_throughput`](Self::be_throughput) / [`be_power_w`](Self::be_power_w)
    /// — same features, clamps and margins — so a table lookup is
    /// bit-identical to the model call it replaces. The build itself runs
    /// the raw models directly: it neither advances the prediction counter
    /// nor touches the memo cache, keeping §VII-E per-search accounting
    /// clean.
    pub fn model_tables(&self, spec: &NodeSpec) -> Arc<ModelTables> {
        let generation = self.generation();
        let mut slot = self.tables.lock();
        if let Some(tables) = slot.as_ref() {
            if tables.generation() == generation && tables.matches(spec) {
                return Arc::clone(tables);
            }
        }
        let built = Arc::new(ModelTables::build(
            spec,
            generation,
            self.static_power_w,
            |cores, freq_ghz, ways| {
                self.be_perf
                    .predict(&features(self.be_input_level, cores, freq_ghz, ways))
                    .max(0.0)
            },
            |cores, freq_ghz| {
                self.be_power
                    .predict(&features(self.be_input_level, cores, freq_ghz, 0))
                    .max(0.0)
                    * (1.0 + self.config.power_margin)
            },
        ));
        *slot = Some(Arc::clone(&built));
        self.table_builds.fetch_add(1, Ordering::Relaxed);
        built
    }

    /// How many times table construction actually ran (as opposed to
    /// being served from the per-(generation, spec) cache).
    pub fn table_builds(&self) -> u64 {
        self.table_builds.load(Ordering::Relaxed)
    }

    /// The raw (uncounted, unmemoized) compute path behind
    /// [`ls_feasible`](Self::ls_feasible) — domain check, guarded load,
    /// classifier + latency veto. Slab construction runs this directly so
    /// lattice entries are bit-identical to live calls without disturbing
    /// §VII-E per-search accounting.
    fn raw_ls_feasible(&self, cores: u32, freq_ghz: f64, ways: u32, qps: f64) -> bool {
        if qps > 1.1 * self.max_trained_qps {
            return false;
        }
        let guarded = (qps * (1.0 + self.config.qos_load_margin)).min(self.max_trained_qps);
        let x = features(guarded, cores, freq_ghz, ways);
        self.ls_qos.predict_label(&x) && self.ls_latency.predict(&x) <= self.qos_target_ms
    }

    /// The raw compute path behind [`ls_power_w`](Self::ls_power_w) —
    /// same clamp and margin, no counter or memo side effects.
    fn raw_ls_power_w(&self, cores: u32, freq_ghz: f64, ways: u32, qps: f64) -> f64 {
        self.ls_power
            .predict(&features(qps, cores, freq_ghz, ways))
            .max(0.0)
            * (1.0 + self.config.power_margin)
    }

    /// The QPS-slab family for `spec` with the given power-load headroom
    /// baked into its power lattices, created empty on first use and
    /// cached until the next retrain (or a different spec/headroom).
    ///
    /// The bucket width is `max_trained_qps / 64` — 64 slabs across the
    /// profiled load domain — so any realistic load sits within one
    /// bucket of a slab center and the conservative bracket envelope
    /// stays tight.
    pub fn ls_slabs(&self, spec: &NodeSpec, power_load_headroom: f64) -> Arc<LsSlabs> {
        let generation = self.generation();
        let mut slot = self.slabs.lock();
        if let Some(slabs) = slot.as_ref() {
            if slabs.generation() == generation
                && slabs.matches(spec)
                && slabs.headroom().to_bits() == power_load_headroom.to_bits()
            {
                return Arc::clone(slabs);
            }
        }
        let quantum = if self.max_trained_qps > 0.0 {
            self.max_trained_qps / 64.0
        } else {
            1.0
        };
        let fresh = Arc::new(LsSlabs::new(
            spec,
            generation,
            quantum,
            power_load_headroom,
            self.max_trained_qps,
        ));
        *slot = Some(Arc::clone(&fresh));
        fresh
    }

    /// The slab for one bucket of the family, built on first use by
    /// sweeping the raw LS model paths over the full `(C1, F1, L1)`
    /// lattice. Neither the build nor later lookups advance the
    /// prediction counter or touch the memo cache.
    pub fn ls_slab(&self, spec: &NodeSpec, slabs: &LsSlabs, bucket: u64) -> Arc<LsSlab> {
        slabs.slab(
            spec,
            bucket,
            |cores, freq_ghz, ways, qps| self.raw_ls_feasible(cores, freq_ghz, ways, qps),
            |cores, freq_ghz, ways, qps| self.raw_ls_power_w(cores, freq_ghz, ways, qps),
        )
    }

    /// How many LS slab constructions actually ran across the current
    /// family (map hits excluded). Resets when the family is invalidated
    /// by retrain or a spec/headroom change.
    pub fn slab_builds(&self) -> u64 {
        self.slabs.lock().as_ref().map_or(0, |s| s.builds())
    }

    /// Does `<cores, freq, ways>` meet the LS QoS target at `qps`?
    pub fn ls_feasible(&self, cores: u32, freq_ghz: f64, ways: u32, qps: f64) -> bool {
        self.count();
        if qps > 1.1 * self.max_trained_qps {
            // Never extrapolate a QoS promise beyond the profiled domain.
            // Cheap domain check — not worth a cache slot.
            return false;
        }
        // The feasibility verdict consumes two model rounds (classifier +
        // latency veto); the counter tracks queries, so it advances by two
        // whether the verdict is recomputed or memoized.
        self.count();
        self.cache
            .get_or_compute(Family::LsFeasible, cores, freq_ghz, ways, qps, || {
                let guarded = (qps * (1.0 + self.config.qos_load_margin)).min(self.max_trained_qps);
                let x = features(guarded, cores, freq_ghz, ways);
                // Dual check: the classifier answers the paper's yes/no
                // question, and the instance-based latency regressor vetoes
                // feasible islands the tree may hallucinate far from any
                // training sample.
                let ok = self.ls_qos.predict_label(&x)
                    && self.ls_latency.predict(&x) <= self.qos_target_ms;
                f64::from(u8::from(ok))
            })
            != 0.0
    }

    /// Predicted LS partition power (W), margin included.
    pub fn ls_power_w(&self, cores: u32, freq_ghz: f64, ways: u32, qps: f64) -> f64 {
        self.count();
        self.cache
            .get_or_compute(Family::LsPower, cores, freq_ghz, ways, qps, || {
                self.ls_power
                    .predict(&features(qps, cores, freq_ghz, ways))
                    .max(0.0)
                    * (1.0 + self.config.power_margin)
            })
    }

    /// Predicted BE throughput (normalized to the solo run).
    pub fn be_throughput(&self, cores: u32, freq_ghz: f64, ways: u32) -> f64 {
        self.count();
        self.cache
            .get_or_compute(Family::BeThroughput, cores, freq_ghz, ways, 0.0, || {
                self.be_perf
                    .predict(&features(self.be_input_level, cores, freq_ghz, ways))
                    .max(0.0)
            })
    }

    /// Predicted BE partition power (W), margin included.
    ///
    /// The `ways` argument is accepted for feature-layout symmetry but
    /// ignored: the model is trained with the LLC column masked (see
    /// [`mask_ways`]), mirroring the paper's §V-A per-model feature
    /// selection — a BE app's power draw is set by its pinned cores and
    /// frequency, not its cache partition. The cache key normalizes `ways`
    /// to 0 for the same reason, so every way count hits one entry.
    pub fn be_power_w(&self, cores: u32, freq_ghz: f64, _ways: u32) -> f64 {
        self.count();
        self.cache
            .get_or_compute(Family::BePower, cores, freq_ghz, 0, 0.0, || {
                self.be_power
                    .predict(&features(self.be_input_level, cores, freq_ghz, 0))
                    .max(0.0)
                    * (1.0 + self.config.power_margin)
            })
    }

    /// Predicted total node power for a pair configuration (W).
    pub fn total_power_w(&self, config: &PairConfig, spec: &NodeSpec, qps: f64) -> f64 {
        self.static_power_w
            + self.ls_power_w(
                config.ls.cores,
                config.ls.freq_ghz(spec),
                config.ls.llc_ways,
                qps,
            )
            + self.be_power_w(
                config.be.cores,
                config.be.freq_ghz(spec),
                config.be.llc_ways,
            )
    }

    /// Feasibility per the paper's definition: QoS met *and* power within
    /// budget.
    pub fn feasible(&self, config: &PairConfig, spec: &NodeSpec, qps: f64, budget_w: f64) -> bool {
        self.ls_feasible(
            config.ls.cores,
            config.ls.freq_ghz(spec),
            config.ls.llc_ways,
            qps,
        ) && self.total_power_w(config, spec, qps) <= budget_w
    }
}

/// Fig. 6 / Fig. 7 reproduction: scores every model family on held-out
/// data, plus the §V-A Lasso feature-selection step.
pub mod evaluation {
    use super::*;
    use sturgeon_mlkit::metrics::classification_r2;
    use sturgeon_mlkit::{accuracy, r2_score, train_test_split, Lasso};

    /// Held-out scores for one model family.
    #[derive(Debug, Clone, Copy)]
    pub struct FamilyScore {
        /// The family under evaluation.
        pub kind: ModelKind,
        /// LS QoS classifier: R² on the 0/1 labels (Fig. 6, LS panel).
        pub ls_qos_r2: f64,
        /// LS QoS classifier plain accuracy.
        pub ls_qos_accuracy: f64,
        /// BE throughput regressor R² (Fig. 6, BE panel).
        pub be_perf_r2: f64,
        /// LS power regressor R² (Fig. 7, LS panel).
        pub ls_power_r2: f64,
        /// BE power regressor R² (Fig. 7, BE panel).
        pub be_power_r2: f64,
    }

    /// Trains and scores every family on a 70/30 split of the datasets.
    pub fn score_families(
        datasets: &ProfileDatasets,
        seed: u64,
    ) -> Result<Vec<FamilyScore>, MlError> {
        let (qos_tr, qos_te) = train_test_split(&datasets.ls_qos, 0.3, seed)?;
        let (bp_tr, bp_te) = train_test_split(&datasets.be_throughput, 0.3, seed)?;
        let (lp_tr, lp_te) = train_test_split(&datasets.ls_power, 0.3, seed)?;
        let (bpw_tr, bpw_te) = train_test_split(&datasets.be_power, 0.3, seed)?;

        let mut out = Vec::with_capacity(5);
        for kind in ModelKind::all() {
            let mut clf = make_classifier(kind);
            clf.fit(&qos_tr)?;
            let labels: Vec<bool> = qos_te.x.iter().map(|r| clf.predict_label(r)).collect();
            let truth: Vec<bool> = qos_te.y.iter().map(|&v| v == 1.0).collect();
            let ls_qos_r2 = classification_r2(&qos_te.y, &labels);
            let ls_qos_accuracy = accuracy(&truth, &labels);

            let score_reg = |train: &Dataset, test: &Dataset| -> Result<f64, MlError> {
                let mut reg = make_regressor(kind);
                reg.fit(train)?;
                let pred = reg.predict_batch(&test.x);
                Ok(r2_score(&test.y, &pred))
            };
            out.push(FamilyScore {
                kind,
                ls_qos_r2,
                ls_qos_accuracy,
                be_perf_r2: score_reg(&bp_tr, &bp_te)?,
                ls_power_r2: score_reg(&lp_tr, &lp_te)?,
                be_power_r2: score_reg(&bpw_tr, &bpw_te)?,
            });
        }
        Ok(out)
    }

    /// The §V-A feature-selection step: Lasso over an extended candidate
    /// feature set (the four real features plus quadratic distractors);
    /// returns the indices of surviving base features.
    pub fn lasso_select_features(dataset: &Dataset, lambda: f64) -> Result<Vec<usize>, MlError> {
        // Augment with products that *derive* from the base features —
        // Lasso should keep the informative base set and prune the rest.
        let augmented: Vec<Vec<f64>> = dataset
            .x
            .iter()
            .map(|r| {
                let mut v = r.clone();
                v.push(r[1] * r[2]); // cores × freq
                v.push(r[3] * r[3]); // ways²
                v
            })
            .collect();
        let aug = Dataset::new(augmented, dataset.y.clone())?;
        let mut lasso = Lasso::new(lambda);
        lasso.fit(&aug)?;
        Ok(lasso
            .selected_features()
            .into_iter()
            .filter(|&i| i < crate::profiler::FEATURE_DIM)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{Profiler, ProfilerConfig};
    use sturgeon_simnode::{Allocation, NodeSpec, PowerModel};
    use sturgeon_workloads::catalog::{be_app, ls_service, BeAppId, LsServiceId};
    use sturgeon_workloads::env::CoLocationEnv;
    use sturgeon_workloads::interference::InterferenceParams;

    fn env() -> CoLocationEnv {
        CoLocationEnv::new(
            NodeSpec::xeon_e5_2630_v4(),
            PowerModel::default(),
            ls_service(LsServiceId::Memcached),
            be_app(BeAppId::Raytrace),
            InterferenceParams::none(),
            0,
        )
    }

    fn datasets(e: &CoLocationEnv) -> ProfileDatasets {
        Profiler::new(
            e,
            ProfilerConfig {
                ls_samples_per_load: 80,
                ls_load_fractions: vec![0.2, 0.35, 0.5, 0.65, 0.8],
                be_samples: 400,
                seed: 3,
            },
        )
        .collect()
        .unwrap()
    }

    fn predictor(e: &CoLocationEnv) -> PerfPowerPredictor {
        let d = datasets(e);
        PerfPowerPredictor::train(
            &d,
            PredictorConfig::default(),
            e.static_power_w(),
            e.be().params.input_level as f64,
            e.ls().params.qos_target_ms,
        )
        .unwrap()
    }

    #[test]
    fn feasibility_is_safe_and_mostly_accurate() {
        // The predictor is deliberately conservative (load margin +
        // latency second opinion), so it may reject truly-feasible
        // boundary configurations — but a configuration it *approves*
        // must almost always be truly feasible (QoS safety), and overall
        // agreement must stay high.
        let e = env();
        let p = predictor(&e);
        let ls = e.ls();
        let spec = e.spec();
        let mut agree = 0;
        let mut approved = 0;
        let mut approved_safe = 0;
        let mut total = 0;
        for cores in [2u32, 4, 6, 8, 12, 16] {
            for level in [0usize, 3, 6, 9] {
                for ways in [2u32, 6, 10, 14] {
                    for frac in [0.2, 0.4, 0.6, 0.8] {
                        let qps = frac * ls.params.peak_qps;
                        let f = spec.freq_ghz(level);
                        let truth = ls.meets_qos(cores, f, ways, qps);
                        let pred = p.ls_feasible(cores, f, ways, qps);
                        total += 1;
                        if truth == pred {
                            agree += 1;
                        }
                        if pred {
                            approved += 1;
                            if truth {
                                approved_safe += 1;
                            }
                        }
                    }
                }
            }
        }
        let agreement = agree as f64 / total as f64;
        assert!(agreement > 0.8, "agreement only {agreement}");
        let safety = approved_safe as f64 / approved.max(1) as f64;
        assert!(safety > 0.97, "approved-config safety only {safety}");
        assert!(approved > 0, "predictor approved nothing");
    }

    #[test]
    fn power_predictions_close_to_truth() {
        let e = env();
        let p = predictor(&e);
        let spec = e.spec();
        let mut rel_err = 0.0;
        let mut n = 0;
        for cores in [4u32, 8, 12, 16] {
            for level in [1usize, 5, 9] {
                let f = spec.freq_ghz(level);
                let truth = e.be_partition_power(cores, f);
                let pred = p.be_power_w(cores, f, 10);
                rel_err += ((pred - truth) / truth).abs();
                n += 1;
            }
        }
        let mean_err = rel_err / n as f64;
        assert!(mean_err < 0.15, "mean rel err {mean_err}");
    }

    #[test]
    fn throughput_prediction_orders_configs() {
        let e = env();
        let p = predictor(&e);
        // More resources must predict (weakly) more throughput.
        let small = p.be_throughput(6, 1.4, 6);
        let big = p.be_throughput(16, 2.2, 16);
        assert!(big > small);
    }

    #[test]
    fn prediction_counter_increments() {
        let e = env();
        let p = predictor(&e);
        p.reset_prediction_count();
        // ls_feasible consults two models (classifier + latency veto).
        let _ = p.ls_feasible(4, 1.8, 6, 12_000.0);
        let _ = p.be_throughput(10, 2.0, 10);
        assert_eq!(p.prediction_count(), 3);
        let cfg = PairConfig::new(Allocation::new(4, 5, 6), Allocation::new(16, 9, 14));
        let _ = p.total_power_w(&cfg, e.spec(), 12_000.0);
        assert_eq!(p.prediction_count(), 5);
    }

    #[test]
    fn margin_makes_power_conservative() {
        let e = env();
        let d = datasets(&e);
        let tight = PerfPowerPredictor::train(
            &d,
            PredictorConfig {
                power_margin: 0.0,
                ..PredictorConfig::default()
            },
            e.static_power_w(),
            5.0,
            e.ls().params.qos_target_ms,
        )
        .unwrap();
        let wide = PerfPowerPredictor::train(
            &d,
            PredictorConfig {
                power_margin: 0.10,
                ..PredictorConfig::default()
            },
            e.static_power_w(),
            5.0,
            e.ls().params.qos_target_ms,
        )
        .unwrap();
        assert!(wide.be_power_w(10, 2.0, 10) > tight.be_power_w(10, 2.0, 10));
    }

    #[test]
    fn family_scores_cover_all_kinds() {
        let e = env();
        let d = datasets(&e);
        let scores = evaluation::score_families(&d, 11).unwrap();
        assert_eq!(scores.len(), 5);
        // The paper's headline picks should do well in our reproduction
        // too: DT classification for LS QoS, KNN regression for power.
        let dt = scores
            .iter()
            .find(|s| s.kind == ModelKind::DecisionTree)
            .unwrap();
        assert!(
            dt.ls_qos_accuracy > 0.9,
            "DT accuracy {}",
            dt.ls_qos_accuracy
        );
        let knn = scores.iter().find(|s| s.kind == ModelKind::Knn).unwrap();
        assert!(knn.ls_power_r2 > 0.9, "KNN LS-power R² {}", knn.ls_power_r2);
        assert!(knn.be_power_r2 > 0.9, "KNN BE-power R² {}", knn.be_power_r2);
    }

    #[test]
    fn lasso_keeps_informative_features() {
        let e = env();
        let d = datasets(&e);
        let kept = evaluation::lasso_select_features(&d.be_power, 0.01).unwrap();
        // Cores and frequency drive BE power; they must survive selection.
        assert!(kept.contains(&1), "cores dropped: {kept:?}");
        assert!(kept.contains(&2), "frequency dropped: {kept:?}");
    }
}
