//! Result export: turn run artifacts into JSON summaries and CSV
//! time series for external plotting/analysis tools.
//!
//! The paper's figures are bar charts and time series; these helpers emit
//! the exact data a plotting script needs, with stable column orders and
//! no runtime dependencies beyond `serde`.

use crate::experiment::RunResult;
use serde::Serialize;
use std::fmt::Write as _;
use std::io;
use std::path::Path;
use sturgeon_simnode::TelemetryLog;

/// Flat, serializable summary of one run (the telemetry log is exported
/// separately as CSV; embedding it in JSON would bloat the summary).
#[derive(Debug, Clone, Serialize)]
pub struct RunSummary {
    /// Controller display name.
    pub controller: String,
    /// Pair label (e.g. `memcached+raytrace`).
    pub pair: String,
    /// Number of 1 s intervals.
    pub intervals: usize,
    /// QoS guarantee rate.
    pub qos_rate: f64,
    /// Mean normalized BE throughput.
    pub mean_be_throughput: f64,
    /// Fraction of intervals above budget.
    pub overload_fraction: f64,
    /// Peak power (W).
    pub peak_power_w: f64,
    /// Budget (W).
    pub budget_w: f64,
    /// §VII-B verdict.
    pub suffers_overload: bool,
    /// Fig. 9 verdict.
    pub meets_qos_guarantee: bool,
}

impl From<&RunResult> for RunSummary {
    fn from(r: &RunResult) -> Self {
        Self {
            controller: r.controller.to_string(),
            pair: r.pair.clone(),
            intervals: r.log.len(),
            qos_rate: r.qos_rate,
            mean_be_throughput: r.mean_be_throughput,
            overload_fraction: r.overload_fraction,
            peak_power_w: r.peak_power_w,
            budget_w: r.budget_w,
            suffers_overload: r.suffers_overload(),
            meets_qos_guarantee: r.meets_qos_guarantee(),
        }
    }
}

/// Serializes one run summary as pretty JSON.
pub fn run_summary_json(result: &RunResult) -> String {
    serde_json::to_string_pretty(&RunSummary::from(result)).expect("summary serializes")
}

/// Serializes a batch of run summaries as a JSON array.
pub fn batch_summary_json(results: &[RunResult]) -> String {
    let summaries: Vec<RunSummary> = results.iter().map(RunSummary::from).collect();
    serde_json::to_string_pretty(&summaries).expect("summaries serialize")
}

/// Renders a telemetry log as CSV (one row per interval) — the raw
/// material of Fig. 11-style time-series plots.
pub fn telemetry_csv(log: &TelemetryLog) -> String {
    let mut out = String::with_capacity(64 * (log.len() + 1));
    out.push_str(
        "t_s,qps,p95_ms,in_target_fraction,power_w,be_throughput_norm,\
         ls_cores,ls_freq_level,ls_llc_ways,be_cores,be_freq_level,be_llc_ways\n",
    );
    for s in log.samples() {
        writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{}",
            s.t_s,
            s.qps,
            s.p95_ms,
            s.in_target_fraction,
            s.power_w,
            s.be_throughput_norm,
            s.config.ls.cores,
            s.config.ls.freq_level,
            s.config.ls.llc_ways,
            s.config.be.cores,
            s.config.be.freq_level,
            s.config.be.llc_ways
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// Writes a run's summary JSON and telemetry CSV next to each other:
/// `<stem>.json` and `<stem>.csv`.
pub fn export_run(result: &RunResult, stem: &Path) -> io::Result<()> {
    std::fs::write(stem.with_extension("json"), run_summary_json(result))?;
    std::fs::write(stem.with_extension("csv"), telemetry_csv(&result.log))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::StaticReservationController;
    use crate::experiment::{ColocationPair, ExperimentSetup};
    use sturgeon_workloads::catalog::{BeAppId, LsServiceId};
    use sturgeon_workloads::loadgen::LoadProfile;

    fn sample_run() -> RunResult {
        let setup = ExperimentSetup::new(
            ColocationPair::new(LsServiceId::Xapian, BeAppId::Swaptions),
            1,
        );
        setup.run(
            StaticReservationController,
            LoadProfile::Constant { fraction: 0.3 },
            10,
        )
    }

    #[test]
    fn summary_json_roundtrips_fields() {
        let r = sample_run();
        let json = run_summary_json(&r);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["pair"], "xapian+swaptions");
        assert_eq!(v["controller"], "LS-reserved");
        assert_eq!(v["intervals"], 10);
        assert!(v["qos_rate"].as_f64().unwrap() > 0.9);
    }

    #[test]
    fn batch_json_is_an_array() {
        let r = sample_run();
        let json = batch_summary_json(&[r]);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(v.is_array());
        assert_eq!(v.as_array().unwrap().len(), 1);
    }

    #[test]
    fn csv_has_header_plus_one_row_per_interval() {
        let r = sample_run();
        let csv = telemetry_csv(&r.log);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 11);
        assert!(lines[0].starts_with("t_s,qps,p95_ms"));
        assert_eq!(lines[1].split(',').count(), 12);
    }

    #[test]
    fn export_writes_both_files() {
        let r = sample_run();
        let dir = std::env::temp_dir().join("sturgeon_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("run");
        export_run(&r, &stem).unwrap();
        assert!(stem.with_extension("json").exists());
        assert!(stem.with_extension("csv").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
