//! Result export: turn run artifacts into JSON summaries and CSV
//! time series for external plotting/analysis tools.
//!
//! The paper's figures are bar charts and time series; these helpers emit
//! the exact data a plotting script needs, with stable column orders and
//! no runtime dependencies beyond `serde`.

use crate::experiment::RunResult;
use crate::search::SearchStats;
use serde::Serialize;
use std::fmt::Write as _;
use std::io;
use std::path::Path;
use sturgeon_simnode::TelemetryLog;

/// Flat, serializable summary of one run (the telemetry log is exported
/// separately as CSV; embedding it in JSON would bloat the summary).
#[derive(Debug, Clone, Serialize)]
pub struct RunSummary {
    /// Controller display name.
    pub controller: String,
    /// Pair label (e.g. `memcached+raytrace`).
    pub pair: String,
    /// Number of 1 s intervals.
    pub intervals: usize,
    /// QoS guarantee rate.
    pub qos_rate: f64,
    /// Mean normalized BE throughput.
    pub mean_be_throughput: f64,
    /// Fraction of intervals above budget.
    pub overload_fraction: f64,
    /// Peak power (W).
    pub peak_power_w: f64,
    /// Budget (W).
    pub budget_w: f64,
    /// §VII-B verdict.
    pub suffers_overload: bool,
    /// Fig. 9 verdict.
    pub meets_qos_guarantee: bool,
    /// Total injected faults (0 for a fault-free run).
    pub faults_seen: u64,
    /// Actuation retries spent by the hardened policy.
    pub retries: u64,
    /// Times the controller dropped to its safe-mode configuration.
    pub safe_mode_entries: u64,
}

impl From<&RunResult> for RunSummary {
    fn from(r: &RunResult) -> Self {
        Self {
            controller: r.controller.to_string(),
            pair: r.pair.clone(),
            intervals: r.log.len(),
            qos_rate: r.qos_rate,
            mean_be_throughput: r.mean_be_throughput,
            overload_fraction: r.overload_fraction,
            peak_power_w: r.peak_power_w,
            budget_w: r.budget_w,
            suffers_overload: r.suffers_overload(),
            meets_qos_guarantee: r.meets_qos_guarantee(),
            faults_seen: r.faults.faults_seen,
            retries: r.faults.retries,
            safe_mode_entries: r.faults.safe_mode_entries,
        }
    }
}

/// §VII-E overhead accounting for one search: prediction-query volume,
/// memo-cache effectiveness and wall-clock, in export-ready form. Built
/// from a [`SearchStats`] by `tab_overhead` and the overhead benches.
#[derive(Debug, Clone, Serialize)]
pub struct OverheadSummary {
    /// What was measured (e.g. `binary@20%` or `exhaustive@20%`).
    pub label: String,
    /// Prediction queries issued by the search (cached or not) — the
    /// stable measure of search work, identical with caching on or off.
    pub prediction_count: u64,
    /// Queries answered from the memo cache (no model executed).
    pub cache_hits: u64,
    /// Queries that ran the underlying models.
    pub cache_misses: u64,
    /// `cache_hits / (cache_hits + cache_misses)`; 0 when the cache saw
    /// no lookups (disabled, or every query short-circuited).
    pub cache_hit_rate: f64,
    /// Candidate configurations fully evaluated.
    pub candidates: usize,
    /// Wall-clock duration in milliseconds.
    pub duration_ms: f64,
    /// Median per-search latency (µs) across the measured repetitions.
    /// `None` (serialized as `null`) for single-shot rows.
    pub search_p50_us: Option<f64>,
    /// 95th-percentile per-search latency (µs).
    pub search_p95_us: Option<f64>,
    /// 99th-percentile per-search latency (µs).
    pub search_p99_us: Option<f64>,
}

impl OverheadSummary {
    /// Builds the summary from one search's stats.
    pub fn from_stats(label: impl Into<String>, stats: &SearchStats) -> Self {
        let lookups = stats.cache_hits + stats.cache_misses;
        Self {
            label: label.into(),
            prediction_count: stats.model_calls,
            cache_hits: stats.cache_hits,
            cache_misses: stats.cache_misses,
            cache_hit_rate: if lookups > 0 {
                stats.cache_hits as f64 / lookups as f64
            } else {
                0.0
            },
            candidates: stats.candidates,
            duration_ms: stats.duration.as_secs_f64() * 1e3,
            search_p50_us: None,
            search_p95_us: None,
            search_p99_us: None,
        }
    }

    /// Attaches per-search latency percentiles (µs) computed over a
    /// repetition loop — `sorted_us` must be ascending.
    pub fn with_percentiles(mut self, sorted_us: &[f64]) -> Self {
        if !sorted_us.is_empty() {
            self.search_p50_us = Some(crate::scenario::percentile(sorted_us, 0.50));
            self.search_p95_us = Some(crate::scenario::percentile(sorted_us, 0.95));
            self.search_p99_us = Some(crate::scenario::percentile(sorted_us, 0.99));
        }
        self
    }

    /// One aligned text row for the overhead tables.
    pub fn row(&self) -> String {
        let mut row = format!(
            "{:<18} {:>8} queries  {:>8} hits  {:>8} misses  ({:>5.1}% hit)  {:>10.3} ms",
            self.label,
            self.prediction_count,
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate * 100.0,
            self.duration_ms
        );
        if let (Some(p50), Some(p95), Some(p99)) =
            (self.search_p50_us, self.search_p95_us, self.search_p99_us)
        {
            row.push_str(&format!(
                "  p50 {p50:>8.1} us  p95 {p95:>8.1} us  p99 {p99:>8.1} us"
            ));
        }
        row
    }
}

/// Serializes a batch of overhead summaries as a JSON array.
pub fn overhead_summary_json(summaries: &[OverheadSummary]) -> String {
    serde_json::to_string_pretty(&summaries.to_vec()).expect("overhead summaries serialize")
}

/// Serializes one run summary as pretty JSON.
pub fn run_summary_json(result: &RunResult) -> String {
    serde_json::to_string_pretty(&RunSummary::from(result)).expect("summary serializes")
}

/// Serializes a batch of run summaries as a JSON array.
pub fn batch_summary_json(results: &[RunResult]) -> String {
    let summaries: Vec<RunSummary> = results.iter().map(RunSummary::from).collect();
    serde_json::to_string_pretty(&summaries).expect("summaries serialize")
}

/// Renders a telemetry log as CSV (one row per interval) — the raw
/// material of Fig. 11-style time-series plots.
pub fn telemetry_csv(log: &TelemetryLog) -> String {
    let mut out = String::with_capacity(64 * (log.len() + 1));
    out.push_str(
        "t_s,qps,p95_ms,in_target_fraction,power_w,be_throughput_norm,\
         ls_cores,ls_freq_level,ls_llc_ways,be_cores,be_freq_level,be_llc_ways\n",
    );
    for s in log.samples() {
        writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{}",
            s.t_s,
            s.qps,
            s.p95_ms,
            s.in_target_fraction,
            s.power_w,
            s.be_throughput_norm,
            s.config.ls.cores,
            s.config.ls.freq_level,
            s.config.ls.llc_ways,
            s.config.be.cores,
            s.config.be.freq_level,
            s.config.be.llc_ways
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// Writes a run's summary JSON and telemetry CSV next to each other:
/// `<stem>.json` and `<stem>.csv`.
pub fn export_run(result: &RunResult, stem: &Path) -> io::Result<()> {
    std::fs::write(stem.with_extension("json"), run_summary_json(result))?;
    std::fs::write(stem.with_extension("csv"), telemetry_csv(&result.log))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::StaticReservationController;
    use crate::experiment::{ColocationPair, ExperimentSetup};
    use sturgeon_workloads::catalog::{BeAppId, LsServiceId};
    use sturgeon_workloads::loadgen::LoadProfile;

    fn sample_run() -> RunResult {
        let setup = ExperimentSetup::new(
            ColocationPair::new(LsServiceId::Xapian, BeAppId::Swaptions),
            1,
        );
        setup
            .runner()
            .controller(StaticReservationController)
            .load(LoadProfile::Constant { fraction: 0.3 })
            .intervals(10)
            .go()
            .unwrap()
    }

    #[test]
    fn summary_json_roundtrips_fields() {
        let r = sample_run();
        let json = run_summary_json(&r);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["pair"], "xapian+swaptions");
        assert_eq!(v["controller"], "LS-reserved");
        assert_eq!(v["intervals"], 10);
        assert!(v["qos_rate"].as_f64().unwrap() > 0.9);
        // Fault counters surface in the summary and are zero for a
        // fault-free run.
        assert_eq!(v["faults_seen"], 0);
        assert_eq!(v["retries"], 0);
        assert_eq!(v["safe_mode_entries"], 0);
    }

    #[test]
    fn batch_json_is_an_array() {
        let r = sample_run();
        let json = batch_summary_json(&[r]);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(v.is_array());
        assert_eq!(v.as_array().unwrap().len(), 1);
    }

    #[test]
    fn csv_has_header_plus_one_row_per_interval() {
        let r = sample_run();
        let csv = telemetry_csv(&r.log);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 11);
        assert!(lines[0].starts_with("t_s,qps,p95_ms"));
        assert_eq!(lines[1].split(',').count(), 12);
    }

    #[test]
    fn overhead_summary_computes_hit_rate() {
        let stats = SearchStats {
            model_calls: 100,
            candidates: 7,
            duration: std::time::Duration::from_millis(3),
            cache_hits: 60,
            cache_misses: 20,
            ..SearchStats::default()
        };
        let s = OverheadSummary::from_stats("binary@20%", &stats);
        assert_eq!(s.prediction_count, 100);
        assert_eq!(s.cache_hits, 60);
        assert_eq!(s.cache_misses, 20);
        assert!((s.cache_hit_rate - 0.75).abs() < 1e-12);
        assert!((s.duration_ms - 3.0).abs() < 0.5);
        let row = s.row();
        assert!(row.contains("binary@20%"));
        assert!(row.contains("60"));
        // No lookups → rate 0, not NaN.
        let empty = OverheadSummary::from_stats("x", &SearchStats::default());
        assert_eq!(empty.cache_hit_rate, 0.0);
        // JSON export round-trips the fields.
        let json = overhead_summary_json(&[s]);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v[0]["prediction_count"], 100);
        assert_eq!(v[0]["cache_hits"], 60);
    }

    #[test]
    fn export_writes_both_files() {
        let r = sample_run();
        let dir = std::env::temp_dir().join("sturgeon_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("run");
        export_run(&r, &stem).unwrap();
        assert!(stem.with_extension("json").exists());
        assert!(stem.with_extension("csv").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
