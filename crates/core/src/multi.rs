//! Multi-application Sturgeon: several LS services and several BE
//! applications on one node.
//!
//! The paper's §V-B closes with: "The algorithm can be extended to
//! support multiple LS/BE applications by independently searching the
//! configuration for each application." This module implements that
//! extension end to end:
//!
//! * [`MultiProfiler`] — offline profiling of every application on the
//!   multi-app environment;
//! * [`LsModelSet`] / [`BeModelSet`] — per-application predictor bundles
//!   (the same DT-classifier + KNN-regressor recipe the pairwise
//!   predictor uses);
//! * [`MultiSearch`] — per-LS "just enough" binary searches (independent,
//!   as the paper prescribes), followed by a greedy marginal-utility
//!   split of the leftover cores/ways among the BE applications and a
//!   water-filling frequency assignment under the shared power budget;
//! * [`MultiSturgeonController`] — the Algorithm 1 loop generalized to a
//!   vector of slacks, with a lightweight harvest step when any service
//!   violates at unchanged load.

use crate::predictor::{make_classifier, make_regressor, PredictorConfig};
use crate::profiler::features;
use crate::scoring::SetScorer;
use crate::search::{greatest_satisfying, least_satisfying};
use crate::tables::BeLattice;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use sturgeon_mlkit::{Classifier, Dataset, MlError, Regressor};
use sturgeon_simnode::{Allocation, NodeSpec};
use sturgeon_workloads::multienv::{MultiColocationEnv, MultiConfig, MultiObservation};

/// Per-LS-service trained models: QoS classifier + latency second opinion
/// + partition power.
pub struct LsModelSet {
    qos: Box<dyn Classifier + Send + Sync>,
    latency: Box<dyn Regressor + Send + Sync>,
    power: Box<dyn Regressor + Send + Sync>,
    qos_target_ms: f64,
    qos_load_margin: f64,
    max_trained_qps: f64,
}

impl std::fmt::Debug for LsModelSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LsModelSet")
            .field("qos_target_ms", &self.qos_target_ms)
            .field("max_trained_qps", &self.max_trained_qps)
            .finish()
    }
}

impl LsModelSet {
    /// Predicted feasibility at a load (with the usual guard margin).
    pub fn feasible(&self, cores: u32, freq_ghz: f64, ways: u32, qps: f64) -> bool {
        if qps > 1.1 * self.max_trained_qps {
            return false;
        }
        let guarded = (qps * (1.0 + self.qos_load_margin)).min(self.max_trained_qps);
        let x = features(guarded, cores, freq_ghz, ways);
        self.qos.predict_label(&x) && self.latency.predict(&x) <= self.qos_target_ms
    }

    /// Predicted partition power (W).
    pub fn power_w(&self, cores: u32, freq_ghz: f64, ways: u32, qps: f64) -> f64 {
        self.power
            .predict(&features(qps, cores, freq_ghz, ways))
            .max(0.0)
    }
}

/// Per-BE-application trained models: throughput + partition power.
pub struct BeModelSet {
    perf: Box<dyn Regressor + Send + Sync>,
    power: Box<dyn Regressor + Send + Sync>,
    input_level: f64,
    /// Dense `(cores, level, ways)` flattening of both regressors,
    /// built once at train time. On-lattice queries — which is all the
    /// water-fill and greedy-split search ever issues — become two array
    /// index computations instead of tree/KNN walks; off-lattice queries
    /// fall through to the live models.
    lattice: Option<BeLattice>,
}

impl std::fmt::Debug for BeModelSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BeModelSet")
            .field("input_level", &self.input_level)
            .finish()
    }
}

impl BeModelSet {
    /// Predicted normalized throughput.
    pub fn throughput(&self, cores: u32, freq_ghz: f64, ways: u32) -> f64 {
        if let Some(lattice) = &self.lattice {
            if let Some(t) = lattice.throughput(cores, freq_ghz, ways) {
                return t;
            }
        }
        self.perf
            .predict(&features(self.input_level, cores, freq_ghz, ways))
            .max(0.0)
    }

    /// Predicted partition power (W).
    pub fn power_w(&self, cores: u32, freq_ghz: f64, ways: u32) -> f64 {
        if let Some(lattice) = &self.lattice {
            if let Some(p) = lattice.power_w(cores, freq_ghz, ways) {
                return p;
            }
        }
        self.power
            .predict(&features(self.input_level, cores, freq_ghz, ways))
            .max(0.0)
    }
}

/// Offline profiling of a multi-application environment.
#[derive(Debug, Clone)]
pub struct MultiProfilerConfig {
    /// Random configurations sampled per load level per LS service.
    pub ls_samples_per_load: usize,
    /// Load fractions swept per LS service.
    pub ls_load_fractions: Vec<f64>,
    /// Random configurations sampled per BE application.
    pub be_samples: usize,
    /// Sampler seed.
    pub seed: u64,
}

impl Default for MultiProfilerConfig {
    fn default() -> Self {
        Self {
            ls_samples_per_load: 120,
            ls_load_fractions: (1..=19).map(|i| i as f64 / 20.0).collect(),
            be_samples: 1200,
            seed: 0xA11,
        }
    }
}

/// Profiles and trains per-application model sets.
#[derive(Debug)]
pub struct MultiProfiler<'e> {
    env: &'e MultiColocationEnv,
    config: MultiProfilerConfig,
}

impl<'e> MultiProfiler<'e> {
    /// A profiler over the environment.
    pub fn new(env: &'e MultiColocationEnv, config: MultiProfilerConfig) -> Self {
        Self { env, config }
    }

    /// Trains model sets for every application.
    pub fn train(
        &self,
        predictor: PredictorConfig,
    ) -> Result<(Vec<LsModelSet>, Vec<BeModelSet>), MlError> {
        let spec = self.env.spec();
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        let mut ls_sets = Vec::with_capacity(self.env.ls_models().len());
        for (idx, model) in self.env.ls_models().iter().enumerate() {
            let mut x = Vec::new();
            let mut y_qos = Vec::new();
            let mut y_lat = Vec::new();
            let mut y_pow = Vec::new();
            let target = model.params.qos_target_ms;
            for &frac in &self.config.ls_load_fractions {
                let qps = frac * model.params.peak_qps;
                for _ in 0..self.config.ls_samples_per_load {
                    let alloc = Allocation::new(
                        rng.gen_range(1..spec.total_cores),
                        rng.gen_range(0..=spec.max_freq_level()),
                        rng.gen_range(1..spec.total_llc_ways),
                    );
                    let obs = self.env.profile_ls(idx, &alloc, qps);
                    x.push(features(
                        qps,
                        alloc.cores,
                        alloc.freq_ghz(spec),
                        alloc.llc_ways,
                    ));
                    y_qos.push(if obs.p95_ms <= target { 1.0 } else { 0.0 });
                    y_lat.push(obs.p95_ms.min(8.0 * target));
                    y_pow.push(self.env.ls_partition_power(idx, &alloc, qps));
                }
            }
            let qos_data = Dataset::new(x.clone(), y_qos)?;
            let lat_data = Dataset::new(x.clone(), y_lat)?;
            let pow_data = Dataset::new(x, y_pow)?;
            let mut qos = make_classifier(predictor.ls_qos);
            qos.fit(&qos_data)?;
            let mut latency = make_regressor(predictor.ls_latency);
            latency.fit(&lat_data)?;
            let mut power = make_regressor(predictor.ls_power);
            power.fit(&pow_data)?;
            let max_trained_qps = qos_data.x.iter().map(|r| r[0]).fold(0.0, f64::max);
            ls_sets.push(LsModelSet {
                qos,
                latency,
                power,
                qos_target_ms: target,
                qos_load_margin: predictor.qos_load_margin,
                max_trained_qps,
            });
        }

        let mut be_sets = Vec::with_capacity(self.env.be_models().len());
        for (idx, model) in self.env.be_models().iter().enumerate() {
            let input_level = model.params.input_level as f64;
            let mut x = Vec::new();
            let mut y_perf = Vec::new();
            let mut y_pow = Vec::new();
            for _ in 0..self.config.be_samples {
                let alloc = Allocation::new(
                    rng.gen_range(1..spec.total_cores),
                    rng.gen_range(0..=spec.max_freq_level()),
                    rng.gen_range(1..spec.total_llc_ways),
                );
                let f = alloc.freq_ghz(spec);
                x.push(features(input_level, alloc.cores, f, alloc.llc_ways));
                y_perf.push(model.normalized_throughput(alloc.cores, f, alloc.llc_ways));
                y_pow.push(self.env.be_partition_power(idx, &alloc));
            }
            let perf_data = Dataset::new(x.clone(), y_perf)?;
            let pow_data = Dataset::new(x, y_pow)?;
            let mut perf = make_regressor(predictor.be_perf);
            perf.fit(&perf_data)?;
            let mut power = make_regressor(predictor.be_power);
            power.fit(&pow_data)?;
            // Flatten both regressors over the node's full lattice so the
            // search loops hit arrays, not models. The evaluators are the
            // accessors' own fall-through paths, so tabled and live
            // answers are bit-identical.
            let lattice = BeLattice::build(
                spec,
                |c, ghz, w| perf.predict(&features(input_level, c, ghz, w)).max(0.0),
                |c, ghz, w| power.predict(&features(input_level, c, ghz, w)).max(0.0),
            );
            be_sets.push(BeModelSet {
                perf,
                power,
                input_level,
                lattice: Some(lattice),
            });
        }

        Ok((ls_sets, be_sets))
    }
}

/// The multi-application configuration search.
#[derive(Debug)]
pub struct MultiSearch<'m> {
    spec: NodeSpec,
    budget_w: f64,
    static_power_w: f64,
    ls: &'m [LsModelSet],
    be: &'m [BeModelSet],
    /// Power drift headroom, as in the pairwise search.
    power_load_headroom: f64,
    /// Learned co-runner set scorer plus the BE app names (row order of
    /// `be`); drives [`MultiSearch::best_admitted_config`].
    scoring: Option<(&'m SetScorer, Vec<String>)>,
}

impl<'m> MultiSearch<'m> {
    /// Builds the searcher.
    pub fn new(
        spec: NodeSpec,
        budget_w: f64,
        static_power_w: f64,
        ls: &'m [LsModelSet],
        be: &'m [BeModelSet],
    ) -> Self {
        Self {
            spec,
            budget_w,
            static_power_w,
            ls,
            be,
            power_load_headroom: 0.08,
            scoring: None,
        }
    }

    /// Attaches the learned set scorer; `names` must parallel the `be`
    /// model sets. Enables subset admission in
    /// [`MultiSearch::best_admitted_config`].
    pub fn with_set_scorer(mut self, scorer: &'m SetScorer, names: Vec<String>) -> Self {
        assert_eq!(names.len(), self.be.len(), "one name per BE model set");
        self.scoring = Some((scorer, names));
        self
    }

    /// Consistency-probed feasibility: genuine feasible points stay
    /// feasible with one more core, way or frequency step (performance is
    /// monotone); isolated classifier islands fail this and are rejected,
    /// exactly as in the pairwise search.
    fn trusted(&self, idx: usize, cores: u32, level: usize, ways: u32, qps: f64) -> bool {
        let m = &self.ls[idx];
        let f = self.spec.freq_ghz(level);
        if !m.feasible(cores, f, ways, qps) {
            return false;
        }
        let top = self.spec.max_freq_level();
        if level < top && !m.feasible(cores, self.spec.freq_ghz(level + 1), ways, qps) {
            return false;
        }
        if ways < self.spec.total_llc_ways && !m.feasible(cores, f, ways + 1, qps) {
            return false;
        }
        if cores < self.spec.total_cores && !m.feasible(cores + 1, f, ways, qps) {
            return false;
        }
        true
    }

    /// Minimal "just enough" allocation for LS `idx` at `qps`, found by
    /// the paper's independent binary searches (C → L → F at the node's
    /// remaining capacity ceilings). `None` when infeasible even with the
    /// given ceilings.
    fn just_enough_ls(
        &self,
        idx: usize,
        qps: f64,
        max_cores: u32,
        max_ways: u32,
    ) -> Option<Allocation> {
        let top = self.spec.max_freq_level();
        let cores = least_satisfying(1, max_cores, |c| self.trusted(idx, c, top, max_ways, qps))?;
        let ways = least_satisfying(1, max_ways, |l| self.trusted(idx, cores, top, l, qps))?;
        let level = least_satisfying(0, top as u32, |f| {
            self.trusted(idx, cores, f as usize, ways, qps)
        })? as usize;
        Some(Allocation::new(cores, level, ways))
    }

    /// Runs the full multi-application search. Returns `None` when the LS
    /// services alone cannot fit on the node.
    pub fn best_config(&self, qps: &[f64]) -> Option<MultiConfig> {
        self.config_for(qps, &vec![true; self.be.len()])
    }

    /// Subset admission: with a set scorer attached, every non-empty
    /// subset `S` of the BE applications is searched with the others
    /// parked on the mandatory minimal allocation, and valued
    ///
    /// ```text
    /// value(S) = Σ_{i∈S} tput_i(config_S) · score(S) / |S|
    /// ```
    ///
    /// — predicted partition throughputs discounted by the learned mean
    /// per-job contention efficiency of *that mix*. Returns the best
    /// `(config, admitted, value)`; without a scorer it degrades to the
    /// plain all-admitted search. `None` when even the LS services don't
    /// fit.
    pub fn best_admitted_config(&self, qps: &[f64]) -> Option<(MultiConfig, Vec<bool>, f64)> {
        let n = self.be.len();
        let Some((scorer, names)) = &self.scoring else {
            let admitted = vec![true; n];
            let cfg = self.config_for(qps, &admitted)?;
            let value = self.admitted_throughput(&cfg, &admitted);
            return Some((cfg, admitted, value));
        };
        assert!(n <= 16, "subset admission enumerates 2^n candidate sets");
        let mut best: Option<(MultiConfig, Vec<bool>, f64)> = None;
        for mask in 1u32..(1u32 << n) {
            let admitted: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            let Some(cfg) = self.config_for(qps, &admitted) else {
                continue;
            };
            let set: Vec<&str> = (0..n)
                .filter(|&i| admitted[i])
                .map(|i| names[i].as_str())
                .collect();
            let factor = scorer.score(&set) / set.len() as f64;
            let value = self.admitted_throughput(&cfg, &admitted) * factor;
            if best.as_ref().is_none_or(|&(_, _, v)| value > v) {
                best = Some((cfg, admitted, value));
            }
        }
        best
    }

    /// Sum of predicted partition throughputs over the admitted apps.
    fn admitted_throughput(&self, cfg: &MultiConfig, admitted: &[bool]) -> f64 {
        cfg.be
            .iter()
            .enumerate()
            .filter(|&(i, _)| admitted[i])
            .map(|(i, a)| self.be[i].throughput(a.cores, a.freq_ghz(&self.spec), a.llc_ways))
            .sum()
    }

    /// The search with an admission mask: parked (non-admitted) BE apps
    /// keep the mandatory minimal `(1 core, level 0, 1 way)` partition
    /// and receive no spare resources or frequency steps. All-admitted
    /// is bit-identical to the historical `best_config`.
    fn config_for(&self, qps: &[f64], admitted: &[bool]) -> Option<MultiConfig> {
        assert_eq!(qps.len(), self.ls.len());
        assert_eq!(admitted.len(), self.be.len());
        debug_assert!(admitted.iter().any(|&a| a), "at least one admitted app");
        let n_be = self.be.len() as u32;

        // Phase 1: independent just-enough searches per LS service, each
        // constrained by what the previous services left behind.
        let mut remaining_cores = self.spec.total_cores;
        let mut remaining_ways = self.spec.total_llc_ways;
        let mut ls_allocs = Vec::with_capacity(self.ls.len());
        for (idx, &q) in qps.iter().enumerate() {
            let max_cores = remaining_cores.checked_sub(n_be)?;
            let max_ways = remaining_ways.checked_sub(n_be)?;
            if max_cores == 0 || max_ways == 0 {
                return None;
            }
            let alloc = self.just_enough_ls(idx, q, max_cores, max_ways)?;
            remaining_cores -= alloc.cores;
            remaining_ways -= alloc.llc_ways;
            ls_allocs.push(alloc);
        }

        // Phase 2: greedy marginal split of leftover cores/ways among the
        // BE applications (reference frequency: mid level). The marginal
        // gains of each step are independent per BE, so the candidate
        // enumeration fans out across the rayon pool; the winner selection
        // stays sequential and keeps the serial tie-breaking (last max).
        let mid = self.spec.max_freq_level() / 2;
        let f_mid = self.spec.freq_ghz(mid);
        let mut be_allocs: Vec<Allocation> = (0..self.be.len())
            .map(|_| Allocation::new(1, 0, 1))
            .collect();
        let mut spare_cores = remaining_cores - n_be;
        let mut spare_ways = remaining_ways - n_be;
        while spare_cores > 0 {
            let best = (0..self.be.len())
                .into_par_iter()
                .map(|i| {
                    let g = if admitted[i] {
                        self.marginal_core_gain(i, &be_allocs[i], f_mid)
                    } else {
                        f64::NEG_INFINITY
                    };
                    (i, g)
                })
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("at least one BE")
                .0;
            be_allocs[best].cores += 1;
            spare_cores -= 1;
        }
        while spare_ways > 0 {
            let best = (0..self.be.len())
                .into_par_iter()
                .map(|i| {
                    let g = if admitted[i] {
                        self.marginal_way_gain(i, &be_allocs[i], f_mid)
                    } else {
                        f64::NEG_INFINITY
                    };
                    (i, g)
                })
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("at least one BE")
                .0;
            be_allocs[best].llc_ways += 1;
            spare_ways -= 1;
        }

        // Phase 3: water-fill frequencies under the power budget.
        let qps_power: Vec<f64> = qps
            .iter()
            .map(|q| q * (1.0 + self.power_load_headroom))
            .collect();
        let ls_power: f64 = ls_allocs
            .iter()
            .enumerate()
            .map(|(i, a)| {
                self.ls[i].power_w(a.cores, a.freq_ghz(&self.spec), a.llc_ways, qps_power[i])
            })
            .sum();
        let mut headroom = self.budget_w - self.static_power_w - ls_power;
        let mut be_power: Vec<f64> = be_allocs
            .iter()
            .enumerate()
            .map(|(i, a)| self.be[i].power_w(a.cores, a.freq_ghz(&self.spec), a.llc_ways))
            .collect();
        headroom -= be_power.iter().sum::<f64>();
        if headroom < 0.0 {
            // Even minimum frequencies overshoot: shrink BE partitions to
            // the bone (the LS side is non-negotiable).
            for a in &mut be_allocs {
                a.cores = 1;
                a.llc_ways = 1;
                a.freq_level = 0;
            }
        } else {
            let top = self.spec.max_freq_level();
            loop {
                // Candidate +1-level steps, scored by Δthroughput / ΔW.
                // Each candidate costs three model evaluations, so the scan
                // runs across the rayon pool; the in-order sequential
                // reduction preserves the serial first-best-wins rule.
                let steps: Vec<Option<(usize, f64, f64)>> = (0..self.be.len())
                    .into_par_iter()
                    .map(|i| {
                        let a = &be_allocs[i];
                        if !admitted[i] || a.freq_level >= top {
                            return None;
                        }
                        let f_next = self.spec.freq_ghz(a.freq_level + 1);
                        let f_cur = self.spec.freq_ghz(a.freq_level);
                        let dp = self.be[i].power_w(a.cores, f_next, a.llc_ways) - be_power[i];
                        if dp > headroom {
                            return None;
                        }
                        let dt = self.be[i].throughput(a.cores, f_next, a.llc_ways)
                            - self.be[i].throughput(a.cores, f_cur, a.llc_ways);
                        Some((i, dt / dp.max(1e-6), dp))
                    })
                    .collect();
                let mut best: Option<(usize, f64, f64)> = None;
                for (i, score, dp) in steps.into_iter().flatten() {
                    if best.is_none_or(|(_, s, _)| score > s) {
                        best = Some((i, score, dp));
                    }
                }
                let Some((i, _, dp)) = best else { break };
                be_allocs[i].freq_level += 1;
                be_power[i] += dp;
                headroom -= dp;
            }
        }

        let config = MultiConfig {
            ls: ls_allocs,
            be: be_allocs,
        };
        debug_assert!(config.validate(&self.spec).is_ok());
        Some(config)
    }

    fn marginal_core_gain(&self, idx: usize, a: &Allocation, f: f64) -> f64 {
        self.be[idx].throughput(a.cores + 1, f, a.llc_ways)
            - self.be[idx].throughput(a.cores, f, a.llc_ways)
    }

    fn marginal_way_gain(&self, idx: usize, a: &Allocation, f: f64) -> f64 {
        self.be[idx].throughput(a.cores, f, a.llc_ways + 1)
            - self.be[idx].throughput(a.cores, f, a.llc_ways)
    }

    /// Maximum feasible frequency for a single BE partition given a fixed
    /// remainder of the budget (utility for the controller's harvest path).
    pub fn max_be_level_within(&self, idx: usize, alloc: &Allocation, budget_w: f64) -> usize {
        let top = self.spec.max_freq_level();
        greatest_satisfying(0, top as u32, |f| {
            self.be[idx].power_w(alloc.cores, self.spec.freq_ghz(f as usize), alloc.llc_ways)
                <= budget_w
        })
        .map_or(0, |f| f as usize)
    }
}

/// The generalized Algorithm 1 controller for multi-application nodes.
#[derive(Debug)]
pub struct MultiSturgeonController {
    spec: NodeSpec,
    budget_w: f64,
    static_power_w: f64,
    ls: Vec<LsModelSet>,
    be: Vec<BeModelSet>,
    alpha: f64,
    research_load_delta: f64,
    last_search_qps: Option<Vec<f64>>,
    searches: u64,
    harvests: u64,
}

impl MultiSturgeonController {
    /// Builds the controller from trained per-application model sets.
    pub fn new(
        spec: NodeSpec,
        budget_w: f64,
        static_power_w: f64,
        ls: Vec<LsModelSet>,
        be: Vec<BeModelSet>,
    ) -> Self {
        Self {
            spec,
            budget_w,
            static_power_w,
            ls,
            be,
            alpha: 0.10,
            research_load_delta: 0.05,
            last_search_qps: None,
            searches: 0,
            harvests: 0,
        }
    }

    /// Initial configuration: LS services split the node evenly; BE
    /// partitions hold the single mandatory core/way at minimum frequency.
    pub fn initial_config(&self) -> MultiConfig {
        let n_ls = self.ls.len() as u32;
        let n_be = self.be.len() as u32;
        let ls_cores = (self.spec.total_cores - n_be) / n_ls;
        let ls_ways = (self.spec.total_llc_ways - n_be) / n_ls;
        let mut config = MultiConfig {
            ls: (0..n_ls)
                .map(|_| Allocation::new(ls_cores, self.spec.max_freq_level(), ls_ways))
                .collect(),
            be: (0..n_be).map(|_| Allocation::new(1, 0, 1)).collect(),
        };
        // Distribute any remainder to the first LS service.
        let used_cores = config.total_cores();
        let used_ways = config.total_ways();
        config.ls[0].cores += self.spec.total_cores - used_cores;
        config.ls[0].llc_ways += self.spec.total_llc_ways - used_ways;
        debug_assert!(config.validate(&self.spec).is_ok());
        config
    }

    /// Number of full searches run.
    pub fn search_count(&self) -> u64 {
        self.searches
    }

    /// Number of harvest actions taken.
    pub fn harvest_count(&self) -> u64 {
        self.harvests
    }

    fn loads_changed(&self, qps: &[f64]) -> bool {
        match &self.last_search_qps {
            None => true,
            Some(prev) => prev
                .iter()
                .zip(qps)
                .any(|(&p, &q)| ((q - p) / p.max(1.0)).abs() > self.research_load_delta),
        }
    }

    /// One control interval.
    pub fn decide(&mut self, obs: &MultiObservation, current: &MultiConfig) -> MultiConfig {
        let qps: Vec<f64> = obs.ls.iter().map(|o| o.qps).collect();

        if self.loads_changed(&qps) {
            let search = MultiSearch::new(
                self.spec.clone(),
                self.budget_w,
                self.static_power_w,
                &self.ls,
                &self.be,
            );
            self.searches += 1;
            self.last_search_qps = Some(qps.clone());
            if let Some(next) = search.best_config(&qps) {
                return next;
            }
            return self.initial_config();
        }

        // Harvest path: any violated LS service at unchanged load pulls a
        // core from the BE partition with the lowest predicted marginal
        // throughput loss (and failing that, throttles the hottest BE).
        let violated: Vec<usize> = obs
            .ls
            .iter()
            .enumerate()
            .filter(|(i, o)| {
                let target = self.ls[*i].qos_target_ms;
                (target - o.p95_ms) / target < self.alpha
            })
            .map(|(i, _)| i)
            .collect();
        if violated.is_empty() {
            return current.clone();
        }

        let mut next = current.clone();
        for &ls_idx in &violated {
            // Donor BE: smallest throughput loss for giving up one core.
            let donor = (0..self.be.len())
                .filter(|&i| next.be[i].cores > 1)
                .min_by(|&a, &b| {
                    let la = self.core_loss(a, &next.be[a]);
                    let lb = self.core_loss(b, &next.be[b]);
                    la.total_cmp(&lb)
                });
            if let Some(d) = donor {
                next.be[d].cores -= 1;
                next.ls[ls_idx].cores += 1;
                self.harvests += 1;
            } else {
                // No cores to give: step down the fastest BE partition.
                if let Some(d) = (0..self.be.len()).max_by_key(|&i| next.be[i].freq_level) {
                    if next.be[d].freq_level > 0 {
                        next.be[d].freq_level -= 1;
                        next.ls[ls_idx].freq_level =
                            (next.ls[ls_idx].freq_level + 1).min(self.spec.max_freq_level());
                        self.harvests += 1;
                    }
                }
            }
        }
        debug_assert!(next.validate(&self.spec).is_ok());
        next
    }

    fn core_loss(&self, idx: usize, a: &Allocation) -> f64 {
        let f = a.freq_ghz(&self.spec);
        self.be[idx].throughput(a.cores, f, a.llc_ways)
            - self.be[idx].throughput(a.cores - 1, f, a.llc_ways)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sturgeon_simnode::PowerModel;
    use sturgeon_workloads::catalog::{be_app, ls_service, BeAppId, LsServiceId};
    use sturgeon_workloads::interference::InterferenceParams;

    fn env() -> MultiColocationEnv {
        MultiColocationEnv::new(
            NodeSpec::xeon_e5_2630_v4(),
            PowerModel::default(),
            vec![
                ls_service(LsServiceId::Xapian),
                ls_service(LsServiceId::ImgDnn),
            ],
            vec![be_app(BeAppId::Raytrace), be_app(BeAppId::Swaptions)],
            InterferenceParams::default(),
            1,
        )
    }

    fn trained(env: &MultiColocationEnv) -> (Vec<LsModelSet>, Vec<BeModelSet>) {
        MultiProfiler::new(
            env,
            MultiProfilerConfig {
                ls_samples_per_load: 70,
                ls_load_fractions: (1..=16).map(|i| i as f64 / 20.0).collect(),
                be_samples: 500,
                seed: 3,
            },
        )
        .train(PredictorConfig::default())
        .expect("training succeeds")
    }

    #[test]
    fn search_produces_valid_config_with_qos_feasible_ls() {
        let env = env();
        let (ls, be) = trained(&env);
        let search = MultiSearch::new(
            env.spec().clone(),
            env.budget_w(),
            env.static_power_w(),
            &ls,
            &be,
        );
        let qps = [0.3 * 3_500.0, 0.3 * 3_000.0];
        let cfg = search.best_config(&qps).expect("feasible");
        assert!(cfg.validate(env.spec()).is_ok());
        // Ground truth: both LS partitions meet their targets.
        for (i, a) in cfg.ls.iter().enumerate() {
            let obs = env.profile_ls(i, a, qps[i]);
            assert!(
                obs.p95_ms <= env.ls_models()[i].params.qos_target_ms,
                "LS {i} violated: {} ms with {a:?}",
                obs.p95_ms
            );
        }
        // Power within budget (ground truth, small tolerance for model error).
        let power = env.total_power(&cfg, &qps);
        assert!(
            power <= 1.03 * env.budget_w(),
            "power {power} vs budget {}",
            env.budget_w()
        );
        // Every BE partition got something beyond the mandatory minimum.
        assert!(cfg.be.iter().map(|a| a.cores).sum::<u32>() > 2);
    }

    #[test]
    fn be_lattice_matches_live_models_and_search_results() {
        let env = env();
        let (ls, mut be) = trained(&env);
        let spec = env.spec();
        // Tabled and live answers agree bit-for-bit across the lattice.
        for set in &be {
            for c in [1, spec.total_cores / 2, spec.total_cores] {
                for f in [0, spec.max_freq_level()] {
                    let ghz = spec.freq_ghz(f);
                    for w in [1, spec.total_llc_ways / 2, spec.total_llc_ways] {
                        let live_t = set.perf.predict(&features(set.input_level, c, ghz, w));
                        let live_p = set.power.predict(&features(set.input_level, c, ghz, w));
                        assert_eq!(
                            set.throughput(c, ghz, w).to_bits(),
                            live_t.max(0.0).to_bits()
                        );
                        assert_eq!(set.power_w(c, ghz, w).to_bits(), live_p.max(0.0).to_bits());
                    }
                }
            }
            // Off-lattice frequencies fall through to the model.
            let odd_ghz = spec.freq_ghz(0) + 0.0123;
            let live = set.perf.predict(&features(set.input_level, 2, odd_ghz, 2));
            assert_eq!(
                set.throughput(2, odd_ghz, 2).to_bits(),
                live.max(0.0).to_bits()
            );
        }
        // The full search is indifferent to the lattice being present.
        let qps = [0.3 * 3_500.0, 0.3 * 3_000.0];
        let with_lattice =
            MultiSearch::new(spec.clone(), env.budget_w(), env.static_power_w(), &ls, &be)
                .best_config(&qps)
                .expect("feasible");
        for set in &mut be {
            set.lattice = None;
        }
        let without =
            MultiSearch::new(spec.clone(), env.budget_w(), env.static_power_w(), &ls, &be)
                .best_config(&qps)
                .expect("feasible");
        assert_eq!(with_lattice, without);
    }

    #[test]
    fn subset_admission_parks_contentious_apps() {
        let env = env();
        let (ls, be) = trained(&env);
        let names = vec!["raytrace".to_string(), "swaptions".to_string()];
        let qps = [0.3 * 3_500.0, 0.3 * 3_000.0];
        let search = || {
            MultiSearch::new(
                env.spec().clone(),
                env.budget_w(),
                env.static_power_w(),
                &ls,
                &be,
            )
        };
        // Pure time-sharing between any pair: admitting both halves the
        // per-job efficiency, so the best single app must win.
        let hostile = SetScorer::from_sigmas([("raytrace", 1.0), ("swaptions", 1.0)]);
        let s = search().with_set_scorer(&hostile, names.clone());
        let (cfg, admitted, value) = s.best_admitted_config(&qps).expect("feasible");
        assert_eq!(admitted.iter().filter(|&&a| a).count(), 1, "{admitted:?}");
        assert!(value > 0.0);
        let parked = admitted.iter().position(|&a| !a).unwrap();
        assert_eq!(cfg.be[parked], Allocation::new(1, 0, 1));
        // Frictionless co-running: the full mix wins.
        let free = SetScorer::from_sigmas([("raytrace", 0.0), ("swaptions", 0.0)]);
        let s = search().with_set_scorer(&free, names.clone());
        let (_, admitted, _) = s.best_admitted_config(&qps).expect("feasible");
        assert!(admitted.iter().all(|&a| a), "{admitted:?}");
    }

    #[test]
    fn admission_without_scorer_matches_plain_search() {
        let env = env();
        let (ls, be) = trained(&env);
        let search = MultiSearch::new(
            env.spec().clone(),
            env.budget_w(),
            env.static_power_w(),
            &ls,
            &be,
        );
        let qps = [0.3 * 3_500.0, 0.3 * 3_000.0];
        let (cfg, admitted, _) = search.best_admitted_config(&qps).expect("feasible");
        assert!(admitted.iter().all(|&a| a));
        assert_eq!(cfg, search.best_config(&qps).expect("feasible"));
    }

    #[test]
    fn search_respects_tight_budget() {
        let env = env();
        let (ls, be) = trained(&env);
        let qps = [0.3 * 3_500.0, 0.3 * 3_000.0];
        let tight = MultiSearch::new(
            env.spec().clone(),
            0.85 * env.budget_w(),
            env.static_power_w(),
            &ls,
            &be,
        )
        .best_config(&qps)
        .expect("still feasible");
        let normal = MultiSearch::new(
            env.spec().clone(),
            env.budget_w(),
            env.static_power_w(),
            &ls,
            &be,
        )
        .best_config(&qps)
        .expect("feasible");
        let level_sum = |c: &MultiConfig| c.be.iter().map(|a| a.freq_level).sum::<usize>();
        assert!(
            level_sum(&tight) <= level_sum(&normal),
            "tighter budget must not raise BE frequencies"
        );
    }

    #[test]
    fn controller_runs_a_stable_loop() {
        let mut env = env();
        let (ls, be) = trained(&env);
        let mut controller = MultiSturgeonController::new(
            env.spec().clone(),
            env.budget_w(),
            env.static_power_w(),
            ls,
            be,
        );
        let mut config = controller.initial_config();
        assert!(config.validate(env.spec()).is_ok());
        let mut qos_ok = 0usize;
        let mut total = 0usize;
        for t in 0..120 {
            let frac = 0.25 + 0.1 * ((t as f64) / 60.0).sin();
            let qps = [frac * 3_500.0, frac * 3_000.0];
            let obs = env.step(&config, &qps);
            for (i, o) in obs.ls.iter().enumerate() {
                total += 1;
                if o.p95_ms <= env.ls_models()[i].params.qos_target_ms {
                    qos_ok += 1;
                }
            }
            config = controller.decide(&obs, &config);
            assert!(config.validate(env.spec()).is_ok(), "t={t}");
        }
        assert!(controller.search_count() >= 1);
        let rate = qos_ok as f64 / total as f64;
        assert!(rate > 0.85, "joint QoS interval rate {rate}");
    }

    #[test]
    fn initial_config_covers_all_apps() {
        let env = env();
        let (ls, be) = trained(&env);
        let controller = MultiSturgeonController::new(
            env.spec().clone(),
            env.budget_w(),
            env.static_power_w(),
            ls,
            be,
        );
        let cfg = controller.initial_config();
        assert_eq!(cfg.ls.len(), 2);
        assert_eq!(cfg.be.len(), 2);
        assert_eq!(cfg.total_cores(), env.spec().total_cores);
        assert_eq!(cfg.total_ways(), env.spec().total_llc_ways);
    }

    #[test]
    fn violated_service_harvests_from_be() {
        let env = env();
        let (ls, be) = trained(&env);
        let mut controller = MultiSturgeonController::new(
            env.spec().clone(),
            env.budget_w(),
            env.static_power_w(),
            ls,
            be,
        );
        let current = MultiConfig {
            ls: vec![Allocation::new(4, 8, 6), Allocation::new(4, 8, 6)],
            be: vec![Allocation::new(7, 5, 4), Allocation::new(5, 5, 4)],
        };
        // Pin the load memory so the harvest path (not a re-search) runs.
        controller.last_search_qps = Some(vec![1_050.0, 900.0]);
        let obs = MultiObservation {
            t_s: 1.0,
            ls: vec![
                sturgeon_workloads::multienv::LsObservation {
                    qps: 1_050.0,
                    p95_ms: 16.0, // violated (target 15)
                    in_target_fraction: 0.8,
                    utilization: 0.95,
                },
                sturgeon_workloads::multienv::LsObservation {
                    qps: 900.0,
                    p95_ms: 8.0, // healthy (target 10)
                    in_target_fraction: 1.0,
                    utilization: 0.6,
                },
            ],
            be_throughput: vec![0.4, 0.3],
            power_w: 70.0,
        };
        let next = controller.decide(&obs, &current);
        assert_eq!(
            next.ls[0].cores,
            current.ls[0].cores + 1,
            "violated service must gain a core"
        );
        assert_eq!(next.ls[1], current.ls[1], "healthy service untouched");
        assert_eq!(controller.harvest_count(), 1);
    }
}
