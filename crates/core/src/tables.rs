//! Dense SoA model tables for the frontier-pruned configuration search.
//!
//! The BE-side queries of [`crate::predictor::PerfPowerPredictor`] are
//! QPS-independent: BE throughput depends only on `(C2, F2, L2)` and BE
//! power (ways-masked, see `mask_ways` in the predictor) only on
//! `(C2, F2)`. Both therefore live on a small discrete lattice — at most
//! `cores × levels × ways` points (4 000 on the paper's Table II node) —
//! that can be flattened once per (re)train into contiguous `Vec<f64>`
//! arrays indexed arithmetically. The search inner loop then costs a
//! couple of loads instead of a boxed-model evaluation, and admissible
//! per-`(C2, L2)` / per-`C2` throughput maxima computed alongside give the
//! branch-and-bound sweep its pruning bounds.
//!
//! Every table entry is produced by the *same* compute path as the
//! predictor's public methods (same feature vector, same `.max(0.0)`
//! clamp, same power margin), so a lookup is bit-identical to the model
//! call it replaces — the equivalence proofs in `search.rs` rely on this.
//!
//! Tables carry the predictor's training `generation`; retraining bumps
//! the generation, which invalidates cached tables the same way it clears
//! the prediction memo cache.

use sturgeon_simnode::NodeSpec;

/// Flattened QPS-independent model lattices plus pruning bounds.
///
/// Built by [`crate::predictor::PerfPowerPredictor::model_tables`]; the
/// search layer only reads it (through an `Arc`, shared across rayon
/// workers without locking).
#[derive(Debug, Clone)]
pub struct ModelTables {
    generation: u64,
    total_cores: u32,
    total_ways: u32,
    n_levels: usize,
    freq_levels_ghz: Vec<f64>,
    static_power_w: f64,
    /// BE throughput, `[(c-1)·levels·ways + f·ways + (w-1)]`.
    be_tput: Vec<f64>,
    /// BE partition power (margin included, ways-masked), `[(c-1)·levels + f]`.
    be_power: Vec<f64>,
    /// `max_f` of `be_tput`, `[(c-1)·ways + (w-1)]` — the admissible bound
    /// for one `(C2, L2)` cell whatever frequency the power budget allows.
    tput_max_freq: Vec<f64>,
    /// `max_{f,w}` of `be_tput`, `[c-1]` — the admissible bound for a whole
    /// C2 slice.
    slice_max_tput: Vec<f64>,
    /// Prefix maximum of `slice_max_tput`: `[c-1]` bounds every slice with
    /// *at most* `c` BE cores. Model noise means `slice_max_tput` itself
    /// need not be monotone in cores, so early-stop rules over "all
    /// remaining (smaller-C2) slices" must use this.
    slice_max_prefix: Vec<f64>,
}

impl ModelTables {
    /// Builds the tables by sweeping the full BE lattice of `spec` through
    /// the two evaluators. `tput(cores, freq_ghz, ways)` and
    /// `power(cores, freq_ghz)` must be the predictor's exact compute
    /// paths (clamps and margins included) for lookups to be bit-identical
    /// to model calls.
    pub fn build(
        spec: &NodeSpec,
        generation: u64,
        static_power_w: f64,
        mut tput: impl FnMut(u32, f64, u32) -> f64,
        mut power: impl FnMut(u32, f64) -> f64,
    ) -> Self {
        let total_cores = spec.total_cores;
        let total_ways = spec.total_llc_ways;
        let n_levels = spec.freq_level_count();
        let nc = total_cores as usize;
        let nw = total_ways as usize;
        let mut be_tput = vec![0.0; nc * n_levels * nw];
        let mut be_power = vec![0.0; nc * n_levels];
        let mut tput_max_freq = vec![0.0; nc * nw];
        let mut slice_max_tput = vec![0.0; nc];
        for c in 1..=total_cores {
            let ci = (c - 1) as usize;
            let mut slice_max = 0.0f64;
            for f in 0..n_levels {
                let ghz = spec.freq_ghz(f);
                be_power[ci * n_levels + f] = power(c, ghz);
                for w in 1..=total_ways {
                    let wi = (w - 1) as usize;
                    let t = tput(c, ghz, w);
                    be_tput[(ci * n_levels + f) * nw + wi] = t;
                    let cell = &mut tput_max_freq[ci * nw + wi];
                    if t > *cell {
                        *cell = t;
                    }
                    slice_max = slice_max.max(t);
                }
            }
            slice_max_tput[ci] = slice_max;
        }
        let mut slice_max_prefix = slice_max_tput.clone();
        for i in 1..slice_max_prefix.len() {
            slice_max_prefix[i] = slice_max_prefix[i].max(slice_max_prefix[i - 1]);
        }
        Self {
            generation,
            total_cores,
            total_ways,
            n_levels,
            freq_levels_ghz: spec.freq_levels_ghz.clone(),
            static_power_w,
            be_tput,
            be_power,
            tput_max_freq,
            slice_max_tput,
            slice_max_prefix,
        }
    }

    /// Training generation these tables were flattened from.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The node's static/uncore power (W), the constant term of every
    /// total-power check.
    pub fn static_power_w(&self) -> f64 {
        self.static_power_w
    }

    /// True when the tables cover exactly this node's lattice.
    pub fn matches(&self, spec: &NodeSpec) -> bool {
        self.total_cores == spec.total_cores
            && self.total_ways == spec.total_llc_ways
            && self.n_levels == spec.freq_level_count()
            && self.freq_levels_ghz.len() == spec.freq_levels_ghz.len()
            && self
                .freq_levels_ghz
                .iter()
                .zip(&spec.freq_levels_ghz)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    #[inline]
    fn idx3(&self, cores: u32, level: usize, ways: u32) -> usize {
        debug_assert!((1..=self.total_cores).contains(&cores));
        debug_assert!(level < self.n_levels);
        debug_assert!((1..=self.total_ways).contains(&ways));
        ((cores - 1) as usize * self.n_levels + level) * self.total_ways as usize
            + (ways - 1) as usize
    }

    /// BE throughput at `(cores, level, ways)` — bit-identical to
    /// `predictor.be_throughput(cores, spec.freq_ghz(level), ways)`.
    #[inline]
    pub fn be_throughput(&self, cores: u32, level: usize, ways: u32) -> f64 {
        self.be_tput[self.idx3(cores, level, ways)]
    }

    /// BE partition power at `(cores, level)`, margin included —
    /// bit-identical to `predictor.be_power_w(cores, spec.freq_ghz(level), _)`.
    #[inline]
    pub fn be_power_w(&self, cores: u32, level: usize) -> f64 {
        self.be_power[(cores - 1) as usize * self.n_levels + level]
    }

    /// Admissible throughput upper bound for a `(C2, L2)` cell: the
    /// maximum over every frequency level. No feasible candidate in the
    /// cell can exceed it, whatever F2 the power frontier picks.
    #[inline]
    pub fn max_tput_any_freq(&self, cores: u32, ways: u32) -> f64 {
        self.tput_max_freq[(cores - 1) as usize * self.total_ways as usize + (ways - 1) as usize]
    }

    /// Admissible throughput upper bound for a whole C2 slice: the maximum
    /// over every `(F2, L2)`.
    #[inline]
    pub fn slice_max_tput(&self, cores: u32) -> f64 {
        self.slice_max_tput[(cores - 1) as usize]
    }

    /// Admissible throughput upper bound over *every* slice with at most
    /// `cores` BE cores — the stop bound for scans that grow C1 (shrink
    /// C2) monotonically.
    #[inline]
    pub fn slice_max_tput_upto(&self, cores: u32) -> f64 {
        self.slice_max_prefix[(cores - 1) as usize]
    }
}

/// Flattened BE model lattice for the multi-application search
/// ([`crate::multi::BeModelSet`]): unlike the pair predictor, the
/// multi-app BE power model keeps its `ways` feature, so both tables are
/// indexed `(cores, level, ways)`.
///
/// Lookups key the frequency by exact bit pattern, so any query off the
/// node's DVFS table falls through to the live model (`None`) instead of
/// silently rounding.
#[derive(Debug, Clone)]
pub struct BeLattice {
    total_cores: u32,
    total_ways: u32,
    freq_levels_ghz: Vec<f64>,
    tput: Vec<f64>,
    power: Vec<f64>,
}

impl BeLattice {
    /// Sweeps the full `(cores, level, ways)` lattice of `spec` through
    /// the two evaluators (which must be the model set's exact compute
    /// paths, clamps included).
    pub fn build(
        spec: &NodeSpec,
        mut tput: impl FnMut(u32, f64, u32) -> f64,
        mut power: impl FnMut(u32, f64, u32) -> f64,
    ) -> Self {
        let nc = spec.total_cores as usize;
        let nw = spec.total_llc_ways as usize;
        let nf = spec.freq_level_count();
        let mut t = vec![0.0; nc * nf * nw];
        let mut p = vec![0.0; nc * nf * nw];
        for c in 1..=spec.total_cores {
            let ci = (c - 1) as usize;
            for f in 0..nf {
                let ghz = spec.freq_ghz(f);
                for w in 1..=spec.total_llc_ways {
                    let idx = (ci * nf + f) * nw + (w - 1) as usize;
                    t[idx] = tput(c, ghz, w);
                    p[idx] = power(c, ghz, w);
                }
            }
        }
        Self {
            total_cores: spec.total_cores,
            total_ways: spec.total_llc_ways,
            freq_levels_ghz: spec.freq_levels_ghz.clone(),
            tput: t,
            power: p,
        }
    }

    #[inline]
    fn index(&self, cores: u32, freq_ghz: f64, ways: u32) -> Option<usize> {
        if cores < 1 || cores > self.total_cores || ways < 1 || ways > self.total_ways {
            return None;
        }
        let bits = freq_ghz.to_bits();
        let level = self
            .freq_levels_ghz
            .iter()
            .position(|f| f.to_bits() == bits)?;
        let nf = self.freq_levels_ghz.len();
        Some(((cores - 1) as usize * nf + level) * self.total_ways as usize + (ways - 1) as usize)
    }

    /// Tabled throughput, or `None` when the query is off the lattice.
    #[inline]
    pub fn throughput(&self, cores: u32, freq_ghz: f64, ways: u32) -> Option<f64> {
        self.index(cores, freq_ghz, ways).map(|i| self.tput[i])
    }

    /// Tabled power (W), or `None` when the query is off the lattice.
    #[inline]
    pub fn power_w(&self, cores: u32, freq_ghz: f64, ways: u32) -> Option<f64> {
        self.index(cores, freq_ghz, ways).map(|i| self.power[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> NodeSpec {
        NodeSpec {
            total_cores: 4,
            freq_levels_ghz: vec![1.0, 1.5, 2.0],
            total_llc_ways: 3,
            llc_mb: 4.0,
        }
    }

    #[test]
    fn model_tables_store_every_lattice_point() {
        let spec = small_spec();
        let t = ModelTables::build(
            &spec,
            7,
            12.5,
            |c, f, w| c as f64 * 100.0 + f * 10.0 + w as f64,
            |c, f| c as f64 + f,
        );
        assert_eq!(t.generation(), 7);
        assert_eq!(t.static_power_w(), 12.5);
        assert!(t.matches(&spec));
        for c in 1..=4u32 {
            for (level, &ghz) in spec.freq_levels_ghz.iter().enumerate() {
                assert_eq!(t.be_power_w(c, level), c as f64 + ghz);
                for w in 1..=3u32 {
                    assert_eq!(
                        t.be_throughput(c, level, w),
                        c as f64 * 100.0 + ghz * 10.0 + w as f64
                    );
                }
            }
        }
    }

    #[test]
    fn bounds_dominate_their_cells() {
        let spec = small_spec();
        // An arbitrary non-monotone function: bounds must still dominate.
        let f = |c: u32, g: f64, w: u32| ((c * 31 + w * 17) as f64 * g).sin().abs() * 10.0;
        let t = ModelTables::build(&spec, 0, 0.0, f, |_, _| 0.0);
        for c in 1..=4u32 {
            let mut slice_max = 0.0f64;
            for level in 0..3usize {
                for w in 1..=3u32 {
                    let v = t.be_throughput(c, level, w);
                    assert!(t.max_tput_any_freq(c, w) >= v);
                    assert!(t.slice_max_tput(c) >= v);
                    slice_max = slice_max.max(v);
                }
            }
            assert_eq!(t.slice_max_tput(c), slice_max);
        }
        // The prefix bound dominates every smaller-or-equal slice.
        for c in 1..=4u32 {
            for smaller in 1..=c {
                assert!(t.slice_max_tput_upto(c) >= t.slice_max_tput(smaller));
            }
        }
    }

    #[test]
    fn tables_reject_mismatched_spec() {
        let spec = small_spec();
        let t = ModelTables::build(&spec, 0, 0.0, |_, _, _| 0.0, |_, _| 0.0);
        let mut other = small_spec();
        other.total_llc_ways = 4;
        assert!(!t.matches(&other));
        let mut shifted = small_spec();
        shifted.freq_levels_ghz[1] = 1.5000000001;
        assert!(!t.matches(&shifted));
    }

    #[test]
    fn be_lattice_lookup_matches_evaluator_and_rejects_off_lattice() {
        let spec = small_spec();
        let l = BeLattice::build(
            &spec,
            |c, g, w| c as f64 * g + w as f64,
            |c, g, w| c as f64 - g + w as f64,
        );
        assert_eq!(l.throughput(2, 1.5, 3), Some(2.0 * 1.5 + 3.0));
        assert_eq!(l.power_w(2, 1.5, 3), Some(2.0 - 1.5 + 3.0));
        // Off-lattice frequency or out-of-range resources fall through.
        assert_eq!(l.throughput(2, 1.7, 3), None);
        assert_eq!(l.throughput(5, 1.5, 3), None);
        assert_eq!(l.power_w(2, 1.5, 0), None);
    }
}
