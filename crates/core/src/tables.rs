//! Dense SoA model tables for the frontier-pruned configuration search.
//!
//! The BE-side queries of [`crate::predictor::PerfPowerPredictor`] are
//! QPS-independent: BE throughput depends only on `(C2, F2, L2)` and BE
//! power (ways-masked, see `mask_ways` in the predictor) only on
//! `(C2, F2)`. Both therefore live on a small discrete lattice — at most
//! `cores × levels × ways` points (4 000 on the paper's Table II node) —
//! that can be flattened once per (re)train into contiguous `Vec<f64>`
//! arrays indexed arithmetically. The search inner loop then costs a
//! couple of loads instead of a boxed-model evaluation, and admissible
//! per-`(C2, L2)` / per-`C2` throughput maxima computed alongside give the
//! branch-and-bound sweep its pruning bounds.
//!
//! Every table entry is produced by the *same* compute path as the
//! predictor's public methods (same feature vector, same `.max(0.0)`
//! clamp, same power margin), so a lookup is bit-identical to the model
//! call it replaces — the equivalence proofs in `search.rs` rely on this.
//!
//! Tables carry the predictor's training `generation`; retraining bumps
//! the generation, which invalidates cached tables the same way it clears
//! the prediction memo cache.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use sturgeon_simnode::NodeSpec;

/// Flattened QPS-independent model lattices plus pruning bounds.
///
/// Built by [`crate::predictor::PerfPowerPredictor::model_tables`]; the
/// search layer only reads it (through an `Arc`, shared across rayon
/// workers without locking).
#[derive(Debug, Clone)]
pub struct ModelTables {
    generation: u64,
    total_cores: u32,
    total_ways: u32,
    n_levels: usize,
    freq_levels_ghz: Vec<f64>,
    static_power_w: f64,
    /// BE throughput, `[(c-1)·levels·ways + f·ways + (w-1)]`.
    be_tput: Vec<f64>,
    /// BE partition power (margin included, ways-masked), `[(c-1)·levels + f]`.
    be_power: Vec<f64>,
    /// `max_f` of `be_tput`, `[(c-1)·ways + (w-1)]` — the admissible bound
    /// for one `(C2, L2)` cell whatever frequency the power budget allows.
    tput_max_freq: Vec<f64>,
    /// `max_{f,w}` of `be_tput`, `[c-1]` — the admissible bound for a whole
    /// C2 slice.
    slice_max_tput: Vec<f64>,
    /// Prefix maximum of `slice_max_tput`: `[c-1]` bounds every slice with
    /// *at most* `c` BE cores. Model noise means `slice_max_tput` itself
    /// need not be monotone in cores, so early-stop rules over "all
    /// remaining (smaller-C2) slices" must use this.
    slice_max_prefix: Vec<f64>,
}

impl ModelTables {
    /// Builds the tables by sweeping the full BE lattice of `spec` through
    /// the two evaluators. `tput(cores, freq_ghz, ways)` and
    /// `power(cores, freq_ghz)` must be the predictor's exact compute
    /// paths (clamps and margins included) for lookups to be bit-identical
    /// to model calls.
    pub fn build(
        spec: &NodeSpec,
        generation: u64,
        static_power_w: f64,
        mut tput: impl FnMut(u32, f64, u32) -> f64,
        mut power: impl FnMut(u32, f64) -> f64,
    ) -> Self {
        let total_cores = spec.total_cores;
        let total_ways = spec.total_llc_ways;
        let n_levels = spec.freq_level_count();
        let nc = total_cores as usize;
        let nw = total_ways as usize;
        let mut be_tput = vec![0.0; nc * n_levels * nw];
        let mut be_power = vec![0.0; nc * n_levels];
        let mut tput_max_freq = vec![0.0; nc * nw];
        let mut slice_max_tput = vec![0.0; nc];
        for c in 1..=total_cores {
            let ci = (c - 1) as usize;
            let mut slice_max = 0.0f64;
            for f in 0..n_levels {
                let ghz = spec.freq_ghz(f);
                be_power[ci * n_levels + f] = power(c, ghz);
                for w in 1..=total_ways {
                    let wi = (w - 1) as usize;
                    let t = tput(c, ghz, w);
                    be_tput[(ci * n_levels + f) * nw + wi] = t;
                    let cell = &mut tput_max_freq[ci * nw + wi];
                    if t > *cell {
                        *cell = t;
                    }
                    slice_max = slice_max.max(t);
                }
            }
            slice_max_tput[ci] = slice_max;
        }
        let mut slice_max_prefix = slice_max_tput.clone();
        for i in 1..slice_max_prefix.len() {
            slice_max_prefix[i] = slice_max_prefix[i].max(slice_max_prefix[i - 1]);
        }
        Self {
            generation,
            total_cores,
            total_ways,
            n_levels,
            freq_levels_ghz: spec.freq_levels_ghz.clone(),
            static_power_w,
            be_tput,
            be_power,
            tput_max_freq,
            slice_max_tput,
            slice_max_prefix,
        }
    }

    /// Training generation these tables were flattened from.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The node's static/uncore power (W), the constant term of every
    /// total-power check.
    pub fn static_power_w(&self) -> f64 {
        self.static_power_w
    }

    /// True when the tables cover exactly this node's lattice.
    pub fn matches(&self, spec: &NodeSpec) -> bool {
        self.total_cores == spec.total_cores
            && self.total_ways == spec.total_llc_ways
            && self.n_levels == spec.freq_level_count()
            && self.freq_levels_ghz.len() == spec.freq_levels_ghz.len()
            && self
                .freq_levels_ghz
                .iter()
                .zip(&spec.freq_levels_ghz)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    #[inline]
    fn idx3(&self, cores: u32, level: usize, ways: u32) -> usize {
        debug_assert!((1..=self.total_cores).contains(&cores));
        debug_assert!(level < self.n_levels);
        debug_assert!((1..=self.total_ways).contains(&ways));
        ((cores - 1) as usize * self.n_levels + level) * self.total_ways as usize
            + (ways - 1) as usize
    }

    /// BE throughput at `(cores, level, ways)` — bit-identical to
    /// `predictor.be_throughput(cores, spec.freq_ghz(level), ways)`.
    #[inline]
    pub fn be_throughput(&self, cores: u32, level: usize, ways: u32) -> f64 {
        self.be_tput[self.idx3(cores, level, ways)]
    }

    /// BE partition power at `(cores, level)`, margin included —
    /// bit-identical to `predictor.be_power_w(cores, spec.freq_ghz(level), _)`.
    #[inline]
    pub fn be_power_w(&self, cores: u32, level: usize) -> f64 {
        self.be_power[(cores - 1) as usize * self.n_levels + level]
    }

    /// Admissible throughput upper bound for a `(C2, L2)` cell: the
    /// maximum over every frequency level. No feasible candidate in the
    /// cell can exceed it, whatever F2 the power frontier picks.
    #[inline]
    pub fn max_tput_any_freq(&self, cores: u32, ways: u32) -> f64 {
        self.tput_max_freq[(cores - 1) as usize * self.total_ways as usize + (ways - 1) as usize]
    }

    /// Admissible throughput upper bound for a whole C2 slice: the maximum
    /// over every `(F2, L2)`.
    #[inline]
    pub fn slice_max_tput(&self, cores: u32) -> f64 {
        self.slice_max_tput[(cores - 1) as usize]
    }

    /// Admissible throughput upper bound over *every* slice with at most
    /// `cores` BE cores — the stop bound for scans that grow C1 (shrink
    /// C2) monotonically.
    #[inline]
    pub fn slice_max_tput_upto(&self, cores: u32) -> f64 {
        self.slice_max_prefix[(cores - 1) as usize]
    }
}

/// One QPS slab: the LS-side model lattices frozen at a single quantized
/// load point (the slab "center", `bucket · quantum`).
///
/// The LS queries of the predictor — QoS feasibility of `<C1, F1, L1>`
/// and LS partition power — depend on the offered load, so unlike the BE
/// lattices of [`ModelTables`] they cannot be flattened once per retrain.
/// Instead the load axis is quantized into buckets and each bucket's
/// lattice is built lazily (see [`LsSlabs`]). A slab stores:
///
/// * **feasibility** as a bitset — one bit per `(C1, F1, L1)` cell, the
///   L1 (ways) axis packed into `words_per_row` `u64` words per
///   `(C1, F1)` row so a whole row can be masked branch-free; built at
///   `qps = center`.
/// * **LS power** as a flat `f64` array over the same lattice; built at
///   `qps = center · (1 + power_load_headroom)` — the exact load the
///   search's power check uses — so a lookup at slab-center load is
///   bit-identical to the live `ls_power_w` call it replaces.
#[derive(Debug, Clone)]
pub struct LsSlab {
    bucket: u64,
    qps: f64,
    qps_power: f64,
    n_levels: usize,
    total_ways: u32,
    words_per_row: usize,
    feas: Vec<u64>,
    power: Vec<f64>,
}

impl LsSlab {
    /// Builds the slab by sweeping the full `(C1, F1, L1)` lattice through
    /// the two evaluators, which must be the predictor's exact compute
    /// paths (domain check, guarded load, clamps and margins included) for
    /// lookups to be bit-identical to live calls at the slab centers.
    /// `feas` is queried at `qps`, `power` at `qps_power`.
    pub fn build(
        spec: &NodeSpec,
        bucket: u64,
        qps: f64,
        qps_power: f64,
        mut feas: impl FnMut(u32, f64, u32, f64) -> bool,
        mut power: impl FnMut(u32, f64, u32, f64) -> f64,
    ) -> Self {
        let nc = spec.total_cores as usize;
        let nw = spec.total_llc_ways as usize;
        let nf = spec.freq_level_count();
        let words_per_row = nw.div_ceil(64);
        let mut feas_words = vec![0u64; nc * nf * words_per_row];
        let mut pw = vec![0.0; nc * nf * nw];
        for c in 1..=spec.total_cores {
            let ci = (c - 1) as usize;
            for f in 0..nf {
                let ghz = spec.freq_ghz(f);
                let row = (ci * nf + f) * words_per_row;
                for w in 1..=spec.total_llc_ways {
                    let wi = (w - 1) as usize;
                    if feas(c, ghz, w, qps) {
                        feas_words[row + wi / 64] |= 1u64 << (wi % 64);
                    }
                    pw[(ci * nf + f) * nw + wi] = power(c, ghz, w, qps_power);
                }
            }
        }
        Self {
            bucket,
            qps,
            qps_power,
            n_levels: nf,
            total_ways: spec.total_llc_ways,
            words_per_row,
            feas: feas_words,
            power: pw,
        }
    }

    /// The quantized bucket index this slab was built for.
    pub fn bucket(&self) -> u64 {
        self.bucket
    }

    /// The slab-center load the feasibility lattice was built at.
    pub fn qps(&self) -> f64 {
        self.qps
    }

    /// The headroom-inflated load the power lattice was built at.
    pub fn qps_power(&self) -> f64 {
        self.qps_power
    }

    /// `u64` words per `(C1, F1)` feasibility row.
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The packed feasibility words for one `(C1, F1)` row; bit `w-1` is
    /// set when `<cores, level, w>` meets QoS at the slab center.
    #[inline]
    pub fn feas_row(&self, cores: u32, level: usize) -> &[u64] {
        let row = ((cores - 1) as usize * self.n_levels + level) * self.words_per_row;
        &self.feas[row..row + self.words_per_row]
    }

    /// The LS power (W, margin included) row for one `(C1, F1)` cell,
    /// indexed by `ways - 1`.
    #[inline]
    pub fn power_row(&self, cores: u32, level: usize) -> &[f64] {
        let nw = self.total_ways as usize;
        let row = ((cores - 1) as usize * self.n_levels + level) * nw;
        &self.power[row..row + nw]
    }

    /// Point feasibility lookup — bit-identical to
    /// `predictor.ls_feasible(cores, spec.freq_ghz(level), ways, self.qps())`.
    #[inline]
    pub fn feasible(&self, cores: u32, level: usize, ways: u32) -> bool {
        let wi = (ways - 1) as usize;
        self.feas_row(cores, level)[wi / 64] & (1u64 << (wi % 64)) != 0
    }

    /// Point power lookup — bit-identical to
    /// `predictor.ls_power_w(cores, spec.freq_ghz(level), ways, self.qps_power())`.
    #[inline]
    pub fn ls_power_w(&self, cores: u32, level: usize, ways: u32) -> f64 {
        self.power_row(cores, level)[(ways - 1) as usize]
    }
}

/// Lazily built family of [`LsSlab`]s for one `(generation, spec,
/// power-load-headroom)` triple, plus the quantization and envelope rules
/// the search relies on.
///
/// A load `q` is *bracketed* by the two slabs whose centers surround it
/// (`floor` and `ceil` of `q / quantum`); the search then uses the
/// conservative envelope across the bracket — feasibility is the AND of
/// the two bitsets (never optimistic: a cell must meet QoS at *both*
/// surrounding centers) and LS power the pointwise `max` of the two
/// lattices. At a slab center the bracket degenerates to one slab and
/// every envelope lookup is bit-identical to the live model call.
/// [`lerp_power_w`](Self::lerp_power_w) exposes the plain linear
/// interpolation for validation; the search itself never uses it, since a
/// lerp can undershoot the live model between centers.
#[derive(Debug)]
pub struct LsSlabs {
    generation: u64,
    quantum: f64,
    headroom: f64,
    max_bucket: u64,
    total_cores: u32,
    total_ways: u32,
    n_levels: usize,
    freq_levels_ghz: Vec<f64>,
    slabs: Mutex<HashMap<u64, Arc<LsSlab>>>,
    builds: AtomicU64,
}

impl LsSlabs {
    /// Creates an empty slab family. `quantum` is the bucket width in QPS
    /// (must be positive); `max_bucket` caps the lattice at the first
    /// bucket whose center exceeds the trained domain — every load beyond
    /// it is infeasible anyway, so brackets clamp there and the map stays
    /// bounded.
    pub fn new(
        spec: &NodeSpec,
        generation: u64,
        quantum: f64,
        headroom: f64,
        max_qps: f64,
    ) -> Self {
        debug_assert!(quantum > 0.0);
        let max_bucket = ((1.1 * max_qps / quantum).floor() as u64).saturating_add(1);
        Self {
            generation,
            quantum,
            headroom,
            max_bucket,
            total_cores: spec.total_cores,
            total_ways: spec.total_llc_ways,
            n_levels: spec.freq_level_count(),
            freq_levels_ghz: spec.freq_levels_ghz.clone(),
            slabs: Mutex::new(HashMap::new()),
            builds: AtomicU64::new(0),
        }
    }

    /// Training generation the slabs were built from.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Bucket width (QPS per slab).
    pub fn quantum(&self) -> f64 {
        self.quantum
    }

    /// The power-load headroom baked into every slab's power lattice.
    pub fn headroom(&self) -> f64 {
        self.headroom
    }

    /// True when the slabs cover exactly this node's lattice.
    pub fn matches(&self, spec: &NodeSpec) -> bool {
        self.total_cores == spec.total_cores
            && self.total_ways == spec.total_llc_ways
            && self.n_levels == spec.freq_level_count()
            && self.freq_levels_ghz.len() == spec.freq_levels_ghz.len()
            && self
                .freq_levels_ghz
                .iter()
                .zip(&spec.freq_levels_ghz)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// The slab-center load of a bucket.
    pub fn center(&self, bucket: u64) -> f64 {
        bucket as f64 * self.quantum
    }

    /// The pair of bucket indices whose slab centers bracket `qps`
    /// (`lo == hi` exactly at a slab center). Clamped to the bounded
    /// bucket range; beyond it every slab is all-infeasible, so the clamp
    /// never changes a search result.
    pub fn bracket(&self, qps: f64) -> (u64, u64) {
        let q = (qps / self.quantum).max(0.0);
        let lo = (q.floor() as u64).min(self.max_bucket);
        let hi = (q.ceil() as u64).min(self.max_bucket);
        (lo, hi)
    }

    /// Returns the slab for `bucket`, building it on first use via the
    /// two evaluators (see [`LsSlab::build`]; `feas` is handed the slab
    /// center, `power` the headroom-inflated center).
    pub fn slab(
        &self,
        spec: &NodeSpec,
        bucket: u64,
        feas: impl FnMut(u32, f64, u32, f64) -> bool,
        power: impl FnMut(u32, f64, u32, f64) -> f64,
    ) -> Arc<LsSlab> {
        // The map lock is held across the build: a slab sweep is thousands
        // of model evaluations, so racing builders should wait for the one
        // in flight rather than duplicate it.
        let mut map = self.slabs.lock();
        if let Some(s) = map.get(&bucket) {
            return Arc::clone(s);
        }
        let qps = self.center(bucket);
        let qps_power = qps * (1.0 + self.headroom);
        let built = Arc::new(LsSlab::build(spec, bucket, qps, qps_power, feas, power));
        self.builds.fetch_add(1, Ordering::Relaxed);
        map.insert(bucket, Arc::clone(&built));
        built
    }

    /// How many slab constructions actually ran (as opposed to map hits).
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Plain linear interpolation of LS power between the bracketing
    /// slabs — exposed for bit-closeness validation only; the search uses
    /// the conservative `max` envelope instead.
    pub fn lerp_power_w(
        &self,
        lo: &LsSlab,
        hi: &LsSlab,
        qps: f64,
        cores: u32,
        level: usize,
        ways: u32,
    ) -> f64 {
        let a = lo.ls_power_w(cores, level, ways);
        if lo.bucket() == hi.bucket() {
            return a;
        }
        let b = hi.ls_power_w(cores, level, ways);
        let t = ((qps - lo.qps()) / (hi.qps() - lo.qps())).clamp(0.0, 1.0);
        a + (b - a) * t
    }
}

/// Flattened BE model lattice for the multi-application search
/// ([`crate::multi::BeModelSet`]): unlike the pair predictor, the
/// multi-app BE power model keeps its `ways` feature, so both tables are
/// indexed `(cores, level, ways)`.
///
/// Lookups key the frequency by exact bit pattern, so any query off the
/// node's DVFS table falls through to the live model (`None`) instead of
/// silently rounding.
#[derive(Debug, Clone)]
pub struct BeLattice {
    total_cores: u32,
    total_ways: u32,
    freq_levels_ghz: Vec<f64>,
    tput: Vec<f64>,
    power: Vec<f64>,
}

impl BeLattice {
    /// Sweeps the full `(cores, level, ways)` lattice of `spec` through
    /// the two evaluators (which must be the model set's exact compute
    /// paths, clamps included).
    pub fn build(
        spec: &NodeSpec,
        mut tput: impl FnMut(u32, f64, u32) -> f64,
        mut power: impl FnMut(u32, f64, u32) -> f64,
    ) -> Self {
        let nc = spec.total_cores as usize;
        let nw = spec.total_llc_ways as usize;
        let nf = spec.freq_level_count();
        let mut t = vec![0.0; nc * nf * nw];
        let mut p = vec![0.0; nc * nf * nw];
        for c in 1..=spec.total_cores {
            let ci = (c - 1) as usize;
            for f in 0..nf {
                let ghz = spec.freq_ghz(f);
                for w in 1..=spec.total_llc_ways {
                    let idx = (ci * nf + f) * nw + (w - 1) as usize;
                    t[idx] = tput(c, ghz, w);
                    p[idx] = power(c, ghz, w);
                }
            }
        }
        Self {
            total_cores: spec.total_cores,
            total_ways: spec.total_llc_ways,
            freq_levels_ghz: spec.freq_levels_ghz.clone(),
            tput: t,
            power: p,
        }
    }

    #[inline]
    fn index(&self, cores: u32, freq_ghz: f64, ways: u32) -> Option<usize> {
        if cores < 1 || cores > self.total_cores || ways < 1 || ways > self.total_ways {
            return None;
        }
        let bits = freq_ghz.to_bits();
        let level = self
            .freq_levels_ghz
            .iter()
            .position(|f| f.to_bits() == bits)?;
        let nf = self.freq_levels_ghz.len();
        Some(((cores - 1) as usize * nf + level) * self.total_ways as usize + (ways - 1) as usize)
    }

    /// Tabled throughput, or `None` when the query is off the lattice.
    #[inline]
    pub fn throughput(&self, cores: u32, freq_ghz: f64, ways: u32) -> Option<f64> {
        self.index(cores, freq_ghz, ways).map(|i| self.tput[i])
    }

    /// Tabled power (W), or `None` when the query is off the lattice.
    #[inline]
    pub fn power_w(&self, cores: u32, freq_ghz: f64, ways: u32) -> Option<f64> {
        self.index(cores, freq_ghz, ways).map(|i| self.power[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> NodeSpec {
        NodeSpec {
            total_cores: 4,
            freq_levels_ghz: vec![1.0, 1.5, 2.0],
            total_llc_ways: 3,
            llc_mb: 4.0,
        }
    }

    #[test]
    fn model_tables_store_every_lattice_point() {
        let spec = small_spec();
        let t = ModelTables::build(
            &spec,
            7,
            12.5,
            |c, f, w| c as f64 * 100.0 + f * 10.0 + w as f64,
            |c, f| c as f64 + f,
        );
        assert_eq!(t.generation(), 7);
        assert_eq!(t.static_power_w(), 12.5);
        assert!(t.matches(&spec));
        for c in 1..=4u32 {
            for (level, &ghz) in spec.freq_levels_ghz.iter().enumerate() {
                assert_eq!(t.be_power_w(c, level), c as f64 + ghz);
                for w in 1..=3u32 {
                    assert_eq!(
                        t.be_throughput(c, level, w),
                        c as f64 * 100.0 + ghz * 10.0 + w as f64
                    );
                }
            }
        }
    }

    #[test]
    fn bounds_dominate_their_cells() {
        let spec = small_spec();
        // An arbitrary non-monotone function: bounds must still dominate.
        let f = |c: u32, g: f64, w: u32| ((c * 31 + w * 17) as f64 * g).sin().abs() * 10.0;
        let t = ModelTables::build(&spec, 0, 0.0, f, |_, _| 0.0);
        for c in 1..=4u32 {
            let mut slice_max = 0.0f64;
            for level in 0..3usize {
                for w in 1..=3u32 {
                    let v = t.be_throughput(c, level, w);
                    assert!(t.max_tput_any_freq(c, w) >= v);
                    assert!(t.slice_max_tput(c) >= v);
                    slice_max = slice_max.max(v);
                }
            }
            assert_eq!(t.slice_max_tput(c), slice_max);
        }
        // The prefix bound dominates every smaller-or-equal slice.
        for c in 1..=4u32 {
            for smaller in 1..=c {
                assert!(t.slice_max_tput_upto(c) >= t.slice_max_tput(smaller));
            }
        }
    }

    #[test]
    fn tables_reject_mismatched_spec() {
        let spec = small_spec();
        let t = ModelTables::build(&spec, 0, 0.0, |_, _, _| 0.0, |_, _| 0.0);
        let mut other = small_spec();
        other.total_llc_ways = 4;
        assert!(!t.matches(&other));
        let mut shifted = small_spec();
        shifted.freq_levels_ghz[1] = 1.5000000001;
        assert!(!t.matches(&shifted));
    }

    #[test]
    fn ls_slab_stores_feasibility_bits_and_power_for_every_cell() {
        let spec = small_spec();
        let slab = LsSlab::build(
            &spec,
            3,
            30.0,
            32.4,
            |c, _g, w, qps| {
                assert_eq!(qps, 30.0);
                (c + w) % 2 == 0
            },
            |c, g, w, qps| {
                assert_eq!(qps, 32.4);
                c as f64 * 10.0 + g + w as f64 * 0.1
            },
        );
        assert_eq!(slab.bucket(), 3);
        assert_eq!(slab.words_per_row(), 1);
        for c in 1..=4u32 {
            for (level, &ghz) in spec.freq_levels_ghz.iter().enumerate() {
                for w in 1..=3u32 {
                    assert_eq!(slab.feasible(c, level, w), (c + w) % 2 == 0);
                    assert_eq!(
                        slab.ls_power_w(c, level, w),
                        c as f64 * 10.0 + ghz + w as f64 * 0.1
                    );
                }
                // Row accessors expose the same cells the point lookups read.
                assert_eq!(slab.power_row(c, level).len(), 3);
                assert_eq!(slab.feas_row(c, level).len(), 1);
            }
        }
    }

    #[test]
    fn slab_bracket_degenerates_at_centers_and_clamps_beyond_domain() {
        let spec = small_spec();
        let slabs = LsSlabs::new(&spec, 5, 10.0, 0.08, 400.0);
        assert_eq!(slabs.generation(), 5);
        assert!(slabs.matches(&spec));
        // Exactly on a center: lo == hi.
        assert_eq!(slabs.bracket(30.0), (3, 3));
        // Between centers: floor/ceil pair.
        assert_eq!(slabs.bracket(34.9), (3, 4));
        // Negative loads clamp to bucket 0.
        assert_eq!(slabs.bracket(-5.0), (0, 0));
        // Beyond the trained domain both ends clamp to the cap bucket.
        let (lo, hi) = slabs.bracket(1e12);
        assert_eq!(lo, hi);
        assert!(slabs.center(lo) > 1.1 * 400.0);
    }

    #[test]
    fn slabs_build_lazily_and_share_arcs() {
        let spec = small_spec();
        let slabs = LsSlabs::new(&spec, 0, 10.0, 0.0, 400.0);
        assert_eq!(slabs.builds(), 0);
        let feas = |_c: u32, _g: f64, _w: u32, _q: f64| true;
        let power = |_c: u32, _g: f64, _w: u32, q: f64| q;
        let a = slabs.slab(&spec, 2, feas, power);
        assert_eq!(slabs.builds(), 1);
        let b = slabs.slab(&spec, 2, feas, power);
        assert_eq!(slabs.builds(), 1, "second request must hit the map");
        assert!(Arc::ptr_eq(&a, &b));
        // The power lattice was built at the slab center (headroom 0).
        assert_eq!(a.qps(), 20.0);
        assert_eq!(a.ls_power_w(1, 0, 1), 20.0);
    }

    #[test]
    fn lerp_power_interpolates_between_slab_centers() {
        let spec = small_spec();
        let slabs = LsSlabs::new(&spec, 0, 10.0, 0.0, 400.0);
        let feas = |_c: u32, _g: f64, _w: u32, _q: f64| true;
        let power = |_c: u32, _g: f64, _w: u32, q: f64| q * 2.0;
        let lo = slabs.slab(&spec, 1, feas, power);
        let hi = slabs.slab(&spec, 2, feas, power);
        // Halfway between centers 10 and 20 → halfway between 20 and 40.
        let mid = slabs.lerp_power_w(&lo, &hi, 15.0, 2, 1, 2);
        assert_eq!(mid, 30.0);
        // Degenerate bracket returns the slab value verbatim.
        assert_eq!(slabs.lerp_power_w(&lo, &lo, 10.0, 2, 1, 2), 20.0);
    }

    #[test]
    fn be_lattice_lookup_matches_evaluator_and_rejects_off_lattice() {
        let spec = small_spec();
        let l = BeLattice::build(
            &spec,
            |c, g, w| c as f64 * g + w as f64,
            |c, g, w| c as f64 - g + w as f64,
        );
        assert_eq!(l.throughput(2, 1.5, 3), Some(2.0 * 1.5 + 3.0));
        assert_eq!(l.power_w(2, 1.5, 3), Some(2.0 - 1.5 + 3.0));
        // Off-lattice frequency or out-of-range resources fall through.
        assert_eq!(l.throughput(2, 1.7, 3), None);
        assert_eq!(l.throughput(5, 1.5, 3), None);
        assert_eq!(l.power_w(2, 1.5, 0), None);
    }
}
