//! The top-level Sturgeon controller (paper Algorithm 1).
//!
//! Every monitoring interval (1 s) the controller computes the latency
//! slack `(target − p95) / target`. When the slack leaves the `[α, β]`
//! band the predictor-driven search finds and applies a fresh
//! configuration; the preference-aware balancer then fine-tunes it
//! against the interference the predictor cannot see.

use crate::balancer::{BalancerParams, ResourceBalancer};
use crate::cache::FrontierCache;
use crate::obs::{SearchReason, TraceEvent};
use crate::online::{OnlineAdaptor, OnlineSample};
use crate::predictor::PerfPowerPredictor;
use crate::search::{ConfigSearch, SearchParams, SearchStats, SearchStrategy};
use std::sync::Arc;
use sturgeon_simnode::{Allocation, NodeSpec, PairConfig};
use sturgeon_workloads::env::Observation;

/// Robustness counters a controller can expose to the run harness
/// (zeros for controllers without a degradation path).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct ControllerFaultCounters {
    /// Intervals whose telemetry the controller judged stale.
    pub stale_intervals: u64,
    /// Times the controller dropped into the safe-mode configuration.
    pub safe_mode_entries: u64,
    /// Balancer rounds that re-tried already-unhelpful harvest targets.
    pub balancer_retry_rounds: u64,
}

/// A per-interval resource-management policy. All evaluated systems
/// (Sturgeon, Sturgeon-NoB, PARTIES, static baselines) implement this.
pub trait ResourceController {
    /// Display name used in reports.
    fn name(&self) -> &'static str;

    /// Robustness counters accumulated so far (default: none).
    fn fault_counters(&self) -> ControllerFaultCounters {
        ControllerFaultCounters::default()
    }

    /// Configuration applied before the first observation. Algorithm 1
    /// line 1: "initialize resource allocation" — everything to the LS
    /// service, because the initial load is unknown.
    fn initial_config(&self, spec: &NodeSpec) -> PairConfig {
        PairConfig::new(
            Allocation::new(
                spec.total_cores - 1,
                spec.max_freq_level(),
                spec.total_llc_ways - 1,
            ),
            Allocation::new(1, 0, 1),
        )
    }

    /// Consumes the interval's observation and returns the configuration
    /// to apply for the next interval.
    fn decide(&mut self, obs: &Observation, current: PairConfig) -> PairConfig;

    /// Enables or disables decision-trace buffering. Controllers without
    /// instrumentation ignore this and simply emit no events.
    fn set_tracing(&mut self, _enabled: bool) {}

    /// Drains the [`TraceEvent`]s buffered since the last call. The run
    /// harness calls this once per interval when a sink or metrics
    /// registry is attached; the default is empty (and allocation-free —
    /// an empty `Vec` does not allocate).
    fn take_trace(&mut self) -> Vec<TraceEvent> {
        Vec::new()
    }
}

/// Graceful-degradation tunables (extension; DESIGN.md "Fault model and
/// degradation policy"). Disabled by default because a noiseless
/// simulation legitimately repeats observations bit-for-bit, which the
/// staleness detector would misread as a frozen sensor; the robustness
/// harness and `tab_robustness` enable it explicitly.
#[derive(Debug, Clone, Copy)]
pub struct RobustnessParams {
    /// Detect stale telemetry and fall back to safe mode.
    pub enabled: bool,
    /// Consecutive stale (bit-identical) observations tolerated before
    /// the controller stops trusting the feed and enters safe mode.
    pub staleness_window: u32,
}

impl Default for RobustnessParams {
    fn default() -> Self {
        Self {
            enabled: false,
            staleness_window: 3,
        }
    }
}

impl RobustnessParams {
    /// The hardened profile used by the robustness experiments.
    pub fn hardened() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }
}

/// Algorithm 1 tunables.
#[derive(Debug, Clone, Copy)]
pub struct ControllerParams {
    /// Lower slack bound α (paper default 10%).
    pub alpha: f64,
    /// Upper slack bound β (paper default 20%).
    pub beta: f64,
    /// Relative load change that forces a fresh search even while the
    /// balancer is still converging.
    pub research_load_delta: f64,
    /// Search-space limits.
    pub search: SearchParams,
    /// Balancer slack band (usually mirrors α/β).
    pub balancer: BalancerParams,
    /// Disable to obtain the paper's *Sturgeon-NoB* ablation (§VII-C).
    pub balancer_enabled: bool,
    /// Stale-telemetry detection and safe-mode fallback.
    pub robust: RobustnessParams,
}

impl Default for ControllerParams {
    fn default() -> Self {
        Self {
            alpha: 0.10,
            beta: 0.20,
            research_load_delta: 0.04,
            search: SearchParams::default(),
            balancer: BalancerParams::default(),
            balancer_enabled: true,
            robust: RobustnessParams::default(),
        }
    }
}

impl ControllerParams {
    /// Paper defaults plus the hardened degradation path.
    pub fn hardened() -> Self {
        Self {
            robust: RobustnessParams::hardened(),
            ..Self::default()
        }
    }
}

/// The Sturgeon runtime: predictor + search + balancer.
#[derive(Debug)]
pub struct SturgeonController {
    /// The trained models, behind an `Arc` so a homogeneous fleet can
    /// train once and hand every controller the same artifact (the
    /// predictor is interior-mutable only through thread-safe caches, so
    /// sharing never changes a prediction). A solo controller simply owns
    /// the only reference.
    predictor: Arc<PerfPowerPredictor>,
    spec: NodeSpec,
    budget_w: f64,
    qos_target_ms: f64,
    params: ControllerParams,
    balancer: ResourceBalancer,
    last_search_qps: Option<f64>,
    last_search_config: Option<PairConfig>,
    last_search_stats: Option<SearchStats>,
    /// Seed for the warm-started search: the raw best configuration of the
    /// last *successful* search and the load it was found at. Fallback and
    /// adaptor-hardened configs are never used as seeds.
    warm_hint: Option<(PairConfig, f64)>,
    /// Search results that violated QoS immediately after being applied
    /// at the current load: the model was wrong about them, so they are
    /// not trusted again until the load changes.
    rejected: Vec<PairConfig>,
    searches: u64,
    /// Optional online-adaptation loop (extension; see `crate::online`):
    /// live observations refit a latency model that vetoes search results
    /// the offline models mispredict under this node's real interference.
    adaptor: Option<OnlineAdaptor>,
    adaptor_vetoes: u64,
    /// Bit-pattern signature of the previous observation's measured
    /// channels, used to detect frozen telemetry.
    last_obs_sig: Option<(u64, u64, u64)>,
    stale_streak: u32,
    stale_intervals: u64,
    safe_mode: bool,
    safe_mode_entries: u64,
    /// Decision-trace buffering: events accumulate in `trace` only while
    /// `tracing` is on, so an untraced run never allocates here.
    tracing: bool,
    trace: Vec<TraceEvent>,
    /// Cross-interval frontier seeds for the pruned engine: best configs
    /// keyed by quantized QPS bucket, invalidated on predictor retrain via
    /// the table generation. Unused under the heuristic strategy.
    frontiers: FrontierCache,
    /// Running totals across the run's pruned searches (zero under the
    /// heuristic strategy), exposed for fleet-level metrics aggregation.
    pruned_candidates_total: u64,
    pruned_subspaces_total: u64,
    frontier_reuses_total: u64,
    incremental_reused_total: u64,
    incremental_rescanned_total: u64,
    /// True while the placement layer has parked the BE side (no job
    /// assigned): the controller holds the power-feasible all-LS safe
    /// configuration instead of optimizing a throughput nobody counts.
    be_idle: bool,
}

impl SturgeonController {
    /// Builds the controller for one node/workload pair, taking sole
    /// ownership of the predictor.
    pub fn new(
        predictor: PerfPowerPredictor,
        spec: NodeSpec,
        budget_w: f64,
        qos_target_ms: f64,
        params: ControllerParams,
    ) -> Self {
        Self::with_shared_predictor(Arc::new(predictor), spec, budget_w, qos_target_ms, params)
    }

    /// Builds the controller around an already-shared predictor — the
    /// fleet path, where one trained artifact serves every node of a
    /// homogeneous (pair, spec) group. All per-node control state
    /// (balancer, warm hints, frontier cache, safe-mode machinery) stays
    /// private to this controller.
    pub fn with_shared_predictor(
        predictor: Arc<PerfPowerPredictor>,
        spec: NodeSpec,
        budget_w: f64,
        qos_target_ms: f64,
        params: ControllerParams,
    ) -> Self {
        let balancer = ResourceBalancer::new(params.balancer);
        Self {
            predictor,
            spec,
            budget_w,
            qos_target_ms,
            params,
            balancer,
            last_search_qps: None,
            last_search_config: None,
            last_search_stats: None,
            warm_hint: None,
            rejected: Vec::new(),
            searches: 0,
            adaptor: None,
            adaptor_vetoes: 0,
            last_obs_sig: None,
            stale_streak: 0,
            stale_intervals: 0,
            safe_mode: false,
            safe_mode_entries: 0,
            tracing: false,
            trace: Vec::new(),
            frontiers: FrontierCache::default(),
            pruned_candidates_total: 0,
            pruned_subspaces_total: 0,
            frontier_reuses_total: 0,
            incremental_reused_total: 0,
            incremental_rescanned_total: 0,
            be_idle: false,
        }
    }

    /// The per-node power budget (W) currently in force.
    pub fn budget_w(&self) -> f64 {
        self.budget_w
    }

    /// Installs a new power cap — the budget-cut (or relaxation)
    /// observation delivered by hierarchical reclamation
    /// ([`crate::budget::BudgetTree`]). When the cap actually changes,
    /// every plan anchored to the old budget is invalid: warm hints,
    /// the last search result and the rejected-config memory are
    /// dropped, so the next observation forces a fresh search under the
    /// new cap. Returns whether the cap changed.
    pub fn set_budget_w(&mut self, budget_w: f64) -> bool {
        if budget_w == self.budget_w {
            return false;
        }
        self.budget_w = budget_w;
        self.warm_hint = None;
        self.last_search_qps = None;
        self.last_search_config = None;
        self.rejected.clear();
        true
    }

    /// Parks or reactivates the BE side. While parked (the placement
    /// engine moved this unit's job elsewhere), [`decide`] holds the
    /// safe configuration: all resources to the LS service at a
    /// power-feasible frequency, leaving the freed watts for the budget
    /// tree to reclaim. Reactivation forces a fresh search.
    ///
    /// Parking also resets the robustness state: a parked controller
    /// makes no model-based decisions, so a safe-mode flag or stale
    /// streak frozen at park time is dead information — without the
    /// reset, a unit parked *while* in safe mode would report safe mode
    /// forever (the idle path never re-runs the staleness check) and
    /// the placement engine could never hand it a job again.
    ///
    /// [`decide`]: ResourceController::decide
    pub fn set_be_idle(&mut self, idle: bool) {
        if idle == self.be_idle {
            return;
        }
        self.be_idle = idle;
        self.safe_mode = false;
        self.stale_streak = 0;
        self.last_obs_sig = None;
        self.warm_hint = None;
        self.last_search_qps = None;
        self.last_search_config = None;
        self.rejected.clear();
    }

    /// True while the BE side is parked by the placement layer.
    pub fn is_be_idle(&self) -> bool {
        self.be_idle
    }

    /// True when the balancer has run out of harvest moves while QoS
    /// keeps violating — the placement layer's second migration trigger
    /// besides safe mode.
    pub fn balancer_exhausted(&self) -> bool {
        self.balancer.is_exhausted()
    }

    /// Enables online adaptation (the "Sturgeon-OA" variant): live
    /// telemetry continuously refits a latency model that double-checks
    /// every search result against the node's *measured* regime.
    pub fn with_adaptation(mut self, adaptor: OnlineAdaptor) -> Self {
        self.adaptor = Some(adaptor);
        self
    }

    /// Number of search results the online adaptor rejected and hardened.
    pub fn adaptation_veto_count(&self) -> u64 {
        self.adaptor_vetoes
    }

    /// The trained predictor (for inspection and the overhead benches).
    pub fn predictor(&self) -> &PerfPowerPredictor {
        &self.predictor
    }

    /// A new handle on the shared predictor artifact.
    pub fn predictor_handle(&self) -> Arc<PerfPowerPredictor> {
        Arc::clone(&self.predictor)
    }

    /// Stats from the most recent configuration search.
    pub fn last_search_stats(&self) -> Option<SearchStats> {
        self.last_search_stats
    }

    /// Number of full searches run so far.
    pub fn search_count(&self) -> u64 {
        self.searches
    }

    /// Running totals over the run's pruned-engine searches, as
    /// `(pruned_candidates, pruned_subspaces, frontier_reuses)`. All zero
    /// under the default heuristic strategy.
    pub fn pruned_totals(&self) -> (u64, u64, u64) {
        (
            self.pruned_candidates_total,
            self.pruned_subspaces_total,
            self.frontier_reuses_total,
        )
    }

    /// Running totals over the run's incremental re-searches, as
    /// `(slices_reused, slices_rescanned)`. Both zero under the heuristic
    /// strategy and whenever every search fell back to the full sweep.
    pub fn incremental_totals(&self) -> (u64, u64) {
        (
            self.incremental_reused_total,
            self.incremental_rescanned_total,
        )
    }

    /// The balancer (for effectiveness accounting).
    pub fn balancer(&self) -> &ResourceBalancer {
        &self.balancer
    }

    /// The parameters the controller was built with.
    pub fn params(&self) -> &ControllerParams {
        &self.params
    }

    /// Intervals whose telemetry was judged stale so far.
    pub fn stale_intervals(&self) -> u64 {
        self.stale_intervals
    }

    /// Times the controller entered safe mode.
    pub fn safe_mode_entries(&self) -> u64 {
        self.safe_mode_entries
    }

    /// True while the controller is holding the safe-mode configuration.
    pub fn in_safe_mode(&self) -> bool {
        self.safe_mode
    }

    /// When QoS cannot be met at all, fall back to everything-to-LS.
    fn fallback(&self) -> PairConfig {
        PairConfig::new(
            Allocation::new(
                self.spec.total_cores - self.params.search.min_be_cores,
                self.spec.max_freq_level(),
                self.spec.total_llc_ways - self.params.search.min_be_ways,
            ),
            Allocation::new(
                self.params.search.min_be_cores,
                0,
                self.params.search.min_be_ways,
            ),
        )
    }

    /// The safe-mode configuration: everything-to-LS (the one allocation
    /// that needs no model to justify — it is Algorithm 1's own
    /// initialization), with the LS frequency lowered until the predictor
    /// deems the power draw feasible at the last known load. Entered when
    /// telemetry goes blind or actuation keeps failing; the controller
    /// cannot optimize what it cannot observe, so it protects the LS
    /// service and the power budget instead.
    pub fn safe_config(&self, qps: f64) -> PairConfig {
        let mut cfg = self.fallback();
        let guarded = self.budget_w * (1.0 - self.params.search.power_guard);
        while cfg.ls.freq_level > 0 && self.predictor.total_power_w(&cfg, &self.spec, qps) > guarded
        {
            cfg.ls.freq_level -= 1;
        }
        cfg
    }

    fn run_search(&mut self, qps: f64, t_s: f64, reason: SearchReason) -> PairConfig {
        let outcome = {
            let search = ConfigSearch::new(
                &self.predictor,
                self.spec.clone(),
                self.budget_w,
                self.params.search,
            );
            match self.params.search.strategy {
                // Warm start from the previous successful search when the
                // load drifted only a little (the common diurnal case): the
                // C1 window re-scan costs a fraction of the full §V-B pass
                // and falls back to it automatically when the seed no
                // longer applies.
                SearchStrategy::Heuristic => {
                    let previous = self.warm_hint.as_ref().map(|(cfg, q)| (cfg, *q));
                    search.best_config_warm(qps, previous)
                }
                // The table-driven branch-and-bound engine: exhaustive-
                // equivalent results, with frontier seeds reused across
                // intervals in the same QPS bucket.
                SearchStrategy::FrontierPruned => {
                    search.with_frontiers(&self.frontiers).pruned(qps)
                }
            }
        };
        self.pruned_candidates_total += outcome.stats.pruned_candidates;
        self.pruned_subspaces_total += outcome.stats.pruned_subspaces;
        self.frontier_reuses_total += outcome.stats.frontier_reuses;
        self.incremental_reused_total += outcome.stats.incremental_slices_reused;
        self.incremental_rescanned_total += outcome.stats.incremental_slices_rescanned;
        self.warm_hint = outcome.best.map(|cfg| (cfg, qps));
        self.last_search_stats = Some(outcome.stats);
        self.last_search_qps = Some(qps);
        self.searches += 1;
        self.balancer.reset();
        let mut config = outcome.best.unwrap_or_else(|| self.fallback());

        // Online-adaptation veto: when the adapted (measured-regime)
        // latency model rejects the LS allocation, harden it — up to a few
        // extra cores — before trusting it on the node.
        if let Some(adaptor) = self.adaptor.as_mut() {
            if adaptor.is_adapted() {
                let mut hardened = 0;
                while hardened < 3
                    && config.be.cores > self.params.search.min_be_cores
                    && !adaptor
                        .corrected_feasible(
                            qps,
                            config.ls.cores,
                            self.spec.freq_ghz(config.ls.freq_level),
                            config.ls.llc_ways,
                        )
                        .unwrap_or(true)
                {
                    config.ls.cores += 1;
                    config.be.cores -= 1;
                    hardened += 1;
                }
                if hardened > 0 {
                    self.adaptor_vetoes += 1;
                    self.last_search_config = Some(config);
                }
            }
        }
        self.last_search_config = Some(config);
        if self.tracing {
            self.trace.push(TraceEvent::SearchRan {
                t_s,
                qps,
                reason,
                model_calls: outcome.stats.model_calls,
                cache_hits: outcome.stats.cache_hits,
                cache_misses: outcome.stats.cache_misses,
                candidates: outcome.stats.candidates,
                chosen: outcome.best,
                predicted_throughput: outcome.predicted_throughput,
                predicted_power_w: self.predictor.total_power_w(&config, &self.spec, qps),
                fallback: outcome.best.is_none(),
            });
            if self.params.search.strategy == SearchStrategy::FrontierPruned {
                self.trace.push(TraceEvent::SearchPruned {
                    t_s,
                    evaluated: outcome.stats.candidates,
                    pruned_candidates: outcome.stats.pruned_candidates,
                    pruned_subspaces: outcome.stats.pruned_subspaces,
                    frontier_reuses: outcome.stats.frontier_reuses,
                });
                self.trace.push(TraceEvent::SearchIncremental {
                    t_s,
                    slices_reused: outcome.stats.incremental_slices_reused,
                    slices_rescanned: outcome.stats.incremental_slices_rescanned,
                });
            }
            self.trace.push(TraceEvent::CacheSnapshot {
                t_s,
                entries: self.predictor.cache().len(),
                hits: self.predictor.cache_hits(),
                misses: self.predictor.cache_misses(),
            });
        }
        config
    }

    /// Buffers a `BalancerStep` event for the action the balancer just
    /// took (no-op when tracing is off or the balancer held position).
    fn trace_balancer_step(&mut self, t_s: f64, next: PairConfig) {
        if self.tracing {
            if let Some(action) = self.balancer.last_action() {
                self.trace.push(TraceEvent::BalancerStep {
                    t_s,
                    action,
                    config: next,
                });
            }
        }
    }

    fn load_changed(&self, qps: f64) -> bool {
        match self.last_search_qps {
            None => true,
            Some(prev) => {
                let base = prev.max(1.0);
                ((qps - prev) / base).abs() > self.params.research_load_delta
            }
        }
    }
}

impl ResourceController for SturgeonController {
    fn name(&self) -> &'static str {
        if self.params.balancer_enabled {
            "Sturgeon"
        } else {
            "Sturgeon-NoB"
        }
    }

    fn fault_counters(&self) -> ControllerFaultCounters {
        ControllerFaultCounters {
            stale_intervals: self.stale_intervals,
            safe_mode_entries: self.safe_mode_entries,
            balancer_retry_rounds: self.balancer.retry_rounds(),
        }
    }

    fn set_tracing(&mut self, enabled: bool) {
        self.tracing = enabled;
        if !enabled {
            self.trace.clear();
        }
    }

    fn take_trace(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.trace)
    }

    fn decide(&mut self, obs: &Observation, current: PairConfig) -> PairConfig {
        // A parked BE side has nothing to optimize: hold the safe
        // configuration (all-LS at a power-feasible frequency) until the
        // placement engine assigns a job again.
        if self.be_idle {
            return self.safe_config(obs.qps);
        }

        // Stale-telemetry detection: a frozen collector replays the
        // previous sample verbatim, so the measured channels repeat
        // bit-for-bit. Decisions made on frozen data are decisions made
        // blind — hold position inside the staleness window, and beyond
        // it stop trusting every model-derived configuration and drop to
        // the safe-mode allocation.
        if self.params.robust.enabled {
            let sig = (
                obs.qps.to_bits(),
                obs.p95_ms.to_bits(),
                obs.power_w.to_bits(),
            );
            let stale = self.last_obs_sig == Some(sig);
            self.last_obs_sig = Some(sig);
            if stale {
                self.stale_streak += 1;
                self.stale_intervals += 1;
                if self.stale_streak >= self.params.robust.staleness_window {
                    if !self.safe_mode {
                        self.safe_mode = true;
                        self.safe_mode_entries += 1;
                        // The configs computed before the blackout are no
                        // longer anchored to reality.
                        self.warm_hint = None;
                        self.last_search_config = None;
                        if self.tracing {
                            self.trace.push(TraceEvent::SafeModeEntered {
                                t_s: obs.t_s,
                                reason: "stale_telemetry",
                                qps: obs.qps,
                            });
                        }
                    }
                    return self.safe_config(obs.qps);
                }
                return current;
            }
            self.stale_streak = 0;
            if self.safe_mode {
                // Fresh telemetry again: leave safe mode and force a full
                // re-search at the now-observable load.
                self.safe_mode = false;
                self.last_search_qps = None;
                self.rejected.clear();
                if self.tracing {
                    self.trace.push(TraceEvent::SafeModeExited { t_s: obs.t_s });
                }
            }
        }

        let slack = (self.qos_target_ms - obs.p95_ms) / self.qos_target_ms;

        // Feed the online adaptor every measured interval.
        if let Some(adaptor) = self.adaptor.as_mut() {
            let sample = OnlineSample {
                qps: obs.qps,
                cores: current.ls.cores,
                freq_ghz: self.spec.freq_ghz(current.ls.freq_level),
                ways: current.ls.llc_ways,
                p95_ms: obs.p95_ms,
            };
            // Adaptation failures must never take the control loop down.
            let _ = adaptor.observe(sample);
        }

        // A materially different load always warrants a fresh prediction
        // (Algorithm 1 line 6): the predictor reacts faster and more
        // accurately than incremental feedback would.
        if self.load_changed(obs.qps) {
            let reason = if self.last_search_qps.is_none() {
                SearchReason::Initial
            } else {
                SearchReason::LoadChanged
            };
            self.rejected.clear();
            return self.run_search(obs.qps, obs.t_s, reason);
        }

        if slack < self.params.alpha {
            // If this configuration came straight from the search, the
            // model was wrong about it: remember that and do not let a
            // later β-branch re-search reinstall it at this load.
            if self.last_search_config == Some(current) && !self.rejected.contains(&current) {
                self.rejected.push(current);
            }
            // Residual violation at unchanged load: error the predictor
            // cannot fix — interference, OS jitter. Hand over to
            // Algorithm 2 (unless running the Sturgeon-NoB ablation,
            // where re-running the search would just return the same,
            // already-wrong configuration).
            if self.params.balancer_enabled {
                if let Some(next) = self.balancer.adjust(
                    &self.predictor,
                    &self.spec,
                    self.budget_w,
                    obs,
                    self.qos_target_ms,
                    current,
                ) {
                    self.trace_balancer_step(obs.t_s, next);
                    return next;
                }
                // The balancer has run out of moves while QoS keeps
                // violating. Under the hardened policy that is the second
                // safe-mode trigger: give up on fine-tuning and fall back
                // to the known-feasible allocation.
                if self.params.robust.enabled && self.balancer.is_exhausted() {
                    if !self.safe_mode {
                        self.safe_mode = true;
                        self.safe_mode_entries += 1;
                        if self.tracing {
                            self.trace.push(TraceEvent::SafeModeEntered {
                                t_s: obs.t_s,
                                reason: "balancer_exhausted",
                                qps: obs.qps,
                            });
                        }
                    }
                    return self.safe_config(obs.qps);
                }
            }
            return current;
        }

        if slack > self.params.beta {
            // Plenty of slack: release resources back to the BE
            // application (Algorithm 1's β branch). If the current
            // configuration already is the search optimum there is
            // nothing to release — tail latency simply sits far below
            // target at the throughput-optimal allocation.
            if self.params.balancer_enabled {
                if let Some(next) = self.balancer.adjust(
                    &self.predictor,
                    &self.spec,
                    self.budget_w,
                    obs,
                    self.qos_target_ms,
                    current,
                ) {
                    self.trace_balancer_step(obs.t_s, next);
                    return next;
                }
            }
            if self.last_search_config != Some(current) {
                let fresh = self.run_search(obs.qps, obs.t_s, SearchReason::SlackRelease);
                if self.rejected.contains(&fresh) {
                    // The search keeps proposing a configuration observed
                    // to violate; stick with the balancer's fix.
                    self.last_search_config = Some(current);
                    return current;
                }
                return fresh;
            }
            return current;
        }

        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::PredictorConfig;
    use crate::profiler::{Profiler, ProfilerConfig};
    use sturgeon_simnode::PowerModel;
    use sturgeon_workloads::catalog::{be_app, ls_service, BeAppId, LsServiceId};
    use sturgeon_workloads::env::CoLocationEnv;
    use sturgeon_workloads::interference::InterferenceParams;

    fn make_env(seed: u64) -> CoLocationEnv {
        CoLocationEnv::new(
            NodeSpec::xeon_e5_2630_v4(),
            PowerModel::default(),
            ls_service(LsServiceId::Memcached),
            be_app(BeAppId::Raytrace),
            InterferenceParams::default(),
            seed,
        )
    }

    fn make_quiet_env() -> CoLocationEnv {
        CoLocationEnv::new(
            NodeSpec::xeon_e5_2630_v4(),
            PowerModel::default(),
            ls_service(LsServiceId::Memcached),
            be_app(BeAppId::Raytrace),
            InterferenceParams::none(),
            0,
        )
    }

    fn make_controller(env: &CoLocationEnv, params: ControllerParams) -> SturgeonController {
        let d = Profiler::new(
            env,
            ProfilerConfig {
                ls_samples_per_load: 100,
                ls_load_fractions: vec![0.15, 0.2, 0.3, 0.4, 0.5, 0.65, 0.8],
                be_samples: 400,
                seed: 13,
            },
        )
        .collect()
        .unwrap();
        let p = PerfPowerPredictor::train(
            &d,
            PredictorConfig::default(),
            env.static_power_w(),
            env.be().params.input_level as f64,
            env.ls().params.qos_target_ms,
        )
        .unwrap();
        SturgeonController::new(
            p,
            env.spec().clone(),
            env.budget_w(),
            env.ls().params.qos_target_ms,
            params,
        )
    }

    #[test]
    fn initial_config_gives_everything_to_ls() {
        let env = make_env(1);
        let c = make_controller(&env, ControllerParams::default());
        let cfg = c.initial_config(env.spec());
        assert_eq!(cfg.ls.cores, 19);
        assert_eq!(cfg.ls.llc_ways, 19);
        assert_eq!(cfg.ls.freq_level, env.spec().max_freq_level());
        assert!(cfg.validate(env.spec()).is_ok());
    }

    #[test]
    fn first_observation_triggers_a_search() {
        let mut env = make_env(2);
        let mut c = make_controller(&env, ControllerParams::default());
        let initial = c.initial_config(env.spec());
        let obs = env.step(&initial, 12_000.0);
        let next = c.decide(&obs, initial);
        assert_eq!(c.search_count(), 1);
        // The over-provisioned initial allocation must shrink.
        assert!(next.ls.cores < initial.ls.cores);
        assert!(next.validate(env.spec()).is_ok());
    }

    #[test]
    fn stable_load_in_band_keeps_config() {
        let mut env = make_quiet_env();
        let mut c = make_controller(&env, ControllerParams::default());
        let mut cfg = c.initial_config(env.spec());
        // Let the controller settle on a constant load.
        for _ in 0..10 {
            let obs = env.step(&cfg, 12_000.0);
            cfg = c.decide(&obs, cfg);
        }
        let searches = c.search_count();
        // With unchanged load there is no reason for fresh searches.
        for _ in 0..10 {
            let obs = env.step(&cfg, 12_000.0);
            cfg = c.decide(&obs, cfg);
        }
        assert_eq!(c.search_count(), searches);
    }

    #[test]
    fn load_change_forces_research() {
        let mut env = make_env(4);
        let mut c = make_controller(&env, ControllerParams::default());
        let mut cfg = c.initial_config(env.spec());
        let obs = env.step(&cfg, 12_000.0);
        cfg = c.decide(&obs, cfg);
        let searches = c.search_count();
        let obs = env.step(&cfg, 30_000.0);
        let _ = c.decide(&obs, cfg);
        assert_eq!(c.search_count(), searches + 1);
    }

    #[test]
    fn nob_never_invokes_balancer() {
        let mut env = make_env(5);
        let mut c = make_controller(
            &env,
            ControllerParams {
                balancer_enabled: false,
                ..ControllerParams::default()
            },
        );
        assert_eq!(c.name(), "Sturgeon-NoB");
        let mut cfg = c.initial_config(env.spec());
        for _ in 0..30 {
            let obs = env.step(&cfg, 12_000.0);
            cfg = c.decide(&obs, cfg);
        }
        assert_eq!(c.balancer().harvest_count(), 0);
    }

    #[test]
    fn decisions_always_valid() {
        let mut env = make_env(6);
        let mut c = make_controller(&env, ControllerParams::default());
        let mut cfg = c.initial_config(env.spec());
        for i in 0..60 {
            let frac = 0.2 + 0.01 * (i as f64 % 40.0);
            let obs = env.step(&cfg, frac * 60_000.0);
            cfg = c.decide(&obs, cfg);
            assert!(cfg.validate(env.spec()).is_ok(), "interval {i}: {cfg}");
        }
    }

    #[test]
    fn impossible_qos_falls_back_to_all_ls() {
        let env = make_env(7);
        let mut c = make_controller(&env, ControllerParams::default());
        // Far beyond peak: no configuration can serve it.
        let obs = Observation {
            t_s: 1.0,
            qps: 5.0 * 60_000.0,
            p95_ms: 80.0,
            in_target_fraction: 0.1,
            ls_utilization: 3.0,
            power_w: 70.0,
            be_throughput_norm: 0.1,
            be_ipc: 0.1,
            interference: 1.0,
        };
        let cfg = c.decide(&obs, c.initial_config(env.spec()));
        assert_eq!(cfg.ls.cores, 19);
        assert_eq!(cfg.ls.freq_level, env.spec().max_freq_level());
    }

    /// A hand-built observation for stale-telemetry tests (bit-identical
    /// replays stand in for a frozen collector).
    fn obs_at(t_s: f64, qps: f64, p95_ms: f64, power_w: f64) -> Observation {
        Observation {
            t_s,
            qps,
            p95_ms,
            in_target_fraction: 1.0,
            ls_utilization: 0.5,
            power_w,
            be_throughput_norm: 0.5,
            be_ipc: 1.0,
            interference: 0.1,
        }
    }

    #[test]
    fn stale_telemetry_holds_config_within_window() {
        let env = make_env(8);
        let mut c = make_controller(&env, ControllerParams::hardened());
        let mut cfg = c.initial_config(env.spec());
        // Fresh observation first (triggers the initial search).
        cfg = c.decide(&obs_at(1.0, 12_000.0, 4.0, 80.0), cfg);
        // Two bit-identical replays: inside the window (3), config held.
        for t in 2..4 {
            let next = c.decide(&obs_at(t as f64, 12_000.0, 4.0, 80.0), cfg);
            assert_eq!(next, cfg, "config must hold inside staleness window");
        }
        assert_eq!(c.stale_intervals(), 2);
        assert!(!c.in_safe_mode());
        assert_eq!(c.safe_mode_entries(), 0);
    }

    #[test]
    fn prolonged_staleness_enters_safe_mode_then_recovers() {
        let env = make_env(9);
        let mut c = make_controller(&env, ControllerParams::hardened());
        let mut cfg = c.initial_config(env.spec());
        cfg = c.decide(&obs_at(1.0, 12_000.0, 4.0, 80.0), cfg);
        // Replay the same observation past the staleness window.
        for t in 2..8 {
            cfg = c.decide(&obs_at(t as f64, 12_000.0, 4.0, 80.0), cfg);
        }
        assert!(c.in_safe_mode());
        assert_eq!(c.safe_mode_entries(), 1);
        // Safe mode keeps every resource with the LS service.
        assert_eq!(cfg.ls.cores, env.spec().total_cores - 1);
        // Fresh telemetry exits safe mode and forces a re-search.
        let searches = c.search_count();
        let _ = c.decide(&obs_at(8.0, 12_100.0, 4.1, 81.0), cfg);
        assert!(!c.in_safe_mode());
        assert_eq!(c.search_count(), searches + 1);
        // Re-entry later counts as a second entry.
        for t in 9..14 {
            cfg = c.decide(&obs_at(t as f64, 12_100.0, 4.1, 81.0), cfg);
        }
        assert!(c.in_safe_mode());
        assert_eq!(c.safe_mode_entries(), 2);
    }

    #[test]
    fn safe_config_is_power_feasible() {
        let env = make_env(10);
        let c = make_controller(&env, ControllerParams::hardened());
        let guarded = env.budget_w() * (1.0 - c.params().search.power_guard);
        for qps in [1_000.0, 12_000.0, 30_000.0, 55_000.0] {
            let cfg = c.safe_config(qps);
            assert!(cfg.validate(env.spec()).is_ok());
            let p = c.predictor().total_power_w(&cfg, env.spec(), qps);
            assert!(
                p <= guarded + 1e-9 || cfg.ls.freq_level == 0,
                "qps {qps}: predicted {p:.1} W exceeds guarded budget {guarded:.1} W"
            );
        }
    }

    #[test]
    fn default_params_ignore_repeated_observations() {
        // Quiet environments legitimately produce bit-identical samples;
        // the robustness layer must stay out of the way unless enabled.
        let mut env = make_quiet_env();
        let mut c = make_controller(&env, ControllerParams::default());
        let mut cfg = c.initial_config(env.spec());
        for t in 0..10 {
            let mut obs = env.step(&cfg, 12_000.0);
            obs.t_s = t as f64;
            cfg = c.decide(&obs, cfg);
        }
        assert_eq!(c.stale_intervals(), 0);
        assert_eq!(c.safe_mode_entries(), 0);
        assert!(!c.in_safe_mode());
    }

    #[test]
    fn fault_counters_surface_through_trait() {
        let env = make_env(11);
        let mut c = make_controller(&env, ControllerParams::hardened());
        let mut cfg = c.initial_config(env.spec());
        for t in 0..8 {
            cfg = c.decide(&obs_at(t as f64, 12_000.0, 4.0, 80.0), cfg);
        }
        let counters = c.fault_counters();
        assert!(counters.stale_intervals >= 3);
        assert_eq!(counters.safe_mode_entries, 1);
    }
}
