//! A Heracles-style baseline controller (Lo et al., ISCA'15), as
//! characterized by the paper (§II-C and Table I): feedback-grown LS
//! allocation plus a *power subcontroller* that keeps slack under the
//! budget exclusively by throttling the BE cores' frequency — never by
//! rebalancing cores or cache with the BE application's preference in
//! mind.
//!
//! Heracles is the paper's example of a power-aware but
//! preference-blind design: it guarantees the budget, but because DVFS on
//! the BE partition is its *only* power knob, frequency-loving BE
//! applications are over-throttled and core-loving ones are starved —
//! exactly the gap Sturgeon's configuration search closes.

use crate::controller::ResourceController;
use sturgeon_simnode::{NodeSpec, PairConfig};
use sturgeon_workloads::env::Observation;

/// Heracles tunables.
#[derive(Debug, Clone, Copy)]
pub struct HeraclesParams {
    /// Slack below which the LS partition grows (cores, then ways).
    pub alpha: f64,
    /// Slack above which the LS partition shrinks.
    pub beta: f64,
    /// Power above `high_water × budget` throttles the BE frequency.
    pub high_water: f64,
    /// Power below `low_water × budget` may raise the BE frequency.
    pub low_water: f64,
}

impl Default for HeraclesParams {
    fn default() -> Self {
        Self {
            alpha: 0.10,
            beta: 0.20,
            high_water: 0.98,
            low_water: 0.90,
        }
    }
}

/// The Heracles-style controller.
#[derive(Debug)]
pub struct HeraclesController {
    spec: NodeSpec,
    budget_w: f64,
    qos_target_ms: f64,
    params: HeraclesParams,
    /// Alternates the LS growth knob between cores and ways.
    grow_cores_next: bool,
    throttles: u64,
    boosts: u64,
}

impl HeraclesController {
    /// Builds the controller.
    pub fn new(spec: NodeSpec, budget_w: f64, qos_target_ms: f64, params: HeraclesParams) -> Self {
        Self {
            spec,
            budget_w,
            qos_target_ms,
            params,
            grow_cores_next: true,
            throttles: 0,
            boosts: 0,
        }
    }

    /// Number of BE frequency throttle actions taken.
    pub fn throttle_count(&self) -> u64 {
        self.throttles
    }

    /// Number of BE frequency boost actions taken.
    pub fn boost_count(&self) -> u64 {
        self.boosts
    }

    fn grow_ls(&mut self, cfg: &PairConfig) -> Option<PairConfig> {
        let mut next = *cfg;
        // Alternate cores and ways; fall through to the other if one knob
        // is exhausted.
        for _ in 0..2 {
            if self.grow_cores_next {
                self.grow_cores_next = false;
                if cfg.be.cores > 1 {
                    next.be.cores -= 1;
                    next.ls.cores += 1;
                    return next.validate(&self.spec).ok().map(|_| next);
                }
            } else {
                self.grow_cores_next = true;
                if cfg.be.llc_ways > 1 {
                    next.be.llc_ways -= 1;
                    next.ls.llc_ways += 1;
                    return next.validate(&self.spec).ok().map(|_| next);
                }
            }
        }
        None
    }

    fn shrink_ls(&mut self, cfg: &PairConfig) -> Option<PairConfig> {
        let mut next = *cfg;
        for _ in 0..2 {
            if self.grow_cores_next {
                self.grow_cores_next = false;
                if cfg.ls.cores > 1 {
                    next.ls.cores -= 1;
                    next.be.cores += 1;
                    return next.validate(&self.spec).ok().map(|_| next);
                }
            } else {
                self.grow_cores_next = true;
                if cfg.ls.llc_ways > 1 {
                    next.ls.llc_ways -= 1;
                    next.be.llc_ways += 1;
                    return next.validate(&self.spec).ok().map(|_| next);
                }
            }
        }
        None
    }
}

impl ResourceController for HeraclesController {
    fn name(&self) -> &'static str {
        "Heracles"
    }

    fn decide(&mut self, obs: &Observation, current: PairConfig) -> PairConfig {
        // Power subcontroller runs first and unconditionally: DVFS on the
        // BE partition is the only power actuator Heracles has.
        if obs.power_w > self.params.high_water * self.budget_w {
            if current.be.freq_level > 0 {
                let mut next = current;
                next.be.freq_level -= 1;
                self.throttles += 1;
                return next;
            }
            // Fully throttled and still hot: give a BE core back to the
            // (cooler) LS side as a last resort.
            if current.be.cores > 1 {
                let mut next = current;
                next.be.cores -= 1;
                next.ls.cores += 1;
                return next;
            }
            return current;
        }

        let slack = (self.qos_target_ms - obs.p95_ms) / self.qos_target_ms;
        if slack < self.params.alpha {
            if let Some(next) = self.grow_ls(&current) {
                return next;
            }
            return current;
        }
        if slack > self.params.beta {
            // Prefer restoring the BE frequency when power allows; only
            // shed LS resources when the frequency is already restored.
            if obs.power_w < self.params.low_water * self.budget_w
                && current.be.freq_level < self.spec.max_freq_level()
            {
                let mut next = current;
                next.be.freq_level += 1;
                self.boosts += 1;
                return next;
            }
            if let Some(next) = self.shrink_ls(&current) {
                return next;
            }
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sturgeon_simnode::Allocation;

    fn spec() -> NodeSpec {
        NodeSpec::xeon_e5_2630_v4()
    }

    fn controller() -> HeraclesController {
        HeraclesController::new(spec(), 80.0, 10.0, HeraclesParams::default())
    }

    fn obs(p95: f64, power: f64) -> Observation {
        Observation {
            t_s: 1.0,
            qps: 12_000.0,
            p95_ms: p95,
            in_target_fraction: 0.9,
            ls_utilization: 0.7,
            power_w: power,
            be_throughput_norm: 0.4,
            be_ipc: 0.5,
            interference: 1.0,
        }
    }

    fn cfg(c1: u32, f1: usize, l1: u32, c2: u32, f2: usize, l2: u32) -> PairConfig {
        PairConfig::new(Allocation::new(c1, f1, l1), Allocation::new(c2, f2, l2))
    }

    #[test]
    fn high_power_throttles_be_frequency_only() {
        let mut c = controller();
        let current = cfg(6, 5, 8, 14, 8, 12);
        let next = c.decide(&obs(8.5, 79.5), current); // > 0.98 × 80
        assert_eq!(next.be.freq_level, 7);
        assert_eq!(next.ls, current.ls, "Heracles must not rebalance on power");
        assert_eq!(c.throttle_count(), 1);
    }

    #[test]
    fn fully_throttled_hot_node_sheds_a_be_core() {
        let mut c = controller();
        let current = cfg(6, 5, 8, 14, 0, 12);
        let next = c.decide(&obs(8.5, 79.5), current);
        assert_eq!(next.be.cores, 13);
        assert_eq!(next.ls.cores, 7);
    }

    #[test]
    fn low_slack_grows_ls_alternating_knobs() {
        let mut c = controller();
        let start = cfg(6, 5, 8, 14, 4, 12);
        let first = c.decide(&obs(9.5, 60.0), start);
        let second = c.decide(&obs(9.5, 60.0), first);
        let core_growth = second.ls.cores - start.ls.cores;
        let way_growth = second.ls.llc_ways - start.ls.llc_ways;
        assert_eq!(core_growth + way_growth, 2, "two growth steps");
        assert!(core_growth >= 1 && way_growth >= 1, "knobs must alternate");
    }

    #[test]
    fn high_slack_restores_be_frequency_before_shedding_ls() {
        let mut c = controller();
        let current = cfg(10, 5, 10, 10, 3, 10);
        let next = c.decide(&obs(2.0, 60.0), current); // cool & slack-rich
        assert_eq!(next.be.freq_level, 4, "boost BE frequency first");
        assert_eq!(next.ls, current.ls);
        assert_eq!(c.boost_count(), 1);
    }

    #[test]
    fn high_slack_at_max_freq_sheds_ls_resources() {
        let mut c = controller();
        let current = cfg(10, 5, 10, 10, 9, 10);
        let next = c.decide(&obs(2.0, 60.0), current);
        let shed = next.ls.cores < current.ls.cores || next.ls.llc_ways < current.ls.llc_ways;
        assert!(shed, "LS must shrink when BE frequency is maxed");
    }

    #[test]
    fn in_band_and_cool_holds() {
        let mut c = controller();
        let current = cfg(6, 5, 8, 14, 8, 12);
        assert_eq!(c.decide(&obs(8.5, 60.0), current), current);
    }

    #[test]
    fn moves_always_validate() {
        let mut c = controller();
        let mut current = cfg(6, 5, 8, 14, 8, 12);
        for i in 0..200 {
            let (p95, power) = match i % 4 {
                0 => (9.5, 60.0),
                1 => (2.0, 60.0),
                2 => (8.5, 79.9),
                _ => (8.5, 60.0),
            };
            current = c.decide(&obs(p95, power), current);
            assert!(current.validate(&spec()).is_ok(), "step {i}: {current}");
        }
    }
}
