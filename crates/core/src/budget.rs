//! Hierarchical power budgets: node → rack → row → datacenter.
//!
//! The paper manages one node against one cap. A datacenter does not
//! hand every node an independent cap — breakers and busbars impose
//! caps at every level of the power-delivery tree, and when an upstream
//! cap tightens (oversubscription reclaim, utility curtailment) the
//! slack has to be taken *from somewhere below*. [`BudgetTree`] models
//! that delivery tree over the fleet's serving units and implements
//! **proportional reclamation**: when a parent cap no longer covers the
//! sum of its children's caps, each child keeps its measured demand and
//! gives up headroom in proportion to how much headroom it has. Loaded
//! children are protected; idle children fund the cut.
//!
//! Leaves are the fleet's control units (shards — see
//! [`crate::fleet::Fleet`], where one controller governs a contiguous
//! node range), racks group leaves the way regions group shards, rows
//! group racks, and the single datacenter root caps everything. Each
//! leaf's effective cap divides across its nodes, and every node's
//! `SturgeonController` observes a cap change as a budget-cut: the
//! warm-started search state anchored to the old budget is invalidated
//! and the next interval re-searches under the new one
//! ([`crate::controller::SturgeonController::set_budget_w`]).

use crate::error::SturgeonError;

/// The four levels of the power-delivery tree, leaf to root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetLevel {
    /// A leaf: one serving unit (a fleet shard / contiguous node range).
    Node,
    /// A contiguous group of leaves (the fleet maps regions here).
    Rack,
    /// A contiguous group of racks.
    Row,
    /// The single root spanning the whole fleet.
    Datacenter,
}

impl BudgetLevel {
    /// Stable lowercase name (manifest values, trace events).
    pub fn as_str(&self) -> &'static str {
        match self {
            BudgetLevel::Node => "node",
            BudgetLevel::Rack => "rack",
            BudgetLevel::Row => "row",
            BudgetLevel::Datacenter => "datacenter",
        }
    }

    /// Parses a manifest-style level name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "node" => Some(BudgetLevel::Node),
            "rack" => Some(BudgetLevel::Rack),
            "row" => Some(BudgetLevel::Row),
            "datacenter" => Some(BudgetLevel::Datacenter),
            _ => None,
        }
    }
}

/// A new cap value for one element of the tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BudgetCap {
    /// Absolute watts.
    Watts(f64),
    /// A fraction of the element's *nominal* cap (the sum of its leaves'
    /// construction-time caps) — the manifest-friendly form, because it
    /// needs no knowledge of the fleet's absolute power numbers.
    FractionOfNominal(f64),
}

/// A scheduled cap change: at `at_s`, install `cap` on `(level, index)`.
/// The fleet applies due events at interval boundaries and runs a
/// reclamation pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetEvent {
    /// Interval timestamp (s) at which the change takes effect.
    pub at_s: f64,
    /// Which level's cap changes.
    pub level: BudgetLevel,
    /// Element index within that level.
    pub index: usize,
    /// The new cap.
    pub cap: BudgetCap,
}

/// One level of the tree as parallel arrays: the operator-set cap, the
/// construction-time nominal cap, the post-reclamation effective cap,
/// and each element's child range in the level below (empty for
/// leaves).
#[derive(Debug, Clone)]
struct Level {
    cap_w: Vec<f64>,
    nominal_w: Vec<f64>,
    eff_w: Vec<f64>,
    child_lo: Vec<usize>,
    child_hi: Vec<usize>,
}

impl Level {
    fn len(&self) -> usize {
        self.cap_w.len()
    }
}

/// The power-delivery tree. Construction fixes the geometry and the
/// per-leaf nominal caps; [`BudgetTree::set_cap`] tightens or relaxes
/// any element's cap, and [`BudgetTree::reclaim`] re-apportions
/// effective caps top-down so that at every level the children's
/// effective caps sum to no more than the parent's.
#[derive(Debug, Clone)]
pub struct BudgetTree {
    /// `levels[0]` = leaves, `[1]` = racks, `[2]` = rows, `[3]` = the
    /// datacenter root (always exactly one element).
    levels: [Level; 4],
}

impl BudgetTree {
    /// Builds the tree from per-leaf nominal caps and contiguous group
    /// sizes: `rack_sizes` partitions the leaves, `row_sizes` partitions
    /// the racks; a single root spans the rows. Every group size must be
    /// positive and the sizes must sum to the level below's length.
    pub fn new(
        leaf_caps_w: &[f64],
        rack_sizes: &[usize],
        row_sizes: &[usize],
    ) -> Result<Self, SturgeonError> {
        if leaf_caps_w.is_empty() {
            return Err(SturgeonError::setup("budget tree needs at least one leaf"));
        }
        if leaf_caps_w.iter().any(|&c| !c.is_finite() || c < 0.0) {
            return Err(SturgeonError::setup(
                "leaf caps must be finite and non-negative",
            ));
        }
        let leaves = Level {
            cap_w: leaf_caps_w.to_vec(),
            nominal_w: leaf_caps_w.to_vec(),
            eff_w: leaf_caps_w.to_vec(),
            child_lo: vec![0; leaf_caps_w.len()],
            child_hi: vec![0; leaf_caps_w.len()],
        };
        let racks = Self::group(&leaves, rack_sizes, "rack")?;
        let rows = Self::group(&racks, row_sizes, "row")?;
        let root = Self::group(&rows, &[rows.len()], "datacenter")?;
        Ok(Self {
            levels: [leaves, racks, rows, root],
        })
    }

    /// A uniform tree: `leaves` leaves of `leaf_cap_w` each, split
    /// evenly into `racks` racks and those into `rows` rows (remainders
    /// go to the earliest groups, mirroring the fleet's shard split).
    pub fn uniform(
        leaves: usize,
        leaf_cap_w: f64,
        racks: usize,
        rows: usize,
    ) -> Result<Self, SturgeonError> {
        let caps = vec![leaf_cap_w; leaves];
        Self::new(
            &caps,
            &even_split(leaves, racks)?,
            &even_split(racks, rows)?,
        )
    }

    /// The degenerate tree used by the equivalence tests: every level's
    /// cap equals the sum of its children, so reclamation never binds.
    pub fn single_level(leaf_caps_w: &[f64]) -> Result<Self, SturgeonError> {
        Self::new(leaf_caps_w, &[leaf_caps_w.len()], &[1])
    }

    fn group(below: &Level, sizes: &[usize], what: &str) -> Result<Level, SturgeonError> {
        if sizes.is_empty() || sizes.contains(&0) {
            return Err(SturgeonError::setup(format!(
                "every {what} group must be non-empty"
            )));
        }
        if sizes.iter().sum::<usize>() != below.len() {
            return Err(SturgeonError::setup(format!(
                "{what} group sizes must cover the level below exactly"
            )));
        }
        let mut lo = 0usize;
        let mut cap_w = Vec::with_capacity(sizes.len());
        let mut child_lo = Vec::with_capacity(sizes.len());
        let mut child_hi = Vec::with_capacity(sizes.len());
        for &s in sizes {
            let hi = lo + s;
            cap_w.push(below.nominal_w[lo..hi].iter().sum());
            child_lo.push(lo);
            child_hi.push(hi);
            lo = hi;
        }
        Ok(Level {
            nominal_w: cap_w.clone(),
            eff_w: cap_w.clone(),
            cap_w,
            child_lo,
            child_hi,
        })
    }

    fn level_ix(level: BudgetLevel) -> usize {
        match level {
            BudgetLevel::Node => 0,
            BudgetLevel::Rack => 1,
            BudgetLevel::Row => 2,
            BudgetLevel::Datacenter => 3,
        }
    }

    /// Element count at a level.
    pub fn len(&self, level: BudgetLevel) -> usize {
        self.levels[Self::level_ix(level)].len()
    }

    /// True when the tree has no leaves (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.levels[0].len() == 0
    }

    /// The nominal cap (W) of one element — what it was built with,
    /// independent of later `set_cap` calls.
    pub fn nominal_cap_w(&self, level: BudgetLevel, index: usize) -> f64 {
        self.levels[Self::level_ix(level)].nominal_w[index]
    }

    /// The currently set cap (W) of one element.
    pub fn cap_w(&self, level: BudgetLevel, index: usize) -> f64 {
        self.levels[Self::level_ix(level)].cap_w[index]
    }

    /// The effective cap (W) of one element after the last
    /// [`BudgetTree::reclaim`] pass.
    pub fn effective_cap_w(&self, level: BudgetLevel, index: usize) -> f64 {
        self.levels[Self::level_ix(level)].eff_w[index]
    }

    /// Effective per-leaf caps, in leaf order.
    pub fn leaf_caps_w(&self) -> &[f64] {
        &self.levels[0].eff_w
    }

    /// Total watts reclamation is currently withholding from the leaves
    /// (nominal minus effective, summed).
    pub fn reclaimed_w(&self) -> f64 {
        self.levels[0]
            .nominal_w
            .iter()
            .zip(&self.levels[0].eff_w)
            .map(|(n, e)| n - e)
            .sum()
    }

    /// Installs a new cap on one element. Resolves
    /// [`BudgetCap::FractionOfNominal`] against the element's nominal
    /// cap, clamps to non-negative, and returns the installed watts.
    /// Callers must run [`BudgetTree::reclaim`] afterwards to push the
    /// change down to the leaves.
    pub fn set_cap(
        &mut self,
        level: BudgetLevel,
        index: usize,
        cap: BudgetCap,
    ) -> Result<f64, SturgeonError> {
        let l = &mut self.levels[Self::level_ix(level)];
        if index >= l.len() {
            return Err(SturgeonError::setup(format!(
                "budget {} index {index} out of range (len {})",
                level.as_str(),
                l.len()
            )));
        }
        let watts = match cap {
            BudgetCap::Watts(w) => w,
            BudgetCap::FractionOfNominal(f) => f * l.nominal_w[index],
        };
        if !watts.is_finite() || watts < 0.0 {
            return Err(SturgeonError::setup("budget cap must be finite and >= 0"));
        }
        l.cap_w[index] = watts;
        Ok(watts)
    }

    /// Re-apportions effective caps top-down. `leaf_demands_w`, when
    /// given (one entry per leaf), is each leaf's measured draw; a
    /// binding parent first covers every child's demand and then splits
    /// the surplus in proportion to headroom (`cap − demand`), so the
    /// cut lands on the children that were not using their allowance.
    /// Without demands the split is proportional to the caps themselves.
    ///
    /// Post-condition (the reclamation invariant): at every internal
    /// element, the children's effective caps sum to at most the
    /// element's effective cap, and every element's effective cap is at
    /// most its set cap.
    pub fn reclaim(&mut self, leaf_demands_w: Option<&[f64]>) {
        if let Some(d) = leaf_demands_w {
            assert_eq!(d.len(), self.levels[0].len(), "one demand per leaf");
        }
        // Aggregate demands bottom-up: an element's demand is the sum of
        // its leaves' demands, clamped into [0, set cap].
        let mut demands: [Vec<f64>; 4] = [
            match leaf_demands_w {
                Some(d) => d
                    .iter()
                    .zip(&self.levels[0].cap_w)
                    .map(|(&d, &c)| d.max(0.0).min(c))
                    .collect(),
                None => vec![0.0; self.levels[0].len()],
            },
            Vec::new(),
            Vec::new(),
            Vec::new(),
        ];
        for ix in 1..4 {
            let l = &self.levels[ix];
            demands[ix] = (0..l.len())
                .map(|i| {
                    demands[ix - 1][l.child_lo[i]..l.child_hi[i]]
                        .iter()
                        .sum::<f64>()
                        .min(l.cap_w[i])
                })
                .collect();
        }
        // Root: effective = set cap.
        self.levels[3].eff_w[0] = self.levels[3].cap_w[0];
        // Push down: each internal element apportions its effective cap
        // across its children.
        for ix in (1..4).rev() {
            let (below, level) = {
                let (a, b) = self.levels.split_at_mut(ix);
                (&mut a[ix - 1], &b[0])
            };
            for i in 0..level.len() {
                let lo = level.child_lo[i];
                let hi = level.child_hi[i];
                apportion(
                    level.eff_w[i],
                    &below.cap_w[lo..hi],
                    &demands[ix - 1][lo..hi],
                    &mut below.eff_w[lo..hi],
                );
            }
        }
    }

    /// Checks the reclamation invariant everywhere; returns the first
    /// violation as an error string (test/diagnostic helper).
    pub fn check_invariants(&self) -> Result<(), String> {
        for (ix, name) in [(1, "rack"), (2, "row"), (3, "datacenter")] {
            let l = &self.levels[ix];
            let below = &self.levels[ix - 1];
            for i in 0..l.len() {
                let child_sum: f64 = below.eff_w[l.child_lo[i]..l.child_hi[i]].iter().sum();
                if child_sum > l.eff_w[i] * (1.0 + 1e-9) + 1e-9 {
                    return Err(format!(
                        "{name} {i}: children sum {child_sum:.6} W > effective {:.6} W",
                        l.eff_w[i]
                    ));
                }
            }
        }
        for (ix, name) in [(0, "leaf"), (1, "rack"), (2, "row"), (3, "datacenter")] {
            let l = &self.levels[ix];
            for i in 0..l.len() {
                if l.eff_w[i] > l.cap_w[i] * (1.0 + 1e-9) + 1e-9 {
                    return Err(format!(
                        "{name} {i}: effective {:.6} W > set cap {:.6} W",
                        l.eff_w[i], l.cap_w[i]
                    ));
                }
                if l.eff_w[i] < 0.0 {
                    return Err(format!("{name} {i}: negative effective cap"));
                }
            }
        }
        Ok(())
    }
}

/// Splits `n` elements into `groups` contiguous groups as evenly as
/// possible (remainders to the earliest groups — the fleet's split).
pub(crate) fn even_split(n: usize, groups: usize) -> Result<Vec<usize>, SturgeonError> {
    if groups == 0 || groups > n {
        return Err(SturgeonError::setup(format!(
            "group count must be in 1..={n}, got {groups}"
        )));
    }
    let base = n / groups;
    let extra = n % groups;
    Ok((0..groups).map(|g| base + usize::from(g < extra)).collect())
}

/// Headroom-proportional apportionment of `parent_eff` watts across
/// children with the given caps and (cap-clamped) demands, written into
/// `out`. When the caps already fit under the parent nothing shrinks;
/// when even the demands do not fit, the children shrink pro-rata on
/// demand (pro-rata on cap if all demands are zero).
fn apportion(parent_eff: f64, caps: &[f64], demands: &[f64], out: &mut [f64]) {
    let cap_sum: f64 = caps.iter().sum();
    if cap_sum <= parent_eff {
        out.copy_from_slice(caps);
        return;
    }
    let demand_sum: f64 = demands.iter().sum();
    if parent_eff <= demand_sum {
        // Even demand cannot be met: scale demand pro-rata.
        if demand_sum > 0.0 {
            for ((o, &d), &c) in out.iter_mut().zip(demands).zip(caps) {
                *o = (parent_eff * d / demand_sum).min(c);
            }
        } else {
            for (o, &c) in out.iter_mut().zip(caps) {
                *o = if cap_sum > 0.0 {
                    parent_eff * c / cap_sum
                } else {
                    0.0
                };
            }
        }
        return;
    }
    // Demand fits: each child keeps its demand plus a share of the
    // surplus proportional to its headroom. `cap_sum > parent_eff >=
    // demand_sum` guarantees positive total headroom.
    let surplus = parent_eff - demand_sum;
    let headroom: f64 = cap_sum - demand_sum;
    for ((o, &d), &c) in out.iter_mut().zip(demands).zip(caps) {
        *o = (d + surplus * (c - d) / headroom).min(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_leaves(t: &BudgetTree) -> f64 {
        t.leaf_caps_w().iter().sum()
    }

    #[test]
    fn unconstrained_tree_passes_nominal_through() {
        let mut t = BudgetTree::uniform(8, 100.0, 4, 2).unwrap();
        t.reclaim(None);
        assert_eq!(t.leaf_caps_w(), &[100.0; 8]);
        assert_eq!(t.nominal_cap_w(BudgetLevel::Datacenter, 0), 800.0);
        assert_eq!(t.reclaimed_w(), 0.0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn datacenter_cut_without_demand_scales_proportionally() {
        let mut t = BudgetTree::uniform(4, 100.0, 2, 1).unwrap();
        t.set_cap(
            BudgetLevel::Datacenter,
            0,
            BudgetCap::FractionOfNominal(0.5),
        )
        .unwrap();
        t.reclaim(None);
        for &c in t.leaf_caps_w() {
            assert!((c - 50.0).abs() < 1e-9, "leaf cap {c}");
        }
        assert!((t.reclaimed_w() - 200.0).abs() < 1e-9);
        t.check_invariants().unwrap();
    }

    #[test]
    fn cut_lands_on_headroom_not_on_demand() {
        let mut t = BudgetTree::uniform(2, 100.0, 1, 1).unwrap();
        t.set_cap(BudgetLevel::Datacenter, 0, BudgetCap::Watts(150.0))
            .unwrap();
        // Leaf 0 draws 90 W, leaf 1 idles at 10 W: the 50 W cut comes
        // out of headroom (10 vs 90), so the loaded leaf keeps 95 W.
        t.reclaim(Some(&[90.0, 10.0]));
        let caps = t.leaf_caps_w();
        assert!((caps[0] - 95.0).abs() < 1e-9, "loaded leaf got {}", caps[0]);
        assert!((caps[1] - 55.0).abs() < 1e-9, "idle leaf got {}", caps[1]);
        t.check_invariants().unwrap();
    }

    #[test]
    fn cut_below_demand_scales_demand_pro_rata() {
        let mut t = BudgetTree::uniform(2, 100.0, 1, 1).unwrap();
        t.set_cap(BudgetLevel::Datacenter, 0, BudgetCap::Watts(60.0))
            .unwrap();
        t.reclaim(Some(&[90.0, 30.0]));
        let caps = t.leaf_caps_w();
        assert!((caps[0] - 45.0).abs() < 1e-9);
        assert!((caps[1] - 15.0).abs() < 1e-9);
        t.check_invariants().unwrap();
    }

    #[test]
    fn rack_cut_only_touches_its_own_leaves() {
        let mut t = BudgetTree::uniform(4, 100.0, 2, 1).unwrap();
        t.set_cap(BudgetLevel::Rack, 0, BudgetCap::Watts(120.0))
            .unwrap();
        t.reclaim(None);
        let caps = t.leaf_caps_w();
        assert!((caps[0] - 60.0).abs() < 1e-9);
        assert!((caps[1] - 60.0).abs() < 1e-9);
        assert_eq!(caps[2], 100.0);
        assert_eq!(caps[3], 100.0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn relaxing_restores_nominal() {
        let mut t = BudgetTree::uniform(4, 100.0, 2, 2).unwrap();
        t.set_cap(
            BudgetLevel::Datacenter,
            0,
            BudgetCap::FractionOfNominal(0.6),
        )
        .unwrap();
        t.reclaim(Some(&[80.0, 20.0, 50.0, 50.0]));
        assert!(sum_leaves(&t) <= 240.0 + 1e-9);
        t.set_cap(
            BudgetLevel::Datacenter,
            0,
            BudgetCap::FractionOfNominal(1.0),
        )
        .unwrap();
        t.reclaim(Some(&[80.0, 20.0, 50.0, 50.0]));
        assert_eq!(t.leaf_caps_w(), &[100.0; 4]);
        assert_eq!(t.reclaimed_w(), 0.0);
        t.check_invariants().unwrap();
    }

    #[test]
    fn nested_cuts_compose() {
        let mut t = BudgetTree::uniform(8, 100.0, 4, 2).unwrap();
        t.set_cap(BudgetLevel::Row, 0, BudgetCap::Watts(300.0))
            .unwrap();
        t.set_cap(BudgetLevel::Datacenter, 0, BudgetCap::Watts(500.0))
            .unwrap();
        t.reclaim(None);
        t.check_invariants().unwrap();
        // Row 0 (leaves 0..4) is bound by its own 300 W; the remaining
        // 200 W of the datacenter cap bounds row 1.
        let caps = t.leaf_caps_w();
        let row0: f64 = caps[..4].iter().sum();
        let row1: f64 = caps[4..].iter().sum();
        assert!(row0 <= 300.0 + 1e-9);
        assert!(row0 + row1 <= 500.0 + 1e-9);
    }

    #[test]
    fn single_level_tree_is_inert() {
        let mut t = BudgetTree::single_level(&[80.0, 90.0, 100.0]).unwrap();
        t.reclaim(Some(&[70.0, 70.0, 70.0]));
        assert_eq!(t.leaf_caps_w(), &[80.0, 90.0, 100.0]);
        t.check_invariants().unwrap();
    }

    #[test]
    fn rejects_bad_geometry_and_caps() {
        assert!(BudgetTree::new(&[], &[], &[]).is_err());
        assert!(BudgetTree::new(&[1.0, 2.0], &[1], &[1]).is_err());
        assert!(BudgetTree::new(&[1.0, 2.0], &[2, 0], &[2]).is_err());
        assert!(BudgetTree::new(&[f64::NAN], &[1], &[1]).is_err());
        assert!(BudgetTree::uniform(4, 100.0, 5, 1).is_err());
        let mut t = BudgetTree::uniform(2, 100.0, 1, 1).unwrap();
        assert!(t
            .set_cap(BudgetLevel::Rack, 3, BudgetCap::Watts(1.0))
            .is_err());
        assert!(t
            .set_cap(BudgetLevel::Datacenter, 0, BudgetCap::Watts(-5.0))
            .is_err());
    }

    #[test]
    fn level_names_round_trip() {
        for level in [
            BudgetLevel::Node,
            BudgetLevel::Rack,
            BudgetLevel::Row,
            BudgetLevel::Datacenter,
        ] {
            assert_eq!(BudgetLevel::parse(level.as_str()), Some(level));
        }
        assert_eq!(BudgetLevel::parse("pdu"), None);
    }
}
