//! Memoized prediction cache for the trained predictor's hot query
//! families.
//!
//! The control plane's searches — the §V-B binary search, the O(N⁴)
//! exhaustive oracle, the balancer's candidate probes and the
//! multi-application sweep — all re-query the same small resource lattice:
//! `(cores, freq-step, ways)` spans only a few thousand points per
//! partition, and within one control interval the load is a single value.
//! Every query still pays `Box<dyn Regressor>` dispatch plus a full KNN /
//! tree evaluation. This module memoizes the answers behind a quantized
//! key so repeated lattice points cost a hash lookup instead.
//!
//! Keys quantize exactly: `cores` and `ways` are integers, `freq_ghz`
//! comes from the discrete [`NodeSpec`](sturgeon_simnode::NodeSpec)
//! frequency table (bit-identical per level), and `qps` is either taken
//! bit-exact (the default) or bucketed by a configurable quantum for
//! callers that sweep continuously varying loads. With the default exact
//! keys the cache can never change a result, only its cost — the
//! oracle-equivalence test in `tests/integration_predictor.rs` locks that
//! in.
//!
//! The cache is `Send + Sync` (sharded `parking_lot::Mutex` maps, atomic
//! counters) so the parallel sweeps of the search layer can share one
//! instance across worker threads.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use sturgeon_simnode::PairConfig;

/// The four memoized query families of the predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// `ls_feasible` — the QoS classifier plus latency veto (bool as 0/1).
    LsFeasible,
    /// `ls_power_w` — LS partition power, margin included.
    LsPower,
    /// `be_throughput` — normalized BE throughput.
    BeThroughput,
    /// `be_power_w` — BE partition power, margin included.
    BePower,
}

/// Fully quantized cache key. `freq_bits`/`qps_bits` are `f64::to_bits`
/// images (or bucket indices when a qps quantum is configured), so lookup
/// equality is exact and `NaN` never reaches a key (query paths pass
/// finite values only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    family: Family,
    cores: u32,
    freq_bits: u64,
    ways: u32,
    qps_bits: u64,
}

/// Number of independently locked shards. Power of two so the shard index
/// is a mask of the key hash; 16 keeps contention negligible for the
/// worker counts the rayon sweeps use.
const SHARDS: usize = 16;

/// A sharded, thread-safe memo table from quantized query keys to
/// predicted values, with hit/miss accounting for the §VII-E overhead
/// tables.
pub struct PredictionCache {
    shards: Vec<Mutex<HashMap<Key, f64>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    enabled: AtomicBool,
    /// `qps` bucket width; `<= 0` means exact (bit-identical) keys.
    qps_quantum: Mutex<f64>,
}

impl std::fmt::Debug for PredictionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredictionCache")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for PredictionCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PredictionCache {
    /// An empty, enabled cache with exact qps keys.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
            qps_quantum: Mutex::new(0.0),
        }
    }

    /// Turns memoization on or off. Disabled, every lookup computes and
    /// neither counters nor tables are touched — the uncached baseline for
    /// the Criterion benches.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether lookups consult the memo tables.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Sets the qps bucket width. `0.0` (the default) keys loads
    /// bit-exactly, which preserves result equivalence by construction;
    /// a positive quantum trades a bounded load-rounding error for hits
    /// across nearby loads. Changing the quantum invalidates the cache —
    /// old keys were quantized differently.
    pub fn set_qps_quantum(&self, quantum: f64) {
        *self.qps_quantum.lock() = quantum.max(0.0);
        self.clear();
    }

    /// Current qps bucket width (`0.0` = exact).
    pub fn qps_quantum(&self) -> f64 {
        *self.qps_quantum.lock()
    }

    fn quantize_qps(&self, qps: f64) -> u64 {
        let quantum = *self.qps_quantum.lock();
        if quantum > 0.0 {
            (qps / quantum).round() as u64
        } else {
            qps.to_bits()
        }
    }

    fn shard_of(&self, key: &Key) -> &Mutex<HashMap<Key, f64>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & (SHARDS - 1)]
    }

    /// Returns the memoized value for the quantized query, computing and
    /// inserting it on a miss. With the cache disabled this is exactly
    /// `compute()`.
    pub fn get_or_compute(
        &self,
        family: Family,
        cores: u32,
        freq_ghz: f64,
        ways: u32,
        qps: f64,
        compute: impl FnOnce() -> f64,
    ) -> f64 {
        if !self.is_enabled() {
            return compute();
        }
        let key = Key {
            family,
            cores,
            freq_bits: freq_ghz.to_bits(),
            ways,
            qps_bits: self.quantize_qps(qps),
        };
        let shard = self.shard_of(&key);
        if let Some(&v) = shard.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        // The lock is dropped during compute(): a concurrent worker may
        // recompute the same key, but both arrive at the same value (the
        // models are deterministic), so last-write-wins is harmless and
        // the search threads never serialize on model evaluation.
        let v = compute();
        shard.lock().insert(key, v);
        self.misses.fetch_add(1, Ordering::Relaxed);
        v
    }

    /// Lookups answered from the memo tables.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to run the underlying models.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Resets hit/miss counters (entries are kept).
    pub fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Drops every memoized entry. Must be called whenever the underlying
    /// models change (retraining); counters are kept so overhead
    /// accounting spans invalidations.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }

    /// Number of memoized entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-C1-slice snapshot of the latticed pruned sweep: the slab envelope
/// the slice was scanned under (feasibility words and LS power rows, both
/// flattened over `(F1, L1)`) and the exact slice outcome. The
/// incremental re-search compares freshly computed envelopes against
/// these buffers in place and rescans only slices whose bytes moved; the
/// `Vec`s double as reusable scratch so steady-state searches allocate
/// nothing.
#[derive(Debug, Clone, Default)]
pub struct SliceSnapshot {
    /// Envelope feasibility words, `n_levels × words_per_row`.
    pub feas: Vec<u64>,
    /// Envelope LS power rows (W), `n_levels × total_ways`.
    pub power: Vec<f64>,
    /// The slice's exact best candidate under the envelope, with its
    /// predicted BE throughput.
    pub best: Option<(PairConfig, f64)>,
}

/// Bucket-delta state for the incremental re-search
/// (`ConfigSearch::pruned`): the previous latticed sweep's per-slice
/// envelopes and outcomes plus the identity — generation, budget, slab
/// bracket, lattice shape — they were computed under. A new search whose
/// identity matches and whose QPS bracket moved at most one bucket reuses
/// every slice whose envelope is unchanged; anything else (drift,
/// retrain, budget change, reshaped lattice) discards the state and runs
/// the full sweep, which repopulates it.
#[derive(Debug, Default)]
pub struct IncrementalState {
    /// Predictor training generation of the stored sweep.
    pub generation: u64,
    /// `budget_w.to_bits()` of the stored sweep.
    pub budget_bits: u64,
    /// `power_load_headroom.to_bits()` baked into the stored envelopes.
    pub headroom_bits: u64,
    /// Slab bracket of the stored sweep.
    pub lo_bucket: u64,
    /// Slab bracket of the stored sweep.
    pub hi_bucket: u64,
    /// Search-space shape of the stored sweep.
    pub max_c1: u32,
    /// Search-space shape of the stored sweep.
    pub max_l1: u32,
    /// One snapshot per C1 slice, index `c1 - 1`.
    pub slices: Vec<SliceSnapshot>,
    /// The stored sweep's folded outcome.
    pub best: Option<(PairConfig, f64)>,
}

/// Cross-interval frontier memory for the pruned search engine.
///
/// The steady-state control path re-searches at loads that drift a few
/// per mille per interval, so the previous interval's winning
/// configuration is almost always a high-value incumbent for the next
/// search. This cache keys those seeds on *quantized QPS buckets* — the
/// seed is only a starting bound, revalidated by the searcher against the
/// live slab envelope before use, so bucketing can never change a result,
/// only how much of the sweep the bound prunes.
///
/// Seeds are tagged with the predictor's training generation and dropped
/// wholesale when it changes — the same invalidation rule as
/// [`PredictionCache::clear`] on retrain.
///
/// The cache also parks the [`IncrementalState`] between intervals
/// (take/store, so the searcher mutates it without holding the lock);
/// see [`take_incremental`](Self::take_incremental).
#[derive(Debug)]
pub struct FrontierCache {
    inner: Mutex<FrontierInner>,
    reuses: AtomicU64,
    incremental: Mutex<Option<Box<IncrementalState>>>,
}

#[derive(Debug)]
struct FrontierInner {
    generation: u64,
    qps_quantum: f64,
    seeds: HashMap<u64, PairConfig>,
}

/// Bound on stored seeds; a control loop visits far fewer distinct load
/// buckets, so hitting it means the quantum is misconfigured — wipe and
/// restart rather than grow without limit.
const FRONTIER_CAP: usize = 256;

impl Default for FrontierCache {
    fn default() -> Self {
        Self::new(200.0)
    }
}

impl FrontierCache {
    /// An empty cache bucketing loads by `qps_quantum` QPS (clamped to a
    /// strictly positive width).
    pub fn new(qps_quantum: f64) -> Self {
        Self {
            inner: Mutex::new(FrontierInner {
                generation: 0,
                qps_quantum: qps_quantum.max(f64::MIN_POSITIVE),
                seeds: HashMap::new(),
            }),
            reuses: AtomicU64::new(0),
            incremental: Mutex::new(None),
        }
    }

    /// Hands the parked incremental state to a searcher, leaving the slot
    /// empty. The searcher validates/mutates it lock-free and puts it
    /// back via [`store_incremental`](Self::store_incremental); a racing
    /// searcher simply finds the slot empty and runs a full sweep.
    pub fn take_incremental(&self) -> Option<Box<IncrementalState>> {
        self.incremental.lock().take()
    }

    /// Parks the incremental state for the next interval's search.
    pub fn store_incremental(&self, state: Box<IncrementalState>) {
        *self.incremental.lock() = Some(state);
    }

    fn bucket(quantum: f64, qps: f64) -> u64 {
        (qps.max(0.0) / quantum).round() as u64
    }

    /// The seed stored for `qps`'s bucket, if it was produced by the same
    /// predictor generation. A generation change empties the cache first.
    pub fn get(&self, generation: u64, qps: f64) -> Option<PairConfig> {
        let mut inner = self.inner.lock();
        if inner.generation != generation {
            inner.seeds.clear();
            inner.generation = generation;
            return None;
        }
        let seed = inner
            .seeds
            .get(&Self::bucket(inner.qps_quantum, qps))
            .copied();
        if seed.is_some() {
            self.reuses.fetch_add(1, Ordering::Relaxed);
        }
        seed
    }

    /// Stores the winning configuration of a search at `qps` as the
    /// bucket's seed for subsequent intervals.
    pub fn insert(&self, generation: u64, qps: f64, cfg: PairConfig) {
        let mut inner = self.inner.lock();
        if inner.generation != generation {
            inner.seeds.clear();
            inner.generation = generation;
        }
        if inner.seeds.len() >= FRONTIER_CAP {
            inner.seeds.clear();
        }
        let bucket = Self::bucket(inner.qps_quantum, qps);
        inner.seeds.insert(bucket, cfg);
    }

    /// Stored seeds.
    pub fn len(&self) -> usize {
        self.inner.lock().seeds.len()
    }

    /// True when no seed is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Seeds handed back to a searcher since construction.
    pub fn reuses(&self) -> u64 {
        self.reuses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use sturgeon_simnode::Allocation;

    #[test]
    fn memoizes_and_counts() {
        let cache = PredictionCache::new();
        let computed = AtomicUsize::new(0);
        let f = || {
            computed.fetch_add(1, Ordering::Relaxed);
            42.5
        };
        for _ in 0..5 {
            assert_eq!(
                cache.get_or_compute(Family::BePower, 8, 1.8, 10, 0.0, f),
                42.5
            );
        }
        assert_eq!(computed.load(Ordering::Relaxed), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 4);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = PredictionCache::new();
        let a = cache.get_or_compute(Family::LsPower, 8, 1.8, 10, 100.0, || 1.0);
        let b = cache.get_or_compute(Family::BePower, 8, 1.8, 10, 100.0, || 2.0);
        let c = cache.get_or_compute(Family::LsPower, 9, 1.8, 10, 100.0, || 3.0);
        let d = cache.get_or_compute(Family::LsPower, 8, 1.8, 10, 101.0, || 4.0);
        assert_eq!((a, b, c, d), (1.0, 2.0, 3.0, 4.0));
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.misses(), 4);
    }

    #[test]
    fn disabled_cache_always_computes() {
        let cache = PredictionCache::new();
        cache.set_enabled(false);
        let computed = AtomicUsize::new(0);
        for _ in 0..3 {
            cache.get_or_compute(Family::BeThroughput, 4, 1.2, 4, 0.0, || {
                computed.fetch_add(1, Ordering::Relaxed);
                0.5
            });
        }
        assert_eq!(computed.load(Ordering::Relaxed), 3);
        assert_eq!(cache.hits() + cache.misses(), 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_invalidates_entries_but_keeps_counters() {
        let cache = PredictionCache::new();
        cache.get_or_compute(Family::LsFeasible, 8, 2.2, 10, 500.0, || 1.0);
        cache.get_or_compute(Family::LsFeasible, 8, 2.2, 10, 500.0, || 1.0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 1);
        // A cleared entry recomputes (and may return a new value, as after
        // retraining).
        let v = cache.get_or_compute(Family::LsFeasible, 8, 2.2, 10, 500.0, || 7.0);
        assert_eq!(v, 7.0);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn qps_quantum_buckets_nearby_loads() {
        let cache = PredictionCache::new();
        cache.set_qps_quantum(100.0);
        let a = cache.get_or_compute(Family::LsPower, 8, 1.8, 10, 1_000.0, || 1.0);
        // 1 040 rounds to the same bucket as 1 000 → served from cache.
        let b = cache.get_or_compute(Family::LsPower, 8, 1.8, 10, 1_040.0, || 2.0);
        assert_eq!(a, b);
        assert_eq!(cache.hits(), 1);
        // 1 060 rounds to the next bucket → fresh compute.
        let c = cache.get_or_compute(Family::LsPower, 8, 1.8, 10, 1_060.0, || 3.0);
        assert_eq!(c, 3.0);
    }

    #[test]
    fn cache_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PredictionCache>();
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = PredictionCache::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..200u32 {
                        let v = cache.get_or_compute(
                            Family::BeThroughput,
                            i % 16,
                            1.2 + (i % 10) as f64 * 0.1,
                            i % 20,
                            0.0,
                            || f64::from(i % 16) * 2.0,
                        );
                        assert_eq!(v, f64::from(i % 16) * 2.0);
                    }
                });
            }
        });
        assert_eq!(cache.hits() + cache.misses(), 800);
        assert!(cache.len() <= 200);
    }

    fn seed_cfg(c1: u32) -> PairConfig {
        PairConfig::new(Allocation::new(c1, 9, 8), Allocation::new(20 - c1, 5, 12))
    }

    #[test]
    fn frontier_buckets_nearby_loads_and_counts_reuses() {
        let fc = FrontierCache::new(100.0);
        assert!(fc.get(1, 1_000.0).is_none());
        fc.insert(1, 1_000.0, seed_cfg(6));
        // 1 040 rounds into the same bucket; 1 060 into the next.
        assert_eq!(fc.get(1, 1_040.0), Some(seed_cfg(6)));
        assert!(fc.get(1, 1_060.0).is_none());
        assert_eq!(fc.reuses(), 1);
        assert_eq!(fc.len(), 1);
    }

    #[test]
    fn frontier_generation_change_invalidates_seeds() {
        let fc = FrontierCache::new(100.0);
        fc.insert(1, 500.0, seed_cfg(4));
        assert!(fc.get(2, 500.0).is_none(), "stale generation must miss");
        assert!(fc.is_empty());
        // Inserting under the new generation works normally again.
        fc.insert(2, 500.0, seed_cfg(5));
        assert_eq!(fc.get(2, 500.0), Some(seed_cfg(5)));
    }

    #[test]
    fn incremental_state_parks_and_returns() {
        let fc = FrontierCache::default();
        assert!(fc.take_incremental().is_none());
        let mut state = Box::<IncrementalState>::default();
        state.generation = 3;
        state.lo_bucket = 7;
        state.slices.push(SliceSnapshot {
            feas: vec![0b1011],
            power: vec![1.0, 2.0],
            best: Some((seed_cfg(5), 0.7)),
        });
        fc.store_incremental(state);
        let back = fc.take_incremental().expect("state must be parked");
        assert_eq!(back.generation, 3);
        assert_eq!(back.lo_bucket, 7);
        assert_eq!(back.slices[0].feas, vec![0b1011]);
        // The slot is empty again after the take.
        assert!(fc.take_incremental().is_none());
    }

    #[test]
    fn frontier_cap_bounds_memory() {
        let fc = FrontierCache::new(1.0);
        for i in 0..600 {
            fc.insert(1, i as f64 * 10.0, seed_cfg(3));
        }
        assert!(fc.len() <= 256 + 1);
    }
}
