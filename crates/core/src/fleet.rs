//! Fleet-scale control plane: the datacenter-sized version of
//! [`crate::cluster`].
//!
//! The paper's deployment model (Fig. 4) is per-node autonomy under a
//! cluster-level dispatcher. [`crate::cluster::Cluster`] reproduces it
//! faithfully at demonstration scale — every node owns a predictor, a
//! controller and a full in-memory telemetry log — but a 100k-node sweep
//! cannot afford 100k trainings or O(nodes × intervals) sample storage.
//! [`Fleet`] restructures the same control loop around three ideas:
//!
//! * **Shared model artifacts** — a homogeneous fleet serves one
//!   (pair, spec), so offline training and `ModelTables` construction
//!   are paid once and shared through `Arc`
//!   ([`TrainingMode::Shared`]). Per-shard control state (balancer,
//!   warm hints, `FrontierCache`) stays private.
//!   [`TrainingMode::PerNode`] reproduces today's per-node training for
//!   the bit-exactness tests.
//! * **Sharded stepping** — nodes are partitioned into contiguous
//!   shards, each stepped as one rayon task over an SoA slab of node
//!   state (qps/p95/power/config arrays) instead of a `Vec` of heap-fat
//!   per-node structs. One Sturgeon controller runs per shard, driven
//!   by the shard-mean observation; per-node environments keep their
//!   own interference processes, so node telemetry still diverges the
//!   way real machines do. With one node per shard this degenerates to
//!   exactly the `Cluster` control loop.
//! * **Streaming aggregation** — shards fold telemetry into running
//!   sums and fixed-bucket histograms as they step; nothing is replayed
//!   after the run, so memory is O(nodes + shards), independent of the
//!   interval count. An opt-in sampled-node full log remains for
//!   debugging, and one shard can stream decision traces to a
//!   [`TraceSink`].
//!
//! Regions map to contiguous shard groups: each region has its own
//! dispatcher and can follow its own [`LoadProfile`], which is how the
//! regional-failover composition drives part of the fleet to zero while
//! the survivors absorb the traffic.

use crate::budget::{even_split, BudgetEvent, BudgetTree};
use crate::cluster::NodeResult;
use crate::controller::{
    ControllerFaultCounters, ControllerParams, ResourceController, SturgeonController,
};
use crate::dispatch::{DispatchPolicy, Dispatcher};
use crate::error::SturgeonError;
use crate::experiment::{ColocationPair, ExperimentSetup};
use crate::obs::{
    Histogram, MetricsRegistry, RunningStats, TraceEvent, TraceSink, DEFAULT_BUCKETS,
};
use crate::placement::{
    co_runner_score, FleetView, PlacementAction, PlacementEngine, PlacementParams,
    PlacementScoring, ScoredPlacementEngine, UnitView,
};
use crate::predictor::PerfPowerPredictor;
use crate::scoring::{
    train_cold_start_predictor, train_fallback_predictor, ColdStartReport, ScoringParams, SetScorer,
};
use rayon::prelude::*;
use std::sync::Arc;
use sturgeon_simnode::{IntervalSample, NodeSpec, PairConfig, TelemetryLog};
use sturgeon_workloads::catalog::BeAppId;
use sturgeon_workloads::env::CoLocationEnv;
use sturgeon_workloads::env::Observation;
use sturgeon_workloads::loadgen::LoadProfile;

/// Bucket bounds shared by the cluster and fleet BE-throughput
/// histograms (normalized throughput lives in `[0, 1]`).
pub(crate) const BE_THROUGHPUT_BUCKETS: [f64; 10] =
    [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// Where the fleet's trained model artifacts come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainingMode {
    /// Train once for the whole fleet and share the predictor (and its
    /// lazily built `ModelTables`) through `Arc` — the homogeneous-fleet
    /// fast path: offline cost is paid exactly once per (pair, spec).
    Shared,
    /// Train one predictor per shard from that shard's first node seed —
    /// with one node per shard this is bit-identical to
    /// [`crate::cluster::Cluster`]'s per-node training.
    PerNode,
}

/// Hierarchical budget configuration for a fleet: the tree's leaves are
/// the fleet's shards, its racks are the fleet's regions, `rows` groups
/// the racks, and a single datacenter root spans everything. `events`
/// schedules cap changes; each one is applied at its interval boundary
/// followed by a headroom-proportional reclamation pass that lands the
/// new per-node caps on every shard controller as a budget-cut
/// observation.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetBudget {
    /// Row count grouping the racks/regions (0 or 1 = one row).
    pub rows: usize,
    /// Scheduled cap changes, applied in `at_s` order.
    pub events: Vec<BudgetEvent>,
}

impl Default for FleetBudget {
    fn default() -> Self {
        Self {
            rows: 1,
            events: Vec::new(),
        }
    }
}

/// Fleet construction knobs.
#[derive(Debug, Clone)]
pub struct FleetParams {
    /// Shard count; 0 picks one shard per ~256 nodes (at least 1, at
    /// most 512). Must not exceed the node count.
    pub shards: usize,
    /// Contiguous shard groups with independent dispatchers and load
    /// profiles (regional failover). Must not exceed the shard count;
    /// the [`DispatchPolicy::Weighted`] policy requires exactly one.
    pub regions: usize,
    /// Shared or per-shard model training.
    pub training: TrainingMode,
    /// How each region's dispatcher splits load across its shards.
    pub policy: DispatchPolicy,
    /// Controller tunables applied to every shard controller.
    pub controller: ControllerParams,
    /// Keep a full [`TelemetryLog`] for the first `sampled_nodes` nodes
    /// of the fleet (debugging aid; 0 keeps streaming aggregates only).
    pub sampled_nodes: usize,
    /// Stream this shard's decision trace (telemetry samples plus its
    /// controller's events) through the sink passed to
    /// [`Fleet::run_traced`].
    pub traced_shard: Option<usize>,
    /// Hierarchical power budgets over the shard/region geometry.
    /// `None` keeps the flat per-node caps (bit-identical to earlier
    /// fleets).
    pub budget: Option<FleetBudget>,
    /// BE job placement/migration at shard-interval boundaries. `None`
    /// pins one always-on job per shard (the earlier static
    /// assignment).
    pub placement: Option<PlacementParams>,
    /// Cold-start scoring: collaborative-filtering BE prediction for a
    /// masked (never-profiled) app and/or the learned co-runner set
    /// scorer. Requires [`TrainingMode::Shared`] — the CF predictor is
    /// a shared artifact by construction. `None` keeps the legacy
    /// closed-form scoring bit for bit.
    pub scoring: Option<ScoringParams>,
}

impl Default for FleetParams {
    fn default() -> Self {
        Self {
            shards: 0,
            regions: 1,
            training: TrainingMode::Shared,
            policy: DispatchPolicy::Even,
            controller: ControllerParams::default(),
            sampled_nodes: 0,
            traced_shard: None,
            budget: None,
            placement: None,
            scoring: None,
        }
    }
}

/// Per-node state kept as parallel arrays — the contiguous slab one
/// shard steps over. Current-interval channels are overwritten each
/// step; `sum_*` channels accumulate in time order so the end-of-run
/// per-node aggregates reproduce [`TelemetryLog`]'s formulas exactly.
#[derive(Debug, Default)]
struct NodeSlab {
    qps: Vec<f64>,
    p95_ms: Vec<f64>,
    in_target: Vec<f64>,
    power_w: Vec<f64>,
    be_tput: Vec<f64>,
    config: Vec<PairConfig>,
    sum_qps: Vec<f64>,
    sum_in_target_qps: Vec<f64>,
    sum_be_tput: Vec<f64>,
    sum_power_w: Vec<f64>,
    overload_intervals: Vec<u32>,
}

impl NodeSlab {
    fn new(n: usize, config: PairConfig) -> Self {
        Self {
            qps: vec![0.0; n],
            p95_ms: vec![0.0; n],
            in_target: vec![0.0; n],
            power_w: vec![0.0; n],
            be_tput: vec![0.0; n],
            config: vec![config; n],
            sum_qps: vec![0.0; n],
            sum_in_target_qps: vec![0.0; n],
            sum_be_tput: vec![0.0; n],
            sum_power_w: vec![0.0; n],
            overload_intervals: vec![0; n],
        }
    }
}

/// Sums of one interval's observations across a shard's nodes.
#[derive(Debug, Clone, Copy, Default)]
struct ObsSums {
    t_s: f64,
    qps: f64,
    p95_ms: f64,
    in_target_fraction: f64,
    ls_utilization: f64,
    power_w: f64,
    be_throughput_norm: f64,
    be_ipc: f64,
    interference: f64,
}

impl ObsSums {
    fn add(&mut self, o: &Observation) {
        self.t_s += o.t_s;
        self.qps += o.qps;
        self.p95_ms += o.p95_ms;
        self.in_target_fraction += o.in_target_fraction;
        self.ls_utilization += o.ls_utilization;
        self.power_w += o.power_w;
        self.be_throughput_norm += o.be_throughput_norm;
        self.be_ipc += o.be_ipc;
        self.interference += o.interference;
    }

    fn mean(&self, n: f64) -> Observation {
        Observation {
            t_s: self.t_s / n,
            qps: self.qps / n,
            p95_ms: self.p95_ms / n,
            in_target_fraction: self.in_target_fraction / n,
            ls_utilization: self.ls_utilization / n,
            power_w: self.power_w / n,
            be_throughput_norm: self.be_throughput_norm / n,
            be_ipc: self.be_ipc / n,
            interference: self.interference / n,
        }
    }
}

/// One shard: a contiguous node range stepped as a single rayon task,
/// controlled by one Sturgeon controller fed the shard-mean observation.
struct Shard {
    /// Global index of the shard's first node.
    first_node: usize,
    /// Per-node environments (private interference processes).
    envs: Vec<CoLocationEnv>,
    controller: SturgeonController,
    /// The configuration in force on every node of the shard.
    config: PairConfig,
    slab: NodeSlab,
    /// Per-node power budget (identical fleet-wide — homogeneous spec).
    budget_w: f64,
    intervals_stepped: u32,
    /// Streaming aggregates: histogram buckets merged into the registry
    /// after the run, running stats summarizing the shard for dispatch.
    p95_hist: Histogram,
    power_hist: Histogram,
    tput_hist: Histogram,
    p95_run: RunningStats,
    /// Shard-mean p95 of the last stepped interval (dispatch summary).
    last_mean_p95: f64,
    /// Per-node load share staged for the interval being stepped.
    next_qps_per_node: f64,
    /// Sampled nodes (local index, full log) for debugging.
    sampled: Vec<(usize, TelemetryLog)>,
    /// BE jobs multiplexed on this shard's BE partition (1 without a
    /// placement engine — the static assignment).
    be_jobs: u32,
    /// Counted-throughput factor for the current job count: the
    /// co-runner interference score (exactly 1.0 for one job, 0.0 for a
    /// parked partition).
    job_factor: f64,
    /// Trace buffer drained by the run loop each interval (traced shard
    /// only; stays empty otherwise).
    traced: bool,
    trace: Vec<TraceEvent>,
}

impl Shard {
    fn len(&self) -> usize {
        self.envs.len()
    }

    /// One monitor → decide → actuate interval for every node of the
    /// shard, streaming telemetry into the shard aggregates.
    fn step_interval(&mut self) {
        let Self {
            envs,
            controller,
            config,
            slab,
            budget_w,
            p95_hist,
            power_hist,
            tput_hist,
            p95_run,
            sampled,
            job_factor,
            traced,
            trace,
            ..
        } = self;
        let qps = self.next_qps_per_node;
        // Everything that depends only on (config, qps) is identical
        // across the shard's nodes: evaluate it once, replay per node.
        let invariants = envs[0].step_invariants(config, qps);
        let mut sums = ObsSums::default();
        for (i, env) in envs.iter_mut().enumerate() {
            let obs = env.step_with(config, qps, &invariants);
            // Counted BE throughput: the measured partition throughput
            // times the co-runner score for the jobs multiplexed on it.
            // With the default single pinned job the factor is exactly
            // 1.0 and the product is bit-identical to the raw value.
            let counted_tput = obs.be_throughput_norm * *job_factor;
            slab.qps[i] = obs.qps;
            slab.p95_ms[i] = obs.p95_ms;
            slab.in_target[i] = obs.in_target_fraction;
            slab.power_w[i] = obs.power_w;
            slab.be_tput[i] = counted_tput;
            slab.sum_qps[i] += obs.qps;
            slab.sum_in_target_qps[i] += obs.qps * obs.in_target_fraction;
            slab.sum_be_tput[i] += counted_tput;
            slab.sum_power_w[i] += obs.power_w;
            if obs.power_w > *budget_w {
                slab.overload_intervals[i] += 1;
            }
            p95_hist.observe(obs.p95_ms);
            power_hist.observe(obs.power_w);
            tput_hist.observe(counted_tput);
            p95_run.observe(obs.p95_ms);
            sums.add(&obs);
        }
        self.intervals_stepped += 1;
        for (local, log) in sampled.iter_mut() {
            let i = *local;
            log.push(IntervalSample {
                t_s: self.intervals_stepped as f64,
                qps: slab.qps[i],
                p95_ms: slab.p95_ms[i],
                in_target_fraction: slab.in_target[i],
                power_w: slab.power_w[i],
                be_throughput_norm: slab.be_tput[i],
                config: slab.config[i],
            });
        }
        let mean = sums.mean(envs.len() as f64);
        self.last_mean_p95 = mean.p95_ms;
        if *traced {
            trace.push(TraceEvent::TelemetrySample {
                t_s: mean.t_s,
                qps: mean.qps,
                p95_ms: mean.p95_ms,
                power_w: mean.power_w,
                be_throughput_norm: mean.be_throughput_norm,
            });
        }
        let next = controller.decide(&mean, *config);
        if next != *config {
            debug_assert!(
                next.validate(envs[0].spec()).is_ok(),
                "controller returned invalid config"
            );
            *config = next;
            slab.config.fill(next);
        }
        if *traced {
            trace.extend(controller.take_trace());
        }
    }
}

/// One region: a contiguous shard group with its own dispatcher.
struct Region {
    /// Shard index range `[lo, hi)`.
    lo: usize,
    hi: usize,
    /// Aggregate peak capacity (QPS) of the region's nodes.
    peak_qps: f64,
    dispatcher: Dispatcher,
    /// Reusable per-shard p95 summary buffer.
    p95_buf: Vec<f64>,
}

/// Fleet-wide results: the [`crate::cluster::ClusterResult`] aggregates
/// plus the artifact-reuse counters that prove the shared-training path
/// paid its offline costs once.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Per-node summaries, in node order.
    pub nodes: Vec<NodeResult>,
    /// Query-weighted fleet QoS guarantee rate.
    pub qos_rate: f64,
    /// Sum of mean normalized BE throughput across nodes.
    pub total_be_throughput: f64,
    /// Mean total fleet power (W).
    pub mean_fleet_power_w: f64,
    /// Sum of per-node budgets (W).
    pub fleet_budget_w: f64,
    /// Robustness counters summed across shard controllers.
    pub fault_counters: ControllerFaultCounters,
    /// Offline predictor trainings paid during construction (1 in
    /// [`TrainingMode::Shared`], one per shard in
    /// [`TrainingMode::PerNode`]).
    pub trainings: u64,
    /// `ModelTables` constructions actually run across the fleet's
    /// distinct predictors (0 until a pruned search needs them; 1 for a
    /// shared-predictor fleet no matter how many shards search).
    pub table_builds: u64,
    /// Configuration searches run across all shard controllers.
    pub searches: u64,
    /// Budget reclamation passes that changed at least one leaf cap.
    pub budget_reclaims: u64,
    /// BE jobs the placement engine moved between shards.
    pub migrations: u64,
    /// BE jobs evicted back to the batch queue.
    pub evictions: u64,
    /// Queued BE jobs (re)assigned to a shard.
    pub assignments: u64,
    /// Hidden profile-matrix cells the CF predictor filled for the
    /// masked app (0 without cold-start scoring).
    pub cold_start_cells: u64,
    /// Learned set-scorer evaluations at placement boundaries (0
    /// without the learned scorer).
    pub set_scores: u64,
}

/// BE-placement runtime state: the engine, its cadence, and the queue
/// of evicted jobs awaiting reassignment.
struct PlacementRuntime {
    engine: Box<dyn PlacementEngine + Send>,
    params: PlacementParams,
    /// Scoring tier mirrored from the engine, used to refresh each
    /// shard's counted-throughput factor (`None` = legacy global σ).
    scoring: Option<PlacementScoring>,
    queued_jobs: u32,
    migrations: u64,
    evictions: u64,
    assignments: u64,
}

/// A homogeneous fleet of Sturgeon nodes stepped in shards.
pub struct Fleet {
    shards: Vec<Shard>,
    regions: Vec<Region>,
    /// The distinct predictor artifacts (1 or one per shard), kept for
    /// the table-build accounting in [`FleetResult`].
    predictors: Vec<Arc<PerfPowerPredictor>>,
    spec: NodeSpec,
    peak_qps_per_node: f64,
    node_count: usize,
    trainings: u64,
    /// The BE application whose jobs the placement engine moves.
    be: BeAppId,
    /// The power-delivery tree (leaves = shards); `None` keeps flat
    /// per-node caps.
    budget: Option<BudgetTree>,
    /// Cap events sorted by `at_s`, with the cursor of the next one due.
    budget_events: Vec<BudgetEvent>,
    events_applied: usize,
    budget_reclaims: u64,
    placement: Option<PlacementRuntime>,
    /// Cold-start artifacts: the masked app and its CF fit report,
    /// surfaced as a `ColdStartPredicted` trace event and counters.
    cold_start: Option<(String, ColdStartReport)>,
    /// `ColdStartPredicted` already streamed to a sink this run.
    cold_start_traced: bool,
    set_scores: u64,
}

impl Fleet {
    /// Builds a fleet of `nodes` nodes for one co-location pair. Panics
    /// on invalid parameters; use [`Fleet::try_new`] for user input.
    pub fn new(pair: ColocationPair, nodes: usize, params: FleetParams, seed: u64) -> Self {
        Self::try_new(pair, nodes, params, seed).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: validates the shard/region/policy geometry
    /// and reports failures as [`SturgeonError::Setup`].
    pub fn try_new(
        pair: ColocationPair,
        nodes: usize,
        params: FleetParams,
        seed: u64,
    ) -> Result<Self, SturgeonError> {
        if nodes == 0 {
            return Err(SturgeonError::setup("fleet needs at least one node"));
        }
        let shard_count = match params.shards {
            0 => (nodes / 256).clamp(1, 512).min(nodes),
            s if s > nodes => {
                return Err(SturgeonError::setup("more shards than nodes"));
            }
            s => s,
        };
        if params.regions == 0 || params.regions > shard_count {
            return Err(SturgeonError::setup(
                "region count must be in 1..=shard count",
            ));
        }
        if matches!(params.policy, DispatchPolicy::Weighted(_)) && params.regions != 1 {
            return Err(SturgeonError::setup(
                "weighted dispatch requires a single region",
            ));
        }
        if let Some(t) = params.traced_shard {
            if t >= shard_count {
                return Err(SturgeonError::setup("traced shard out of range"));
            }
        }

        if let Some(sp) = &params.scoring {
            sp.validate()?;
            if params.training != TrainingMode::Shared {
                return Err(SturgeonError::setup(
                    "scoring requires shared training (the CF predictor is a shared artifact)",
                ));
            }
        }

        // The fleet is homogeneous: pair-level properties come from one
        // setup; per-node environments differ only in interference seed.
        let first = ExperimentSetup::new(pair, seed);
        let peak = first.peak_qps();
        let qos_target = first.qos_target_ms();
        let budget_w = first.budget_w();
        let spec = first.spec().clone();

        let mut cold_start: Option<(String, ColdStartReport)> = None;
        let shared = match params.training {
            TrainingMode::Shared => {
                let predictor = match params.scoring.as_ref().filter(|sp| sp.cold_start) {
                    Some(sp) => {
                        let mut sp = sp.clone();
                        if sp.masked_app.is_none() {
                            sp.masked_app = Some(pair.be.name().to_string());
                        }
                        if sp.fallback {
                            train_fallback_predictor(&first, &sp)?
                        } else {
                            let outcome = train_cold_start_predictor(&first, &sp)?;
                            cold_start =
                                Some((sp.masked_app.clone().expect("defaulted"), outcome.report));
                            outcome.predictor
                        }
                    }
                    None => first.train_default_predictor(),
                };
                Some(Arc::new(predictor))
            }
            TrainingMode::PerNode => None,
        };
        let mut predictors: Vec<Arc<PerfPowerPredictor>> = Vec::new();
        if let Some(p) = &shared {
            predictors.push(Arc::clone(p));
        }

        let mut shards = Vec::with_capacity(shard_count);
        let base = nodes / shard_count;
        let extra = nodes % shard_count;
        let mut first_node = 0usize;
        for s in 0..shard_count {
            let len = base + usize::from(s < extra);
            let shard_seed = seed.wrapping_add(first_node as u64);
            let predictor = match &shared {
                Some(p) => Arc::clone(p),
                None => {
                    let p =
                        Arc::new(ExperimentSetup::new(pair, shard_seed).train_default_predictor());
                    predictors.push(Arc::clone(&p));
                    p
                }
            };
            let controller = SturgeonController::with_shared_predictor(
                predictor,
                spec.clone(),
                budget_w,
                qos_target,
                params.controller,
            );
            let config = controller.initial_config(&spec);
            config.validate(&spec).map_err(|e| {
                SturgeonError::setup(format!("shard {s}: initial config rejected: {e}"))
            })?;
            let envs: Vec<CoLocationEnv> = (0..len)
                .map(|i| {
                    ExperimentSetup::new(pair, seed.wrapping_add((first_node + i) as u64))
                        .env()
                        .clone()
                })
                .collect();
            let sampled = (0..len)
                .filter(|i| first_node + i < params.sampled_nodes)
                .map(|i| (i, TelemetryLog::new()))
                .collect();
            let mut controller = controller;
            let traced = params.traced_shard == Some(s);
            if traced {
                controller.set_tracing(true);
            }
            shards.push(Shard {
                first_node,
                envs,
                controller,
                config,
                slab: NodeSlab::new(len, config),
                budget_w,
                intervals_stepped: 0,
                p95_hist: Histogram::new(&DEFAULT_BUCKETS),
                power_hist: Histogram::new(&DEFAULT_BUCKETS),
                tput_hist: Histogram::new(&BE_THROUGHPUT_BUCKETS),
                p95_run: RunningStats::new(),
                last_mean_p95: 0.0,
                next_qps_per_node: 0.0,
                sampled,
                be_jobs: 1,
                job_factor: 1.0,
                traced,
                trace: Vec::new(),
            });
            first_node += len;
        }

        // Regions: contiguous shard groups, sized as evenly as possible.
        let mut regions = Vec::with_capacity(params.regions);
        let rbase = shard_count / params.regions;
        let rextra = shard_count % params.regions;
        let mut lo = 0usize;
        for r in 0..params.regions {
            let rlen = rbase + usize::from(r < rextra);
            let hi = lo + rlen;
            let region_nodes: usize = shards[lo..hi].iter().map(Shard::len).sum();
            regions.push(Region {
                lo,
                hi,
                peak_qps: peak * region_nodes as f64,
                dispatcher: Dispatcher::try_new(params.policy.clone(), rlen, qos_target)?,
                p95_buf: vec![0.0; rlen],
            });
            lo = hi;
        }

        let trainings = match params.training {
            TrainingMode::Shared => 1,
            TrainingMode::PerNode => shard_count as u64,
        };

        // Budget tree: leaves are the shards (leaf cap = per-node budget
        // times the shard's node count), racks are the regions, rows
        // group the racks, one datacenter root. Events are validated
        // against the geometry here so a bad manifest fails at
        // construction, not mid-run.
        let (budget, budget_events) = match &params.budget {
            Some(spec) => {
                let leaf_caps: Vec<f64> =
                    shards.iter().map(|s| budget_w * s.len() as f64).collect();
                let rack_sizes: Vec<usize> = regions.iter().map(|r| r.hi - r.lo).collect();
                let rows = spec.rows.max(1);
                let row_sizes = even_split(rack_sizes.len(), rows).map_err(|_| {
                    SturgeonError::setup(format!(
                        "budget rows must be in 1..={}, got {rows}",
                        rack_sizes.len()
                    ))
                })?;
                let tree = BudgetTree::new(&leaf_caps, &rack_sizes, &row_sizes)?;
                let mut events = spec.events.clone();
                for e in &events {
                    if e.index >= tree.len(e.level) {
                        return Err(SturgeonError::setup(format!(
                            "budget event targets {} {} but the tree has {}",
                            e.level.as_str(),
                            e.index,
                            tree.len(e.level)
                        )));
                    }
                    if !e.at_s.is_finite() || e.at_s < 0.0 {
                        return Err(SturgeonError::setup("budget event at_s must be >= 0"));
                    }
                }
                events.sort_by(|a, b| a.at_s.total_cmp(&b.at_s));
                (Some(tree), events)
            }
            None => (None, Vec::new()),
        };

        // Scoring tier for placement valuation: the learned set scorer
        // when enabled, else the per-app catalog σ. Scoring absent (or
        // no placement engine to consume it) keeps the legacy global-σ
        // closed form bit for bit.
        let placement_scoring = match &params.scoring {
            Some(sp) if params.placement.is_some() && sp.set_scorer => {
                Some(PlacementScoring::Learned(SetScorer::train(
                    &spec,
                    first.env().power_model(),
                    sp.seed,
                )?))
            }
            Some(_) if params.placement.is_some() => Some(PlacementScoring::PerAppSigma),
            _ => None,
        };

        let placement = match params.placement {
            Some(p) => {
                if p.interval_s == 0 {
                    return Err(SturgeonError::setup("placement interval_s must be >= 1"));
                }
                if p.be_slots == 0 {
                    return Err(SturgeonError::setup("placement be_slots must be >= 1"));
                }
                if !(0.0..=1.0).contains(&p.sigma) {
                    return Err(SturgeonError::setup("placement sigma must be in [0, 1]"));
                }
                let mut engine = ScoredPlacementEngine::new(
                    shards[0].controller.predictor_handle(),
                    spec.clone(),
                    params.controller.search,
                    p,
                );
                if let Some(scoring) = placement_scoring.clone() {
                    engine = engine.with_scoring(scoring);
                }
                Some(PlacementRuntime {
                    engine: Box::new(engine),
                    params: p,
                    scoring: placement_scoring,
                    queued_jobs: 0,
                    migrations: 0,
                    evictions: 0,
                    assignments: 0,
                })
            }
            None => None,
        };

        Ok(Self {
            shards,
            regions,
            predictors,
            spec,
            peak_qps_per_node: peak,
            node_count: nodes,
            trainings,
            be: pair.be,
            budget,
            budget_events,
            events_applied: 0,
            budget_reclaims: 0,
            placement,
            cold_start,
            cold_start_traced: false,
            set_scores: 0,
        })
    }

    /// The cold-start CF fit report, when [`FleetParams::scoring`]
    /// enabled the cold-start path: `(masked app, report)`.
    pub fn cold_start_report(&self) -> Option<(&str, &ColdStartReport)> {
        self.cold_start.as_ref().map(|(app, r)| (app.as_str(), r))
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.node_count
    }

    /// True when the fleet has no nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.node_count == 0
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// The node spec shared by the whole fleet.
    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    /// Aggregate peak capacity (QPS) of the fleet.
    pub fn peak_qps(&self) -> f64 {
        self.peak_qps_per_node * self.node_count as f64
    }

    /// Full telemetry logs of the sampled nodes, as
    /// `(global node index, log)` in node order.
    pub fn sampled_logs(&self) -> Vec<(usize, &TelemetryLog)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for (local, log) in &shard.sampled {
                out.push((shard.first_node + local, log));
            }
        }
        out.sort_by_key(|(i, _)| *i);
        out
    }

    /// Runs the fleet for `duration_s` intervals under one fleet-wide
    /// load profile (every region follows it against its own capacity).
    pub fn run(&mut self, profile: LoadProfile, duration_s: u32) -> FleetResult {
        let profiles = vec![profile; self.regions.len()];
        self.run_impl(&profiles, duration_s, None)
            .expect("region count matches by construction")
    }

    /// Runs the fleet with one load profile per region — the
    /// regional-failover composition: give the failing region a profile
    /// that drops to zero and the survivors one that absorbs the spill.
    pub fn run_regional(
        &mut self,
        profiles: &[LoadProfile],
        duration_s: u32,
    ) -> Result<FleetResult, SturgeonError> {
        self.run_impl(profiles, duration_s, None)
    }

    /// Like [`Fleet::run`], but streams the traced shard's decision
    /// trace (see [`FleetParams::traced_shard`]) into `sink`.
    pub fn run_traced(
        &mut self,
        profile: LoadProfile,
        duration_s: u32,
        sink: &mut dyn TraceSink,
    ) -> FleetResult {
        let profiles = vec![profile; self.regions.len()];
        self.run_impl(&profiles, duration_s, Some(sink))
            .expect("region count matches by construction")
    }

    /// Like [`Fleet::run_regional`], but streams the traced shard's
    /// decision trace into `sink` — the tracing twin of a per-region
    /// run, so tracing a regional scenario does not collapse every
    /// region onto one profile.
    pub fn run_regional_traced(
        &mut self,
        profiles: &[LoadProfile],
        duration_s: u32,
        sink: &mut dyn TraceSink,
    ) -> Result<FleetResult, SturgeonError> {
        self.run_impl(profiles, duration_s, Some(sink))
    }

    fn run_impl(
        &mut self,
        profiles: &[LoadProfile],
        duration_s: u32,
        mut sink: Option<&mut dyn TraceSink>,
    ) -> Result<FleetResult, SturgeonError> {
        if profiles.len() != self.regions.len() {
            return Err(SturgeonError::setup("one load profile per region"));
        }
        // The cold-start prediction happened at construction; surface it
        // once at the head of the first traced run.
        if !self.cold_start_traced {
            if let (Some(sink), Some((app, report))) =
                (sink.as_deref_mut(), self.cold_start.as_ref())
            {
                sink.record(&TraceEvent::ColdStartPredicted {
                    t_s: 0.0,
                    app: app.clone(),
                    cells: report.cold_start_cells as usize,
                    rmse_heldout: report.rmse_heldout_tput,
                });
                self.cold_start_traced = true;
            }
        }
        for t in 0..duration_s {
            // Budget events due at or before this interval tighten (or
            // relax) tree caps and push the reclaimed per-node budgets
            // into the shard controllers before load is dispatched.
            self.apply_budget_events(t as f64, &mut sink);
            // Dispatch: per region, split the offered load across shards
            // from last-interval shard summaries, then stage per-node
            // shares. Cheap and serial; the stepping below is the work.
            for (region, profile) in self.regions.iter_mut().zip(profiles) {
                let total_qps = profile.qps_at(t as f64, region.peak_qps);
                for (slot, shard) in region
                    .p95_buf
                    .iter_mut()
                    .zip(&self.shards[region.lo..region.hi])
                {
                    *slot = shard.last_mean_p95;
                }
                let weights = region.dispatcher.fill_weights(&region.p95_buf);
                for (shard, w) in self.shards[region.lo..region.hi].iter_mut().zip(weights) {
                    shard.next_qps_per_node = total_qps * w / shard.len() as f64;
                }
            }
            // Step every shard as one rayon task.
            self.shards.par_iter_mut().for_each(Shard::step_interval);
            // Drain the traced shard serially, keeping event order
            // deterministic regardless of shard scheduling.
            if let Some(sink) = sink.as_deref_mut() {
                for shard in self.shards.iter_mut().filter(|s| s.traced) {
                    for event in shard.trace.drain(..) {
                        sink.record(&event);
                    }
                }
            }
            // Placement boundary: consult the engine on fresh telemetry,
            // apply its plan, and re-apportion the budget so watts follow
            // the jobs.
            let due = self
                .placement
                .as_ref()
                .is_some_and(|rt| (t + 1) % rt.params.interval_s == 0);
            if due {
                self.run_placement((t + 1) as f64, &mut sink);
            }
        }
        Ok(self.result())
    }

    /// Applies every budget event due at or before `t_s`, then
    /// re-apportions the tree against the latest measured per-shard
    /// power demand and pushes the resulting per-node caps into the
    /// shard controllers as budget-cut observations.
    fn apply_budget_events(&mut self, t_s: f64, sink: &mut Option<&mut dyn TraceSink>) {
        let Some(tree) = self.budget.as_mut() else {
            return;
        };
        let mut applied = Vec::new();
        while let Some(event) = self.budget_events.get(self.events_applied) {
            if event.at_s > t_s {
                break;
            }
            // Index and cap were validated at construction.
            if let Ok(cap_w) = tree.set_cap(event.level, event.index, event.cap) {
                applied.push((event.level, event.index, cap_w));
            }
            self.events_applied += 1;
        }
        if applied.is_empty() {
            return;
        }
        // Demand: last-interval measured power per shard (zero before the
        // first step, which degrades to pro-rata on nominal caps).
        let demands: Vec<f64> = self
            .shards
            .iter()
            .map(|s| s.slab.power_w.iter().sum())
            .collect();
        tree.reclaim(Some(&demands));
        let mut changed = false;
        for (shard, leaf_eff) in self.shards.iter_mut().zip(tree.leaf_caps_w()) {
            let per_node = leaf_eff / shard.len() as f64;
            if shard.controller.set_budget_w(per_node) {
                shard.budget_w = per_node;
                changed = true;
            }
        }
        if changed {
            self.budget_reclaims += 1;
        }
        if let Some(sink) = sink.as_deref_mut() {
            let reclaimed_w = tree.reclaimed_w();
            for (level, index, cap_w) in applied {
                sink.record(&TraceEvent::BudgetReclaimed {
                    t_s,
                    level: level.as_str(),
                    index,
                    cap_w,
                    reclaimed_w,
                });
            }
        }
    }

    /// One placement round: snapshot the fleet, let the engine plan,
    /// apply the valid actions, then refresh each shard's co-runner
    /// factor / idle flag and re-apportion the budget so reclaimed watts
    /// follow the jobs.
    fn run_placement(&mut self, t_s: f64, sink: &mut Option<&mut dyn TraceSink>) {
        let Some(mut rt) = self.placement.take() else {
            return;
        };
        let view = FleetView {
            t_s,
            be: self.be,
            units: self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| UnitView {
                    unit: i,
                    first_node: s.first_node,
                    nodes: s.len(),
                    qps_per_node: s.next_qps_per_node,
                    cap_w: s.budget_w,
                    safe_mode: s.controller.in_safe_mode(),
                    exhausted: s.controller.balancer_exhausted(),
                    be_jobs: s.be_jobs,
                    be_slots: rt.params.be_slots,
                    last_be_tput: s.slab.be_tput.iter().sum(),
                })
                .collect(),
            queued_jobs: rt.queued_jobs,
        };
        let plan = rt.engine.plan(&view);
        for action in &plan.actions {
            match *action {
                PlacementAction::Assign { unit, .. } => {
                    let Some(shard) = self.shards.get_mut(unit) else {
                        continue;
                    };
                    if rt.queued_jobs == 0 || shard.be_jobs >= rt.params.be_slots {
                        continue;
                    }
                    rt.queued_jobs -= 1;
                    shard.be_jobs += 1;
                    rt.assignments += 1;
                    if let Some(sink) = sink.as_deref_mut() {
                        sink.record(&TraceEvent::BeMigrated {
                            t_s,
                            action: "assign",
                            from: None,
                            to: Some(unit),
                            be: self.be.name(),
                        });
                    }
                }
                PlacementAction::Migrate { from, to, .. } => {
                    if from == to || from >= self.shards.len() || to >= self.shards.len() {
                        continue;
                    }
                    if self.shards[from].be_jobs == 0
                        || self.shards[to].be_jobs >= rt.params.be_slots
                    {
                        continue;
                    }
                    self.shards[from].be_jobs -= 1;
                    self.shards[to].be_jobs += 1;
                    rt.migrations += 1;
                    if let Some(sink) = sink.as_deref_mut() {
                        sink.record(&TraceEvent::BeMigrated {
                            t_s,
                            action: "migrate",
                            from: Some(from),
                            to: Some(to),
                            be: self.be.name(),
                        });
                    }
                }
                PlacementAction::Evict { unit, .. } => {
                    let Some(shard) = self.shards.get_mut(unit) else {
                        continue;
                    };
                    if shard.be_jobs == 0 {
                        continue;
                    }
                    shard.be_jobs -= 1;
                    rt.queued_jobs += 1;
                    rt.evictions += 1;
                    if let Some(sink) = sink.as_deref_mut() {
                        sink.record(&TraceEvent::BeMigrated {
                            t_s,
                            action: "evict",
                            from: Some(unit),
                            to: None,
                            be: self.be.name(),
                        });
                    }
                }
            }
        }
        // Refresh counted-throughput factors and park/unpark partitions.
        // The factor follows the engine's scoring tier so counted
        // throughput and placement valuation agree on what a multiplexed
        // partition is worth.
        for (unit, shard) in self.shards.iter_mut().enumerate() {
            shard.job_factor = match &rt.scoring {
                None => co_runner_score(shard.be_jobs, rt.params.sigma),
                Some(scoring) => scoring.factor(self.be, shard.be_jobs),
            };
            shard.controller.set_be_idle(shard.be_jobs == 0);
            if matches!(rt.scoring, Some(PlacementScoring::Learned(_))) && shard.be_jobs > 0 {
                self.set_scores += 1;
                if let Some(sink) = sink.as_deref_mut() {
                    sink.record(&TraceEvent::SetScored {
                        t_s,
                        unit,
                        k: shard.be_jobs as usize,
                        score: shard.job_factor,
                    });
                }
            }
        }
        self.placement = Some(rt);
        // Watts follow the jobs: parked partitions stop drawing BE power,
        // so a fresh demand-aware apportionment shifts their headroom to
        // job-holding shards (never above nominal per-node caps).
        if let Some(tree) = self.budget.as_mut() {
            let demands: Vec<f64> = self
                .shards
                .iter()
                .map(|s| s.slab.power_w.iter().sum())
                .collect();
            tree.reclaim(Some(&demands));
            let mut changed = false;
            for (shard, leaf_eff) in self.shards.iter_mut().zip(tree.leaf_caps_w()) {
                let per_node = leaf_eff / shard.len() as f64;
                if shard.controller.set_budget_w(per_node) {
                    shard.budget_w = per_node;
                    changed = true;
                }
            }
            if changed {
                self.budget_reclaims += 1;
            }
        }
    }

    /// Like [`Fleet::run`], but folds the fleet's streaming aggregates
    /// into `registry` after the run: the per-shard histogram buckets
    /// are merged in shard order, so the registry contents are
    /// deterministic even though shards step in parallel.
    pub fn run_with_metrics(
        &mut self,
        profile: LoadProfile,
        duration_s: u32,
        registry: &MetricsRegistry,
    ) -> FleetResult {
        let result = self.run(profile, duration_s);
        self.export_metrics(&result, registry);
        result
    }

    /// Folds the current streaming aggregates and the run summary into
    /// `registry` (see [`Fleet::run_with_metrics`]).
    pub fn export_metrics(&self, result: &FleetResult, registry: &MetricsRegistry) {
        registry.set_gauge("fleet.nodes", self.node_count as f64);
        registry.set_gauge("fleet.shards", self.shards.len() as f64);
        registry.set_gauge("fleet.regions", self.regions.len() as f64);
        let mut intervals = 0u64;
        for shard in &self.shards {
            intervals += shard.intervals_stepped as u64 * shard.len() as u64;
            registry.merge_histogram("interval.p95_ms", &shard.p95_hist);
            registry.merge_histogram("interval.power_w", &shard.power_hist);
            registry.merge_histogram("interval.be_throughput", &shard.tput_hist);
        }
        registry.add("run.intervals", intervals);
        let mut pruned_cells = 0u64;
        let mut pruned_slices = 0u64;
        let mut frontier_reuses = 0u64;
        let mut incremental_reused = 0u64;
        let mut incremental_rescanned = 0u64;
        for shard in &self.shards {
            let (cells, slices, reuses) = shard.controller.pruned_totals();
            pruned_cells += cells;
            pruned_slices += slices;
            frontier_reuses += reuses;
            let (reused, rescanned) = shard.controller.incremental_totals();
            incremental_reused += reused;
            incremental_rescanned += rescanned;
        }
        registry.add("search.pruned_candidates", pruned_cells);
        registry.add("search.pruned_subspaces", pruned_slices);
        registry.add("search.frontier_reuses", frontier_reuses);
        registry.add("search.incremental_slices_reused", incremental_reused);
        registry.add("search.incremental_slices_rescanned", incremental_rescanned);
        registry.add(
            "controller.stale_intervals",
            result.fault_counters.stale_intervals,
        );
        registry.add(
            "controller.safe_mode_entries",
            result.fault_counters.safe_mode_entries,
        );
        registry.add(
            "balancer.retry_rounds",
            result.fault_counters.balancer_retry_rounds,
        );
        registry.add("fleet.trainings", result.trainings);
        registry.add("fleet.table_builds", result.table_builds);
        registry.add("search.runs", result.searches);
        registry.add("budget.reclaims", result.budget_reclaims);
        registry.add("placement.migrations", result.migrations);
        registry.add("placement.evictions", result.evictions);
        registry.add("placement.assignments", result.assignments);
        if let Some((_, report)) = &self.cold_start {
            registry.add("scoring.cold_starts", 1);
            registry.add("scoring.cells_observed", report.cells_observed);
            registry.add("scoring.cells_hidden", report.cells_hidden);
            registry.add("scoring.cold_start_cells", report.cold_start_cells);
            registry.set_gauge("scoring.rmse_heldout", report.rmse_heldout_tput);
        }
        registry.add("scoring.set_scores", result.set_scores);
        registry.set_gauge("fleet.qos_rate", result.qos_rate);
        registry.set_gauge("fleet.total_be_throughput", result.total_be_throughput);
        registry.set_gauge("fleet.mean_power_w", result.mean_fleet_power_w);
        registry.set_gauge("fleet.budget_w", result.fleet_budget_w);
    }

    /// Aggregates the per-node running sums into the run summary. Node
    /// order and formulas mirror [`crate::cluster::Cluster`] exactly, so
    /// a one-node-per-shard fleet reproduces `ClusterResult` bit for
    /// bit.
    fn result(&self) -> FleetResult {
        let mut nodes = Vec::with_capacity(self.node_count);
        let mut total_q = 0.0;
        let mut in_target_q = 0.0;
        let mut total_tput = 0.0;
        let mut total_power = 0.0;
        let mut budget = 0.0;
        let mut fault_counters = ControllerFaultCounters::default();
        let mut searches = 0u64;
        for shard in &self.shards {
            let c = shard.controller.fault_counters();
            fault_counters.stale_intervals += c.stale_intervals;
            fault_counters.safe_mode_entries += c.safe_mode_entries;
            fault_counters.balancer_retry_rounds += c.balancer_retry_rounds;
            searches += shard.controller.search_count();
            let intervals = shard.intervals_stepped;
            for i in 0..shard.len() {
                // The same aggregates TelemetryLog computes, from the
                // streamed per-node running sums.
                let q = shard.slab.sum_qps[i];
                let qos = if q == 0.0 {
                    1.0
                } else {
                    shard.slab.sum_in_target_qps[i] / q
                };
                let (tput, mean_power, overload) = if intervals == 0 {
                    (0.0, 0.0, 0.0)
                } else {
                    (
                        shard.slab.sum_be_tput[i] / intervals as f64,
                        shard.slab.sum_power_w[i] / intervals as f64,
                        shard.slab.overload_intervals[i] as f64 / intervals as f64,
                    )
                };
                total_q += q;
                in_target_q += q * qos;
                total_tput += tput;
                total_power += mean_power;
                budget += shard.budget_w;
                nodes.push(NodeResult {
                    node: shard.first_node + i,
                    qos_rate: qos,
                    mean_be_throughput: tput,
                    overload_fraction: overload,
                    mean_power_w: mean_power,
                    safe_mode_entries: c.safe_mode_entries,
                });
            }
        }
        FleetResult {
            nodes,
            qos_rate: if total_q > 0.0 {
                in_target_q / total_q
            } else {
                1.0
            },
            total_be_throughput: total_tput,
            mean_fleet_power_w: total_power,
            fleet_budget_w: budget,
            fault_counters,
            trainings: self.trainings,
            table_builds: self.predictors.iter().map(|p| p.table_builds()).sum(),
            searches,
            budget_reclaims: self.budget_reclaims,
            migrations: self.placement.as_ref().map_or(0, |rt| rt.migrations),
            evictions: self.placement.as_ref().map_or(0, |rt| rt.evictions),
            assignments: self.placement.as_ref().map_or(0, |rt| rt.assignments),
            cold_start_cells: self
                .cold_start
                .as_ref()
                .map_or(0, |(_, r)| r.cold_start_cells),
            set_scores: self.set_scores,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{SearchParams, SearchStrategy};
    use sturgeon_workloads::catalog::{BeAppId, LsServiceId};

    fn pair() -> ColocationPair {
        ColocationPair::new(LsServiceId::Xapian, BeAppId::Swaptions)
    }

    fn pruned_params() -> ControllerParams {
        ControllerParams {
            search: SearchParams {
                strategy: SearchStrategy::FrontierPruned,
                ..SearchParams::default()
            },
            ..ControllerParams::default()
        }
    }

    #[test]
    fn shared_fleet_trains_once_and_builds_tables_once() {
        let params = FleetParams {
            shards: 4,
            controller: pruned_params(),
            ..FleetParams::default()
        };
        let mut fleet = Fleet::new(pair(), 16, params, 42);
        assert_eq!(fleet.shard_count(), 4);
        let r = fleet.run(LoadProfile::Constant { fraction: 0.3 }, 40);
        assert!(r.qos_rate > 0.9, "fleet QoS {}", r.qos_rate);
        assert_eq!(r.trainings, 1, "shared fleet must train exactly once");
        assert_eq!(
            r.table_builds, 1,
            "4 pruned shard searches must share one table build"
        );
        assert!(r.searches >= 4, "every shard searches at least once");
        assert_eq!(r.nodes.len(), 16);
    }

    #[test]
    fn per_node_training_pays_per_shard() {
        let params = FleetParams {
            shards: 3,
            training: TrainingMode::PerNode,
            ..FleetParams::default()
        };
        let mut fleet = Fleet::new(pair(), 3, params, 7);
        let r = fleet.run(LoadProfile::Constant { fraction: 0.3 }, 10);
        assert_eq!(r.trainings, 3);
        // Every shard owns a private predictor, so any table work is
        // paid per shard — never more than once per predictor, and
        // never amortized the way the shared fleet amortizes it.
        assert!(
            r.table_builds <= 3,
            "at most one build per private predictor, got {}",
            r.table_builds
        );
    }

    #[test]
    fn streaming_memory_is_independent_of_duration() {
        let params = FleetParams {
            shards: 2,
            sampled_nodes: 1,
            ..FleetParams::default()
        };
        let mut fleet = Fleet::new(pair(), 8, params, 11);
        let r = fleet.run(LoadProfile::paper_fluctuating(60.0), 120);
        // One sampled node holds a full log; everything else streams.
        let logs = fleet.sampled_logs();
        assert_eq!(logs.len(), 1);
        assert_eq!(logs[0].0, 0);
        assert_eq!(logs[0].1.len(), 120);
        // The streamed aggregates saw every node-interval.
        let registry = MetricsRegistry::new();
        fleet.export_metrics(&r, &registry);
        assert_eq!(registry.counter("run.intervals"), 8 * 120);
        assert_eq!(
            registry.histogram("interval.p95_ms").unwrap().count,
            8 * 120
        );
        assert_eq!(registry.gauge("fleet.qos_rate"), Some(r.qos_rate));
    }

    #[test]
    fn regional_failover_moves_load_to_survivors() {
        let params = FleetParams {
            shards: 4,
            regions: 2,
            ..FleetParams::default()
        };
        let mut fleet = Fleet::new(pair(), 8, params, 3);
        assert_eq!(fleet.region_count(), 2);
        let base = LoadProfile::Constant { fraction: 0.4 };
        let failing = LoadProfile::Failover {
            base: Box::new(base.clone()),
            at_s: 20.0,
            outage_s: 40.0,
            takeover: 0.5,
            role: sturgeon_workloads::loadgen::FailoverRole::Failing,
        };
        let surviving = LoadProfile::Failover {
            base: Box::new(base),
            at_s: 20.0,
            outage_s: 40.0,
            takeover: 0.5,
            role: sturgeon_workloads::loadgen::FailoverRole::Survivor,
        };
        let r = fleet
            .run_regional(&[failing, surviving], 80)
            .expect("two profiles, two regions");
        assert!(r.qos_rate > 0.85, "failover fleet QoS {}", r.qos_rate);
        // The failing region's nodes (first half) served fewer queries;
        // check via the survivors' higher mean power draw under load.
        let first_half: f64 = r.nodes[..4].iter().map(|n| n.mean_power_w).sum();
        let second_half: f64 = r.nodes[4..].iter().map(|n| n.mean_power_w).sum();
        assert!(
            second_half > first_half,
            "survivors must absorb load: {first_half:.1} vs {second_half:.1}"
        );
    }

    #[test]
    fn try_new_rejects_bad_geometry() {
        let err = |p: FleetParams, n: usize| Fleet::try_new(pair(), n, p, 1).err().unwrap();
        assert!(matches!(
            err(FleetParams::default(), 0),
            SturgeonError::Setup(_)
        ));
        let e = err(
            FleetParams {
                shards: 5,
                ..FleetParams::default()
            },
            3,
        );
        assert!(e.to_string().contains("shards"), "{e}");
        let e = err(
            FleetParams {
                shards: 2,
                regions: 3,
                ..FleetParams::default()
            },
            4,
        );
        assert!(e.to_string().contains("region"), "{e}");
        let e = err(
            FleetParams {
                shards: 2,
                regions: 2,
                policy: DispatchPolicy::Weighted(vec![1.0, 1.0]),
                ..FleetParams::default()
            },
            4,
        );
        assert!(e.to_string().contains("single region"), "{e}");
    }

    #[test]
    fn auto_shards_scale_with_nodes() {
        let f = Fleet::new(pair(), 1, FleetParams::default(), 1);
        assert_eq!(f.shard_count(), 1);
        let params = FleetParams {
            shards: 2,
            ..FleetParams::default()
        };
        let f = Fleet::new(pair(), 3, params, 1);
        assert_eq!(f.shard_count(), 2);
        // Contiguous split: 2 + 1.
        assert_eq!(f.shards[0].len(), 2);
        assert_eq!(f.shards[1].len(), 1);
        assert_eq!(f.shards[1].first_node, 2);
    }
}
