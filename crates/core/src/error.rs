//! The crate-wide error type.
//!
//! Every user-reachable fallible path — offline profiling, model
//! training, run setup, trace export — funnels into [`SturgeonError`] so
//! callers handle one enum instead of a zoo of layer-specific types.
//! Internal invariants (e.g. "the balancer never produces an invalid
//! configuration") still panic: those are bugs, not conditions a caller
//! can recover from.

use std::fmt;
use std::io;
use sturgeon_mlkit::MlError;
use sturgeon_simnode::ConfigError;

/// Unified error for the profiling → training → run pipeline.
#[derive(Debug)]
pub enum SturgeonError {
    /// Model training or dataset assembly failed.
    Ml(MlError),
    /// A resource configuration was rejected by the node spec, or an
    /// actuation could not be installed.
    Config(ConfigError),
    /// An I/O failure while writing traces, metrics, or exports.
    Io(io::Error),
    /// Invalid experiment, profiler, or run parameters.
    Setup(String),
}

impl SturgeonError {
    /// Convenience constructor for parameter-validation failures.
    pub fn setup(msg: impl Into<String>) -> Self {
        SturgeonError::Setup(msg.into())
    }
}

impl fmt::Display for SturgeonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SturgeonError::Ml(e) => write!(f, "model training failed: {e}"),
            SturgeonError::Config(e) => write!(f, "invalid configuration: {e}"),
            SturgeonError::Io(e) => write!(f, "i/o error: {e}"),
            SturgeonError::Setup(msg) => write!(f, "invalid setup: {msg}"),
        }
    }
}

impl std::error::Error for SturgeonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SturgeonError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MlError> for SturgeonError {
    fn from(e: MlError) -> Self {
        SturgeonError::Ml(e)
    }
}

impl From<ConfigError> for SturgeonError {
    fn from(e: ConfigError) -> Self {
        SturgeonError::Config(e)
    }
}

impl From<io::Error> for SturgeonError {
    fn from(e: io::Error) -> Self {
        SturgeonError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_prefixed_by_layer() {
        let e = SturgeonError::setup("empty load fractions");
        assert_eq!(e.to_string(), "invalid setup: empty load fractions");
        let e: SturgeonError = io::Error::other("disk full").into();
        assert!(e.to_string().contains("disk full"));
    }

    #[test]
    fn conversions_preserve_the_source_variant() {
        let e: SturgeonError = ConfigError::EmptyPartition.into();
        assert!(matches!(e, SturgeonError::Config(_)));
    }
}
