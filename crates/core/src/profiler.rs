//! Offline profiling: collecting the training samples the predictor's
//! models are fitted on (paper §V-A).
//!
//! In the paper, a dedicated cluster instruments each application across
//! resource configurations and loads; telemetry systems collect 95%-ile
//! latency, IPC and (peak) power. Here the profiler drives the
//! [`CoLocationEnv`]'s interference-free `profile` probe over a sampled
//! grid of configurations and packages the observations as
//! [`sturgeon_mlkit::Dataset`]s with the paper's four features:
//! **input size, cores, core frequency, LLC ways**.

use crate::error::SturgeonError;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sturgeon_mlkit::Dataset;
use sturgeon_simnode::{Allocation, PairConfig};
use sturgeon_workloads::env::CoLocationEnv;

/// Feature vector layout shared by every model:
/// `[input_size, cores, freq_ghz, llc_ways]`.
pub const FEATURE_DIM: usize = 4;

/// Builds the canonical feature row.
#[inline]
pub fn features(input_size: f64, cores: u32, freq_ghz: f64, ways: u32) -> Vec<f64> {
    vec![input_size, cores as f64, freq_ghz, ways as f64]
}

/// Profiling controls.
#[derive(Debug, Clone)]
pub struct ProfilerConfig {
    /// Number of random configurations sampled per load level for the LS
    /// service (the grid is too big to sweep exhaustively, §V-B).
    pub ls_samples_per_load: usize,
    /// Load levels (fractions of peak) swept for the LS service.
    pub ls_load_fractions: Vec<f64>,
    /// Number of random configurations sampled for the BE application.
    pub be_samples: usize,
    /// RNG seed for the configuration sampler.
    pub seed: u64,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        Self {
            ls_samples_per_load: 160,
            ls_load_fractions: (1..=19).map(|i| i as f64 / 20.0).collect(),
            be_samples: 1600,
            seed: 0xC0FFEE,
        }
    }
}

/// The four training datasets the predictor needs (paper Fig. 5).
#[derive(Debug, Clone)]
pub struct ProfileDatasets {
    /// LS performance: features → 1.0 if QoS met, else 0.0 (classification).
    pub ls_qos: Dataset,
    /// LS p95 latency in ms (regression; used by the Fig. 6 "regression
    /// flavour" comparisons).
    pub ls_latency: Dataset,
    /// LS partition power in watts (regression).
    pub ls_power: Dataset,
    /// BE normalized throughput (regression).
    pub be_throughput: Dataset,
    /// BE IPC proxy (regression; the paper's §V-A metric).
    pub be_ipc: Dataset,
    /// BE partition power in watts (regression).
    pub be_power: Dataset,
}

/// Collects training data from a co-location environment.
#[derive(Debug)]
pub struct Profiler<'e> {
    env: &'e CoLocationEnv,
    config: ProfilerConfig,
}

impl<'e> Profiler<'e> {
    /// A profiler over `env` with the given controls.
    pub fn new(env: &'e CoLocationEnv, config: ProfilerConfig) -> Self {
        Self { env, config }
    }

    /// Runs the offline profiling campaign and assembles all datasets.
    ///
    /// Fails with [`SturgeonError::Setup`] when the controls cannot
    /// produce a training set (no load levels, no samples, or a node too
    /// small to leave the BE partition any resources), and with
    /// [`SturgeonError::Ml`] when the collected rows are rejected by the
    /// dataset layer.
    pub fn collect(&self) -> Result<ProfileDatasets, SturgeonError> {
        if self.config.ls_load_fractions.is_empty() {
            return Err(SturgeonError::setup(
                "profiler needs at least one LS load fraction",
            ));
        }
        if self.config.ls_samples_per_load == 0 || self.config.be_samples == 0 {
            return Err(SturgeonError::setup(
                "profiler sample counts must be nonzero",
            ));
        }
        let spec = self.env.spec().clone();
        if spec.total_cores < 2 || spec.total_llc_ways < 2 {
            return Err(SturgeonError::setup(
                "profiling needs a node with at least 2 cores and 2 LLC ways",
            ));
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let max_level = spec.max_freq_level();

        // --- LS sweeps ------------------------------------------------
        let mut ls_x = Vec::new();
        let mut ls_qos_y = Vec::new();
        let mut ls_lat_y = Vec::new();
        let mut ls_pow_y = Vec::new();
        let peak = self.env.ls().params.peak_qps;
        for &frac in &self.config.ls_load_fractions {
            let qps = frac * peak;
            for _ in 0..self.config.ls_samples_per_load {
                let cores = rng.gen_range(1..spec.total_cores);
                let level = rng.gen_range(0..=max_level);
                let ways = rng.gen_range(1..spec.total_llc_ways);
                let f_ghz = spec.freq_ghz(level);
                let cfg = ls_only_config(&spec, cores, level, ways);
                let obs = self.env.profile(&cfg, qps);
                ls_x.push(features(qps, cores, f_ghz, ways));
                let target = self.env.ls().params.qos_target_ms;
                ls_qos_y.push(if obs.p95_ms <= target { 1.0 } else { 0.0 });
                // Clamp the saturated-regime latency so regression models
                // are not dominated by off-scale outliers.
                ls_lat_y.push(obs.p95_ms.min(8.0 * target));
                ls_pow_y.push(self.env.ls_partition_power(cores, f_ghz, ways, qps));
            }
        }

        // --- BE sweeps --------------------------------------------------
        let mut be_x = Vec::new();
        let mut be_tput_y = Vec::new();
        let mut be_ipc_y = Vec::new();
        let mut be_pow_y = Vec::new();
        let input_level = self.env.be().params.input_level as f64;
        // Stratified (cores, freq-level) coverage: cycle a shuffled grid
        // of cells instead of sampling both axes uniformly at random.
        // Uniform draws leave holes at sparsely hit cells (notably the
        // low-cores/low-frequency corner), which the instance-based power
        // models then interpolate across with large relative error; the
        // strata guarantee every cell is visited ⌊n/cells⌋ or ⌈n/cells⌉
        // times while LLC ways stay randomized within each visit.
        let mut cells: Vec<(u32, usize)> = (1..spec.total_cores)
            .flat_map(|c| (0..=max_level).map(move |l| (c, l)))
            .collect();
        for i in 0..self.config.be_samples {
            if i % cells.len() == 0 {
                cells.shuffle(&mut rng);
            }
            let (cores, level) = cells[i % cells.len()];
            let ways = rng.gen_range(1..spec.total_llc_ways);
            let f_ghz = spec.freq_ghz(level);
            be_x.push(features(input_level, cores, f_ghz, ways));
            be_tput_y.push(self.env.be().normalized_throughput(cores, f_ghz, ways));
            be_ipc_y.push(self.env.be().ipc(cores, f_ghz, ways));
            be_pow_y.push(self.env.be_partition_power(cores, f_ghz));
        }

        Ok(ProfileDatasets {
            ls_qos: Dataset::new(ls_x.clone(), ls_qos_y)?,
            ls_latency: Dataset::new(ls_x.clone(), ls_lat_y)?,
            ls_power: Dataset::new(ls_x, ls_pow_y)?,
            be_throughput: Dataset::new(be_x.clone(), be_tput_y)?,
            be_ipc: Dataset::new(be_x.clone(), be_ipc_y)?,
            be_power: Dataset::new(be_x, be_pow_y)?,
        })
    }
}

/// An LS-only probing configuration: the BE partition is parked on the
/// leftover resources at minimum frequency (idle during LS profiling).
fn ls_only_config(
    spec: &sturgeon_simnode::NodeSpec,
    cores: u32,
    level: usize,
    ways: u32,
) -> PairConfig {
    PairConfig::new(
        Allocation::new(cores, level, ways),
        Allocation::new(
            (spec.total_cores - cores).max(1),
            0,
            (spec.total_llc_ways - ways).max(1),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sturgeon_simnode::{NodeSpec, PowerModel};
    use sturgeon_workloads::catalog::{be_app, ls_service, BeAppId, LsServiceId};
    use sturgeon_workloads::interference::InterferenceParams;

    fn env() -> CoLocationEnv {
        CoLocationEnv::new(
            NodeSpec::xeon_e5_2630_v4(),
            PowerModel::default(),
            ls_service(LsServiceId::Memcached),
            be_app(BeAppId::Raytrace),
            InterferenceParams::none(),
            0,
        )
    }

    fn small_config() -> ProfilerConfig {
        ProfilerConfig {
            ls_samples_per_load: 40,
            ls_load_fractions: vec![0.2, 0.5, 0.8],
            be_samples: 100,
            seed: 7,
        }
    }

    #[test]
    fn collects_expected_row_counts() {
        let e = env();
        let d = Profiler::new(&e, small_config()).collect().unwrap();
        assert_eq!(d.ls_qos.len(), 120);
        assert_eq!(d.ls_latency.len(), 120);
        assert_eq!(d.ls_power.len(), 120);
        assert_eq!(d.be_throughput.len(), 100);
        assert_eq!(d.be_ipc.len(), 100);
        assert_eq!(d.be_power.len(), 100);
    }

    #[test]
    fn features_have_canonical_layout() {
        let f = features(12_000.0, 8, 1.8, 10);
        assert_eq!(f, vec![12_000.0, 8.0, 1.8, 10.0]);
        assert_eq!(f.len(), FEATURE_DIM);
    }

    #[test]
    fn qos_labels_are_binary_and_both_classes_present() {
        let e = env();
        let d = Profiler::new(&e, small_config()).collect().unwrap();
        assert!(d.ls_qos.y.iter().all(|&v| v == 0.0 || v == 1.0));
        let pos = d.ls_qos.y.iter().filter(|&&v| v == 1.0).count();
        assert!(pos > 0, "no feasible configurations sampled");
        assert!(pos < d.ls_qos.len(), "no infeasible configurations sampled");
    }

    #[test]
    fn power_labels_positive() {
        let e = env();
        let d = Profiler::new(&e, small_config()).collect().unwrap();
        assert!(d.ls_power.y.iter().all(|&v| v > 0.0));
        assert!(d.be_power.y.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn deterministic_per_seed() {
        let e = env();
        let a = Profiler::new(&e, small_config()).collect().unwrap();
        let b = Profiler::new(&e, small_config()).collect().unwrap();
        assert_eq!(a.ls_qos.y, b.ls_qos.y);
        assert_eq!(a.be_power.y, b.be_power.y);
    }

    #[test]
    fn degenerate_controls_are_setup_errors() {
        let e = env();
        let no_loads = ProfilerConfig {
            ls_load_fractions: vec![],
            ..small_config()
        };
        let err = Profiler::new(&e, no_loads).collect().unwrap_err();
        assert!(matches!(err, SturgeonError::Setup(_)), "got {err}");

        let no_samples = ProfilerConfig {
            be_samples: 0,
            ..small_config()
        };
        let err = Profiler::new(&e, no_samples).collect().unwrap_err();
        assert!(matches!(err, SturgeonError::Setup(_)), "got {err}");
    }

    #[test]
    fn latency_labels_clamped() {
        let e = env();
        let d = Profiler::new(&e, small_config()).collect().unwrap();
        let cap = 8.0 * e.ls().params.qos_target_ms;
        assert!(d.ls_latency.y.iter().all(|&v| v <= cap + 1e-9));
    }
}
