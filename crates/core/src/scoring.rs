//! Cold-start co-location scoring: predicting performance and power for
//! *unprofiled* applications, and valuing co-runner *sets* rather than
//! job counts.
//!
//! Sturgeon's offline profiler (§V-A) assumes every application can be
//! swept across the resource grid before deployment. Real fleets onboard
//! new best-effort apps continuously; profiling each against the full
//! `<C, F, L>` grid first would stall admission for hours. This module
//! follows the CuttleSys recipe: the fleet's profiled apps form an
//! app×configuration observation matrix, and a seeded biased matrix
//! factorization ([`sturgeon_mlkit::MatrixFactorization`]) fills the
//! unobserved cells — including entire rows for never-profiled apps that
//! contribute only a handful of online probe cells.
//!
//! Three layers:
//!
//! * [`ProfileMatrix`] — assembles the app×config matrices (throughput,
//!   IPC, power) from the workload catalog over a subsampled grid, with a
//!   manifest-controlled seeded mask hiding a fraction of cells and,
//!   optionally, all but a few probe cells of one "cold" app.
//! * [`ColdStartPredictor`] — fits one factorization per metric on the
//!   observed cells, reports reconstruction error on the held-out cells
//!   (ground truth is known in simulation), and synthesizes the BE
//!   training datasets the [`PerfPowerPredictor`] needs for an app whose
//!   row was never profiled.
//! * [`SetScorer`] — a learned replacement for the closed-form
//!   `co_runner_score(k, σ)`: per-app contention coefficients are
//!   regressed from multi-application environment step outcomes, and
//!   `score(S)` values a *heterogeneous* candidate set by its member
//!   apps, not just its cardinality. The score is permutation-invariant
//!   and monotonically decreasing in every member's σ by construction.
//!
//! Everything is deterministic for a given [`ScoringParams::seed`]: the
//! mask, the factorization, and the regression all derive from it.

use std::collections::BTreeMap;

use crate::error::SturgeonError;
use crate::experiment::ExperimentSetup;
use crate::predictor::{PerfPowerPredictor, PredictorConfig};
use crate::profiler::{features, ProfileDatasets, ProfilerConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sturgeon_mlkit::{Dataset, MatrixFactorization, MfCell, MfParams};
use sturgeon_simnode::power::{PartitionLoad, PowerModel};
use sturgeon_simnode::{Allocation, NodeSpec};
use sturgeon_workloads::be::BeAppModel;
use sturgeon_workloads::catalog::{
    be_apps, extended_be_app, ls_service, ExtendedBeAppId, LsServiceId,
};
use sturgeon_workloads::interference::InterferenceParams;
use sturgeon_workloads::multienv::{MultiColocationEnv, MultiConfig};

/// Number of online probe cells revealed for a fully-masked cold app —
/// the few quick measurements admission control *can* afford before the
/// factorization extrapolates the rest of the row.
pub const PROBE_CELLS: usize = 24;

/// Uncertainty guardband applied to the cold-start *power* predictions,
/// in units of the power plane's held-out RMSE. Throughput and IPC
/// errors cost efficiency; a power under-prediction violates the node
/// budget, so admission shifts every synthesized power cell up by this
/// many "sigmas" of measured reconstruction error before training the
/// predictor on it.
pub const POWER_GUARDBAND_SIGMA: f64 = 2.0;

/// Manifest-facing controls for the scoring subsystem.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoringParams {
    /// Substitute collaborative-filtering predictions for the BE training
    /// datasets of the masked app (cold-start path).
    pub cold_start: bool,
    /// With `cold_start`, use the no-model column-statistics fallback
    /// ([`fallback_be_datasets`]) instead of the factorization — the
    /// conservative baseline the CF predictor is judged against.
    pub fallback: bool,
    /// Use the learned co-runner set scorer instead of the closed-form
    /// `co_runner_score(k, σ)` in placement.
    pub set_scorer: bool,
    /// Latent dimensionality of the factorization.
    pub latent_dim: usize,
    /// Fraction of (app, config) cells hidden uniformly at random.
    pub mask_fraction: f64,
    /// App whose matrix row is fully hidden (bar [`PROBE_CELLS`] probes),
    /// simulating a never-profiled application. Catalog app name.
    pub masked_app: Option<String>,
    /// Seed for masking, factorization and scorer training.
    pub seed: u64,
}

impl Default for ScoringParams {
    fn default() -> Self {
        Self {
            cold_start: true,
            fallback: false,
            set_scorer: true,
            latent_dim: 8,
            mask_fraction: 0.25,
            masked_app: None,
            seed: 0x5C0E,
        }
    }
}

impl ScoringParams {
    /// Rejects out-of-range controls with a setup error.
    pub fn validate(&self) -> Result<(), SturgeonError> {
        if self.latent_dim == 0 || self.latent_dim > 64 {
            return Err(SturgeonError::setup("scoring latent_dim must be in 1..=64"));
        }
        if !(0.0..=0.9).contains(&self.mask_fraction) {
            return Err(SturgeonError::setup(
                "scoring mask_fraction must be in [0, 0.9]",
            ));
        }
        Ok(())
    }
}

/// Which observation matrix a cell belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoreMetric {
    /// Solo-normalized BE throughput.
    Throughput,
    /// IPC proxy.
    Ipc,
    /// BE partition power (W).
    Power,
}

/// The app×configuration observation matrices assembled from the
/// workload catalog: the fleet's accumulated profiling knowledge.
///
/// Rows are the six base PARSEC apps plus the four extended apps; columns
/// are a strided subsample of the `<cores, freq level, ways>` grid. Three
/// parallel value planes (throughput, IPC, power) share one observation
/// mask, because a profiling run measures all three at once.
#[derive(Debug, Clone)]
pub struct ProfileMatrix {
    apps: Vec<String>,
    configs: Vec<(u32, usize, u32)>,
    spec: NodeSpec,
    tput: Vec<f64>,
    ipc: Vec<f64>,
    power: Vec<f64>,
    observed: Vec<bool>,
}

impl ProfileMatrix {
    /// Assembles the matrices over `spec` and masks cells per `params`.
    ///
    /// The uniform mask hides [`ScoringParams::mask_fraction`] of the
    /// cells; a [`ScoringParams::masked_app`] row is then hidden entirely
    /// except for [`PROBE_CELLS`] seeded probe columns. Every column is
    /// guaranteed at least one observed cell so no configuration's bias
    /// term is left at its random initialization.
    pub fn build(
        spec: &NodeSpec,
        power_model: &PowerModel,
        params: &ScoringParams,
    ) -> Result<Self, SturgeonError> {
        params.validate()?;
        let mut models: Vec<BeAppModel> = be_apps();
        for id in ExtendedBeAppId::all() {
            models.push(extended_be_app(id));
        }
        let apps: Vec<String> = models.iter().map(|m| m.params.name.to_string()).collect();

        // Strided axes, endpoints forced: the columns must reach the grid
        // corners the controller actually allocates (max cores, the top
        // DVFS level, max ways) or every downstream model extrapolates
        // beyond its training hull exactly where power peaks.
        let max_level = spec.max_freq_level();
        let axis = |stride: Vec<usize>, end: usize| -> Vec<usize> {
            let mut v = stride;
            if v.last() != Some(&end) {
                v.push(end);
            }
            v
        };
        let cores_axis = axis(
            (2..spec.total_cores as usize).step_by(2).collect(),
            spec.total_cores as usize - 1,
        );
        let level_axis = axis((0..=max_level).step_by(2).collect(), max_level);
        let ways_axis = axis(
            (2..spec.total_llc_ways as usize).step_by(4).collect(),
            spec.total_llc_ways as usize - 1,
        );
        let mut configs = Vec::new();
        for &cores in &cores_axis {
            for &level in &level_axis {
                for &ways in &ways_axis {
                    configs.push((cores as u32, level, ways as u32));
                }
            }
        }
        let n = apps.len() * configs.len();
        let mut tput = Vec::with_capacity(n);
        let mut ipc = Vec::with_capacity(n);
        let mut power = Vec::with_capacity(n);
        for m in &models {
            for &(cores, level, ways) in &configs {
                let f = spec.freq_ghz(level);
                tput.push(m.normalized_throughput(cores, f, ways));
                ipc.push(m.ipc(cores, f, ways));
                power.push(power_model.partition_power_w(&PartitionLoad {
                    cores,
                    freq_ghz: f,
                    activity: m.params.activity,
                    utilization: 1.0,
                }));
            }
        }

        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut observed: Vec<bool> = (0..n)
            .map(|_| rng.gen_range(0.0..1.0) >= params.mask_fraction)
            .collect();
        if let Some(name) = &params.masked_app {
            let row = apps
                .iter()
                .position(|a| a == name)
                .ok_or_else(|| SturgeonError::setup(format!("unknown masked app '{name}'")))?;
            let base = row * configs.len();
            for cell in observed[base..base + configs.len()].iter_mut() {
                *cell = false;
            }
            let mut cols: Vec<usize> = (0..configs.len()).collect();
            cols.shuffle(&mut rng);
            for &c in cols.iter().take(PROBE_CELLS.min(configs.len())) {
                observed[base + c] = true;
            }
        }
        // Re-reveal one seeded row in any column the mask left fully dark.
        for c in 0..configs.len() {
            if !(0..apps.len()).any(|r| observed[r * configs.len() + c]) {
                let r = rng.gen_range(0..apps.len());
                observed[r * configs.len() + c] = true;
            }
        }
        Ok(Self {
            apps,
            configs,
            spec: spec.clone(),
            tput,
            ipc,
            power,
            observed,
        })
    }

    /// App names, row order.
    pub fn apps(&self) -> &[String] {
        &self.apps
    }

    /// `<cores, freq level, ways>` columns.
    pub fn configs(&self) -> &[(u32, usize, u32)] {
        &self.configs
    }

    /// Row index of an app by catalog name.
    pub fn app_row(&self, name: &str) -> Option<usize> {
        self.apps.iter().position(|a| a == name)
    }

    /// Number of observed (unmasked) cells.
    pub fn cells_observed(&self) -> usize {
        self.observed.iter().filter(|&&o| o).count()
    }

    /// Number of hidden cells.
    pub fn cells_hidden(&self) -> usize {
        self.observed.len() - self.cells_observed()
    }

    fn plane(&self, metric: ScoreMetric) -> &[f64] {
        match metric {
            ScoreMetric::Throughput => &self.tput,
            ScoreMetric::Ipc => &self.ipc,
            ScoreMetric::Power => &self.power,
        }
    }

    /// Ground-truth value of a cell (simulation knows the full matrix).
    pub fn truth(&self, metric: ScoreMetric, row: usize, col: usize) -> f64 {
        self.plane(metric)[row * self.configs.len() + col]
    }

    /// The observed cells of one metric plane, as factorization input.
    pub fn observed_cells(&self, metric: ScoreMetric) -> Vec<MfCell> {
        self.cells(metric, true)
    }

    /// The hidden cells of one metric plane (held-out evaluation set).
    pub fn hidden_cells(&self, metric: ScoreMetric) -> Vec<MfCell> {
        self.cells(metric, false)
    }

    fn cells(&self, metric: ScoreMetric, want_observed: bool) -> Vec<MfCell> {
        let plane = self.plane(metric);
        let cols = self.configs.len();
        self.observed
            .iter()
            .enumerate()
            .filter(|&(_, &o)| o == want_observed)
            .map(|(i, _)| (i / cols, i % cols, plane[i]))
            .collect()
    }
}

/// Reconstruction quality of one fitted metric plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaneFit {
    /// RMSE over the observed (training) cells.
    pub rmse_observed: f64,
    /// RMSE over the hidden (held-out) cells.
    pub rmse_heldout: f64,
}

/// Collaborative-filtering predictor over a [`ProfileMatrix`]: one
/// factorization per metric plane, fitted on the observed cells only.
#[derive(Debug, Clone)]
pub struct ColdStartPredictor {
    matrix: ProfileMatrix,
    tput_mf: MatrixFactorization,
    ipc_mf: MatrixFactorization,
    power_mf: MatrixFactorization,
    fits: [(ScoreMetric, PlaneFit); 3],
}

impl ColdStartPredictor {
    /// Fits the three factorizations; fails on degenerate inputs.
    pub fn fit(matrix: ProfileMatrix, params: &ScoringParams) -> Result<Self, SturgeonError> {
        params.validate()?;
        let mf_params = MfParams {
            latent_dim: params.latent_dim,
            seed: params.seed,
            ..MfParams::default()
        };
        let rows = matrix.apps.len();
        let cols = matrix.configs.len();
        let fit_plane = |metric: ScoreMetric,
                         seed_offset: u64|
         -> Result<(MatrixFactorization, PlaneFit), SturgeonError> {
            let mut mf = MatrixFactorization::new(MfParams {
                seed: mf_params.seed.wrapping_add(seed_offset),
                ..mf_params
            })
            .map_err(SturgeonError::Ml)?;
            mf.fit(rows, cols, &matrix.observed_cells(metric))
                .map_err(SturgeonError::Ml)?;
            let fit = PlaneFit {
                rmse_observed: mf.rmse(&matrix.observed_cells(metric)),
                rmse_heldout: mf.rmse(&matrix.hidden_cells(metric)),
            };
            Ok((mf, fit))
        };
        let (tput_mf, tput_fit) = fit_plane(ScoreMetric::Throughput, 0)?;
        let (ipc_mf, ipc_fit) = fit_plane(ScoreMetric::Ipc, 1)?;
        let (power_mf, power_fit) = fit_plane(ScoreMetric::Power, 2)?;
        Ok(Self {
            matrix,
            tput_mf,
            ipc_mf,
            power_mf,
            fits: [
                (ScoreMetric::Throughput, tput_fit),
                (ScoreMetric::Ipc, ipc_fit),
                (ScoreMetric::Power, power_fit),
            ],
        })
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &ProfileMatrix {
        &self.matrix
    }

    /// Reconstruction quality of one metric plane.
    pub fn plane_fit(&self, metric: ScoreMetric) -> PlaneFit {
        self.fits
            .iter()
            .find(|(m, _)| *m == metric)
            .map(|&(_, f)| f)
            .expect("every metric has a fit")
    }

    /// CF-predicted value of a cell, clamped to the metric's domain.
    pub fn predict(&self, metric: ScoreMetric, row: usize, col: usize) -> f64 {
        let raw = match metric {
            ScoreMetric::Throughput => self.tput_mf.predict(row, col),
            ScoreMetric::Ipc => self.ipc_mf.predict(row, col),
            ScoreMetric::Power => self.power_mf.predict(row, col),
        };
        match metric {
            ScoreMetric::Power => raw.max(1.0),
            _ => raw.max(0.0),
        }
    }

    /// Synthesizes the three BE training datasets for one app row from
    /// CF predictions over the full column grid — the datasets a
    /// [`PerfPowerPredictor`] trains on when the app was never profiled.
    pub fn synth_be_datasets(
        &self,
        row: usize,
        input_level: f64,
    ) -> Result<(Dataset, Dataset, Dataset), SturgeonError> {
        if row >= self.matrix.apps.len() {
            return Err(SturgeonError::setup("app row out of range"));
        }
        let spec = &self.matrix.spec;
        let mut x = Vec::with_capacity(self.matrix.configs.len());
        let (mut t, mut i_y, mut p) = (Vec::new(), Vec::new(), Vec::new());
        for (col, &(cores, level, ways)) in self.matrix.configs.iter().enumerate() {
            x.push(features(input_level, cores, spec.freq_ghz(level), ways));
            t.push(self.predict(ScoreMetric::Throughput, row, col));
            i_y.push(self.predict(ScoreMetric::Ipc, row, col));
            p.push(self.predict(ScoreMetric::Power, row, col));
        }
        Ok((
            Dataset::new(x.clone(), t).map_err(SturgeonError::Ml)?,
            Dataset::new(x.clone(), i_y).map_err(SturgeonError::Ml)?,
            Dataset::new(x, p).map_err(SturgeonError::Ml)?,
        ))
    }
}

/// Synthesizes *naive* BE datasets for an unprofiled app: the no-model
/// baseline the cold-start path must beat. Throughput and IPC fall back
/// to the per-column mean over the *other* apps' observed cells (a
/// generic prior that ignores the app's identity); power falls back to
/// the per-column *maximum* (admission must be conservative about the
/// one quantity that can violate the node budget).
pub fn fallback_be_datasets(
    matrix: &ProfileMatrix,
    row: usize,
    input_level: f64,
) -> Result<(Dataset, Dataset, Dataset), SturgeonError> {
    if row >= matrix.apps.len() {
        return Err(SturgeonError::setup("app row out of range"));
    }
    let cols = matrix.configs.len();
    let spec = &matrix.spec;
    let column_stat = |metric: ScoreMetric, col: usize, max: bool| -> f64 {
        let mut vals = Vec::new();
        for r in 0..matrix.apps.len() {
            if r != row && matrix.observed[r * cols + col] {
                vals.push(matrix.truth(metric, r, col));
            }
        }
        if vals.is_empty() {
            for r in 0..matrix.apps.len() {
                if r != row {
                    vals.push(matrix.truth(metric, r, col));
                }
            }
        }
        if max {
            vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    };
    let mut x = Vec::with_capacity(cols);
    let (mut t, mut i_y, mut p) = (Vec::new(), Vec::new(), Vec::new());
    for (col, &(cores, level, ways)) in matrix.configs.iter().enumerate() {
        x.push(features(input_level, cores, spec.freq_ghz(level), ways));
        t.push(column_stat(ScoreMetric::Throughput, col, false));
        i_y.push(column_stat(ScoreMetric::Ipc, col, false));
        p.push(column_stat(ScoreMetric::Power, col, true));
    }
    Ok((
        Dataset::new(x.clone(), t).map_err(SturgeonError::Ml)?,
        Dataset::new(x.clone(), i_y).map_err(SturgeonError::Ml)?,
        Dataset::new(x, p).map_err(SturgeonError::Ml)?,
    ))
}

/// Quality and volume report from a cold-start training run, exported
/// into fleet metrics and the `scoring_eval` bench artifact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColdStartReport {
    /// Observed cells across the shared mask.
    pub cells_observed: u64,
    /// Hidden cells.
    pub cells_hidden: u64,
    /// Cells synthesized for the cold app's row.
    pub cold_start_cells: u64,
    /// Held-out RMSE of the throughput plane.
    pub rmse_heldout_tput: f64,
    /// Training-cell RMSE of the throughput plane.
    pub rmse_observed_tput: f64,
    /// Held-out RMSE of the power plane (W).
    pub rmse_heldout_power: f64,
    /// Training-cell RMSE of the power plane (W).
    pub rmse_observed_power: f64,
}

/// A trained predictor plus the cold-start quality report.
#[derive(Debug)]
pub struct ColdStartOutcome {
    /// Predictor whose BE models were trained on CF-synthesized data.
    pub predictor: PerfPowerPredictor,
    /// Matrix/factorization statistics.
    pub report: ColdStartReport,
}

fn replace_be_datasets(
    base: ProfileDatasets,
    (t, i, p): (Dataset, Dataset, Dataset),
) -> ProfileDatasets {
    ProfileDatasets {
        ls_qos: base.ls_qos,
        ls_latency: base.ls_latency,
        ls_power: base.ls_power,
        be_throughput: t,
        be_ipc: i,
        be_power: p,
    }
}

fn base_datasets_and_row(
    setup: &ExperimentSetup,
    params: &ScoringParams,
) -> Result<(ProfileDatasets, ProfileMatrix, usize), SturgeonError> {
    let be_name = setup.env().be().params.name.to_string();
    let masked = params.masked_app.clone().unwrap_or_else(|| be_name.clone());
    if masked != be_name {
        return Err(SturgeonError::setup(format!(
            "masked app '{masked}' is not the pair's BE app '{be_name}'"
        )));
    }
    let effective = ScoringParams {
        masked_app: Some(masked.clone()),
        ..params.clone()
    };
    let matrix = ProfileMatrix::build(setup.spec(), setup.env().power_model(), &effective)?;
    let row = matrix
        .app_row(&masked)
        .ok_or_else(|| SturgeonError::setup(format!("unknown masked app '{masked}'")))?;
    // The LS sweeps run first in the profiler and draw from the same
    // seeded RNG stream, so the LS datasets here are identical to a
    // fully-profiled run's — only the BE datasets get replaced.
    let base = setup.profile(ProfilerConfig::default())?;
    Ok((base, matrix, row))
}

/// Trains a predictor for `setup`'s pair with the BE datasets replaced by
/// collaborative-filtering predictions: the pair's BE app is treated as
/// never profiled (its matrix row hidden bar the probe cells).
pub fn train_cold_start_predictor(
    setup: &ExperimentSetup,
    params: &ScoringParams,
) -> Result<ColdStartOutcome, SturgeonError> {
    let (base, matrix, row) = base_datasets_and_row(setup, params)?;
    let cells_observed = matrix.cells_observed() as u64;
    let cells_hidden = matrix.cells_hidden() as u64;
    let cold_start_cells = matrix.configs().len() as u64;
    let effective = ScoringParams {
        masked_app: Some(matrix.apps()[row].clone()),
        ..params.clone()
    };
    let cf = ColdStartPredictor::fit(matrix, &effective)?;
    let input_level = setup.env().be().params.input_level as f64;
    let (t, i, mut p) = cf.synth_be_datasets(row, input_level)?;
    // Budget safety: bias the power plane by its own measured held-out
    // error so a flattering factorization cannot talk admission into
    // configurations that overshoot the node cap.
    let guard = POWER_GUARDBAND_SIGMA * cf.plane_fit(ScoreMetric::Power).rmse_heldout;
    for v in &mut p.y {
        *v += guard;
    }
    let datasets = replace_be_datasets(base, (t, i, p));
    let predictor = PerfPowerPredictor::train(
        &datasets,
        PredictorConfig::default(),
        setup.env().static_power_w(),
        input_level,
        setup.qos_target_ms(),
    )
    .map_err(SturgeonError::Ml)?;
    let tput = cf.plane_fit(ScoreMetric::Throughput);
    let power = cf.plane_fit(ScoreMetric::Power);
    Ok(ColdStartOutcome {
        predictor,
        report: ColdStartReport {
            cells_observed,
            cells_hidden,
            cold_start_cells,
            rmse_heldout_tput: tput.rmse_heldout,
            rmse_observed_tput: tput.rmse_observed,
            rmse_heldout_power: power.rmse_heldout,
            rmse_observed_power: power.rmse_observed,
        },
    })
}

/// Trains the no-model fallback predictor for `setup`'s pair: the BE
/// datasets come from [`fallback_be_datasets`] (column means, pessimistic
/// power) instead of the factorization.
pub fn train_fallback_predictor(
    setup: &ExperimentSetup,
    params: &ScoringParams,
) -> Result<PerfPowerPredictor, SturgeonError> {
    let (base, matrix, row) = base_datasets_and_row(setup, params)?;
    let input_level = setup.env().be().params.input_level as f64;
    let naive = fallback_be_datasets(&matrix, row, input_level)?;
    let datasets = replace_be_datasets(base, naive);
    PerfPowerPredictor::train(
        &datasets,
        PredictorConfig::default(),
        setup.env().static_power_w(),
        input_level,
        setup.qos_target_ms(),
    )
    .map_err(SturgeonError::Ml)
}

/// Looks up an app's closed-form contention coefficient in the catalog
/// (base or extended); unknown names get the fleet's legacy default.
pub fn catalog_sigma(app: &str) -> f64 {
    for m in be_apps() {
        if m.params.name == app {
            return m.params.contention_sigma();
        }
    }
    for id in ExtendedBeAppId::all() {
        let m = extended_be_app(id);
        if m.params.name == app {
            return m.params.contention_sigma();
        }
    }
    0.25
}

/// Learned co-runner *set* scorer.
///
/// Per-app contention coefficients `σ_a ∈ [0, 1]` are regressed from
/// multi-application environment step outcomes; a candidate set `S` of
/// `k` jobs is then valued
///
/// ```text
/// score(S) = k / (1 + mean_{a∈S}(σ_a) · (k − 1))
/// ```
///
/// — the same saturating family as the closed-form `co_runner_score`,
/// but with the coefficient reflecting *which* apps share the node. The
/// mean makes the score permutation-invariant, and `∂score/∂σ_a < 0`
/// for `k ≥ 2` makes it monotonically decreasing as any member's
/// contention rises.
#[derive(Debug, Clone, PartialEq)]
pub struct SetScorer {
    sigmas: BTreeMap<String, f64>,
}

impl SetScorer {
    /// A scorer with explicitly given coefficients (tests, manifests).
    pub fn from_sigmas<I, S>(sigmas: I) -> Self
    where
        I: IntoIterator<Item = (S, f64)>,
        S: Into<String>,
    {
        Self {
            sigmas: sigmas
                .into_iter()
                .map(|(a, s)| (a.into(), s.clamp(0.0, 1.0)))
                .collect(),
        }
    }

    /// Trains the per-app coefficients from multi-env step outcomes.
    ///
    /// Every 2- and 3-app subset of the base catalog runs one interval on
    /// an equal-partition node; the observed set efficiency
    /// `e_S = mean_i(tput_i / solo_i)` implies a blended coefficient
    /// `σ̄_S = (1/e_S − 1)/(k − 1)`, and the per-app coefficients solve
    /// the ridge system `mean_{a∈S}(σ_a) ≈ σ̄_S` over all samples.
    pub fn train(spec: &NodeSpec, power: &PowerModel, seed: u64) -> Result<Self, SturgeonError> {
        let models = be_apps();
        let names: Vec<String> = models.iter().map(|m| m.params.name.to_string()).collect();
        let n = models.len();
        let mut subsets: Vec<Vec<usize>> = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                subsets.push(vec![i, j]);
                for l in (j + 1)..n {
                    subsets.push(vec![i, j, l]);
                }
            }
        }
        // Quiet interference (no OS jitter) keeps the regression targets
        // deterministic; the BE↔BE bandwidth coupling stays at default.
        let quiet = InterferenceParams {
            spike_probability: 0.0,
            ..InterferenceParams::default()
        };
        let ls = vec![ls_service(LsServiceId::Memcached)];
        let mut rows: Vec<(Vec<usize>, f64)> = Vec::new();
        for set in &subsets {
            let k = set.len() as u32;
            let be: Vec<BeAppModel> = set.iter().map(|&i| models[i].clone()).collect();
            let mut env =
                MultiColocationEnv::new(spec.clone(), *power, ls.clone(), be.clone(), quiet, seed);
            let ls_cores = 2u32;
            let ls_ways = 2u32;
            let each_cores = ((spec.total_cores - ls_cores) / k).max(1);
            let each_ways = ((spec.total_llc_ways - ls_ways) / k).max(1);
            let level = spec.max_freq_level();
            let config = MultiConfig {
                ls: vec![Allocation::new(ls_cores, level, ls_ways)],
                be: (0..k)
                    .map(|_| Allocation::new(each_cores, level, each_ways))
                    .collect(),
            };
            let qps = vec![0.2 * ls[0].params.peak_qps];
            let obs = env.step(&config, &qps);
            let eff: f64 = obs
                .be_throughput
                .iter()
                .zip(&be)
                .map(|(&t, m)| {
                    let solo = m.normalized_throughput(each_cores, spec.freq_ghz(level), each_ways);
                    if solo > 0.0 {
                        (t / solo).clamp(1e-3, 1.0)
                    } else {
                        1.0
                    }
                })
                .sum::<f64>()
                / k as f64;
            let sigma_bar = ((1.0 / eff - 1.0) / (k as f64 - 1.0)).clamp(0.0, 1.0);
            rows.push((set.clone(), sigma_bar));
        }
        // Ridge normal equations: (XᵀX + λI) σ = Xᵀy with X[s][a] = 1/k.
        let lambda = 1e-6;
        let mut ata = vec![vec![0.0f64; n]; n];
        let mut aty = vec![0.0f64; n];
        for (set, y) in &rows {
            let w = 1.0 / set.len() as f64;
            for &a in set {
                aty[a] += w * y;
                for &b in set {
                    ata[a][b] += w * w;
                }
            }
        }
        for (d, row) in ata.iter_mut().enumerate() {
            row[d] += lambda;
        }
        let sigma = solve_linear(&mut ata, &mut aty)
            .ok_or_else(|| SturgeonError::setup("set-scorer regression is singular"))?;
        Ok(Self::from_sigmas(names.into_iter().zip(sigma)))
    }

    /// The learned coefficient for an app, if it was in the training set.
    pub fn sigma(&self, app: &str) -> Option<f64> {
        self.sigmas.get(app).copied()
    }

    /// Effective coefficient: learned when available, catalog otherwise.
    pub fn effective_sigma(&self, app: &str) -> f64 {
        self.sigma(app).unwrap_or_else(|| catalog_sigma(app))
    }

    /// Values a candidate co-runner set. Empty → 0; singleton → 1.
    ///
    /// The member coefficients are sorted before accumulation, so the
    /// score is bit-identical under any permutation of the set — not
    /// merely equal up to floating-point associativity.
    pub fn score<S: AsRef<str>>(&self, set: &[S]) -> f64 {
        let k = set.len();
        if k == 0 {
            return 0.0;
        }
        let mut sigmas: Vec<f64> = set
            .iter()
            .map(|a| self.effective_sigma(a.as_ref()))
            .collect();
        sigmas.sort_by(f64::total_cmp);
        let mean_sigma = sigmas.iter().sum::<f64>() / k as f64;
        k as f64 / (1.0 + mean_sigma * (k as f64 - 1.0))
    }
}

/// Gaussian elimination with partial pivoting for the tiny (n ≤ 10)
/// ridge systems above. Returns `None` on a (numerically) singular
/// matrix. Consumes its inputs as scratch space.
#[allow(clippy::needless_range_loop)] // elimination reads a[col] while writing a[row]
fn solve_linear(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..n {
            let f = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut v = b[col];
        for k in (col + 1)..n {
            v -= a[col][k] * x[k];
        }
        x[col] = v / a[col][col];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sturgeon_workloads::catalog::BeAppId;

    fn spec() -> NodeSpec {
        NodeSpec::xeon_e5_2630_v4()
    }

    fn params() -> ScoringParams {
        ScoringParams {
            masked_app: Some(BeAppId::Raytrace.name().to_string()),
            ..ScoringParams::default()
        }
    }

    #[test]
    fn matrix_masks_cold_row_except_probes() {
        let m = ProfileMatrix::build(&spec(), &PowerModel::default(), &params()).unwrap();
        let row = m.app_row("raytrace").unwrap();
        let cols = m.configs().len();
        let observed_in_row = (0..cols).filter(|&c| m.observed[row * cols + c]).count();
        assert_eq!(observed_in_row, PROBE_CELLS);
        assert!(m.cells_hidden() > 0);
        assert_eq!(m.cells_observed() + m.cells_hidden(), m.apps().len() * cols);
        // Every column keeps at least one observation.
        for c in 0..cols {
            assert!((0..m.apps().len()).any(|r| m.observed[r * cols + c]));
        }
    }

    #[test]
    fn matrix_is_deterministic_per_seed() {
        let a = ProfileMatrix::build(&spec(), &PowerModel::default(), &params()).unwrap();
        let b = ProfileMatrix::build(&spec(), &PowerModel::default(), &params()).unwrap();
        assert_eq!(a.observed, b.observed);
        let other = ProfileMatrix::build(
            &spec(),
            &PowerModel::default(),
            &ScoringParams {
                seed: 99,
                ..params()
            },
        )
        .unwrap();
        assert_ne!(a.observed, other.observed);
    }

    #[test]
    fn cold_start_predictor_reconstructs_and_extrapolates() {
        let m = ProfileMatrix::build(&spec(), &PowerModel::default(), &params()).unwrap();
        let cf = ColdStartPredictor::fit(m, &params()).unwrap();
        let t = cf.plane_fit(ScoreMetric::Throughput);
        assert!(t.rmse_observed < 0.08, "observed rmse {}", t.rmse_observed);
        assert!(t.rmse_heldout < 0.20, "held-out rmse {}", t.rmse_heldout);
        // The cold row's predictions must beat a row-ignorant prior on
        // the app's own hidden cells.
        let row = cf.matrix().app_row("raytrace").unwrap();
        let cols = cf.matrix().configs().len();
        let mut se_cf = 0.0;
        let mut count = 0usize;
        for c in 0..cols {
            if !cf.matrix().observed[row * cols + c] {
                let truth = cf.matrix().truth(ScoreMetric::Throughput, row, c);
                let e = cf.predict(ScoreMetric::Throughput, row, c) - truth;
                se_cf += e * e;
                count += 1;
            }
        }
        let rmse_cold = (se_cf / count as f64).sqrt();
        assert!(rmse_cold < 0.15, "cold-row rmse {rmse_cold}");
    }

    #[test]
    fn synth_datasets_cover_the_grid() {
        let m = ProfileMatrix::build(&spec(), &PowerModel::default(), &params()).unwrap();
        let cols = m.configs().len();
        let row = m.app_row("raytrace").unwrap();
        let cf = ColdStartPredictor::fit(m, &params()).unwrap();
        let (t, i, p) = cf.synth_be_datasets(row, 4.0).unwrap();
        assert_eq!(t.len(), cols);
        assert_eq!(i.len(), cols);
        assert_eq!(p.len(), cols);
        assert!(t.y.iter().all(|&v| v >= 0.0));
        assert!(p.y.iter().all(|&v| v >= 1.0));
        assert!(cf.synth_be_datasets(usize::MAX, 4.0).is_err());
    }

    #[test]
    fn fallback_power_is_pessimistic() {
        let m = ProfileMatrix::build(&spec(), &PowerModel::default(), &params()).unwrap();
        let row = m.app_row("raytrace").unwrap();
        let (_, _, p) = fallback_be_datasets(&m, row, 4.0).unwrap();
        // The column-max power prior must overestimate raytrace's true
        // power on (almost) every column.
        let over = m
            .configs()
            .iter()
            .enumerate()
            .filter(|&(c, _)| p.y[c] >= m.truth(ScoreMetric::Power, row, c))
            .count();
        assert!(
            over as f64 >= 0.95 * m.configs().len() as f64,
            "only {over}/{} columns overestimated",
            m.configs().len()
        );
    }

    #[test]
    fn set_scorer_is_permutation_invariant_and_sane() {
        let s = SetScorer::train(&spec(), &PowerModel::default(), 7).unwrap();
        let a = s.score(&["raytrace", "fluidanimate", "ferret"]);
        let b = s.score(&["ferret", "raytrace", "fluidanimate"]);
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(s.score::<&str>(&[]), 0.0);
        assert_eq!(s.score(&["raytrace"]), 1.0);
        // Scores live in (1, k] for k ≥ 2 mixed sets with σ < 1.
        assert!(a > 1.0 && a <= 3.0, "score {a}");
        // Learned coefficients exist for every base app and are bounded.
        for m in be_apps() {
            let sig = s.sigma(m.params.name).unwrap();
            assert!((0.0..=1.0).contains(&sig), "{}: {sig}", m.params.name);
        }
    }

    #[test]
    fn set_scorer_orders_sets_by_contention() {
        let s = SetScorer::train(&spec(), &PowerModel::default(), 7).unwrap();
        // Low-traffic pair must outscore a high-traffic pair.
        let quiet = s.score(&["swaptions", "blackscholes"]);
        let loud = s.score(&["fluidanimate", "facesim"]);
        assert!(quiet > loud, "quiet {quiet} vs loud {loud}");
        // And the learned σ ordering must follow memory traffic.
        assert!(s.sigma("fluidanimate").unwrap() > s.sigma("swaptions").unwrap());
    }

    #[test]
    fn set_scorer_training_is_deterministic() {
        let a = SetScorer::train(&spec(), &PowerModel::default(), 7).unwrap();
        let b = SetScorer::train(&spec(), &PowerModel::default(), 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_apps_fall_back_to_catalog_sigma() {
        let s = SetScorer::from_sigmas([("raytrace", 0.3)]);
        assert_eq!(s.effective_sigma("raytrace"), 0.3);
        assert_eq!(
            s.effective_sigma("fluidanimate"),
            catalog_sigma("fluidanimate")
        );
        assert_eq!(s.effective_sigma("no-such-app"), 0.25);
    }

    #[test]
    fn params_validation_rejects_bad_controls() {
        assert!(ScoringParams {
            latent_dim: 0,
            ..ScoringParams::default()
        }
        .validate()
        .is_err());
        assert!(ScoringParams {
            mask_fraction: 0.95,
            ..ScoringParams::default()
        }
        .validate()
        .is_err());
        assert!(ScoringParams::default().validate().is_ok());
        let bad = ScoringParams {
            masked_app: Some("nope".into()),
            ..ScoringParams::default()
        };
        assert!(ProfileMatrix::build(&spec(), &PowerModel::default(), &bad).is_err());
    }
}
