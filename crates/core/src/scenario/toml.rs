//! A small TOML reader/writer for scenario manifests.
//!
//! The workspace's serde shim deserializes only into its [`Value`] tree,
//! so manifests are parsed here into that same tree and lowered by hand
//! in [`super`]. The dialect is the subset manifests need — tables,
//! arrays of tables, dotted keys, basic/literal strings, numbers,
//! booleans, arrays and inline tables, with `#` comments — and the
//! writer emits a canonical form [`parse`] reads back verbatim, which is
//! what the serialize→deserialize roundtrip tests pin.
//!
//! Numbers are stored as `f64` (the shim's only numeric type); integers
//! round-trip exactly up to 2^53, ample for every knob a scenario has.

use serde::Value;
use std::fmt;

/// Parse failure, with the 1-based line the parser had reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TOML error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TomlError {}

/// One step of a table path: an object key, or an index into an array
/// of tables (always the last element while parsing).
#[derive(Debug, Clone)]
enum Seg {
    Key(String),
    Idx(usize),
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
    line: usize,
}

/// Parses a TOML document into a [`Value::Object`] tree.
pub fn parse(text: &str) -> Result<Value, TomlError> {
    let mut p = Parser {
        b: text.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut root = Value::Object(Vec::new());
    // Paths of tables introduced by an explicit `[header]`, so duplicate
    // headers are rejected (implicit parents may later be opened once).
    let mut defined: Vec<String> = Vec::new();
    let mut current: Vec<Seg> = Vec::new();

    loop {
        p.skip_blank_lines();
        if p.pos >= p.b.len() {
            break;
        }
        if p.peek() == Some(b'[') {
            p.bump();
            let array = p.peek() == Some(b'[');
            if array {
                p.bump();
            }
            p.skip_spaces();
            let path = p.parse_key_path()?;
            p.skip_spaces();
            p.expect(b']')?;
            if array {
                p.expect(b']')?;
            }
            p.end_of_line()?;
            current = open_table(&mut root, &path, array, &mut defined, p.line)?;
        } else {
            let keys = p.parse_key_path()?;
            p.skip_spaces();
            p.expect(b'=')?;
            p.skip_spaces();
            let value = p.parse_value()?;
            p.end_of_line()?;
            let table = resolve(&mut root, &current, p.line)?;
            insert(table, &keys, value, p.line)?;
        }
    }
    Ok(root)
}

/// Opens `[path]` / `[[path]]` and returns the segments addressing the
/// now-current table.
fn open_table(
    root: &mut Value,
    path: &[String],
    array: bool,
    defined: &mut Vec<String>,
    line: usize,
) -> Result<Vec<Seg>, TomlError> {
    let mut segs: Vec<Seg> = Vec::new();
    for key in &path[..path.len() - 1] {
        segs.push(Seg::Key(key.clone()));
        // Descend through the last element of any array of tables.
        let v = resolve(root, &segs, line)?;
        if let Value::Array(items) = v {
            if items.is_empty() {
                return Err(err(line, format!("`{key}` is an empty array")));
            }
            segs.push(Seg::Idx(items.len() - 1));
        }
    }
    let leaf = path.last().expect("key paths are non-empty");
    let parent = resolve(root, &segs, line)?;
    let Value::Object(fields) = parent else {
        return Err(err(line, "table header inside a non-table".to_string()));
    };
    let slot = fields.iter().position(|(k, _)| k == leaf);
    if array {
        match slot {
            None => {
                fields.push((leaf.clone(), Value::Array(vec![Value::Object(Vec::new())])));
            }
            Some(i) => match &mut fields[i].1 {
                Value::Array(items) if items.iter().all(Value::is_object) => {
                    items.push(Value::Object(Vec::new()));
                }
                _ => {
                    return Err(err(line, format!("`{leaf}` is not an array of tables")));
                }
            },
        }
        segs.push(Seg::Key(leaf.clone()));
        let Value::Array(items) = resolve(root, &segs, line)? else {
            unreachable!("just inserted an array");
        };
        segs.push(Seg::Idx(items.len() - 1));
    } else {
        let full = path.join(".");
        if defined.iter().any(|d| d == &full) {
            return Err(err(line, format!("duplicate table `[{full}]`")));
        }
        defined.push(full);
        match slot {
            None => fields.push((leaf.clone(), Value::Object(Vec::new()))),
            Some(i) if fields[i].1.is_object() => {}
            Some(_) => {
                return Err(err(line, format!("`{leaf}` already holds a value")));
            }
        }
        segs.push(Seg::Key(leaf.clone()));
    }
    Ok(segs)
}

/// Walks `path` from the root, mutably.
fn resolve<'v>(root: &'v mut Value, path: &[Seg], line: usize) -> Result<&'v mut Value, TomlError> {
    let mut cur = root;
    for seg in path {
        cur = match seg {
            Seg::Key(k) => {
                let Value::Object(fields) = cur else {
                    return Err(err(line, format!("`{k}` is not inside a table")));
                };
                match fields.iter().position(|(key, _)| key == k) {
                    Some(i) => &mut fields[i].1,
                    None => {
                        fields.push((k.clone(), Value::Object(Vec::new())));
                        let i = fields.len() - 1;
                        &mut fields[i].1
                    }
                }
            }
            Seg::Idx(i) => {
                let Value::Array(items) = cur else {
                    return Err(err(line, "expected an array of tables".to_string()));
                };
                &mut items[*i]
            }
        };
    }
    Ok(cur)
}

/// Inserts a dotted-key value into a table, creating intermediate
/// tables and rejecting duplicate leaves.
fn insert(table: &mut Value, keys: &[String], value: Value, line: usize) -> Result<(), TomlError> {
    let mut cur = table;
    for key in &keys[..keys.len() - 1] {
        let Value::Object(fields) = cur else {
            return Err(err(line, format!("`{key}` is not a table")));
        };
        match fields.iter().position(|(k, _)| k == key) {
            Some(i) if fields[i].1.is_object() => cur = &mut fields[i].1,
            Some(_) => return Err(err(line, format!("`{key}` already holds a value"))),
            None => {
                fields.push((key.clone(), Value::Object(Vec::new())));
                let i = fields.len() - 1;
                cur = &mut fields[i].1;
            }
        }
    }
    let leaf = keys.last().expect("key paths are non-empty");
    let Value::Object(fields) = cur else {
        return Err(err(line, format!("`{leaf}` is not inside a table")));
    };
    if fields.iter().any(|(k, _)| k == leaf) {
        return Err(err(line, format!("duplicate key `{leaf}`")));
    }
    fields.push((leaf.clone(), value));
    Ok(())
}

fn err(line: usize, message: String) -> TomlError {
    TomlError { line, message }
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            if c == Some(b'\n') {
                self.line += 1;
            }
            self.pos += 1;
        }
        c
    }

    fn fail<T>(&self, message: impl Into<String>) -> Result<T, TomlError> {
        Err(err(self.line, message.into()))
    }

    fn expect(&mut self, c: u8) -> Result<(), TomlError> {
        if self.peek() == Some(c) {
            self.bump();
            Ok(())
        } else {
            self.fail(format!("expected `{}`", c as char))
        }
    }

    /// Spaces and tabs only.
    fn skip_spaces(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.bump();
        }
    }

    /// Whitespace, newlines and `#` comments (between top-level items
    /// and inside arrays).
    fn skip_blank_lines(&mut self) {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => {
                    self.bump();
                }
                Some(b'#') => {
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    /// After a header or key-value: optional comment, then newline/EOF.
    fn end_of_line(&mut self) -> Result<(), TomlError> {
        self.skip_spaces();
        if self.peek() == Some(b'#') {
            while !matches!(self.peek(), None | Some(b'\n')) {
                self.bump();
            }
        }
        match self.peek() {
            None => Ok(()),
            Some(b'\n') => {
                self.bump();
                Ok(())
            }
            Some(b'\r') => {
                self.bump();
                self.expect(b'\n')
            }
            Some(c) => self.fail(format!("unexpected `{}` after value", c as char)),
        }
    }

    fn parse_key_path(&mut self) -> Result<Vec<String>, TomlError> {
        let mut keys = vec![self.parse_key()?];
        loop {
            self.skip_spaces();
            if self.peek() == Some(b'.') {
                self.bump();
                self.skip_spaces();
                keys.push(self.parse_key()?);
            } else {
                return Ok(keys);
            }
        }
    }

    fn parse_key(&mut self) -> Result<String, TomlError> {
        match self.peek() {
            Some(b'"') => self.parse_basic_string(),
            Some(b'\'') => self.parse_literal_string(),
            Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' => {
                let start = self.pos;
                while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'-')
                {
                    self.bump();
                }
                Ok(std::str::from_utf8(&self.b[start..self.pos])
                    .expect("bare keys are ASCII")
                    .to_string())
            }
            _ => self.fail("expected a key"),
        }
    }

    fn parse_value(&mut self) -> Result<Value, TomlError> {
        match self.peek() {
            Some(b'"') => self.parse_basic_string().map(Value::String),
            Some(b'\'') => self.parse_literal_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_inline_table(),
            Some(b't') | Some(b'f') => self.parse_bool(),
            Some(c) if c == b'+' || c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => self.fail("expected a value"),
        }
    }

    fn parse_basic_string(&mut self) -> Result<String, TomlError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None | Some(b'\n') => return self.fail("unterminated string"),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => out.push(self.parse_unicode_escape(4)?),
                    Some(b'U') => out.push(self.parse_unicode_escape(8)?),
                    _ => return self.fail("invalid escape"),
                },
                Some(c) if c < 0x80 => out.push(c as char),
                Some(c) => {
                    // Re-decode the UTF-8 scalar starting at this byte.
                    let start = self.pos - 1;
                    let rest = std::str::from_utf8(&self.b[start..])
                        .map_err(|_| err(self.line, "invalid UTF-8".to_string()))?;
                    let ch = rest.chars().next().expect("non-empty");
                    let _ = c;
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    fn parse_unicode_escape(&mut self, digits: usize) -> Result<char, TomlError> {
        let hex = self
            .b
            .get(self.pos..self.pos + digits)
            .ok_or_else(|| err(self.line, "truncated unicode escape".to_string()))?;
        let code = u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| err(self.line, "bad escape".to_string()))?,
            16,
        )
        .map_err(|_| err(self.line, "bad unicode escape".to_string()))?;
        self.pos += digits;
        char::from_u32(code).ok_or_else(|| err(self.line, "bad unicode scalar".to_string()))
    }

    fn parse_literal_string(&mut self) -> Result<String, TomlError> {
        self.expect(b'\'')?;
        let start = self.pos;
        while !matches!(self.peek(), None | Some(b'\'' | b'\n')) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.b[start..self.pos])
            .map_err(|_| err(self.line, "invalid UTF-8".to_string()))?
            .to_string();
        self.expect(b'\'')?;
        Ok(text)
    }

    fn parse_bool(&mut self) -> Result<Value, TomlError> {
        for (lit, v) in [("true", true), ("false", false)] {
            if self.b[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                return Ok(Value::Bool(v));
            }
        }
        self.fail("expected `true` or `false`")
    }

    fn parse_number(&mut self) -> Result<Value, TomlError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit()
                || matches!(c, b'+' | b'-' | b'.' | b'e' | b'E' | b'_')
        ) {
            self.bump();
        }
        let text: String = std::str::from_utf8(&self.b[start..self.pos])
            .expect("number bytes are ASCII")
            .chars()
            .filter(|&c| c != '_')
            .collect();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| err(self.line, format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, TomlError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        loop {
            self.skip_blank_lines();
            if self.peek() == Some(b']') {
                self.bump();
                return Ok(Value::Array(items));
            }
            items.push(self.parse_value()?);
            self.skip_blank_lines();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b']') => {}
                _ => return self.fail("expected `,` or `]`"),
            }
        }
    }

    fn parse_inline_table(&mut self) -> Result<Value, TomlError> {
        self.expect(b'{')?;
        let mut table = Value::Object(Vec::new());
        self.skip_spaces();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(table);
        }
        loop {
            self.skip_spaces();
            let keys = self.parse_key_path()?;
            self.skip_spaces();
            self.expect(b'=')?;
            self.skip_spaces();
            let value = self.parse_value()?;
            insert(&mut table, &keys, value, self.line)?;
            self.skip_spaces();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(table),
                _ => return self.fail("expected `,` or `}`"),
            }
        }
    }
}

/// Renders an object tree as a canonical TOML document: scalar and
/// array keys first, then `[tables]`, then `[[arrays.of.tables]]`,
/// in insertion order. `Null` values are omitted (TOML has no null).
pub fn render(root: &Value) -> String {
    let mut out = String::new();
    if let Value::Object(fields) = root {
        render_table(fields, &mut Vec::new(), &mut out);
    }
    out
}

fn is_table_array(v: &Value) -> bool {
    matches!(v, Value::Array(items) if !items.is_empty() && items.iter().all(Value::is_object))
}

fn render_table(fields: &[(String, Value)], path: &mut Vec<String>, out: &mut String) {
    for (k, v) in fields {
        if !v.is_object() && !is_table_array(v) && !v.is_null() {
            out.push_str(&render_key(k));
            out.push_str(" = ");
            render_inline(v, out);
            out.push('\n');
        }
    }
    for (k, v) in fields {
        if let Value::Object(inner) = v {
            path.push(k.clone());
            out.push_str(&format!("\n[{}]\n", render_path(path)));
            render_table(inner, path, out);
            path.pop();
        }
    }
    for (k, v) in fields {
        if is_table_array(v) {
            if let Value::Array(items) = v {
                path.push(k.clone());
                for item in items {
                    out.push_str(&format!("\n[[{}]]\n", render_path(path)));
                    if let Value::Object(inner) = item {
                        render_table(inner, path, out);
                    }
                }
                path.pop();
            }
        }
    }
}

fn render_path(path: &[String]) -> String {
    path.iter()
        .map(|k| render_key(k))
        .collect::<Vec<_>>()
        .join(".")
}

fn render_key(key: &str) -> String {
    let bare = !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if bare {
        key.to_string()
    } else {
        render_string(key)
    }
}

fn render_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn render_inline(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("\"\""),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Value::String(s) => out.push_str(&render_string(s)),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_inline(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&render_key(k));
                out.push_str(" = ");
                render_inline(val, out);
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_tables_and_arrays() {
        let doc = r#"
# a manifest
name = "smoke"
seed = 42
ratio = 0.35
on = true

[workload]
ls = "memcached"
be = 'raytrace'

[load]
profile = "triangle"
bounds = [0.2, 0.8]

[[region_load]]
profile = "constant"
fraction = 0.4

[[region_load]]
profile = "constant"
fraction = 0.6
"#;
        let v = parse(doc).unwrap();
        assert_eq!(v["name"], "smoke");
        assert_eq!(v["seed"], 42);
        assert_eq!(v["ratio"].as_f64(), Some(0.35));
        assert_eq!(v["on"], true);
        assert_eq!(v["workload"]["ls"], "memcached");
        assert_eq!(v["workload"]["be"], "raytrace");
        assert_eq!(v["load"]["bounds"][1].as_f64(), Some(0.8));
        let regions = v["region_load"].as_array().unwrap();
        assert_eq!(regions.len(), 2);
        assert_eq!(regions[1]["fraction"].as_f64(), Some(0.6));
    }

    #[test]
    fn nested_headers_dotted_keys_and_inline_tables() {
        let doc = "
[load]
profile = \"flash_crowd\"
base.profile = \"diurnal\"
base.low = 0.2
extra = { a = 1, b = \"x\" }

[load.more]
depth = 2
";
        let v = parse(doc).unwrap();
        assert_eq!(v["load"]["base"]["profile"], "diurnal");
        assert_eq!(v["load"]["extra"]["b"], "x");
        assert_eq!(v["load"]["more"]["depth"], 2);
    }

    #[test]
    fn rejects_duplicates_and_garbage() {
        assert!(parse("a = 1\na = 2\n").is_err());
        assert!(parse("[t]\nx = 1\n[t]\ny = 2\n").is_err());
        assert!(parse("a = \n").is_err());
        assert!(parse("a = 1 junk\n").is_err());
        assert!(parse("a = \"unterminated\n").is_err());
        let e = parse("ok = 1\nbad =\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn multiline_arrays_with_comments() {
        let doc = "fracs = [\n  0.2, # twenty\n  0.35,\n  0.8,\n]\n";
        let v = parse(doc).unwrap();
        assert_eq!(v["fracs"].as_array().unwrap().len(), 3);
    }

    #[test]
    fn render_round_trips() {
        let doc = r#"
name = "round-trip"
seed = 42
fracs = [0.2, 0.35]

[workload]
ls = "memcached"

[load]
profile = "failover"
takeover = 0.5

[load.base]
profile = "constant"
fraction = 0.4

[[rows]]
label = "a"
n = 1

[[rows]]
label = "b"
n = 2
"#;
        let v = parse(doc).unwrap();
        let rendered = render(&v);
        let reparsed = parse(&rendered).unwrap();
        assert_eq!(reparsed, v, "render → parse must be the identity");
        // Canonical form is a fixpoint.
        assert_eq!(render(&reparsed), rendered);
    }

    #[test]
    fn underscored_and_signed_numbers() {
        let v = parse("big = 1_000_000\nneg = -3\nexp = 2.5e3\n").unwrap();
        assert_eq!(v["big"], 1_000_000);
        assert_eq!(v["neg"], -3);
        assert_eq!(v["exp"].as_f64(), Some(2500.0));
    }
}
