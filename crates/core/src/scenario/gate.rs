//! The regression gate: compares a metrics JSON document against a
//! committed baseline with per-metric tolerances.
//!
//! Deterministic metrics (QoS rates, throughput, counters pinned by the
//! seeded simulation) are held to exact or near-exact equality, while
//! wall-clock-derived metrics get loose multiplicative bands — a CI
//! runner being 4× slower is noise, a QoS rate moving 1% is a
//! regression. The [`compare`] walker aligns objects by key and arrays
//! of objects by row identity, so one baseline file can gate a whole
//! batch of scenario rows, and `--subset` lets a quick smoke run check
//! against a larger committed baseline.

use super::toml;
use crate::error::SturgeonError;
use serde::Value;
use std::fmt;

/// Absolute slack added to every wall-clock band so sub-second
/// baselines (a 2 ms build step) can never flake the gate.
const TIME_SLACK: f64 = 5.0;

/// How far a metric may drift from its baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// Bitwise equality (numbers, strings, booleans).
    Exact,
    /// `|current - baseline| <= r * max(|baseline|, |current|) + 1e-12`.
    Relative(f64),
    /// `current <= baseline * f + 5.0` — for "bigger is worse" timing
    /// metrics. Negative values are missing-data sentinels and pass.
    Ceiling(f64),
    /// `current >= baseline / f - 5.0` — for "smaller is worse"
    /// throughput-rate metrics. Negative values pass (sentinel).
    Floor(f64),
    /// Never gate this metric.
    Ignore,
}

impl fmt::Display for Tolerance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tolerance::Exact => write!(f, "exact"),
            Tolerance::Relative(r) => write!(f, "rel {r}"),
            Tolerance::Ceiling(c) => write!(f, "ceil x{c}"),
            Tolerance::Floor(x) => write!(f, "floor /{x}"),
            Tolerance::Ignore => write!(f, "ignore"),
        }
    }
}

impl Tolerance {
    /// Does `current` stay within this tolerance of `baseline`?
    pub fn accepts(self, baseline: f64, current: f64) -> bool {
        match self {
            Tolerance::Exact => baseline == current,
            Tolerance::Relative(r) => {
                (current - baseline).abs() <= r * baseline.abs().max(current.abs()) + 1e-12
            }
            Tolerance::Ceiling(f) => {
                baseline < 0.0 || current < 0.0 || current <= baseline * f + TIME_SLACK
            }
            Tolerance::Floor(f) => {
                baseline < 0.0 || current < 0.0 || current >= baseline / f - TIME_SLACK
            }
            Tolerance::Ignore => true,
        }
    }
}

/// One `(key pattern, tolerance)` rule. Patterns match the **leaf key**
/// of a metric (not its path) and may contain a single `*` wildcard.
pub type Rule = (String, Tolerance);

fn rule(pattern: &str, tolerance: Tolerance) -> Rule {
    (pattern.to_string(), tolerance)
}

/// The built-in ruleset. First match wins; [`default_rules`] ends with
/// a catch-all `Relative(1e-6)` for numbers, so committed deterministic
/// metrics gate tightly by default.
pub fn default_rules() -> Vec<Rule> {
    let mut rules = Vec::new();
    // Wall-clock-derived metrics: loose multiplicative bands.
    for key in ["wall_s", "build_s", "run_s", "duration_ms", "per_pred_us"] {
        rules.push(rule(key, Tolerance::Ceiling(16.0)));
    }
    rules.push(rule("search_p*_us", Tolerance::Ceiling(16.0)));
    rules.push(rule("node_intervals_per_s", Tolerance::Floor(16.0)));
    rules.push(rule("peak_rss_mib", Tolerance::Ceiling(4.0)));
    // Cache populations can race under parallel exhaustive search.
    for key in ["cache_hits", "cache_misses", "cache_hit_rate"] {
        rules.push(rule(key, Tolerance::Relative(0.1)));
    }
    // Determinism-pinned integer counters and run configuration.
    for key in [
        "seed",
        "intervals",
        "nodes",
        "shards",
        "regions",
        "trainings",
        "table_builds",
        "searches",
        "faults_seen",
        "retries",
        "failed_actuations",
        "stale_intervals",
        "safe_mode_entries",
        "balancer_retry_rounds",
        "budget_reclaims",
        "migrations",
        "evictions",
        "assignments",
        "cells_observed",
        "cells_hidden",
        "cold_start_cells",
        "set_scores",
        "prediction_count",
        "candidates",
        "probe_model_calls",
        "probe_candidates",
    ] {
        rules.push(rule(key, Tolerance::Exact));
    }
    // Everything else numeric is deterministic output: near-exact.
    rules.push(rule("*", Tolerance::Relative(1e-6)));
    rules
}

/// Matches a leaf key against a rule pattern (`*` = any substring,
/// at most one per pattern).
fn pattern_matches(pattern: &str, key: &str) -> bool {
    match pattern.split_once('*') {
        None => pattern == key,
        Some((prefix, suffix)) => {
            key.len() >= prefix.len() + suffix.len()
                && key.starts_with(prefix)
                && key.ends_with(suffix)
        }
    }
}

/// Resolves the tolerance for a leaf key (first matching rule wins;
/// no match → `Exact`).
pub fn tolerance_for(rules: &[Rule], key: &str) -> Tolerance {
    rules
        .iter()
        .find(|(p, _)| pattern_matches(p, key))
        .map(|&(_, t)| t)
        .unwrap_or(Tolerance::Exact)
}

/// Parses a tolerance-override file: a TOML document whose
/// `[tolerances]` table maps key patterns to either a string
/// (`"exact"` / `"ignore"`) or an inline table (`{ rel = 0.05 }`,
/// `{ ceiling = 8 }`, `{ floor = 8 }`). Overrides are prepended to
/// [`default_rules`], so they win.
pub fn parse_tolerance_overrides(text: &str) -> Result<Vec<Rule>, SturgeonError> {
    let doc = toml::parse(text)
        .map_err(|e| SturgeonError::setup(format!("tolerance file parse error: {e}")))?;
    let table = match doc.get("tolerances") {
        Some(Value::Object(fields)) => fields,
        Some(_) => {
            return Err(SturgeonError::setup("`[tolerances]` must be a table"));
        }
        None => return Ok(Vec::new()),
    };
    let mut rules = Vec::new();
    for (key, spec) in table {
        let tolerance = match spec {
            Value::String(s) => match s.as_str() {
                "exact" => Tolerance::Exact,
                "ignore" => Tolerance::Ignore,
                other => {
                    return Err(SturgeonError::setup(format!(
                        "unknown tolerance `{other}` for `{key}` (use \"exact\" or \"ignore\")"
                    )));
                }
            },
            Value::Object(_) => {
                let knob = |name: &str| spec.get(name).and_then(Value::as_f64);
                if let Some(r) = knob("rel") {
                    Tolerance::Relative(r)
                } else if let Some(c) = knob("ceiling") {
                    Tolerance::Ceiling(c)
                } else if let Some(f) = knob("floor") {
                    Tolerance::Floor(f)
                } else {
                    return Err(SturgeonError::setup(format!(
                        "tolerance for `{key}` needs `rel`, `ceiling` or `floor`"
                    )));
                }
            }
            _ => {
                return Err(SturgeonError::setup(format!(
                    "tolerance for `{key}` must be a string or inline table"
                )));
            }
        };
        rules.push((key.clone(), tolerance));
    }
    Ok(rules)
}

/// One gate violation, with everything needed for the diff table.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Dotted path of the metric (row key included for array rows).
    pub path: String,
    /// Baseline value, rendered.
    pub baseline: String,
    /// Current value, rendered.
    pub current: String,
    /// The tolerance that was applied.
    pub tolerance: String,
    /// Human-readable cause.
    pub detail: String,
}

/// The outcome of a [`compare`] run.
#[derive(Debug, Default)]
pub struct GateReport {
    /// Metrics compared (leaves visited).
    pub checks: usize,
    /// Violations, in document order.
    pub violations: Vec<Violation>,
    /// Non-fatal notes (skipped baseline rows in subset mode, ignored
    /// metrics, sentinel passes).
    pub notes: Vec<String>,
}

impl GateReport {
    /// True when every compared metric stayed within tolerance.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the readable diff table (empty string when passing and
    /// there are no notes).
    pub fn table(&self) -> String {
        let mut out = String::new();
        if !self.violations.is_empty() {
            out.push_str(&format!(
                "{:<44} {:>16} {:>16} {:>12}  {}\n",
                "metric", "baseline", "current", "tolerance", "detail"
            ));
            for v in &self.violations {
                out.push_str(&format!(
                    "{:<44} {:>16} {:>16} {:>12}  {}\n",
                    v.path, v.baseline, v.current, v.tolerance, v.detail
                ));
            }
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    fn violate(&mut self, path: &str, b: &Value, c: &Value, tol: &str, detail: impl Into<String>) {
        self.violations.push(Violation {
            path: path.to_string(),
            baseline: render_short(b),
            current: render_short(c),
            tolerance: tol.to_string(),
            detail: detail.into(),
        });
    }
}

fn render_short(v: &Value) -> String {
    let s = v.to_string();
    if s.chars().count() > 16 {
        let cut: String = s.chars().take(15).collect();
        format!("{cut}…")
    } else {
        s
    }
}

/// The identity of an array row, for aligning baseline and current
/// batches: a dedicated key field when present, otherwise the composite
/// of its string fields plus the geometry/seed numbers.
fn row_key(v: &Value) -> String {
    if let Value::Object(fields) = v {
        for key in ["label", "scenario", "name"] {
            if let Some(s) = v.get(key).and_then(Value::as_str) {
                return s.to_string();
            }
        }
        let mut parts: Vec<String> = Vec::new();
        for (k, val) in fields {
            if let Value::String(s) = val {
                parts.push(s.clone());
            } else if matches!(k.as_str(), "nodes" | "intervals" | "seed") {
                parts.push(val.to_string());
            }
        }
        if !parts.is_empty() {
            return parts.join("/");
        }
    }
    v.to_string()
}

/// Compares `current` against `baseline` under the given rules.
///
/// With `subset = true`, baseline rows/keys with no counterpart in
/// `current` are noted instead of failing — for gating a quick smoke
/// run against a larger committed baseline. Rows or keys present in
/// `current` but absent from the baseline always fail: new metrics
/// require a re-baseline, not a silent pass.
pub fn compare(baseline: &Value, current: &Value, rules: &[Rule], subset: bool) -> GateReport {
    let mut report = GateReport::default();
    walk(baseline, current, rules, subset, "$", &mut report);
    report
}

fn walk(
    baseline: &Value,
    current: &Value,
    rules: &[Rule],
    subset: bool,
    path: &str,
    report: &mut GateReport,
) {
    match (baseline, current) {
        (Value::Object(b_fields), Value::Object(_)) => {
            for (key, b_val) in b_fields {
                let child = format!("{path}.{key}");
                match current.get(key) {
                    Some(c_val) => walk(b_val, c_val, rules, subset, &child, report),
                    None if subset => report.notes.push(format!("{child}: absent from current")),
                    None => report.violate(
                        &child,
                        b_val,
                        &Value::Null,
                        "presence",
                        "metric missing from current",
                    ),
                }
            }
            if let Value::Object(c_fields) = current {
                for (key, c_val) in c_fields {
                    if baseline.get(key).is_none() {
                        report.violate(
                            &format!("{path}.{key}"),
                            &Value::Null,
                            c_val,
                            "presence",
                            "metric not in baseline (re-baseline to accept)",
                        );
                    }
                }
            }
        }
        (Value::Array(b_rows), Value::Array(c_rows))
            if b_rows.iter().any(|r| matches!(r, Value::Object(_))) =>
        {
            for c_row in c_rows {
                let key = row_key(c_row);
                match b_rows.iter().find(|b| row_key(b) == key) {
                    Some(b_row) => {
                        walk(
                            b_row,
                            c_row,
                            rules,
                            subset,
                            &format!("{path}[{key}]"),
                            report,
                        );
                    }
                    None => report.violate(
                        &format!("{path}[{key}]"),
                        &Value::Null,
                        c_row,
                        "presence",
                        "row not in baseline (re-baseline to accept)",
                    ),
                }
            }
            for b_row in b_rows {
                let key = row_key(b_row);
                if !c_rows.iter().any(|c| row_key(c) == key) {
                    if subset {
                        report
                            .notes
                            .push(format!("{path}[{key}]: baseline row not exercised"));
                    } else {
                        report.violate(
                            &format!("{path}[{key}]"),
                            b_row,
                            &Value::Null,
                            "presence",
                            "baseline row missing from current",
                        );
                    }
                }
            }
        }
        (Value::Array(b_items), Value::Array(c_items)) => {
            if b_items.len() != c_items.len() {
                report.violate(
                    path,
                    baseline,
                    current,
                    "presence",
                    format!("length {} vs {}", b_items.len(), c_items.len()),
                );
                return;
            }
            for (i, (b, c)) in b_items.iter().zip(c_items).enumerate() {
                walk(b, c, rules, subset, &format!("{path}[{i}]"), report);
            }
        }
        _ => leaf(baseline, current, rules, path, report),
    }
}

fn leaf(baseline: &Value, current: &Value, rules: &[Rule], path: &str, report: &mut GateReport) {
    report.checks += 1;
    let key = path.rsplit('.').next().unwrap_or(path);
    let key = key.split('[').next().unwrap_or(key);
    let tol = tolerance_for(rules, key);
    if tol == Tolerance::Ignore {
        return;
    }
    match (baseline, current) {
        (Value::Number(b), Value::Number(c)) => {
            if !tol.accepts(*b, *c) {
                let detail = match tol {
                    Tolerance::Exact => "differs (tolerance: exact)".to_string(),
                    Tolerance::Relative(r) => {
                        let denom = b.abs().max(c.abs()).max(f64::MIN_POSITIVE);
                        format!("drift {:.3e} exceeds rel {r:.0e}", (c - b).abs() / denom)
                    }
                    Tolerance::Ceiling(f) => format!("exceeds {:.3} (x{f} band)", b * f + 5.0),
                    Tolerance::Floor(f) => format!("below {:.3} (/{f} band)", b / f - 5.0),
                    Tolerance::Ignore => unreachable!(),
                };
                report.violate(path, baseline, current, &tol.to_string(), detail);
            }
        }
        _ => {
            // Non-numeric leaves (and type mismatches) compare exactly.
            if baseline != current {
                report.violate(
                    path,
                    baseline,
                    current,
                    "exact",
                    "value differs (non-numeric metrics gate exactly)",
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(json: &str) -> Value {
        serde_json::from_str(json).unwrap()
    }

    #[test]
    fn default_rules_classify_keys() {
        let rules = default_rules();
        assert_eq!(tolerance_for(&rules, "wall_s"), Tolerance::Ceiling(16.0));
        assert_eq!(
            tolerance_for(&rules, "search_p95_us"),
            Tolerance::Ceiling(16.0)
        );
        assert_eq!(
            tolerance_for(&rules, "node_intervals_per_s"),
            Tolerance::Floor(16.0)
        );
        assert_eq!(
            tolerance_for(&rules, "cache_hits"),
            Tolerance::Relative(0.1)
        );
        assert_eq!(tolerance_for(&rules, "safe_mode_entries"), Tolerance::Exact);
        assert_eq!(tolerance_for(&rules, "qos_rate"), Tolerance::Relative(1e-6));
    }

    #[test]
    fn identical_documents_pass() {
        let b = doc(r#"[{"scenario":"s","qos_rate":0.99,"wall_s":3.2,"retries":4}]"#);
        let report = compare(&b, &b, &default_rules(), false);
        assert!(report.passed(), "{}", report.table());
        assert!(report.checks >= 4);
    }

    #[test]
    fn perturbed_metric_fails_with_named_diff() {
        let b = doc(r#"[{"scenario":"s","qos_rate":0.99,"retries":4}]"#);
        let c = doc(r#"[{"scenario":"s","qos_rate":0.90,"retries":4}]"#);
        let report = compare(&b, &c, &default_rules(), false);
        assert!(!report.passed());
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].path.contains("qos_rate"));
        assert!(report.table().contains("qos_rate"));
    }

    #[test]
    fn wall_clock_band_tolerates_slow_runners() {
        let b = doc(r#"{"wall_s": 10.0}"#);
        assert!(compare(&b, &doc(r#"{"wall_s": 40.0}"#), &default_rules(), false).passed());
        assert!(!compare(&b, &doc(r#"{"wall_s": 1000.0}"#), &default_rules(), false).passed());
        // Fast runs never violate a ceiling; negative sentinels pass.
        assert!(compare(&b, &doc(r#"{"wall_s": 0.01}"#), &default_rules(), false).passed());
        let rss = doc(r#"{"peak_rss_mib": -1.0}"#);
        assert!(compare(
            &rss,
            &doc(r#"{"peak_rss_mib": 840.0}"#),
            &default_rules(),
            false
        )
        .passed());
    }

    #[test]
    fn exact_counters_reject_off_by_one() {
        let b = doc(r#"{"safe_mode_entries": 3}"#);
        let c = doc(r#"{"safe_mode_entries": 4}"#);
        assert!(!compare(&b, &c, &default_rules(), false).passed());
    }

    #[test]
    fn rows_align_by_label_not_position() {
        let b = doc(r#"[{"label":"a","candidates":5},{"label":"b","candidates":7}]"#);
        let c = doc(r#"[{"label":"b","candidates":7},{"label":"a","candidates":5}]"#);
        assert!(compare(&b, &c, &default_rules(), false).passed());
    }

    #[test]
    fn subset_mode_skips_unexercised_baseline_rows() {
        let b = doc(r#"[{"label":"a","candidates":5},{"label":"b","candidates":7}]"#);
        let c = doc(r#"[{"label":"a","candidates":5}]"#);
        assert!(!compare(&b, &c, &default_rules(), false).passed());
        let report = compare(&b, &c, &default_rules(), true);
        assert!(report.passed(), "{}", report.table());
        assert_eq!(report.notes.len(), 1);
        // A current row unknown to the baseline still fails in subset mode.
        let c2 = doc(r#"[{"label":"zz","candidates":5}]"#);
        assert!(!compare(&b, &c2, &default_rules(), true).passed());
    }

    #[test]
    fn missing_and_extra_keys_fail() {
        let b = doc(r#"{"qos_rate":0.99,"retries":4}"#);
        assert!(!compare(&b, &doc(r#"{"qos_rate":0.99}"#), &default_rules(), false).passed());
        assert!(!compare(
            &b,
            &doc(r#"{"qos_rate":0.99,"retries":4,"shiny":1}"#),
            &default_rules(),
            false
        )
        .passed());
    }

    #[test]
    fn overrides_win_over_defaults() {
        let text = "[tolerances]\nqos_rate = { rel = 0.5 }\nretries = \"ignore\"\n";
        let mut rules = parse_tolerance_overrides(text).unwrap();
        rules.extend(default_rules());
        let b = doc(r#"{"qos_rate":0.99,"retries":4}"#);
        let c = doc(r#"{"qos_rate":0.60,"retries":9}"#);
        assert!(compare(&b, &c, &rules, false).passed());
        assert!(parse_tolerance_overrides("[tolerances]\nx = \"wat\"\n").is_err());
        assert!(parse_tolerance_overrides("[tolerances]\nx = { bogus = 1 }\n").is_err());
    }

    #[test]
    fn composite_row_keys_use_config_fields() {
        let row = doc(
            r#"{"nodes":1000,"intervals":100,"profile":"diurnal","policy":"even","seed":42,"qos_rate":0.96}"#,
        );
        let key = row_key(&row);
        assert!(key.contains("diurnal") && key.contains("even"));
        assert!(key.contains("1000") && key.contains("42"));
    }
}
