//! Scenario manifests: a declarative, TOML-driven description of one
//! benchmark run, lowered onto the exact same [`RunBuilder`]/[`Fleet`]
//! calls the hand-written bins make.
//!
//! The experiment surface (controllers, load-profile algebra, fault
//! plans, search strategies, fleet geometries) outgrew ad-hoc CLI flags;
//! a [`Scenario`] pins all of it in one reviewable file. The contract
//! that makes manifests trustworthy is **bit-identity**: lowering a
//! manifest produces the same controller construction and the same
//! builder chain as the equivalent hand-built run, so the two paths
//! cannot drift apart (pinned by `tests/scenario_roundtrip.rs`).
//!
//! ```toml
//! name = "smoke-node"
//! seed = 42
//! intervals = 120
//!
//! [workload]
//! ls = "memcached"
//! be = "raytrace"
//!
//! [controller]
//! kind = "sturgeon"      # sturgeon|sturgeon-nob|parties|parties-orig|heracles|reserved
//! search = "heuristic"   # heuristic|pruned
//!
//! [load]
//! profile = "triangle"
//! low = 0.2
//! high = 0.8
//! period_s = 120
//! ```
//!
//! [`Scenario::run`] executes the manifest and distills the run into a
//! [`ScenarioMetrics`] row; [`gate`] compares a batch of such rows
//! against a committed baseline with per-metric tolerances — together
//! they turn every `BENCH_*.json` snapshot into a regression gate.
//!
//! [`RunBuilder`]: crate::experiment::RunBuilder

pub mod gate;
pub mod toml;

pub use gate::Tolerance;

use crate::baselines::{PartiesController, PartiesParams, StaticReservationController};
use crate::budget::{BudgetCap, BudgetEvent, BudgetLevel};
use crate::controller::{ControllerParams, ResourceController, SturgeonController};
use crate::dispatch::DispatchPolicy;
use crate::error::SturgeonError;
use crate::experiment::{ActuationPolicy, ColocationPair, ExperimentSetup, RunResult};
use crate::fleet::{Fleet, FleetBudget, FleetParams, FleetResult, TrainingMode};
use crate::heracles::{HeraclesController, HeraclesParams};
use crate::obs::{MetricsRegistry, TraceSink};
use crate::placement::PlacementParams;
use crate::predictor::PerfPowerPredictor;
use crate::scoring::ScoringParams;
use crate::search::{ConfigSearch, SearchParams, SearchStrategy};
use serde::Value;
use std::sync::Arc;
use std::time::Instant;
use sturgeon_simnode::FaultPlan;
use sturgeon_workloads::catalog::{BeAppId, LsServiceId};
use sturgeon_workloads::loadgen::{FailoverRole, LoadProfile};

/// What a scenario drives: one simulated node, or a sharded fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// One [`ExperimentSetup`] run through the builder API.
    Node,
    /// A [`Fleet`] stepped under per-region load profiles.
    Fleet,
}

impl ScenarioKind {
    /// Canonical manifest spelling.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::Node => "node",
            ScenarioKind::Fleet => "fleet",
        }
    }
}

/// Which controller family the scenario evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerKind {
    /// Full Sturgeon (predictor + search + balancer).
    Sturgeon,
    /// Sturgeon with the balancer disabled (§VII-C ablation).
    SturgeonNoB,
    /// Enhanced (power-aware) PARTIES.
    Parties,
    /// Original PARTIES (no power awareness).
    PartiesOrig,
    /// The Heracles-style baseline.
    Heracles,
    /// Static LS-only reservation.
    Reserved,
}

impl ControllerKind {
    /// Canonical manifest spelling (matches the `sturgeon_sim`
    /// `--controller` values).
    pub fn name(self) -> &'static str {
        match self {
            ControllerKind::Sturgeon => "sturgeon",
            ControllerKind::SturgeonNoB => "sturgeon-nob",
            ControllerKind::Parties => "parties",
            ControllerKind::PartiesOrig => "parties-orig",
            ControllerKind::Heracles => "heracles",
            ControllerKind::Reserved => "reserved",
        }
    }

    /// Parses a canonical controller name.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "sturgeon" => ControllerKind::Sturgeon,
            "sturgeon-nob" => ControllerKind::SturgeonNoB,
            "parties" => ControllerKind::Parties,
            "parties-orig" => ControllerKind::PartiesOrig,
            "heracles" => ControllerKind::Heracles,
            "reserved" => ControllerKind::Reserved,
            _ => return None,
        })
    }

    /// True for the two Sturgeon variants (the kinds that train a
    /// predictor and run configuration searches).
    pub fn is_sturgeon(self) -> bool {
        matches!(self, ControllerKind::Sturgeon | ControllerKind::SturgeonNoB)
    }
}

/// The controller section of a manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControllerSpec {
    /// Controller family.
    pub kind: ControllerKind,
    /// Search engine for the Sturgeon kinds (ignored by the baselines).
    pub strategy: SearchStrategy,
    /// Use [`ControllerParams::hardened`] (stale-telemetry detection +
    /// safe mode) instead of the paper defaults. Sturgeon kinds only.
    pub hardened: bool,
}

impl Default for ControllerSpec {
    fn default() -> Self {
        Self {
            kind: ControllerKind::Sturgeon,
            strategy: SearchStrategy::Heuristic,
            hardened: false,
        }
    }
}

/// How a fleet region's dispatcher splits load across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetDispatch {
    /// Uniform split.
    Even,
    /// Latency-aware split from last-interval shard p95 summaries.
    LatencyAware,
}

impl FleetDispatch {
    /// Canonical manifest spelling (matches `fleet_sim --policy`).
    pub fn name(self) -> &'static str {
        match self {
            FleetDispatch::Even => "even",
            FleetDispatch::LatencyAware => "latency",
        }
    }

    /// Parses a canonical dispatch-policy name.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "even" => FleetDispatch::Even,
            "latency" => FleetDispatch::LatencyAware,
            _ => return None,
        })
    }

    /// The core dispatch policy this manifest value lowers to.
    pub fn to_policy(self) -> DispatchPolicy {
        match self {
            FleetDispatch::Even => DispatchPolicy::Even,
            FleetDispatch::LatencyAware => DispatchPolicy::LatencyAware,
        }
    }
}

/// The `[fleet]` section: geometry and training mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetSpec {
    /// Node count.
    pub nodes: usize,
    /// Shard count (0 = auto, one shard per ~256 nodes).
    pub shards: usize,
    /// Region count.
    pub regions: usize,
    /// Shared or per-shard model training.
    pub training: TrainingMode,
    /// Per-region dispatch policy.
    pub dispatch: FleetDispatch,
    /// Keep full telemetry logs for the first N nodes.
    pub sampled_nodes: usize,
}

impl Default for FleetSpec {
    fn default() -> Self {
        Self {
            nodes: 1,
            shards: 0,
            regions: 1,
            training: TrainingMode::Shared,
            dispatch: FleetDispatch::Even,
            sampled_nodes: 0,
        }
    }
}

/// The `[search_probe]` section: after the main run, time the
/// configuration search at fixed load points (the §VII-E overhead
/// accounting, with latency percentiles for the gate).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchProbe {
    /// Load points as fractions of peak QPS.
    pub load_fractions: Vec<f64>,
    /// Repetitions per load point (more reps → stabler percentiles).
    pub reps: u32,
}

/// A fully described benchmark scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (the row key in metrics/baseline JSON).
    pub name: String,
    /// Node or fleet.
    pub kind: ScenarioKind,
    /// RNG seed (environment + profiling).
    pub seed: u64,
    /// One-second control intervals to simulate.
    pub intervals: u32,
    /// The co-location pair.
    pub pair: ColocationPair,
    /// Controller family and knobs.
    pub controller: ControllerSpec,
    /// The load profile (fleet: applied to every region unless
    /// `region_loads` is present).
    pub load: LoadProfile,
    /// Per-region load profiles (fleet only; one per region).
    pub region_loads: Vec<LoadProfile>,
    /// Deterministic fault plan (node only; fleet runs are fault-free).
    pub faults: FaultPlan,
    /// Actuation policy of the node harness.
    pub policy: ActuationPolicy,
    /// Fleet geometry (fleet kind only).
    pub fleet: Option<FleetSpec>,
    /// Power-delivery budget tree and scheduled cap events (fleet only).
    pub budget: Option<FleetBudget>,
    /// Fleet-aware BE placement engine knobs (fleet only).
    pub placement: Option<PlacementParams>,
    /// Cold-start scoring: CF prediction for a masked app and/or the
    /// learned co-runner set scorer (fleet only, shared training).
    pub scoring: Option<ScoringParams>,
    /// Optional search-overhead probe (node Sturgeon kinds only).
    pub probe: Option<SearchProbe>,
}

/// What a scenario run produced: the distilled metrics row plus the raw
/// artifacts for callers that want them (exports, traces).
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// The gate-ready metrics row.
    pub metrics: ScenarioMetrics,
    /// Node scenarios: the full run result.
    pub node: Option<RunResult>,
    /// Fleet scenarios: the fleet result.
    pub fleet: Option<FleetResult>,
}

/// The canonical metrics row emitted by `scenario_run` and compared by
/// the `stats` gate. Field order is the JSON key order.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioMetrics {
    /// Scenario name (the row key).
    pub scenario: String,
    /// `node` or `fleet`.
    pub kind: &'static str,
    /// Pair label.
    pub pair: String,
    /// Controller kind name.
    pub controller: &'static str,
    /// Search strategy name.
    pub search: &'static str,
    /// Load-profile name.
    pub load: String,
    /// RNG seed.
    pub seed: u64,
    /// Intervals simulated.
    pub intervals: u32,
    /// Node count (1 for node scenarios).
    pub nodes: usize,
    /// QoS guarantee rate.
    pub qos_rate: f64,
    /// 95th percentile of per-interval p95 latency (ms). Node runs use
    /// exact order statistics; fleet runs the streamed histogram.
    pub qos_p95_ms: f64,
    /// 99th percentile of per-interval p95 latency (ms).
    pub qos_p99_ms: f64,
    /// Node: mean normalized BE throughput. Fleet: total across nodes.
    pub be_throughput: f64,
    /// Mean power (node) / mean total fleet power (W).
    pub mean_power_w: f64,
    /// Peak observed per-node power (W).
    pub peak_power_w: f64,
    /// Power budget (node budget / summed fleet budget, W).
    pub budget_w: f64,
    /// Fraction of intervals above budget (fleet: mean across nodes).
    pub overload_fraction: f64,
    /// Total injected faults (0 for fault-free and fleet runs).
    pub faults_seen: u64,
    /// Actuation retries spent by the policy.
    pub retries: u64,
    /// Intervals whose configuration change ultimately failed.
    pub failed_actuations: u64,
    /// Intervals the controller judged its telemetry stale.
    pub stale_intervals: u64,
    /// Safe-mode entries.
    pub safe_mode_entries: u64,
    /// Balancer feedback rounds that exhausted every target.
    pub balancer_retry_rounds: u64,
    /// Fleet: offline predictor trainings paid.
    pub trainings: Option<u64>,
    /// Fleet: `ModelTables` builds paid.
    pub table_builds: Option<u64>,
    /// Fleet: configuration searches run across shard controllers.
    pub searches: Option<u64>,
    /// Fleet: budget reclamation passes that changed at least one leaf
    /// cap (present only when the scenario has a `[budget]` table, so
    /// pre-budget baselines stay comparable).
    pub budget_reclaims: Option<u64>,
    /// Fleet: jobs moved between units by the placement engine (present
    /// only with a `[placement]` table).
    pub migrations: Option<u64>,
    /// Fleet: jobs evicted back to the batch queue.
    pub evictions: Option<u64>,
    /// Fleet: queued jobs assigned to a unit.
    pub assignments: Option<u64>,
    /// Scoring: observed profile-matrix cells (present only with a
    /// `[scoring]` table, so pre-scoring baselines stay comparable).
    pub cells_observed: Option<u64>,
    /// Scoring: masked profile-matrix cells.
    pub cells_hidden: Option<u64>,
    /// Scoring: hidden cells the CF predictor filled for the masked app.
    pub cold_start_cells: Option<u64>,
    /// Scoring: learned set-scorer evaluations at placement boundaries.
    pub set_scores: Option<u64>,
    /// Scoring: held-out throughput RMSE of the CF fit.
    pub rmse_heldout: Option<f64>,
    /// Probe: median search latency (µs).
    pub search_p50_us: Option<f64>,
    /// Probe: 95th-percentile search latency (µs).
    pub search_p95_us: Option<f64>,
    /// Probe: 99th-percentile search latency (µs).
    pub search_p99_us: Option<f64>,
    /// Probe: prediction queries across all probe searches (stable with
    /// caching on or off — the deterministic measure of search work).
    pub probe_model_calls: Option<u64>,
    /// Probe: candidate configurations fully evaluated.
    pub probe_candidates: Option<u64>,
    /// Wall-clock for the whole scenario (build + run + probe, s).
    pub wall_s: f64,
}

impl ScenarioMetrics {
    /// The row as an ordered JSON object ( `None` fields omitted).
    pub fn to_value(&self) -> Value {
        let mut f: Vec<(String, Value)> = Vec::new();
        let s = |v: &str| Value::String(v.to_string());
        f.push(("scenario".into(), s(&self.scenario)));
        f.push(("kind".into(), s(self.kind)));
        f.push(("pair".into(), s(&self.pair)));
        f.push(("controller".into(), s(self.controller)));
        f.push(("search".into(), s(self.search)));
        f.push(("load".into(), s(&self.load)));
        f.push(("seed".into(), Value::Number(self.seed as f64)));
        f.push(("intervals".into(), Value::Number(self.intervals as f64)));
        f.push(("nodes".into(), Value::Number(self.nodes as f64)));
        f.push(("qos_rate".into(), Value::Number(self.qos_rate)));
        f.push(("qos_p95_ms".into(), Value::Number(self.qos_p95_ms)));
        f.push(("qos_p99_ms".into(), Value::Number(self.qos_p99_ms)));
        f.push(("be_throughput".into(), Value::Number(self.be_throughput)));
        f.push(("mean_power_w".into(), Value::Number(self.mean_power_w)));
        f.push(("peak_power_w".into(), Value::Number(self.peak_power_w)));
        f.push(("budget_w".into(), Value::Number(self.budget_w)));
        f.push((
            "overload_fraction".into(),
            Value::Number(self.overload_fraction),
        ));
        let counters = [
            ("faults_seen", self.faults_seen),
            ("retries", self.retries),
            ("failed_actuations", self.failed_actuations),
            ("stale_intervals", self.stale_intervals),
            ("safe_mode_entries", self.safe_mode_entries),
            ("balancer_retry_rounds", self.balancer_retry_rounds),
        ];
        for (k, v) in counters {
            f.push((k.into(), Value::Number(v as f64)));
        }
        let opt_counters = [
            ("trainings", self.trainings),
            ("table_builds", self.table_builds),
            ("searches", self.searches),
            ("budget_reclaims", self.budget_reclaims),
            ("migrations", self.migrations),
            ("evictions", self.evictions),
            ("assignments", self.assignments),
            ("cells_observed", self.cells_observed),
            ("cells_hidden", self.cells_hidden),
            ("cold_start_cells", self.cold_start_cells),
            ("set_scores", self.set_scores),
            ("probe_model_calls", self.probe_model_calls),
            ("probe_candidates", self.probe_candidates),
        ];
        for (k, v) in opt_counters {
            if let Some(v) = v {
                f.push((k.into(), Value::Number(v as f64)));
            }
        }
        let opt_floats = [
            ("rmse_heldout", self.rmse_heldout),
            ("search_p50_us", self.search_p50_us),
            ("search_p95_us", self.search_p95_us),
            ("search_p99_us", self.search_p99_us),
        ];
        for (k, v) in opt_floats {
            if let Some(v) = v {
                f.push((k.into(), Value::Number(v)));
            }
        }
        f.push(("wall_s".into(), Value::Number(self.wall_s)));
        Value::Object(f)
    }
}

/// Serializes a batch of metrics rows as the pretty JSON array the
/// `stats` gate consumes.
pub fn metrics_json(rows: &[ScenarioMetrics]) -> String {
    let array = Value::Array(rows.iter().map(ScenarioMetrics::to_value).collect());
    serde_json::to_string_pretty(&array).expect("metrics rows always serialize")
}

// ---------------------------------------------------------------------
// Shared CLI-name parsing (also used by sturgeon_sim / fleet_sim).
// ---------------------------------------------------------------------

/// Parses an LS service by its canonical name.
pub fn parse_ls(s: &str) -> Option<LsServiceId> {
    LsServiceId::all().into_iter().find(|id| id.name() == s)
}

/// Parses a BE app by name or paper abbreviation.
pub fn parse_be(s: &str) -> Option<BeAppId> {
    BeAppId::all()
        .into_iter()
        .find(|id| id.name() == s || id.abbrev() == s)
}

/// Parses a search strategy (`heuristic` / `pruned`).
pub fn parse_search_strategy(s: &str) -> Option<SearchStrategy> {
    Some(match s {
        "heuristic" => SearchStrategy::Heuristic,
        "pruned" => SearchStrategy::FrontierPruned,
        _ => return None,
    })
}

/// Canonical name of a search strategy.
pub fn search_strategy_name(s: SearchStrategy) -> &'static str {
    match s {
        SearchStrategy::Heuristic => "heuristic",
        SearchStrategy::FrontierPruned => "pruned",
    }
}

/// Parses a fleet training mode (`shared` / `per-node`).
pub fn parse_training(s: &str) -> Option<TrainingMode> {
    Some(match s {
        "shared" => TrainingMode::Shared,
        "per-node" => TrainingMode::PerNode,
        _ => return None,
    })
}

/// Canonical name of a training mode.
pub fn training_name(t: TrainingMode) -> &'static str {
    match t {
        TrainingMode::Shared => "shared",
        TrainingMode::PerNode => "per-node",
    }
}

/// The `sturgeon_sim --load` profiles, exactly as the CLI has always
/// built them.
pub fn cli_load_profile(name: &str, fraction: f64, duration_s: u32) -> Option<LoadProfile> {
    Some(match name {
        "triangle" => LoadProfile::paper_fluctuating(duration_s as f64),
        "constant" => LoadProfile::Constant { fraction },
        "ramp" => LoadProfile::Ramp {
            from: 0.2,
            to: fraction.max(0.2),
            duration_s: duration_s as f64,
        },
        "diurnal" => LoadProfile::Diurnal {
            low: 0.15,
            high: fraction.max(0.2),
            day_s: duration_s as f64,
        },
        _ => return None,
    })
}

/// The `sturgeon_sim --faults` presets, exactly as the CLI has always
/// built them.
pub fn cli_fault_plan(name: &str, seed: u64) -> Option<FaultPlan> {
    Some(match name {
        "none" => FaultPlan::none(seed),
        "telemetry" => FaultPlan::telemetry_dropout(seed, 0.1),
        "actuation" => FaultPlan::actuation_faults(seed, 0.2),
        "shocks" => FaultPlan::shocks(seed, 0.1),
        "everything" => FaultPlan::everything(seed),
        _ => return None,
    })
}

/// The per-region load profiles for a named `fleet_sim` scenario,
/// exactly as the CLI has always built them. `failover` needs at least
/// two regions (region 0 fails, the rest absorb its traffic).
pub fn regional_profiles(
    name: &str,
    fraction: f64,
    intervals: u32,
    regions: usize,
) -> Option<Vec<LoadProfile>> {
    let day = intervals as f64;
    let base = match name {
        "constant" => LoadProfile::Constant { fraction },
        "triangle" => LoadProfile::paper_fluctuating(day),
        "diurnal" => LoadProfile::Diurnal {
            low: 0.2,
            high: 0.8,
            day_s: day,
        },
        "flash" => LoadProfile::FlashCrowd {
            base: Box::new(LoadProfile::Diurnal {
                low: 0.2,
                high: 0.6,
                day_s: day,
            }),
            at_s: day * 0.25,
            ramp_s: day * 0.05,
            hold_s: day * 0.10,
            decay_s: day * 0.10,
            magnitude: 1.8,
        },
        "failover" => {
            if regions < 2 {
                return None;
            }
            let steady = LoadProfile::Constant { fraction: 0.4 };
            let takeover = 1.0 / (regions - 1) as f64;
            let mut out = vec![LoadProfile::Failover {
                base: Box::new(steady.clone()),
                at_s: day * 0.3,
                outage_s: day * 0.3,
                takeover,
                role: FailoverRole::Failing,
            }];
            for _ in 1..regions {
                out.push(LoadProfile::Failover {
                    base: Box::new(steady.clone()),
                    at_s: day * 0.3,
                    outage_s: day * 0.3,
                    takeover,
                    role: FailoverRole::Survivor,
                });
            }
            return Some(out);
        }
        _ => return None,
    };
    Some(vec![base; regions])
}

// ---------------------------------------------------------------------
// Value <-> schema conversion.
// ---------------------------------------------------------------------

fn bad(msg: impl Into<String>) -> SturgeonError {
    SturgeonError::setup(msg)
}

fn fields<'v>(v: &'v Value, ctx: &str) -> Result<&'v Vec<(String, Value)>, SturgeonError> {
    match v {
        Value::Object(f) => Ok(f),
        _ => Err(bad(format!("`{ctx}` must be a table"))),
    }
}

fn check_keys(v: &Value, allowed: &[&str], ctx: &str) -> Result<(), SturgeonError> {
    for (k, _) in fields(v, ctx)? {
        if !allowed.contains(&k.as_str()) {
            return Err(bad(format!(
                "unknown key `{k}` in `{ctx}` (allowed: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

fn str_key<'v>(v: &'v Value, key: &str, ctx: &str) -> Result<Option<&'v str>, SturgeonError> {
    match v.get(key) {
        None => Ok(None),
        Some(s) => s
            .as_str()
            .map(Some)
            .ok_or_else(|| bad(format!("`{ctx}.{key}` must be a string"))),
    }
}

fn f64_key(v: &Value, key: &str, ctx: &str) -> Result<Option<f64>, SturgeonError> {
    match v.get(key) {
        None => Ok(None),
        Some(n) => n
            .as_f64()
            .map(Some)
            .ok_or_else(|| bad(format!("`{ctx}.{key}` must be a number"))),
    }
}

fn req_f64(v: &Value, key: &str, ctx: &str) -> Result<f64, SturgeonError> {
    f64_key(v, key, ctx)?.ok_or_else(|| bad(format!("`{ctx}` needs a `{key}` number")))
}

fn u64_key(v: &Value, key: &str, ctx: &str) -> Result<Option<u64>, SturgeonError> {
    match f64_key(v, key, ctx)? {
        None => Ok(None),
        Some(n) if n >= 0.0 && n.fract() == 0.0 && n <= 9.0e15 => Ok(Some(n as u64)),
        Some(_) => Err(bad(format!(
            "`{ctx}.{key}` must be a non-negative integer below 2^53"
        ))),
    }
}

fn bool_key(v: &Value, key: &str, ctx: &str) -> Result<Option<bool>, SturgeonError> {
    match v.get(key) {
        None => Ok(None),
        Some(b) => b
            .as_bool()
            .map(Some)
            .ok_or_else(|| bad(format!("`{ctx}.{key}` must be a boolean"))),
    }
}

/// Parses one `[[budget.event]]` table: `at_s`, `level`, `index`, and
/// exactly one of `cap_w` (absolute watts) or `cap_frac` (fraction of
/// the element's nominal cap).
fn budget_event_from_value(v: &Value) -> Result<BudgetEvent, SturgeonError> {
    check_keys(
        v,
        &["at_s", "level", "index", "cap_w", "cap_frac"],
        "budget.event",
    )?;
    let at_s = f64_key(v, "at_s", "budget.event")?
        .ok_or_else(|| bad("`budget.event` needs an `at_s` timestamp"))?;
    if !at_s.is_finite() || at_s < 0.0 {
        return Err(bad("`budget.event.at_s` must be >= 0"));
    }
    let level = match str_key(v, "level", "budget.event")? {
        None => BudgetLevel::Datacenter,
        Some(l) => BudgetLevel::parse(l).ok_or_else(|| {
            bad(format!(
                "unknown budget level `{l}` (node/rack/row/datacenter)"
            ))
        })?,
    };
    let index = u64_key(v, "index", "budget.event")?.unwrap_or(0) as usize;
    let cap = match (
        f64_key(v, "cap_w", "budget.event")?,
        f64_key(v, "cap_frac", "budget.event")?,
    ) {
        (Some(w), None) => {
            if !w.is_finite() || w < 0.0 {
                return Err(bad("`budget.event.cap_w` must be >= 0"));
            }
            BudgetCap::Watts(w)
        }
        (None, Some(frac)) => {
            if !frac.is_finite() || frac < 0.0 {
                return Err(bad("`budget.event.cap_frac` must be >= 0"));
            }
            BudgetCap::FractionOfNominal(frac)
        }
        (None, None) => return Err(bad("`budget.event` needs `cap_w` or `cap_frac`")),
        (Some(_), Some(_)) => {
            return Err(bad("`budget.event` takes `cap_w` or `cap_frac`, not both"))
        }
    };
    Ok(BudgetEvent {
        at_s,
        level,
        index,
        cap,
    })
}

/// The canonical `[[budget.event]]` table (inverse of
/// [`budget_event_from_value`]).
fn budget_event_to_value(e: &BudgetEvent) -> Value {
    let mut f: Vec<(String, Value)> = vec![
        ("at_s".into(), Value::Number(e.at_s)),
        ("level".into(), Value::String(e.level.as_str().to_string())),
        ("index".into(), Value::Number(e.index as f64)),
    ];
    match e.cap {
        BudgetCap::Watts(w) => f.push(("cap_w".into(), Value::Number(w))),
        BudgetCap::FractionOfNominal(frac) => f.push(("cap_frac".into(), Value::Number(frac))),
    }
    Value::Object(f)
}

/// Converts a load profile into its manifest table.
pub fn load_to_value(p: &LoadProfile) -> Value {
    let mut f: Vec<(String, Value)> = vec![("profile".into(), Value::String(p.name().to_string()))];
    let n = |fields: &mut Vec<(String, Value)>, k: &str, v: f64| {
        fields.push((k.to_string(), Value::Number(v)));
    };
    match p {
        LoadProfile::Constant { fraction } => n(&mut f, "fraction", *fraction),
        LoadProfile::Ramp {
            from,
            to,
            duration_s,
        } => {
            n(&mut f, "from", *from);
            n(&mut f, "to", *to);
            n(&mut f, "duration_s", *duration_s);
        }
        LoadProfile::Triangle {
            low,
            high,
            period_s,
        } => {
            n(&mut f, "low", *low);
            n(&mut f, "high", *high);
            n(&mut f, "period_s", *period_s);
        }
        LoadProfile::Diurnal { low, high, day_s } => {
            n(&mut f, "low", *low);
            n(&mut f, "high", *high);
            n(&mut f, "day_s", *day_s);
        }
        LoadProfile::Step {
            before,
            after,
            at_s,
        } => {
            n(&mut f, "before", *before);
            n(&mut f, "after", *after);
            n(&mut f, "at_s", *at_s);
        }
        LoadProfile::Trace { samples, dt_s } => {
            f.push((
                "samples".into(),
                Value::Array(samples.iter().map(|&s| Value::Number(s)).collect()),
            ));
            n(&mut f, "dt_s", *dt_s);
        }
        LoadProfile::FlashCrowd {
            base,
            at_s,
            ramp_s,
            hold_s,
            decay_s,
            magnitude,
        } => {
            n(&mut f, "at_s", *at_s);
            n(&mut f, "ramp_s", *ramp_s);
            n(&mut f, "hold_s", *hold_s);
            n(&mut f, "decay_s", *decay_s);
            n(&mut f, "magnitude", *magnitude);
            f.push(("base".into(), load_to_value(base)));
        }
        LoadProfile::Failover {
            base,
            at_s,
            outage_s,
            takeover,
            role,
        } => {
            n(&mut f, "at_s", *at_s);
            n(&mut f, "outage_s", *outage_s);
            n(&mut f, "takeover", *takeover);
            f.push((
                "role".into(),
                Value::String(
                    match role {
                        FailoverRole::Failing => "failing",
                        FailoverRole::Survivor => "survivor",
                    }
                    .to_string(),
                ),
            ));
            f.push(("base".into(), load_to_value(base)));
        }
    }
    Value::Object(f)
}

/// Parses a load-profile table (the inverse of [`load_to_value`]).
pub fn load_from_value(v: &Value) -> Result<LoadProfile, SturgeonError> {
    let ctx = "load";
    let profile =
        str_key(v, "profile", ctx)?.ok_or_else(|| bad("`load` needs a `profile` name"))?;
    let p = match profile {
        "constant" => {
            check_keys(v, &["profile", "fraction"], ctx)?;
            LoadProfile::Constant {
                fraction: req_f64(v, "fraction", ctx)?,
            }
        }
        "ramp" => {
            check_keys(v, &["profile", "from", "to", "duration_s"], ctx)?;
            LoadProfile::Ramp {
                from: req_f64(v, "from", ctx)?,
                to: req_f64(v, "to", ctx)?,
                duration_s: req_f64(v, "duration_s", ctx)?,
            }
        }
        "triangle" => {
            check_keys(v, &["profile", "low", "high", "period_s"], ctx)?;
            LoadProfile::Triangle {
                low: req_f64(v, "low", ctx)?,
                high: req_f64(v, "high", ctx)?,
                period_s: req_f64(v, "period_s", ctx)?,
            }
        }
        "diurnal" => {
            check_keys(v, &["profile", "low", "high", "day_s"], ctx)?;
            LoadProfile::Diurnal {
                low: req_f64(v, "low", ctx)?,
                high: req_f64(v, "high", ctx)?,
                day_s: req_f64(v, "day_s", ctx)?,
            }
        }
        "step" => {
            check_keys(v, &["profile", "before", "after", "at_s"], ctx)?;
            LoadProfile::Step {
                before: req_f64(v, "before", ctx)?,
                after: req_f64(v, "after", ctx)?,
                at_s: req_f64(v, "at_s", ctx)?,
            }
        }
        "trace" => {
            check_keys(v, &["profile", "samples", "dt_s"], ctx)?;
            let samples = v
                .get("samples")
                .and_then(Value::as_array)
                .ok_or_else(|| bad("`load.samples` must be an array of numbers"))?
                .iter()
                .map(|s| {
                    s.as_f64()
                        .ok_or_else(|| bad("`load.samples` must be an array of numbers"))
                })
                .collect::<Result<Vec<f64>, _>>()?;
            LoadProfile::Trace {
                samples,
                dt_s: req_f64(v, "dt_s", ctx)?,
            }
        }
        "flash_crowd" => {
            check_keys(
                v,
                &[
                    "profile",
                    "base",
                    "at_s",
                    "ramp_s",
                    "hold_s",
                    "decay_s",
                    "magnitude",
                ],
                ctx,
            )?;
            let base = v
                .get("base")
                .ok_or_else(|| bad("`load` profile flash_crowd needs a `base` table"))?;
            LoadProfile::FlashCrowd {
                base: Box::new(load_from_value(base)?),
                at_s: req_f64(v, "at_s", ctx)?,
                ramp_s: req_f64(v, "ramp_s", ctx)?,
                hold_s: req_f64(v, "hold_s", ctx)?,
                decay_s: req_f64(v, "decay_s", ctx)?,
                magnitude: req_f64(v, "magnitude", ctx)?,
            }
        }
        "failover" => {
            check_keys(
                v,
                &["profile", "base", "at_s", "outage_s", "takeover", "role"],
                ctx,
            )?;
            let base = v
                .get("base")
                .ok_or_else(|| bad("`load` profile failover needs a `base` table"))?;
            let role = match str_key(v, "role", ctx)? {
                Some("failing") => FailoverRole::Failing,
                Some("survivor") => FailoverRole::Survivor,
                _ => return Err(bad("`load.role` must be \"failing\" or \"survivor\"")),
            };
            LoadProfile::Failover {
                base: Box::new(load_from_value(base)?),
                at_s: req_f64(v, "at_s", ctx)?,
                outage_s: req_f64(v, "outage_s", ctx)?,
                takeover: req_f64(v, "takeover", ctx)?,
                role,
            }
        }
        other => return Err(bad(format!("unknown load profile `{other}`"))),
    };
    Ok(p)
}

/// Converts a fault plan into its manifest table (always the explicit
/// per-field form — presets are parse-time sugar).
pub fn faults_to_value(p: &FaultPlan) -> Value {
    let n = |v: f64| Value::Number(v);
    Value::Object(vec![
        ("seed".into(), Value::Number(p.seed as f64)),
        ("telemetry_noise_rate".into(), n(p.telemetry_noise_rate)),
        ("telemetry_noise_frac".into(), n(p.telemetry_noise_frac)),
        ("telemetry_dropout_rate".into(), n(p.telemetry_dropout_rate)),
        ("actuation_stuck_rate".into(), n(p.actuation_stuck_rate)),
        (
            "actuation_transient_rate".into(),
            n(p.actuation_transient_rate),
        ),
        ("actuation_partial_rate".into(), n(p.actuation_partial_rate)),
        ("qps_spike_rate".into(), n(p.qps_spike_rate)),
        ("qps_spike_mult".into(), n(p.qps_spike_mult)),
        ("budget_cut_rate".into(), n(p.budget_cut_rate)),
        ("budget_cut_frac".into(), n(p.budget_cut_frac)),
    ])
}

/// Parses a `[faults]` table: either a `preset` (with optional `rate` /
/// `frac` knobs) or the explicit [`FaultPlan`] fields. `default_seed`
/// (the scenario seed) applies when no `seed` key is present.
pub fn faults_from_value(v: &Value, default_seed: u64) -> Result<FaultPlan, SturgeonError> {
    let ctx = "faults";
    let seed = u64_key(v, "seed", ctx)?.unwrap_or(default_seed);
    if let Some(preset) = str_key(v, "preset", ctx)? {
        check_keys(v, &["preset", "seed", "rate", "frac"], ctx)?;
        let rate = f64_key(v, "rate", ctx)?;
        let frac = f64_key(v, "frac", ctx)?;
        let plan = match preset {
            "none" => FaultPlan::none(seed),
            "telemetry-noise" => {
                FaultPlan::telemetry_noise(seed, rate.unwrap_or(0.1), frac.unwrap_or(0.25))
            }
            "telemetry-dropout" => FaultPlan::telemetry_dropout(seed, rate.unwrap_or(0.1)),
            "actuation" => FaultPlan::actuation_faults(seed, rate.unwrap_or(0.2)),
            "shocks" => FaultPlan::shocks(seed, rate.unwrap_or(0.1)),
            "everything" => FaultPlan::everything(seed),
            other => return Err(bad(format!("unknown fault preset `{other}`"))),
        };
        return Ok(plan);
    }
    check_keys(
        v,
        &[
            "seed",
            "telemetry_noise_rate",
            "telemetry_noise_frac",
            "telemetry_dropout_rate",
            "actuation_stuck_rate",
            "actuation_transient_rate",
            "actuation_partial_rate",
            "qps_spike_rate",
            "qps_spike_mult",
            "budget_cut_rate",
            "budget_cut_frac",
        ],
        ctx,
    )?;
    let base = FaultPlan::none(seed);
    Ok(FaultPlan {
        seed,
        telemetry_noise_rate: f64_key(v, "telemetry_noise_rate", ctx)?
            .unwrap_or(base.telemetry_noise_rate),
        telemetry_noise_frac: f64_key(v, "telemetry_noise_frac", ctx)?
            .unwrap_or(base.telemetry_noise_frac),
        telemetry_dropout_rate: f64_key(v, "telemetry_dropout_rate", ctx)?
            .unwrap_or(base.telemetry_dropout_rate),
        actuation_stuck_rate: f64_key(v, "actuation_stuck_rate", ctx)?
            .unwrap_or(base.actuation_stuck_rate),
        actuation_transient_rate: f64_key(v, "actuation_transient_rate", ctx)?
            .unwrap_or(base.actuation_transient_rate),
        actuation_partial_rate: f64_key(v, "actuation_partial_rate", ctx)?
            .unwrap_or(base.actuation_partial_rate),
        qps_spike_rate: f64_key(v, "qps_spike_rate", ctx)?.unwrap_or(base.qps_spike_rate),
        qps_spike_mult: f64_key(v, "qps_spike_mult", ctx)?.unwrap_or(base.qps_spike_mult),
        budget_cut_rate: f64_key(v, "budget_cut_rate", ctx)?.unwrap_or(base.budget_cut_rate),
        budget_cut_frac: f64_key(v, "budget_cut_frac", ctx)?.unwrap_or(base.budget_cut_frac),
    })
}

impl Scenario {
    /// Parses a manifest document.
    pub fn from_toml_str(text: &str) -> Result<Self, SturgeonError> {
        let value = toml::parse(text).map_err(|e| bad(format!("manifest parse error: {e}")))?;
        Self::from_value(&value)
    }

    /// Reads and parses a manifest file.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, SturgeonError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| bad(format!("cannot read manifest {}: {e}", path.display())))?;
        Self::from_toml_str(&text).map_err(|e| bad(format!("manifest {}: {e}", path.display())))
    }

    /// Lowers a parsed manifest tree into a validated scenario.
    pub fn from_value(v: &Value) -> Result<Self, SturgeonError> {
        check_keys(
            v,
            &[
                "name",
                "kind",
                "seed",
                "intervals",
                "workload",
                "controller",
                "load",
                "region_load",
                "faults",
                "policy",
                "fleet",
                "budget",
                "placement",
                "scoring",
                "search_probe",
            ],
            "manifest",
        )?;
        let name = str_key(v, "name", "manifest")?
            .ok_or_else(|| bad("manifest needs a `name`"))?
            .to_string();
        let seed = u64_key(v, "seed", "manifest")?.unwrap_or(42);
        let intervals = u64_key(v, "intervals", "manifest")?.unwrap_or(600) as u32;
        if intervals == 0 {
            return Err(bad("`intervals` must be at least 1"));
        }

        let workload = v
            .get("workload")
            .ok_or_else(|| bad("manifest needs a `[workload]` table"))?;
        check_keys(workload, &["ls", "be"], "workload")?;
        let ls =
            str_key(workload, "ls", "workload")?.ok_or_else(|| bad("`[workload]` needs `ls`"))?;
        let be =
            str_key(workload, "be", "workload")?.ok_or_else(|| bad("`[workload]` needs `be`"))?;
        let pair = ColocationPair::new(
            parse_ls(ls).ok_or_else(|| bad(format!("unknown LS service `{ls}`")))?,
            parse_be(be).ok_or_else(|| bad(format!("unknown BE app `{be}`")))?,
        );

        let controller = match v.get("controller") {
            None => ControllerSpec::default(),
            Some(c) => {
                check_keys(c, &["kind", "search", "hardened"], "controller")?;
                let kind = match str_key(c, "kind", "controller")? {
                    None => ControllerKind::Sturgeon,
                    Some(k) => ControllerKind::parse(k)
                        .ok_or_else(|| bad(format!("unknown controller kind `{k}`")))?,
                };
                let strategy = match str_key(c, "search", "controller")? {
                    None => SearchStrategy::Heuristic,
                    Some(s) => parse_search_strategy(s)
                        .ok_or_else(|| bad(format!("unknown search strategy `{s}`")))?,
                };
                ControllerSpec {
                    kind,
                    strategy,
                    hardened: bool_key(c, "hardened", "controller")?.unwrap_or(false),
                }
            }
        };

        let load = match v.get("load") {
            None => LoadProfile::paper_fluctuating(intervals as f64),
            Some(l) => load_from_value(l)?,
        };
        let region_loads = match v.get("region_load") {
            None => Vec::new(),
            Some(Value::Array(items)) => items
                .iter()
                .map(load_from_value)
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err(bad("`region_load` must be an array of tables")),
        };

        let faults = match v.get("faults") {
            None => FaultPlan::none(seed),
            Some(f) => faults_from_value(f, seed)?,
        };

        let policy = match v.get("policy") {
            None => ActuationPolicy::hardened(),
            Some(p) => {
                check_keys(p, &["hardened", "max_retries", "verify"], "policy")?;
                let mut policy = match bool_key(p, "hardened", "policy")? {
                    None | Some(true) => ActuationPolicy::hardened(),
                    Some(false) => ActuationPolicy::unhardened(),
                };
                if let Some(r) = u64_key(p, "max_retries", "policy")? {
                    policy.max_retries = r as u32;
                }
                if let Some(verify) = bool_key(p, "verify", "policy")? {
                    policy.verify = verify;
                }
                policy
            }
        };

        let fleet = match v.get("fleet") {
            None => None,
            Some(f) => {
                check_keys(
                    f,
                    &[
                        "nodes",
                        "shards",
                        "regions",
                        "training",
                        "dispatch",
                        "sampled_nodes",
                    ],
                    "fleet",
                )?;
                let nodes = u64_key(f, "nodes", "fleet")?
                    .ok_or_else(|| bad("`[fleet]` needs a `nodes` count"))?
                    as usize;
                let training = match str_key(f, "training", "fleet")? {
                    None => TrainingMode::Shared,
                    Some(t) => parse_training(t)
                        .ok_or_else(|| bad(format!("unknown training mode `{t}`")))?,
                };
                let dispatch = match str_key(f, "dispatch", "fleet")? {
                    None => FleetDispatch::Even,
                    Some(d) => FleetDispatch::parse(d)
                        .ok_or_else(|| bad(format!("unknown dispatch policy `{d}`")))?,
                };
                Some(FleetSpec {
                    nodes,
                    shards: u64_key(f, "shards", "fleet")?.unwrap_or(0) as usize,
                    regions: u64_key(f, "regions", "fleet")?.unwrap_or(1) as usize,
                    training,
                    dispatch,
                    sampled_nodes: u64_key(f, "sampled_nodes", "fleet")?.unwrap_or(0) as usize,
                })
            }
        };

        let budget = match v.get("budget") {
            None => None,
            Some(b) => {
                check_keys(b, &["rows", "event"], "budget")?;
                let rows = u64_key(b, "rows", "budget")?.unwrap_or(1) as usize;
                if rows == 0 {
                    return Err(bad("`budget.rows` must be at least 1"));
                }
                let events = match b.get("event") {
                    None => Vec::new(),
                    Some(Value::Array(items)) => items
                        .iter()
                        .map(budget_event_from_value)
                        .collect::<Result<Vec<_>, _>>()?,
                    Some(_) => return Err(bad("`budget.event` must be an array of tables")),
                };
                Some(FleetBudget { rows, events })
            }
        };

        let placement = match v.get("placement") {
            None => None,
            Some(p) => {
                check_keys(
                    p,
                    &["interval_s", "be_slots", "max_moves", "sigma"],
                    "placement",
                )?;
                let defaults = PlacementParams::default();
                let params = PlacementParams {
                    interval_s: u64_key(p, "interval_s", "placement")?
                        .unwrap_or(defaults.interval_s as u64)
                        as u32,
                    be_slots: u64_key(p, "be_slots", "placement")?
                        .unwrap_or(defaults.be_slots as u64) as u32,
                    max_moves: u64_key(p, "max_moves", "placement")?
                        .unwrap_or(defaults.max_moves as u64)
                        as usize,
                    sigma: f64_key(p, "sigma", "placement")?.unwrap_or(defaults.sigma),
                };
                if params.interval_s == 0 {
                    return Err(bad("`placement.interval_s` must be at least 1"));
                }
                if params.be_slots == 0 {
                    return Err(bad("`placement.be_slots` must be at least 1"));
                }
                if !(0.0..=1.0).contains(&params.sigma) {
                    return Err(bad("`placement.sigma` must be in [0, 1]"));
                }
                Some(params)
            }
        };

        let scoring = match v.get("scoring") {
            None => None,
            Some(s) => {
                check_keys(
                    s,
                    &[
                        "cold_start",
                        "fallback",
                        "set_scorer",
                        "latent_dim",
                        "mask_fraction",
                        "masked_app",
                        "seed",
                    ],
                    "scoring",
                )?;
                let d = ScoringParams::default();
                let params = ScoringParams {
                    cold_start: bool_key(s, "cold_start", "scoring")?.unwrap_or(d.cold_start),
                    fallback: bool_key(s, "fallback", "scoring")?.unwrap_or(d.fallback),
                    set_scorer: bool_key(s, "set_scorer", "scoring")?.unwrap_or(d.set_scorer),
                    latent_dim: u64_key(s, "latent_dim", "scoring")?
                        .map_or(d.latent_dim, |v| v as usize),
                    mask_fraction: f64_key(s, "mask_fraction", "scoring")?
                        .unwrap_or(d.mask_fraction),
                    masked_app: str_key(s, "masked_app", "scoring")?.map(str::to_string),
                    seed: u64_key(s, "seed", "scoring")?.unwrap_or(d.seed),
                };
                params.validate()?;
                Some(params)
            }
        };

        let kind = match str_key(v, "kind", "manifest")? {
            None => {
                if fleet.is_some() {
                    ScenarioKind::Fleet
                } else {
                    ScenarioKind::Node
                }
            }
            Some("node") => ScenarioKind::Node,
            Some("fleet") => ScenarioKind::Fleet,
            Some(other) => return Err(bad(format!("unknown scenario kind `{other}`"))),
        };

        let probe = match v.get("search_probe") {
            None => None,
            Some(p) => {
                check_keys(p, &["load_fractions", "reps"], "search_probe")?;
                let fractions = p
                    .get("load_fractions")
                    .and_then(Value::as_array)
                    .ok_or_else(|| bad("`[search_probe]` needs a `load_fractions` array"))?
                    .iter()
                    .map(|f| {
                        f.as_f64()
                            .filter(|f| *f > 0.0 && *f <= 1.0)
                            .ok_or_else(|| bad("`load_fractions` must be fractions in (0, 1]"))
                    })
                    .collect::<Result<Vec<f64>, _>>()?;
                if fractions.is_empty() {
                    return Err(bad("`load_fractions` must not be empty"));
                }
                Some(SearchProbe {
                    load_fractions: fractions,
                    reps: u64_key(p, "reps", "search_probe")?.unwrap_or(3) as u32,
                })
            }
        };

        let scenario = Self {
            name,
            kind,
            seed,
            intervals,
            pair,
            controller,
            load,
            region_loads,
            faults,
            policy,
            fleet,
            budget,
            placement,
            scoring,
            probe,
        };
        scenario.validate()?;
        Ok(scenario)
    }

    /// Cross-field validation (also run by [`Scenario::from_value`]).
    pub fn validate(&self) -> Result<(), SturgeonError> {
        match self.kind {
            ScenarioKind::Node => {
                if self.fleet.is_some() {
                    return Err(bad("a node scenario cannot have a `[fleet]` table"));
                }
                if !self.region_loads.is_empty() {
                    return Err(bad("`region_load` is only valid for fleet scenarios"));
                }
                if self.budget.is_some() {
                    return Err(bad("`[budget]` is only valid for fleet scenarios"));
                }
                if self.placement.is_some() {
                    return Err(bad("`[placement]` is only valid for fleet scenarios"));
                }
                if self.scoring.is_some() {
                    return Err(bad("`[scoring]` is only valid for fleet scenarios"));
                }
            }
            ScenarioKind::Fleet => {
                let fleet = self
                    .fleet
                    .as_ref()
                    .ok_or_else(|| bad("a fleet scenario needs a `[fleet]` table"))?;
                if fleet.nodes == 0 {
                    return Err(bad("`fleet.nodes` must be at least 1"));
                }
                if fleet.regions == 0 {
                    return Err(bad("`fleet.regions` must be at least 1"));
                }
                if !self.controller.kind.is_sturgeon() {
                    return Err(bad(
                        "fleet scenarios run Sturgeon controllers (sturgeon / sturgeon-nob)",
                    ));
                }
                if !self.faults.is_zero() {
                    return Err(bad("fleet scenarios do not support fault injection"));
                }
                if self.probe.is_some() {
                    return Err(bad("`[search_probe]` is only valid for node scenarios"));
                }
                if !self.region_loads.is_empty() && self.region_loads.len() != fleet.regions {
                    return Err(bad(format!(
                        "`region_load` has {} entries for {} regions",
                        self.region_loads.len(),
                        fleet.regions
                    )));
                }
                if self.scoring.is_some() && fleet.training != TrainingMode::Shared {
                    return Err(bad(
                        "`[scoring]` requires `fleet.training = \"shared\"` (the CF predictor \
                         is a shared artifact)",
                    ));
                }
            }
        }
        if self.probe.is_some() && !self.controller.kind.is_sturgeon() {
            return Err(bad(
                "`[search_probe]` requires a Sturgeon controller (it probes the search engine)",
            ));
        }
        Ok(())
    }

    /// Serializes the scenario as its canonical manifest tree (the
    /// inverse of [`Scenario::from_value`]).
    pub fn to_value(&self) -> Value {
        let mut f: Vec<(String, Value)> = vec![
            ("name".into(), Value::String(self.name.clone())),
            ("kind".into(), Value::String(self.kind.name().to_string())),
            ("seed".into(), Value::Number(self.seed as f64)),
            ("intervals".into(), Value::Number(self.intervals as f64)),
        ];
        f.push((
            "workload".into(),
            Value::Object(vec![
                ("ls".into(), Value::String(self.pair.ls.name().to_string())),
                ("be".into(), Value::String(self.pair.be.name().to_string())),
            ]),
        ));
        f.push((
            "controller".into(),
            Value::Object(vec![
                (
                    "kind".into(),
                    Value::String(self.controller.kind.name().to_string()),
                ),
                (
                    "search".into(),
                    Value::String(search_strategy_name(self.controller.strategy).to_string()),
                ),
                ("hardened".into(), Value::Bool(self.controller.hardened)),
            ]),
        ));
        f.push(("load".into(), load_to_value(&self.load)));
        f.push(("faults".into(), faults_to_value(&self.faults)));
        f.push((
            "policy".into(),
            Value::Object(vec![
                (
                    "max_retries".into(),
                    Value::Number(self.policy.max_retries as f64),
                ),
                ("verify".into(), Value::Bool(self.policy.verify)),
            ]),
        ));
        if let Some(fleet) = &self.fleet {
            f.push((
                "fleet".into(),
                Value::Object(vec![
                    ("nodes".into(), Value::Number(fleet.nodes as f64)),
                    ("shards".into(), Value::Number(fleet.shards as f64)),
                    ("regions".into(), Value::Number(fleet.regions as f64)),
                    (
                        "training".into(),
                        Value::String(training_name(fleet.training).to_string()),
                    ),
                    (
                        "dispatch".into(),
                        Value::String(fleet.dispatch.name().to_string()),
                    ),
                    (
                        "sampled_nodes".into(),
                        Value::Number(fleet.sampled_nodes as f64),
                    ),
                ]),
            ));
        }
        if !self.region_loads.is_empty() {
            f.push((
                "region_load".into(),
                Value::Array(self.region_loads.iter().map(load_to_value).collect()),
            ));
        }
        if let Some(budget) = &self.budget {
            f.push((
                "budget".into(),
                Value::Object(vec![
                    ("rows".into(), Value::Number(budget.rows as f64)),
                    (
                        "event".into(),
                        Value::Array(budget.events.iter().map(budget_event_to_value).collect()),
                    ),
                ]),
            ));
        }
        if let Some(p) = &self.placement {
            f.push((
                "placement".into(),
                Value::Object(vec![
                    ("interval_s".into(), Value::Number(p.interval_s as f64)),
                    ("be_slots".into(), Value::Number(p.be_slots as f64)),
                    ("max_moves".into(), Value::Number(p.max_moves as f64)),
                    ("sigma".into(), Value::Number(p.sigma)),
                ]),
            ));
        }
        if let Some(sp) = &self.scoring {
            let mut fields = vec![
                ("cold_start".into(), Value::Bool(sp.cold_start)),
                ("fallback".into(), Value::Bool(sp.fallback)),
                ("set_scorer".into(), Value::Bool(sp.set_scorer)),
                ("latent_dim".into(), Value::Number(sp.latent_dim as f64)),
                ("mask_fraction".into(), Value::Number(sp.mask_fraction)),
            ];
            if let Some(app) = &sp.masked_app {
                fields.push(("masked_app".into(), Value::String(app.clone())));
            }
            fields.push(("seed".into(), Value::Number(sp.seed as f64)));
            f.push(("scoring".into(), Value::Object(fields)));
        }
        if let Some(probe) = &self.probe {
            f.push((
                "search_probe".into(),
                Value::Object(vec![
                    (
                        "load_fractions".into(),
                        Value::Array(
                            probe
                                .load_fractions
                                .iter()
                                .map(|&f| Value::Number(f))
                                .collect(),
                        ),
                    ),
                    ("reps".into(), Value::Number(probe.reps as f64)),
                ]),
            ));
        }
        Value::Object(f)
    }

    /// Renders the canonical manifest document.
    pub fn to_toml_string(&self) -> String {
        toml::render(&self.to_value())
    }

    // -----------------------------------------------------------------
    // Lowering.
    // -----------------------------------------------------------------

    /// The experiment context this scenario runs against.
    pub fn setup(&self) -> ExperimentSetup {
        ExperimentSetup::new(self.pair, self.seed)
    }

    /// The controller tunables, composed exactly as the hand-written
    /// bins compose them: the hardened or default base, the Sturgeon /
    /// Sturgeon-NoB balancer switch, and the search-strategy override.
    pub fn controller_params(&self) -> ControllerParams {
        let base = if self.controller.hardened {
            ControllerParams::hardened()
        } else {
            ControllerParams::default()
        };
        ControllerParams {
            balancer_enabled: self.controller.kind != ControllerKind::SturgeonNoB,
            search: SearchParams {
                strategy: self.controller.strategy,
                ..base.search
            },
            ..base
        }
    }

    /// The fleet construction parameters (fleet scenarios only;
    /// `traced_shard` is left `None` — drivers that trace set it).
    pub fn fleet_params(&self) -> Result<FleetParams, SturgeonError> {
        let fleet = self
            .fleet
            .as_ref()
            .ok_or_else(|| bad("not a fleet scenario"))?;
        Ok(FleetParams {
            shards: fleet.shards,
            regions: fleet.regions,
            training: fleet.training,
            policy: fleet.dispatch.to_policy(),
            controller: self.controller_params(),
            sampled_nodes: fleet.sampled_nodes,
            traced_shard: None,
            budget: self.budget.clone(),
            placement: self.placement,
            scoring: self.scoring.clone(),
        })
    }

    /// The per-region load profiles a fleet run steps under.
    pub fn fleet_profiles(&self) -> Vec<LoadProfile> {
        if !self.region_loads.is_empty() {
            return self.region_loads.clone();
        }
        let regions = self.fleet.map_or(1, |f| f.regions);
        vec![self.load.clone(); regions]
    }

    /// Runs a node scenario with optional observability attached —
    /// the entry point `sturgeon_sim --manifest` uses. Attaching a sink
    /// or registry never perturbs the trajectory (the harness's
    /// documented zero-cost-observability contract).
    pub fn run_node_observed(
        &self,
        sink: Option<&mut dyn TraceSink>,
        registry: Option<&MetricsRegistry>,
    ) -> Result<RunResult, SturgeonError> {
        if self.kind != ScenarioKind::Node {
            return Err(bad("not a node scenario"));
        }
        let setup = self.setup();
        let predictor = self
            .controller
            .kind
            .is_sturgeon()
            .then(|| Arc::new(setup.train_default_predictor()));
        self.execute_node(&setup, predictor, sink, registry)
    }

    fn execute_node(
        &self,
        setup: &ExperimentSetup,
        predictor: Option<Arc<PerfPowerPredictor>>,
        sink: Option<&mut dyn TraceSink>,
        registry: Option<&MetricsRegistry>,
    ) -> Result<RunResult, SturgeonError> {
        fn go<C: ResourceController>(
            scenario: &Scenario,
            setup: &ExperimentSetup,
            controller: C,
            sink: Option<&mut dyn TraceSink>,
            registry: Option<&MetricsRegistry>,
        ) -> Result<RunResult, SturgeonError> {
            let mut run = setup
                .runner()
                .controller(controller)
                .load(scenario.load.clone())
                .intervals(scenario.intervals)
                .faults(scenario.faults)
                .policy(scenario.policy);
            if let Some(sink) = sink {
                run = run.trace(sink);
            }
            if let Some(registry) = registry {
                run = run.metrics(registry);
            }
            run.go()
        }

        let spec = setup.spec().clone();
        let budget = setup.budget_w();
        let qos = setup.qos_target_ms();
        match self.controller.kind {
            ControllerKind::Sturgeon | ControllerKind::SturgeonNoB => {
                let predictor = predictor.ok_or_else(|| bad("missing trained predictor"))?;
                let controller = SturgeonController::with_shared_predictor(
                    predictor,
                    spec,
                    budget,
                    qos,
                    self.controller_params(),
                );
                go(self, setup, controller, sink, registry)
            }
            ControllerKind::Parties | ControllerKind::PartiesOrig => {
                let controller = PartiesController::new(
                    spec,
                    budget,
                    qos,
                    PartiesParams {
                        power_aware: self.controller.kind == ControllerKind::Parties,
                        ..PartiesParams::default()
                    },
                );
                go(self, setup, controller, sink, registry)
            }
            ControllerKind::Heracles => {
                let controller =
                    HeraclesController::new(spec, budget, qos, HeraclesParams::default());
                go(self, setup, controller, sink, registry)
            }
            ControllerKind::Reserved => {
                go(self, setup, StaticReservationController, sink, registry)
            }
        }
    }

    /// Executes the scenario and distills it into a metrics row.
    pub fn run(&self) -> Result<ScenarioOutcome, SturgeonError> {
        let started = Instant::now();
        match self.kind {
            ScenarioKind::Node => self.run_node(started),
            ScenarioKind::Fleet => self.run_fleet(started),
        }
    }

    fn run_node(&self, started: Instant) -> Result<ScenarioOutcome, SturgeonError> {
        let setup = self.setup();
        let predictor = self
            .controller
            .kind
            .is_sturgeon()
            .then(|| Arc::new(setup.train_default_predictor()));
        let result = self.execute_node(&setup, predictor.clone(), None, None)?;

        let mut p95s: Vec<f64> = result.log.samples().iter().map(|s| s.p95_ms).collect();
        p95s.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));

        let mut metrics = ScenarioMetrics {
            scenario: self.name.clone(),
            kind: self.kind.name(),
            pair: result.pair.clone(),
            controller: self.controller.kind.name(),
            search: search_strategy_name(self.controller.strategy),
            load: self.load.name().to_string(),
            seed: self.seed,
            intervals: self.intervals,
            nodes: 1,
            qos_rate: result.qos_rate,
            qos_p95_ms: percentile(&p95s, 0.95),
            qos_p99_ms: percentile(&p95s, 0.99),
            be_throughput: result.mean_be_throughput,
            mean_power_w: result.log.mean_power_w(),
            peak_power_w: result.peak_power_w,
            budget_w: result.budget_w,
            overload_fraction: result.overload_fraction,
            faults_seen: result.faults.faults_seen,
            retries: result.faults.retries,
            failed_actuations: result.faults.failed_actuations,
            stale_intervals: result.faults.stale_intervals,
            safe_mode_entries: result.faults.safe_mode_entries,
            balancer_retry_rounds: result.faults.balancer_retry_rounds,
            trainings: None,
            table_builds: None,
            searches: None,
            budget_reclaims: None,
            migrations: None,
            evictions: None,
            assignments: None,
            cells_observed: None,
            cells_hidden: None,
            cold_start_cells: None,
            set_scores: None,
            rmse_heldout: None,
            search_p50_us: None,
            search_p95_us: None,
            search_p99_us: None,
            probe_model_calls: None,
            probe_candidates: None,
            wall_s: 0.0,
        };

        if let (Some(probe), Some(predictor)) = (&self.probe, &predictor) {
            let params = self.controller_params().search;
            let mut durations_us: Vec<f64> = Vec::new();
            let mut model_calls = 0u64;
            let mut candidates = 0u64;
            for &frac in &probe.load_fractions {
                let qps = frac * setup.peak_qps();
                for _ in 0..probe.reps.max(1) {
                    let search = ConfigSearch::new(
                        predictor.as_ref(),
                        setup.spec().clone(),
                        setup.budget_w(),
                        params,
                    );
                    let outcome = match params.strategy {
                        SearchStrategy::Heuristic => search.best_config(qps),
                        SearchStrategy::FrontierPruned => search.pruned(qps),
                    };
                    durations_us.push(outcome.stats.duration.as_secs_f64() * 1e6);
                    model_calls += outcome.stats.model_calls;
                    candidates += outcome.stats.candidates as u64;
                }
            }
            durations_us.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
            metrics.search_p50_us = Some(percentile(&durations_us, 0.50));
            metrics.search_p95_us = Some(percentile(&durations_us, 0.95));
            metrics.search_p99_us = Some(percentile(&durations_us, 0.99));
            metrics.probe_model_calls = Some(model_calls);
            metrics.probe_candidates = Some(candidates);
        }

        metrics.wall_s = started.elapsed().as_secs_f64();
        Ok(ScenarioOutcome {
            metrics,
            node: Some(result),
            fleet: None,
        })
    }

    fn run_fleet(&self, started: Instant) -> Result<ScenarioOutcome, SturgeonError> {
        let fleet_spec = self
            .fleet
            .as_ref()
            .ok_or_else(|| bad("fleet scenario without a `[fleet]` table"))?;
        let params = self.fleet_params()?;
        let profiles = self.fleet_profiles();
        let mut fleet = Fleet::try_new(self.pair, fleet_spec.nodes, params, self.seed)?;
        let result = fleet.run_regional(&profiles, self.intervals)?;

        let registry = MetricsRegistry::new();
        fleet.export_metrics(&result, &registry);
        let p95 = registry.histogram("interval.p95_ms");
        let power = registry.histogram("interval.power_w");
        let overload = if result.nodes.is_empty() {
            0.0
        } else {
            result
                .nodes
                .iter()
                .map(|n| n.overload_fraction)
                .sum::<f64>()
                / result.nodes.len() as f64
        };

        let load_name = self
            .region_loads
            .first()
            .unwrap_or(&self.load)
            .name()
            .to_string();
        let metrics = ScenarioMetrics {
            scenario: self.name.clone(),
            kind: self.kind.name(),
            pair: self.pair.label(),
            controller: self.controller.kind.name(),
            search: search_strategy_name(self.controller.strategy),
            load: load_name,
            seed: self.seed,
            intervals: self.intervals,
            nodes: fleet.len(),
            qos_rate: result.qos_rate,
            qos_p95_ms: p95.as_ref().map_or(0.0, |h| h.p95),
            qos_p99_ms: p95.as_ref().map_or(0.0, |h| h.p99),
            be_throughput: result.total_be_throughput,
            mean_power_w: result.mean_fleet_power_w,
            peak_power_w: power.and_then(|h| h.max).unwrap_or(0.0),
            budget_w: result.fleet_budget_w,
            overload_fraction: overload,
            faults_seen: 0,
            retries: 0,
            failed_actuations: 0,
            stale_intervals: result.fault_counters.stale_intervals,
            safe_mode_entries: result.fault_counters.safe_mode_entries,
            balancer_retry_rounds: result.fault_counters.balancer_retry_rounds,
            trainings: Some(result.trainings),
            table_builds: Some(result.table_builds),
            searches: Some(result.searches),
            budget_reclaims: self.budget.as_ref().map(|_| result.budget_reclaims),
            migrations: self.placement.map(|_| result.migrations),
            evictions: self.placement.map(|_| result.evictions),
            assignments: self.placement.map(|_| result.assignments),
            cells_observed: fleet.cold_start_report().map(|(_, r)| r.cells_observed),
            cells_hidden: fleet.cold_start_report().map(|(_, r)| r.cells_hidden),
            cold_start_cells: fleet.cold_start_report().map(|(_, r)| r.cold_start_cells),
            set_scores: self.scoring.as_ref().map(|_| result.set_scores),
            rmse_heldout: fleet.cold_start_report().map(|(_, r)| r.rmse_heldout_tput),
            search_p50_us: None,
            search_p95_us: None,
            search_p99_us: None,
            probe_model_calls: None,
            probe_candidates: None,
            wall_s: started.elapsed().as_secs_f64(),
        };
        Ok(ScenarioOutcome {
            metrics,
            node: None,
            fleet: Some(result),
        })
    }
}

/// Nearest-rank percentile on already-sorted data (`q` in `[0, 1]`) —
/// the shared definition behind the scenario search probes and the
/// `tab_overhead` latency rows, so their gates measure the same thing.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    const NODE_MANIFEST: &str = r#"
name = "smoke"
seed = 7
intervals = 60

[workload]
ls = "xapian"
be = "ferret"

[controller]
kind = "sturgeon-nob"
search = "pruned"
hardened = true

[load]
profile = "constant"
fraction = 0.3

[faults]
preset = "actuation"
rate = 0.1
seed = 1309

[policy]
hardened = false
"#;

    #[test]
    fn node_manifest_parses_and_roundtrips() {
        let s = Scenario::from_toml_str(NODE_MANIFEST).unwrap();
        assert_eq!(s.name, "smoke");
        assert_eq!(s.kind, ScenarioKind::Node);
        assert_eq!(s.seed, 7);
        assert_eq!(s.intervals, 60);
        assert_eq!(s.pair.label(), "xapian+ferret");
        assert_eq!(s.controller.kind, ControllerKind::SturgeonNoB);
        assert_eq!(s.controller.strategy, SearchStrategy::FrontierPruned);
        assert!(s.controller.hardened);
        assert_eq!(s.load, LoadProfile::Constant { fraction: 0.3 });
        assert_eq!(s.faults, FaultPlan::actuation_faults(1309, 0.1));
        assert_eq!(s.policy, ActuationPolicy::unhardened());
        // Canonical serialize → parse is the identity.
        let round = Scenario::from_toml_str(&s.to_toml_string()).unwrap();
        assert_eq!(round, s);
    }

    #[test]
    fn fleet_manifest_parses_and_roundtrips() {
        let text = r#"
name = "fleet-smoke"
seed = 42
intervals = 100

[workload]
ls = "memcached"
be = "raytrace"

[controller]
search = "pruned"

[fleet]
nodes = 64
shards = 4
regions = 2
dispatch = "latency"

[[region_load]]
profile = "constant"
fraction = 0.4

[[region_load]]
profile = "diurnal"
low = 0.2
high = 0.8
day_s = 100
"#;
        let s = Scenario::from_toml_str(text).unwrap();
        assert_eq!(s.kind, ScenarioKind::Fleet);
        let fleet = s.fleet.unwrap();
        assert_eq!(fleet.nodes, 64);
        assert_eq!(fleet.shards, 4);
        assert_eq!(fleet.regions, 2);
        assert_eq!(fleet.dispatch, FleetDispatch::LatencyAware);
        assert_eq!(s.region_loads.len(), 2);
        let round = Scenario::from_toml_str(&s.to_toml_string()).unwrap();
        assert_eq!(round, s);
    }

    #[test]
    fn nested_load_profiles_roundtrip() {
        for load in [
            LoadProfile::FlashCrowd {
                base: Box::new(LoadProfile::Diurnal {
                    low: 0.2,
                    high: 0.6,
                    day_s: 100.0,
                }),
                at_s: 25.0,
                ramp_s: 5.0,
                hold_s: 10.0,
                decay_s: 10.0,
                magnitude: 1.8,
            },
            LoadProfile::Failover {
                base: Box::new(LoadProfile::Constant { fraction: 0.4 }),
                at_s: 30.0,
                outage_s: 30.0,
                takeover: 0.5,
                role: FailoverRole::Survivor,
            },
            LoadProfile::Trace {
                samples: vec![0.2, 0.5, 0.9],
                dt_s: 10.0,
            },
        ] {
            let v = load_to_value(&load);
            assert_eq!(load_from_value(&v).unwrap(), load);
        }
    }

    #[test]
    fn validation_rejects_bad_combinations() {
        let err = |text: &str| Scenario::from_toml_str(text).unwrap_err().to_string();
        // Unknown key.
        assert!(err(
            "name = \"x\"\nbogus = 1\n[workload]\nls = \"memcached\"\nbe = \"raytrace\"\n"
        )
        .contains("bogus"));
        // Fleet kind without a fleet table.
        assert!(err(
            "name = \"x\"\nkind = \"fleet\"\n[workload]\nls = \"memcached\"\nbe = \"raytrace\"\n"
        )
        .contains("fleet"));
        // Fleet scenarios cannot inject faults.
        let text = "name = \"x\"\n[workload]\nls = \"memcached\"\nbe = \"raytrace\"\n\
                    [fleet]\nnodes = 4\n[faults]\npreset = \"everything\"\n";
        assert!(err(text).contains("fault"));
        // Probe needs a Sturgeon controller.
        let text = "name = \"x\"\n[workload]\nls = \"memcached\"\nbe = \"raytrace\"\n\
                    [controller]\nkind = \"reserved\"\n[search_probe]\nload_fractions = [0.2]\n";
        assert!(err(text).contains("search_probe"));
        // Baseline controllers on a fleet.
        let text = "name = \"x\"\n[workload]\nls = \"memcached\"\nbe = \"raytrace\"\n\
                    [controller]\nkind = \"parties\"\n[fleet]\nnodes = 4\n";
        assert!(err(text).contains("Sturgeon"));
    }

    #[test]
    fn cli_helpers_match_legacy_semantics() {
        assert_eq!(
            cli_load_profile("triangle", 0.3, 600).unwrap(),
            LoadProfile::paper_fluctuating(600.0)
        );
        assert_eq!(
            cli_load_profile("ramp", 0.1, 100).unwrap(),
            LoadProfile::Ramp {
                from: 0.2,
                to: 0.2,
                duration_s: 100.0
            }
        );
        assert_eq!(
            cli_load_profile("diurnal", 0.5, 200).unwrap(),
            LoadProfile::Diurnal {
                low: 0.15,
                high: 0.5,
                day_s: 200.0
            }
        );
        assert!(cli_load_profile("nope", 0.3, 600).is_none());
        assert_eq!(
            cli_fault_plan("telemetry", 9).unwrap(),
            FaultPlan::telemetry_dropout(9, 0.1)
        );
        assert_eq!(
            cli_fault_plan("actuation", 9).unwrap(),
            FaultPlan::actuation_faults(9, 0.2)
        );
        // Failover needs two regions and splits takeover across survivors.
        assert!(regional_profiles("failover", 0.3, 100, 1).is_none());
        let profiles = regional_profiles("failover", 0.3, 100, 3).unwrap();
        assert_eq!(profiles.len(), 3);
        match &profiles[2] {
            LoadProfile::Failover { takeover, role, .. } => {
                assert!((takeover - 0.5).abs() < 1e-12);
                assert_eq!(*role, FailoverRole::Survivor);
            }
            other => panic!("unexpected {other:?}"),
        }
        let flash = regional_profiles("flash", 0.3, 100, 2).unwrap();
        assert_eq!(flash.len(), 2);
        assert_eq!(flash[0].name(), "flash_crowd");
    }

    #[test]
    fn default_sections_are_optional() {
        let text = "name = \"mini\"\n[workload]\nls = \"memcached\"\nbe = \"swaptions\"\n";
        let s = Scenario::from_toml_str(text).unwrap();
        assert_eq!(s.seed, 42);
        assert_eq!(s.intervals, 600);
        assert_eq!(s.controller, ControllerSpec::default());
        assert_eq!(s.load, LoadProfile::paper_fluctuating(600.0));
        assert!(s.faults.is_zero());
        assert_eq!(s.policy, ActuationPolicy::hardened());
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&data, 0.50), 5.0);
        assert_eq!(percentile(&data, 0.95), 10.0);
        assert_eq!(percentile(&data, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn metrics_row_serializes_in_stable_order() {
        let m = ScenarioMetrics {
            scenario: "s".into(),
            kind: "node",
            pair: "memcached+raytrace".into(),
            controller: "sturgeon",
            search: "heuristic",
            load: "triangle".into(),
            seed: 42,
            intervals: 10,
            nodes: 1,
            qos_rate: 0.99,
            qos_p95_ms: 8.0,
            qos_p99_ms: 9.0,
            be_throughput: 0.5,
            mean_power_w: 100.0,
            peak_power_w: 120.0,
            budget_w: 130.0,
            overload_fraction: 0.0,
            faults_seen: 0,
            retries: 0,
            failed_actuations: 0,
            stale_intervals: 0,
            safe_mode_entries: 0,
            balancer_retry_rounds: 0,
            trainings: None,
            table_builds: None,
            searches: None,
            budget_reclaims: None,
            migrations: None,
            evictions: None,
            assignments: None,
            cells_observed: None,
            cells_hidden: None,
            cold_start_cells: None,
            set_scores: None,
            rmse_heldout: None,
            search_p50_us: Some(10.0),
            search_p95_us: Some(20.0),
            search_p99_us: Some(30.0),
            probe_model_calls: Some(100),
            probe_candidates: Some(5),
            wall_s: 1.5,
        };
        let v = m.to_value();
        assert_eq!(v["scenario"], "s");
        assert_eq!(v["seed"], 42);
        assert_eq!(v["probe_model_calls"], 100);
        // Fleet-only counters are omitted for node rows.
        assert!(v.get("trainings").is_none());
        let json = metrics_json(&[m]);
        assert!(json.starts_with('['));
        assert!(json.contains("\"wall_s\""));
    }
}
