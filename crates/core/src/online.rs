//! Online model adaptation: learn from live telemetry what offline
//! profiling could not see.
//!
//! The paper trains every model offline on a dedicated, interference-free
//! cluster (§V-A) and delegates *all* runtime error to the balancer. That
//! split leaves information on the floor: every production interval is a
//! labelled sample `(load, C1, F1, L1) → measured p95` under the *real*
//! interference regime. This module (an extension beyond the paper)
//! closes the loop:
//!
//! * [`OnlineAdaptor`] buffers live observations in a bounded ring;
//! * every `refit_every` accepted samples it refits a latency regressor
//!   on `offline ∪ online` data, weighting the online samples by
//!   duplication;
//! * [`OnlineAdaptor::corrected_feasible`] then answers feasibility with
//!   the adapted model — configurations that look fine offline but
//!   violate under the node's actual interference get rejected up front,
//!   reducing how often the balancer must fire.
//!
//! The `adaptation_reduces_misprediction` test quantifies the effect.

use crate::predictor::{make_regressor, ModelKind};
use crate::profiler::features;
use sturgeon_mlkit::{Dataset, MlError, Regressor};

/// One live observation the adaptor can learn from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineSample {
    /// Offered LS load during the interval (QPS).
    pub qps: f64,
    /// LS partition at the time.
    pub cores: u32,
    /// LS frequency (GHz).
    pub freq_ghz: f64,
    /// LS LLC ways.
    pub ways: u32,
    /// Measured p95 latency (ms).
    pub p95_ms: f64,
}

/// Configuration of the adaptation loop.
#[derive(Debug, Clone, Copy)]
pub struct OnlineAdaptorConfig {
    /// Ring-buffer capacity for live samples.
    pub capacity: usize,
    /// Refit after this many new samples since the last fit.
    pub refit_every: usize,
    /// Weight of an online sample relative to an offline one (applied by
    /// duplication, so it must be a small positive integer).
    pub online_weight: usize,
    /// Regressor family for the adapted latency model.
    pub model: ModelKind,
    /// Latency labels are clamped to `clamp_factor × qos_target` so
    /// saturated outliers do not dominate the fit.
    pub clamp_factor: f64,
}

impl Default for OnlineAdaptorConfig {
    fn default() -> Self {
        Self {
            capacity: 2_000,
            refit_every: 50,
            online_weight: 3,
            model: ModelKind::Knn,
            clamp_factor: 8.0,
        }
    }
}

/// The adaptation engine. Owns a copy of the offline latency dataset and
/// maintains the adapted model.
pub struct OnlineAdaptor {
    config: OnlineAdaptorConfig,
    qos_target_ms: f64,
    offline: Dataset,
    ring: Vec<OnlineSample>,
    cursor: usize,
    filled: bool,
    since_fit: usize,
    model: Option<Box<dyn Regressor + Send + Sync>>,
    refits: u64,
    /// The last sample accepted into the ring, kept to drop verbatim
    /// repeats (a frozen telemetry collector replays the previous
    /// interval, which would otherwise overweight one operating point).
    last_accepted: Option<OnlineSample>,
    rejected: u64,
}

impl std::fmt::Debug for OnlineAdaptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlineAdaptor")
            .field("config", &self.config)
            .field("online_samples", &self.len())
            .field("refits", &self.refits)
            .finish()
    }
}

impl OnlineAdaptor {
    /// Builds the adaptor around the offline latency dataset
    /// (`ProfileDatasets::ls_latency`).
    pub fn new(
        offline_latency: Dataset,
        qos_target_ms: f64,
        config: OnlineAdaptorConfig,
    ) -> Result<Self, MlError> {
        if config.capacity == 0 || config.refit_every == 0 || config.online_weight == 0 {
            return Err(MlError::InvalidParameter(
                "capacity, refit_every and online_weight must be ≥ 1".into(),
            ));
        }
        Ok(Self {
            config,
            qos_target_ms,
            offline: offline_latency,
            ring: Vec::with_capacity(config.capacity),
            cursor: 0,
            filled: false,
            since_fit: 0,
            model: None,
            refits: 0,
            last_accepted: None,
            rejected: 0,
        })
    }

    /// Number of buffered online samples.
    pub fn len(&self) -> usize {
        if self.filled {
            self.config.capacity
        } else {
            self.ring.len()
        }
    }

    /// True before any sample is recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of refits performed.
    pub fn refit_count(&self) -> u64 {
        self.refits
    }

    /// True once an adapted model is available.
    pub fn is_adapted(&self) -> bool {
        self.model.is_some()
    }

    /// Samples rejected as unusable (non-finite fields or verbatim
    /// repeats of the previous accepted sample).
    pub fn rejected_count(&self) -> u64 {
        self.rejected
    }

    /// Records one live observation; refits when due. Returns `true` when
    /// a refit happened. Samples with non-finite measurements, and exact
    /// repeats of the previous sample (stale-telemetry replays), are
    /// dropped rather than learned from.
    pub fn observe(&mut self, sample: OnlineSample) -> Result<bool, MlError> {
        if !(sample.qps.is_finite() && sample.freq_ghz.is_finite() && sample.p95_ms.is_finite())
            || self.last_accepted == Some(sample)
        {
            self.rejected += 1;
            return Ok(false);
        }
        self.last_accepted = Some(sample);
        if self.ring.len() < self.config.capacity {
            self.ring.push(sample);
        } else {
            self.ring[self.cursor] = sample;
            self.cursor = (self.cursor + 1) % self.config.capacity;
            self.filled = true;
        }
        self.since_fit += 1;
        if self.since_fit >= self.config.refit_every {
            self.refit()?;
            self.since_fit = 0;
            return Ok(true);
        }
        Ok(false)
    }

    /// Refits the adapted model on offline ∪ weighted-online data.
    pub fn refit(&mut self) -> Result<(), MlError> {
        if self.ring.is_empty() {
            return Ok(());
        }
        let clamp = self.config.clamp_factor * self.qos_target_ms;
        let mut x = self.offline.x.clone();
        let mut y = self.offline.y.clone();
        for s in &self.ring {
            let row = features(s.qps, s.cores, s.freq_ghz, s.ways);
            let label = s.p95_ms.min(clamp);
            for _ in 0..self.config.online_weight {
                x.push(row.clone());
                y.push(label);
            }
        }
        let data = Dataset::new(x, y)?;
        let mut model = make_regressor(self.config.model);
        model.fit(&data)?;
        self.model = Some(model);
        self.refits += 1;
        Ok(())
    }

    /// Latency prediction from the adapted model (offline-only model
    /// before the first refit).
    pub fn predicted_p95_ms(
        &mut self,
        qps: f64,
        cores: u32,
        freq_ghz: f64,
        ways: u32,
    ) -> Result<f64, MlError> {
        if self.model.is_none() {
            // Lazily fit on offline data alone.
            let mut model = make_regressor(self.config.model);
            model.fit(&self.offline)?;
            self.model = Some(model);
        }
        Ok(self
            .model
            .as_ref()
            .expect("model fitted above")
            .predict(&features(qps, cores, freq_ghz, ways)))
    }

    /// Feasibility under the adapted model: does the configuration keep
    /// the *measured-regime* p95 under target?
    pub fn corrected_feasible(
        &mut self,
        qps: f64,
        cores: u32,
        freq_ghz: f64,
        ways: u32,
    ) -> Result<bool, MlError> {
        Ok(self.predicted_p95_ms(qps, cores, freq_ghz, ways)? <= self.qos_target_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{ColocationPair, ExperimentSetup};
    use crate::profiler::ProfilerConfig;
    use sturgeon_workloads::catalog::{BeAppId, LsServiceId};

    fn setup() -> (ExperimentSetup, Dataset, f64) {
        let setup = ExperimentSetup::new(
            ColocationPair::new(LsServiceId::Xapian, BeAppId::Fluidanimate),
            42,
        );
        let datasets = setup
            .profile(ProfilerConfig {
                ls_samples_per_load: 100,
                ls_load_fractions: (1..=16).map(|i| i as f64 / 20.0).collect(),
                be_samples: 200,
                seed: 9,
            })
            .unwrap();
        let target = setup.qos_target_ms();
        (setup, datasets.ls_latency, target)
    }

    #[test]
    fn rejects_bad_config() {
        let (_, data, target) = setup();
        assert!(OnlineAdaptor::new(
            data,
            target,
            OnlineAdaptorConfig {
                capacity: 0,
                ..OnlineAdaptorConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn refits_on_schedule_and_ring_wraps() {
        let (_, data, target) = setup();
        let mut a = OnlineAdaptor::new(
            data,
            target,
            OnlineAdaptorConfig {
                capacity: 30,
                refit_every: 10,
                ..OnlineAdaptorConfig::default()
            },
        )
        .unwrap();
        let mut refits = 0;
        for i in 0..45 {
            let s = OnlineSample {
                qps: 1_000.0 + i as f64,
                cores: 6,
                freq_ghz: 1.8,
                ways: 8,
                p95_ms: 9.0,
            };
            if a.observe(s).unwrap() {
                refits += 1;
            }
        }
        assert_eq!(refits, 4);
        assert_eq!(a.len(), 30, "ring must cap at capacity");
        assert!(a.is_adapted());
        assert_eq!(a.refit_count(), 4);
    }

    #[test]
    fn unusable_samples_are_rejected_not_learned() {
        let (_, data, target) = setup();
        let mut a = OnlineAdaptor::new(
            data,
            target,
            OnlineAdaptorConfig {
                capacity: 30,
                refit_every: 10,
                ..OnlineAdaptorConfig::default()
            },
        )
        .unwrap();
        let good = OnlineSample {
            qps: 1_000.0,
            cores: 6,
            freq_ghz: 1.8,
            ways: 8,
            p95_ms: 9.0,
        };
        assert!(!a.observe(good).unwrap());
        // A verbatim replay (frozen telemetry) is dropped.
        assert!(!a.observe(good).unwrap());
        assert_eq!(a.len(), 1);
        assert_eq!(a.rejected_count(), 1);
        // Non-finite measurements are dropped too.
        let bad = OnlineSample {
            p95_ms: f64::NAN,
            ..good
        };
        assert!(!a.observe(bad).unwrap());
        let bad = OnlineSample {
            qps: f64::INFINITY,
            ..good
        };
        assert!(!a.observe(bad).unwrap());
        assert_eq!(a.len(), 1);
        assert_eq!(a.rejected_count(), 3);
        // A changed sample is accepted again.
        let next = OnlineSample {
            qps: 1_001.0,
            ..good
        };
        assert!(!a.observe(next).unwrap());
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn adaptation_reduces_misprediction_under_persistent_interference() {
        // Ground truth with a persistent +4 ms additive disturbance: the
        // offline model undershoots; after observing live samples the
        // adapted model should track the disturbed latency much better.
        let (setup, data, target) = setup();
        let ls = setup.env().ls().clone();
        let additive = 4.0;
        let disturbed =
            |c: u32, f: f64, w: u32, q: f64| ls.latency_disturbed(c, f, w, q, 1.0, additive).p95_ms;

        let mut adaptor = OnlineAdaptor::new(
            data,
            target,
            OnlineAdaptorConfig {
                refit_every: 40,
                ..OnlineAdaptorConfig::default()
            },
        )
        .unwrap();

        // Offline-only error at a probe point.
        let probe = (6u32, 1.8f64, 8u32, 1_200.0f64);
        let truth = disturbed(probe.0, probe.1, probe.2, probe.3);
        let before = (adaptor
            .predicted_p95_ms(probe.3, probe.0, probe.1, probe.2)
            .unwrap()
            - truth)
            .abs();

        // Live phase: observe disturbed reality across nearby operating
        // points (as a running controller would).
        for i in 0..200u32 {
            let cores = 4 + (i % 5);
            let ways = 6 + (i % 5);
            let qps = 900.0 + (i % 7) as f64 * 100.0;
            let p95 = disturbed(cores, 1.8, ways, qps);
            adaptor
                .observe(OnlineSample {
                    qps,
                    cores,
                    freq_ghz: 1.8,
                    ways,
                    p95_ms: p95,
                })
                .unwrap();
        }
        let after = (adaptor
            .predicted_p95_ms(probe.3, probe.0, probe.1, probe.2)
            .unwrap()
            - truth)
            .abs();
        assert!(
            after < before,
            "adaptation must reduce error: before {before:.2} ms, after {after:.2} ms"
        );
        assert!(after < 2.0, "adapted error still {after:.2} ms");
    }

    #[test]
    fn corrected_feasibility_flips_for_disturbed_boundary_configs() {
        let (setup, data, target) = setup();
        let ls = setup.env().ls().clone();
        let additive = 5.0;
        let mut adaptor = OnlineAdaptor::new(data, target, OnlineAdaptorConfig::default()).unwrap();

        // Find a configuration the *offline model* calls feasible but the
        // disturbed ground truth violates.
        let mut boundary = None;
        'outer: for cores in 2..=14u32 {
            for level in 0..10usize {
                for ways in [4u32, 6, 8, 10] {
                    let f = 1.2 + 0.1111111111111111 * level as f64;
                    let model_clean = adaptor.corrected_feasible(1_200.0, cores, f, ways).unwrap();
                    let dirty = ls
                        .latency_disturbed(cores, f, ways, 1_200.0, 1.0, additive)
                        .p95_ms;
                    if model_clean && dirty > target {
                        boundary = Some((cores, f, ways));
                        break 'outer;
                    }
                }
            }
        }
        let (cores, f, ways) = boundary.expect("a boundary config exists");
        // Feed disturbed observations at and around that point.
        for i in 0..120u32 {
            let c = (cores.saturating_sub(1) + (i % 3)).max(1);
            let p95 = ls
                .latency_disturbed(c, f, ways, 1_200.0, 1.0, additive)
                .p95_ms;
            adaptor
                .observe(OnlineSample {
                    qps: 1_200.0,
                    cores: c,
                    freq_ghz: f,
                    ways,
                    p95_ms: p95,
                })
                .unwrap();
        }
        assert!(
            !adaptor.corrected_feasible(1_200.0, cores, f, ways).unwrap(),
            "adapted model must reject the disturbed boundary config"
        );
    }
}
