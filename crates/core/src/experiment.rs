//! The co-location experiment harness: wires a controller to the
//! simulated node through the Table III actuator interfaces and produces
//! the paper's evaluation metrics.
//!
//! One [`ExperimentSetup`] owns a reproducible environment for a single
//! LS × BE pair; [`ExperimentSetup::run`] clones that environment per
//! controller so Sturgeon, Sturgeon-NoB and PARTIES face the *identical*
//! load and interference sequence — the apples-to-apples comparison
//! behind Figs. 9–11.

use crate::controller::ResourceController;
use crate::predictor::{PerfPowerPredictor, PredictorConfig};
use crate::profiler::{ProfileDatasets, Profiler, ProfilerConfig};
use sturgeon_mlkit::MlError;
use sturgeon_simnode::{
    AuditLog, IntervalSample, NodeSpec, PowerModel, SimActuators, TelemetryLog,
};
use sturgeon_workloads::catalog::{be_app, ls_service, BeAppId, LsServiceId};
use sturgeon_workloads::env::CoLocationEnv;
use sturgeon_workloads::interference::InterferenceParams;
use sturgeon_workloads::loadgen::LoadProfile;

/// One of the paper's 18 co-location pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColocationPair {
    /// The latency-sensitive service.
    pub ls: LsServiceId,
    /// The best-effort application.
    pub be: BeAppId,
}

impl ColocationPair {
    /// Convenience constructor.
    pub fn new(ls: LsServiceId, be: BeAppId) -> Self {
        Self { ls, be }
    }

    /// `"memcached+raytrace"`-style label.
    pub fn label(&self) -> String {
        format!("{}+{}", self.ls.name(), self.be.name())
    }

    /// All 18 pairs in paper order.
    pub fn all() -> Vec<ColocationPair> {
        sturgeon_workloads::catalog::all_pairs()
            .into_iter()
            .map(|(ls, be)| ColocationPair::new(ls, be))
            .collect()
    }
}

/// Summary of one controller's run (one bar of Figs. 9/10).
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Controller display name.
    pub controller: &'static str,
    /// Pair label.
    pub pair: String,
    /// Full per-interval telemetry (Fig. 11's raw material).
    pub log: TelemetryLog,
    /// QoS guarantee rate (Fig. 9's metric).
    pub qos_rate: f64,
    /// Mean normalized BE throughput (Fig. 10's metric).
    pub mean_be_throughput: f64,
    /// Fraction of intervals above the power budget.
    pub overload_fraction: f64,
    /// Peak power observed (W).
    pub peak_power_w: f64,
    /// The budget the run was subject to (W).
    pub budget_w: f64,
    /// Audit trail of every configuration change the controller applied.
    pub audit: AuditLog,
}

impl RunResult {
    /// §VII-B's binary judgement: did this pair "suffer from power
    /// overload" under this controller? More than 1% of intervals above
    /// budget counts as suffering.
    pub fn suffers_overload(&self) -> bool {
        self.overload_fraction > 0.01
    }

    /// Did the run keep the 95th-percentile guarantee (Fig. 9's bar above
    /// the 95% line)?
    pub fn meets_qos_guarantee(&self) -> bool {
        self.qos_rate >= 0.95
    }
}

/// A reproducible experiment context for one pair.
#[derive(Debug, Clone)]
pub struct ExperimentSetup {
    pair: ColocationPair,
    env: CoLocationEnv,
    seed: u64,
}

impl ExperimentSetup {
    /// Paper-default setup: the Table II node, default power model and
    /// default interference.
    pub fn new(pair: ColocationPair, seed: u64) -> Self {
        Self::with_interference(pair, InterferenceParams::default(), seed)
    }

    /// Custom interference (e.g. `InterferenceParams::none()` for clean
    /// ablations).
    pub fn with_interference(
        pair: ColocationPair,
        interference: InterferenceParams,
        seed: u64,
    ) -> Self {
        let env = CoLocationEnv::new(
            NodeSpec::xeon_e5_2630_v4(),
            PowerModel::default(),
            ls_service(pair.ls),
            be_app(pair.be),
            interference,
            seed,
        );
        Self { pair, env, seed }
    }

    /// The pair under study.
    pub fn pair(&self) -> ColocationPair {
        self.pair
    }

    /// The power budget (W), defined as the LS service's solo peak power.
    pub fn budget_w(&self) -> f64 {
        self.env.budget_w()
    }

    /// The node spec.
    pub fn spec(&self) -> &NodeSpec {
        self.env.spec()
    }

    /// The environment (e.g. for direct probing in benches).
    pub fn env(&self) -> &CoLocationEnv {
        &self.env
    }

    /// The LS service's QoS target (ms).
    pub fn qos_target_ms(&self) -> f64 {
        self.env.ls().params.qos_target_ms
    }

    /// The LS service's peak load (QPS).
    pub fn peak_qps(&self) -> f64 {
        self.env.ls().params.peak_qps
    }

    /// Offline phase: collect profiling datasets with custom controls.
    pub fn profile(&self, config: ProfilerConfig) -> Result<ProfileDatasets, MlError> {
        Profiler::new(&self.env, config).collect()
    }

    /// Offline phase: profile and train a predictor in one call.
    pub fn train_predictor(
        &self,
        profiler: ProfilerConfig,
        predictor: PredictorConfig,
    ) -> Result<PerfPowerPredictor, MlError> {
        let datasets = self.profile(profiler)?;
        PerfPowerPredictor::train(
            &datasets,
            predictor,
            self.env.static_power_w(),
            self.env.be().params.input_level as f64,
            self.qos_target_ms(),
        )
    }

    /// Paper-default profiling + model families (§V-C picks).
    pub fn train_default_predictor(&self) -> PerfPowerPredictor {
        self.train_predictor(ProfilerConfig::default(), PredictorConfig::default())
            .expect("default profiling must produce valid datasets")
    }

    /// Runs one controller against a fresh clone of the environment for
    /// `duration_s` one-second intervals under the load profile.
    pub fn run(
        &self,
        mut controller: impl ResourceController,
        profile: LoadProfile,
        duration_s: u32,
    ) -> RunResult {
        let mut env = self.env.clone();
        let actuators = SimActuators::new(env.spec().clone());
        let mut log = TelemetryLog::new();
        let mut audit = AuditLog::new();
        let qos_target = self.qos_target_ms();
        let peak = self.peak_qps();

        let mut config = controller.initial_config(env.spec());
        actuators
            .apply(config)
            .expect("initial configuration must be valid");

        for t in 0..duration_s {
            let qps = profile.qps_at(t as f64, peak);
            let obs = env.step(&actuators.config(), qps);
            actuators.push_power(obs.power_w);
            log.push(IntervalSample {
                t_s: obs.t_s,
                qps: obs.qps,
                p95_ms: obs.p95_ms,
                in_target_fraction: obs.in_target_fraction.min(if obs.p95_ms <= qos_target {
                    1.0
                } else {
                    0.95
                }),
                power_w: obs.power_w,
                be_throughput_norm: obs.be_throughput_norm,
                config: actuators.config(),
            });
            let next = controller.decide(&obs, config);
            if next != config {
                actuators
                    .apply(next)
                    .expect("controller produced an invalid configuration");
                audit.record(obs.t_s, controller.name(), config, next);
                config = next;
            }
        }

        let budget = self.budget_w();
        RunResult {
            controller: controller.name(),
            pair: self.pair.label(),
            qos_rate: log.qos_guarantee_rate(),
            mean_be_throughput: log.mean_be_throughput(),
            overload_fraction: log.overload_fraction(budget),
            peak_power_w: log.peak_power_w(),
            budget_w: budget,
            log,
            audit,
        }
    }

    /// The RNG seed in use (printed by every experiment binary).
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::StaticReservationController;
    use crate::controller::{ControllerParams, SturgeonController};

    fn fast_profiler() -> ProfilerConfig {
        ProfilerConfig {
            ls_samples_per_load: 90,
            ls_load_fractions: vec![0.15, 0.2, 0.3, 0.4, 0.5, 0.65, 0.8],
            be_samples: 400,
            seed: 21,
        }
    }

    #[test]
    fn static_reservation_has_perfect_qos_and_no_throughput() {
        let setup = ExperimentSetup::new(
            ColocationPair::new(LsServiceId::Memcached, BeAppId::Blackscholes),
            1,
        );
        let r = setup.run(
            StaticReservationController,
            LoadProfile::Constant { fraction: 0.3 },
            60,
        );
        assert!(r.qos_rate > 0.99, "QoS rate {}", r.qos_rate);
        assert!(r.mean_be_throughput < 0.05);
        assert!(!r.suffers_overload());
    }

    #[test]
    fn sturgeon_run_improves_throughput_and_keeps_qos() {
        let pair = ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace);
        let setup = ExperimentSetup::new(pair, 2);
        let predictor = setup
            .train_predictor(fast_profiler(), PredictorConfig::default())
            .unwrap();
        let controller = SturgeonController::new(
            predictor,
            setup.spec().clone(),
            setup.budget_w(),
            setup.qos_target_ms(),
            ControllerParams::default(),
        );
        let r = setup.run(controller, LoadProfile::Constant { fraction: 0.25 }, 90);
        assert!(r.qos_rate > 0.9, "QoS rate {}", r.qos_rate);
        assert!(
            r.mean_be_throughput > 0.3,
            "BE throughput {}",
            r.mean_be_throughput
        );
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let pair = ColocationPair::new(LsServiceId::Xapian, BeAppId::Ferret);
        let setup = ExperimentSetup::new(pair, 7);
        let a = setup.run(
            StaticReservationController,
            LoadProfile::paper_fluctuating(60.0),
            60,
        );
        let b = setup.run(
            StaticReservationController,
            LoadProfile::paper_fluctuating(60.0),
            60,
        );
        assert_eq!(a.qos_rate, b.qos_rate);
        assert_eq!(a.peak_power_w, b.peak_power_w);
    }

    #[test]
    fn run_length_matches_duration() {
        let setup = ExperimentSetup::new(
            ColocationPair::new(LsServiceId::ImgDnn, BeAppId::Swaptions),
            3,
        );
        let r = setup.run(
            StaticReservationController,
            LoadProfile::Constant { fraction: 0.2 },
            42,
        );
        assert_eq!(r.log.len(), 42);
    }

    #[test]
    fn all_pairs_enumerates_18() {
        assert_eq!(ColocationPair::all().len(), 18);
    }

    #[test]
    fn labels_are_paper_style() {
        let p = ColocationPair::new(LsServiceId::Memcached, BeAppId::Blackscholes);
        assert_eq!(p.label(), "memcached+blackscholes");
    }
}
