//! The co-location experiment harness: wires a controller to the
//! simulated node through the Table III actuator interfaces and produces
//! the paper's evaluation metrics.
//!
//! One [`ExperimentSetup`] owns a reproducible environment for a single
//! LS × BE pair; [`ExperimentSetup::runner`] starts a builder-configured
//! run against a fresh clone of that environment, so Sturgeon,
//! Sturgeon-NoB and PARTIES face the *identical* load and interference
//! sequence — the apples-to-apples comparison behind Figs. 9–11.
//!
//! ```no_run
//! # use sturgeon::prelude::*;
//! let setup = ExperimentSetup::new(
//!     ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace),
//!     42,
//! );
//! let controller = StaticReservationController;
//! let metrics = MetricsRegistry::new();
//! let result = setup
//!     .runner()
//!     .controller(controller)
//!     .load(LoadProfile::paper_fluctuating(600.0))
//!     .intervals(600)
//!     .faults(FaultPlan::everything(7))
//!     .metrics(&metrics)
//!     .go()
//!     .unwrap();
//! ```

use crate::controller::ResourceController;
use crate::error::SturgeonError;
use crate::obs::{MetricsRegistry, TraceEvent, TraceSink};
use crate::predictor::{PerfPowerPredictor, PredictorConfig};
use crate::profiler::{ProfileDatasets, Profiler, ProfilerConfig};
use serde::Serialize;
use sturgeon_simnode::{
    ActuationOutcome, AuditLog, FaultPlan, FaultyActuators, IntervalSample, NodeSpec, PowerModel,
    SimActuators, TelemetryFault, TelemetryLog,
};
use sturgeon_workloads::catalog::{be_app, ls_service, BeAppId, LsServiceId};
use sturgeon_workloads::env::{CoLocationEnv, Observation};
use sturgeon_workloads::interference::InterferenceParams;
use sturgeon_workloads::loadgen::LoadProfile;

/// One of the paper's 18 co-location pairs. Pairs order (LS-major, then
/// BE) and hash, so they can key maps and sorted reports directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColocationPair {
    /// The latency-sensitive service.
    pub ls: LsServiceId,
    /// The best-effort application.
    pub be: BeAppId,
}

impl ColocationPair {
    /// Convenience constructor.
    pub fn new(ls: LsServiceId, be: BeAppId) -> Self {
        Self { ls, be }
    }

    /// `"memcached+raytrace"`-style label.
    pub fn label(&self) -> String {
        format!("{}+{}", self.ls.name(), self.be.name())
    }

    /// All 18 pairs in paper order (LS-major, BE-minor), lazily.
    pub fn all() -> impl Iterator<Item = ColocationPair> {
        LsServiceId::all().into_iter().flat_map(|ls| {
            BeAppId::all()
                .into_iter()
                .map(move |be| ColocationPair::new(ls, be))
        })
    }
}

/// How the harness reacts to actuation failures. The hardened policy is
/// what a production deployment would run; the unhardened one is the
/// ablation that shows what silent actuation failures cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ActuationPolicy {
    /// Re-apply attempts after a failed actuation within the same
    /// interval (bounded: the loop must finish before the next sample).
    pub max_retries: u32,
    /// Verify actuations by reading the installed configuration back and
    /// adopting it as the believed state. Without this, a failed or
    /// partial apply silently desynchronizes the controller's belief from
    /// the node.
    pub verify: bool,
}

impl ActuationPolicy {
    /// Production policy: bounded retry plus read-back verification.
    pub fn hardened() -> Self {
        Self {
            max_retries: 3,
            verify: true,
        }
    }

    /// Fire-and-forget ablation: no retries, no read-back.
    pub fn unhardened() -> Self {
        Self {
            max_retries: 0,
            verify: false,
        }
    }
}

impl Default for ActuationPolicy {
    fn default() -> Self {
        Self::hardened()
    }
}

/// Everything fault-related that happened during one run: what the
/// injector threw at the system, how the harness's actuation policy
/// responded, and what the controller's own degradation machinery saw.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct FaultReport {
    /// Total injected faults of any class.
    pub faults_seen: u64,
    /// Intervals with noisy telemetry.
    pub telemetry_noise: u64,
    /// Intervals whose sample was a stale repeat.
    pub telemetry_dropouts: u64,
    /// Intervals whose actuations all failed.
    pub actuation_stuck: u64,
    /// Intervals whose first actuation attempt failed.
    pub actuation_transient: u64,
    /// Intervals whose actuations applied partially.
    pub actuation_partial: u64,
    /// Intervals with a QPS spike.
    pub qps_spikes: u64,
    /// Intervals with a power-budget cut.
    pub budget_cuts: u64,
    /// Re-apply attempts made by the actuation policy.
    pub retries: u64,
    /// Retries that got the configuration installed.
    pub retry_successes: u64,
    /// Intervals whose configuration change ultimately failed.
    pub failed_actuations: u64,
    /// Intervals the controller's believed configuration differed from
    /// the one actually installed (only the unhardened policy lets this
    /// stay nonzero).
    pub divergence_intervals: u64,
    /// Intervals the controller judged its telemetry stale.
    pub stale_intervals: u64,
    /// Times the controller dropped to its safe-mode configuration.
    pub safe_mode_entries: u64,
    /// Balancer feedback rounds that exhausted every harvest target.
    pub balancer_retry_rounds: u64,
}

/// Summary of one controller's run (one bar of Figs. 9/10).
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Controller display name.
    pub controller: &'static str,
    /// Pair label.
    pub pair: String,
    /// Full per-interval telemetry (Fig. 11's raw material).
    pub log: TelemetryLog,
    /// QoS guarantee rate (Fig. 9's metric).
    pub qos_rate: f64,
    /// Mean normalized BE throughput (Fig. 10's metric).
    pub mean_be_throughput: f64,
    /// Fraction of intervals above the power budget.
    pub overload_fraction: f64,
    /// Peak power observed (W).
    pub peak_power_w: f64,
    /// The budget the run was subject to (W).
    pub budget_w: f64,
    /// Audit trail of every configuration change the controller applied.
    pub audit: AuditLog,
    /// Fault accounting (all zeros for a fault-free run).
    pub faults: FaultReport,
}

impl RunResult {
    /// §VII-B's binary judgement: did this pair "suffer from power
    /// overload" under this controller? More than 1% of intervals above
    /// budget counts as suffering.
    pub fn suffers_overload(&self) -> bool {
        self.overload_fraction > 0.01
    }

    /// Did the run keep the 95th-percentile guarantee (Fig. 9's bar above
    /// the 95% line)?
    pub fn meets_qos_guarantee(&self) -> bool {
        self.qos_rate >= 0.95
    }
}

/// A reproducible experiment context for one pair.
#[derive(Debug, Clone)]
pub struct ExperimentSetup {
    pair: ColocationPair,
    env: CoLocationEnv,
    seed: u64,
}

impl ExperimentSetup {
    /// Paper-default setup: the Table II node, default power model and
    /// default interference.
    pub fn new(pair: ColocationPair, seed: u64) -> Self {
        Self::with_interference(pair, InterferenceParams::default(), seed)
    }

    /// Custom interference (e.g. `InterferenceParams::none()` for clean
    /// ablations).
    pub fn with_interference(
        pair: ColocationPair,
        interference: InterferenceParams,
        seed: u64,
    ) -> Self {
        let env = CoLocationEnv::new(
            NodeSpec::xeon_e5_2630_v4(),
            PowerModel::default(),
            ls_service(pair.ls),
            be_app(pair.be),
            interference,
            seed,
        );
        Self { pair, env, seed }
    }

    /// The pair under study.
    pub fn pair(&self) -> ColocationPair {
        self.pair
    }

    /// The power budget (W), defined as the LS service's solo peak power.
    pub fn budget_w(&self) -> f64 {
        self.env.budget_w()
    }

    /// The node spec.
    pub fn spec(&self) -> &NodeSpec {
        self.env.spec()
    }

    /// The environment (e.g. for direct probing in benches).
    pub fn env(&self) -> &CoLocationEnv {
        &self.env
    }

    /// The LS service's QoS target (ms).
    pub fn qos_target_ms(&self) -> f64 {
        self.env.ls().params.qos_target_ms
    }

    /// The LS service's peak load (QPS).
    pub fn peak_qps(&self) -> f64 {
        self.env.ls().params.peak_qps
    }

    /// Offline phase: collect profiling datasets with custom controls.
    pub fn profile(&self, config: ProfilerConfig) -> Result<ProfileDatasets, SturgeonError> {
        Profiler::new(&self.env, config).collect()
    }

    /// Offline phase: profile and train a predictor in one call.
    pub fn train_predictor(
        &self,
        profiler: ProfilerConfig,
        predictor: PredictorConfig,
    ) -> Result<PerfPowerPredictor, SturgeonError> {
        let datasets = self.profile(profiler)?;
        Ok(PerfPowerPredictor::train(
            &datasets,
            predictor,
            self.env.static_power_w(),
            self.env.be().params.input_level as f64,
            self.qos_target_ms(),
        )?)
    }

    /// Paper-default profiling + model families (§V-C picks).
    pub fn train_default_predictor(&self) -> PerfPowerPredictor {
        self.train_predictor(ProfilerConfig::default(), PredictorConfig::default())
            .expect("default profiling must produce valid datasets")
    }

    /// Starts configuring a run with the builder API.
    ///
    /// The builder replaces the positional `run(...)` / `run_with_faults(...)`
    /// calls: pick a controller, then chain whichever knobs the experiment
    /// needs and finish with [`ConfiguredRun::go`].
    pub fn runner(&self) -> RunBuilder<'_> {
        RunBuilder { setup: self }
    }

    /// The single run engine behind the builder. A zero [`FaultPlan`]
    /// (the builder default) makes the trajectory bit-identical to a
    /// fault-free run — the injected faults, not the harness, are the
    /// only source of divergence.
    ///
    /// Telemetry is logged from ground truth (the metrics judge what the
    /// node really did) while the controller sees the faulted stream; the
    /// environment always steps on the configuration *actually installed*,
    /// which under partial/failed actuations can differ from what the
    /// controller believes it requested.
    ///
    /// Tracing contract: when no sink is attached (or a disabled one, like
    /// [`crate::obs::NullSink`]) and no registry is given, no event is
    /// ever constructed — the control trajectory and [`RunResult`] are
    /// bit-identical to an unobserved run.
    // One parameter per builder knob; only `ConfiguredRun::go` calls this.
    #[allow(clippy::too_many_arguments)]
    fn execute(
        &self,
        mut controller: impl ResourceController,
        profile: LoadProfile,
        duration_s: u32,
        plan: &FaultPlan,
        policy: ActuationPolicy,
        mut sink: Option<&mut dyn TraceSink>,
        metrics: Option<&MetricsRegistry>,
    ) -> Result<RunResult, SturgeonError> {
        fn dispatch(
            metrics: Option<&MetricsRegistry>,
            sink: &mut Option<&mut dyn TraceSink>,
            event: &TraceEvent,
        ) {
            if let Some(m) = metrics {
                m.observe_event(event);
            }
            if let Some(s) = sink.as_mut() {
                if s.enabled() {
                    s.record(event);
                }
            }
        }

        let tracing = metrics.is_some() || sink.as_ref().is_some_and(|s| s.enabled());
        if tracing {
            controller.set_tracing(true);
        }

        let mut env = self.env.clone();
        let mut actuators = FaultyActuators::new(SimActuators::new(env.spec().clone()));
        let mut injector = plan.injector();
        let mut log = TelemetryLog::new();
        let mut audit = AuditLog::new();
        let qos_target = self.qos_target_ms();
        let peak = self.peak_qps();
        let budget = self.budget_w();
        let mut report = FaultReport::default();
        let mut overloads: u64 = 0;

        // What the controller believes is installed. Under the hardened
        // policy this is re-synced from a read-back every interval; under
        // the unhardened one it is whatever the controller last requested.
        let mut believed = controller.initial_config(env.spec());
        actuators.apply(believed)?;
        // The last sample actually handed to the controller; a dropout
        // replays it verbatim (frozen collector).
        let mut last_delivered: Option<Observation> = None;

        for t in 0..duration_s {
            let fault = injector.next_interval();
            actuators.begin_interval(fault.actuation);

            let qps = profile.qps_at(t as f64, peak) * fault.qps_mult;
            let truth = env.step(&actuators.config(), qps);
            actuators.push_power(truth.power_w);
            if truth.power_w > budget * fault.budget_mult {
                overloads += 1;
            }
            log.push(IntervalSample {
                t_s: truth.t_s,
                qps: truth.qps,
                p95_ms: truth.p95_ms,
                in_target_fraction: truth.in_target_fraction.min(if truth.p95_ms <= qos_target {
                    1.0
                } else {
                    0.95
                }),
                power_w: truth.power_w,
                be_throughput_norm: truth.be_throughput_norm,
                config: actuators.config(),
            });
            if tracing {
                dispatch(
                    metrics,
                    &mut sink,
                    &TraceEvent::TelemetrySample {
                        t_s: truth.t_s,
                        qps: truth.qps,
                        p95_ms: truth.p95_ms,
                        power_w: truth.power_w,
                        be_throughput_norm: truth.be_throughput_norm,
                    },
                );
                if !fault.is_none() {
                    dispatch(
                        metrics,
                        &mut sink,
                        &TraceEvent::FaultInjected {
                            t_s: truth.t_s,
                            classes: fault.classes(),
                        },
                    );
                }
            }

            let delivered = match fault.telemetry {
                TelemetryFault::None => truth,
                TelemetryFault::Noise {
                    p95_mult,
                    power_mult,
                } => {
                    let mut o = truth;
                    o.p95_ms *= p95_mult;
                    o.power_w *= power_mult;
                    o
                }
                TelemetryFault::Dropout => match last_delivered {
                    // The measured channels repeat bit-for-bit; only the
                    // timestamp advances (the collector's clock still runs).
                    Some(prev) => Observation {
                        t_s: truth.t_s,
                        ..prev
                    },
                    None => truth,
                },
            };
            last_delivered = Some(delivered);

            let next = controller.decide(&delivered, believed);
            if tracing {
                for event in controller.take_trace() {
                    dispatch(metrics, &mut sink, &event);
                }
            }
            if next != believed {
                let mut result = actuators.apply(next);
                let mut attempts = 0;
                while result.is_err() && attempts < policy.max_retries {
                    attempts += 1;
                    report.retries += 1;
                    result = actuators.apply(next);
                    if result.is_ok() {
                        report.retry_successes += 1;
                    }
                }
                let installed = actuators.config();
                let outcome = match result {
                    Ok(()) if installed == next => ActuationOutcome::Applied,
                    Ok(()) => ActuationOutcome::Partial,
                    Err(_) => {
                        report.failed_actuations += 1;
                        ActuationOutcome::Failed
                    }
                };
                if tracing {
                    if attempts > 0 {
                        dispatch(
                            metrics,
                            &mut sink,
                            &TraceEvent::ActuationRetry {
                                t_s: truth.t_s,
                                attempts,
                                recovered: result.is_ok(),
                            },
                        );
                    }
                    dispatch(
                        metrics,
                        &mut sink,
                        &TraceEvent::ConfigApplied {
                            t_s: truth.t_s,
                            from: believed,
                            to: installed,
                            outcome,
                        },
                    );
                }
                // `installed == next` for a clean apply, so the audit's
                // `to` field always records what actually landed.
                audit.record_outcome(truth.t_s, controller.name(), believed, installed, outcome);
                believed = if policy.verify { installed } else { next };
            }
            if believed != actuators.config() {
                report.divergence_intervals += 1;
            }
        }

        let stats = injector.stats();
        report.faults_seen = stats.total();
        report.telemetry_noise = stats.telemetry_noise;
        report.telemetry_dropouts = stats.telemetry_dropouts;
        report.actuation_stuck = stats.actuation_stuck;
        report.actuation_transient = stats.actuation_transient;
        report.actuation_partial = stats.actuation_partial;
        report.qps_spikes = stats.qps_spikes;
        report.budget_cuts = stats.budget_cuts;
        let counters = controller.fault_counters();
        report.stale_intervals = counters.stale_intervals;
        report.safe_mode_entries = counters.safe_mode_entries;
        report.balancer_retry_rounds = counters.balancer_retry_rounds;

        if let Some(s) = sink.as_mut() {
            s.flush()?;
        }

        Ok(RunResult {
            controller: controller.name(),
            pair: self.pair.label(),
            qos_rate: log.qos_guarantee_rate(),
            mean_be_throughput: log.mean_be_throughput(),
            overload_fraction: if duration_s == 0 {
                0.0
            } else {
                overloads as f64 / duration_s as f64
            },
            peak_power_w: log.peak_power_w(),
            budget_w: budget,
            log,
            audit,
            faults: report,
        })
    }

    /// The RNG seed in use (printed by every experiment binary).
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// First stage of the builder-style run API: names the controller.
///
/// Obtained from [`ExperimentSetup::runner`]; see the module docs for a
/// complete example.
#[derive(Debug, Clone, Copy)]
pub struct RunBuilder<'a> {
    setup: &'a ExperimentSetup,
}

impl<'a> RunBuilder<'a> {
    /// Chooses the controller under test and moves on to the run knobs.
    pub fn controller<C: ResourceController>(self, controller: C) -> ConfiguredRun<'a, C> {
        ConfiguredRun {
            setup: self.setup,
            controller,
            profile: None,
            duration_s: 600,
            plan: FaultPlan::none(0),
            policy: ActuationPolicy::hardened(),
            sink: None,
            metrics: None,
        }
    }
}

/// A fully described run, ready to [`go`](ConfiguredRun::go).
///
/// Defaults: the paper's fluctuating load over the run length, 600
/// one-second intervals, no injected faults, the hardened actuation
/// policy, and no observability (no trace sink, no metrics registry) —
/// i.e. the plain evaluation run of Figs. 9/10.
pub struct ConfiguredRun<'a, C: ResourceController> {
    setup: &'a ExperimentSetup,
    controller: C,
    profile: Option<LoadProfile>,
    duration_s: u32,
    plan: FaultPlan,
    policy: ActuationPolicy,
    sink: Option<&'a mut dyn TraceSink>,
    metrics: Option<&'a MetricsRegistry>,
}

impl<'a, C: ResourceController> ConfiguredRun<'a, C> {
    /// Drives the run with this load profile (default: the paper's
    /// 20% → 80% → 20% fluctuation across the whole run).
    pub fn load(mut self, profile: LoadProfile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Number of one-second control intervals to simulate (default 600).
    pub fn intervals(mut self, duration_s: u32) -> Self {
        self.duration_s = duration_s;
        self
    }

    /// Injects this deterministic fault plan (default: no faults).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// How the harness reacts to actuation failures (default: hardened).
    pub fn policy(mut self, policy: ActuationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Streams every [`TraceEvent`] of the run into `sink`.
    pub fn trace(mut self, sink: &'a mut dyn TraceSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Aggregates the run's events into `registry` (counters, gauges and
    /// latency/power histograms; see [`MetricsRegistry::observe_event`]).
    pub fn metrics(mut self, registry: &'a MetricsRegistry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Executes the run.
    pub fn go(self) -> Result<RunResult, SturgeonError> {
        let profile = self
            .profile
            .unwrap_or_else(|| LoadProfile::paper_fluctuating(self.duration_s as f64));
        self.setup.execute(
            self.controller,
            profile,
            self.duration_s,
            &self.plan,
            self.policy,
            self.sink,
            self.metrics,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::StaticReservationController;
    use crate::controller::{ControllerParams, SturgeonController};

    fn fast_profiler() -> ProfilerConfig {
        ProfilerConfig {
            ls_samples_per_load: 90,
            ls_load_fractions: vec![0.15, 0.2, 0.3, 0.4, 0.5, 0.65, 0.8],
            be_samples: 400,
            seed: 21,
        }
    }

    #[test]
    fn static_reservation_has_perfect_qos_and_no_throughput() {
        let setup = ExperimentSetup::new(
            ColocationPair::new(LsServiceId::Memcached, BeAppId::Blackscholes),
            1,
        );
        let r = setup
            .runner()
            .controller(StaticReservationController)
            .load(LoadProfile::Constant { fraction: 0.3 })
            .intervals(60)
            .go()
            .unwrap();
        assert!(r.qos_rate > 0.99, "QoS rate {}", r.qos_rate);
        assert!(r.mean_be_throughput < 0.05);
        assert!(!r.suffers_overload());
    }

    #[test]
    fn sturgeon_run_improves_throughput_and_keeps_qos() {
        let pair = ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace);
        let setup = ExperimentSetup::new(pair, 2);
        let predictor = setup
            .train_predictor(fast_profiler(), PredictorConfig::default())
            .unwrap();
        let controller = SturgeonController::new(
            predictor,
            setup.spec().clone(),
            setup.budget_w(),
            setup.qos_target_ms(),
            ControllerParams::default(),
        );
        let r = setup
            .runner()
            .controller(controller)
            .load(LoadProfile::Constant { fraction: 0.25 })
            .intervals(90)
            .go()
            .unwrap();
        assert!(r.qos_rate > 0.9, "QoS rate {}", r.qos_rate);
        assert!(
            r.mean_be_throughput > 0.3,
            "BE throughput {}",
            r.mean_be_throughput
        );
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let pair = ColocationPair::new(LsServiceId::Xapian, BeAppId::Ferret);
        let setup = ExperimentSetup::new(pair, 7);
        let run = || {
            setup
                .runner()
                .controller(StaticReservationController)
                .load(LoadProfile::paper_fluctuating(60.0))
                .intervals(60)
                .go()
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.qos_rate, b.qos_rate);
        assert_eq!(a.peak_power_w, b.peak_power_w);
    }

    #[test]
    fn run_length_matches_duration() {
        let setup = ExperimentSetup::new(
            ColocationPair::new(LsServiceId::ImgDnn, BeAppId::Swaptions),
            3,
        );
        let r = setup
            .runner()
            .controller(StaticReservationController)
            .load(LoadProfile::Constant { fraction: 0.2 })
            .intervals(42)
            .go()
            .unwrap();
        assert_eq!(r.log.len(), 42);
    }

    #[test]
    fn zero_fault_plan_reproduces_fault_free_run() {
        let pair = ColocationPair::new(LsServiceId::Xapian, BeAppId::Ferret);
        let setup = ExperimentSetup::new(pair, 7);
        let clean = setup
            .runner()
            .controller(StaticReservationController)
            .load(LoadProfile::paper_fluctuating(60.0))
            .intervals(60)
            .go()
            .unwrap();
        let faulted = setup
            .runner()
            .controller(StaticReservationController)
            .load(LoadProfile::paper_fluctuating(60.0))
            .intervals(60)
            .faults(FaultPlan::none(123))
            .go()
            .unwrap();
        assert_eq!(clean.log.samples(), faulted.log.samples());
        assert_eq!(clean.qos_rate, faulted.qos_rate);
        assert_eq!(clean.overload_fraction, faulted.overload_fraction);
        assert_eq!(clean.audit.entries(), faulted.audit.entries());
        assert_eq!(faulted.faults, FaultReport::default());
    }

    #[test]
    fn actuation_faults_are_counted_and_retried() {
        let pair = ColocationPair::new(LsServiceId::Memcached, BeAppId::Raytrace);
        let setup = ExperimentSetup::new(pair, 2);
        let predictor = setup
            .train_predictor(fast_profiler(), PredictorConfig::default())
            .unwrap();
        let controller = SturgeonController::new(
            predictor,
            setup.spec().clone(),
            setup.budget_w(),
            setup.qos_target_ms(),
            ControllerParams::hardened(),
        );
        let r = setup
            .runner()
            .controller(controller)
            .load(LoadProfile::paper_fluctuating(120.0))
            .intervals(120)
            .faults(FaultPlan::actuation_faults(5, 0.3))
            .go()
            .unwrap();
        let f = &r.faults;
        assert!(f.faults_seen > 0, "30% fault rate must fire in 120 s");
        assert_eq!(
            f.faults_seen,
            f.actuation_stuck + f.actuation_transient + f.actuation_partial
        );
        // The hardened policy re-syncs belief every interval, so the
        // controller never stays desynchronized from the node.
        assert_eq!(f.divergence_intervals, 0);
        // Every interval's installed config is valid.
        for s in r.log.samples() {
            assert!(s.config.validate(setup.spec()).is_ok());
        }
    }

    #[test]
    fn all_pairs_enumerates_18() {
        assert_eq!(ColocationPair::all().count(), 18);
    }

    #[test]
    fn labels_are_paper_style() {
        let p = ColocationPair::new(LsServiceId::Memcached, BeAppId::Blackscholes);
        assert_eq!(p.label(), "memcached+blackscholes");
    }
}
