//! Cluster-level operation (paper Fig. 4): "the queries sent by users are
//! first dispatched to each server by the cluster-level scheduler;
//! Sturgeon runs on each node and manages shared resources."
//!
//! This module provides that top half: a cluster of simulated nodes, each
//! running its own Sturgeon controller against its own co-location
//! environment, and a dispatcher that splits the cluster-wide query
//! stream across them. It exists to demonstrate (and test) the paper's
//! deployment model — per-node autonomy, no cross-node coordination —
//! and to measure fleet-level effects (aggregate BE throughput, stranded
//! power) that single-node runs cannot show.

use crate::controller::{
    ControllerFaultCounters, ControllerParams, ResourceController, SturgeonController,
};
use crate::dispatch::Dispatcher;
use crate::error::SturgeonError;
use crate::experiment::{ColocationPair, ExperimentSetup};
use crate::obs::MetricsRegistry;
use rayon::prelude::*;
use sturgeon_simnode::{IntervalSample, SimActuators, TelemetryLog};
use sturgeon_workloads::env::CoLocationEnv;
use sturgeon_workloads::loadgen::LoadProfile;

pub use crate::dispatch::DispatchPolicy;

/// One node of the cluster: environment + actuators + controller.
struct NodeRuntime {
    env: CoLocationEnv,
    actuators: SimActuators,
    controller: SturgeonController,
    config: sturgeon_simnode::PairConfig,
    log: TelemetryLog,
    last_p95_ms: f64,
    /// The node's load share for the interval being stepped, staged here
    /// so the parallel step needs no per-interval work list.
    next_qps: f64,
}

/// Per-node summary after a cluster run.
#[derive(Debug, Clone)]
pub struct NodeResult {
    /// Node index.
    pub node: usize,
    /// QoS guarantee rate of the node's LS shard.
    pub qos_rate: f64,
    /// Mean normalized BE throughput on the node.
    pub mean_be_throughput: f64,
    /// Fraction of intervals over the node's power budget.
    pub overload_fraction: f64,
    /// Mean node power (W).
    pub mean_power_w: f64,
    /// Safe-mode entries observed by this node's controller (in a
    /// sharded fleet every node of a shard reports its shard
    /// controller's count) — the per-node signal the placement layer's
    /// migration trigger and the degradation tests key on.
    pub safe_mode_entries: u64,
}

/// Cluster-wide results.
#[derive(Debug, Clone)]
pub struct ClusterResult {
    /// Per-node summaries.
    pub nodes: Vec<NodeResult>,
    /// Query-weighted cluster QoS guarantee rate.
    pub qos_rate: f64,
    /// Sum of mean normalized BE throughput across nodes ("machines worth
    /// of batch work recovered").
    pub total_be_throughput: f64,
    /// Mean total cluster power (W).
    pub mean_cluster_power_w: f64,
    /// Sum of per-node budgets (W) — the cluster's provisioned power.
    pub cluster_budget_w: f64,
    /// Robustness counters summed across every node's controller (all
    /// zeros when nothing degraded fleet-wide).
    pub fault_counters: ControllerFaultCounters,
}

/// A homogeneous cluster of Sturgeon nodes serving one LS service.
pub struct Cluster {
    nodes: Vec<NodeRuntime>,
    dispatcher: Dispatcher,
    peak_qps_per_node: f64,
    /// Reusable per-node p95 summary buffer fed to the dispatcher each
    /// interval instead of allocated.
    p95_buf: Vec<f64>,
}

impl Cluster {
    /// Builds a cluster of `n` nodes for one co-location pair. Each node
    /// trains its own predictor (offline phase) and gets an independent
    /// interference seed.
    ///
    /// Panics on an invalid policy; use [`Cluster::try_new`] where the
    /// policy comes from user input.
    pub fn new(pair: ColocationPair, n: usize, policy: DispatchPolicy, seed: u64) -> Self {
        Self::try_new(pair, n, policy, seed).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Cluster::new`]: reports an invalid node count or
    /// dispatch policy as [`SturgeonError::Setup`] instead of panicking.
    pub fn try_new(
        pair: ColocationPair,
        n: usize,
        policy: DispatchPolicy,
        seed: u64,
    ) -> Result<Self, SturgeonError> {
        Self::try_new_with_params(pair, n, policy, seed, ControllerParams::default())
    }

    /// Like [`Cluster::try_new`] but with explicit controller parameters
    /// for every node — e.g. to run the whole fleet on the frontier-pruned
    /// search strategy.
    pub fn try_new_with_params(
        pair: ColocationPair,
        n: usize,
        policy: DispatchPolicy,
        seed: u64,
        params: ControllerParams,
    ) -> Result<Self, SturgeonError> {
        if n == 0 {
            return Err(SturgeonError::setup("cluster needs at least one node"));
        }
        // The cluster is homogeneous: peak load and QoS target are pair
        // properties, identical for every node, so read them once from
        // the first setup instead of overwriting them per iteration.
        let first = ExperimentSetup::new(pair, seed);
        let peak = first.peak_qps();
        let target = first.qos_target_ms();
        let dispatcher = Dispatcher::try_new(policy, n, target)?;
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let setup = if i == 0 {
                first.clone()
            } else {
                ExperimentSetup::new(pair, seed.wrapping_add(i as u64))
            };
            let predictor = setup.train_default_predictor();
            let controller = SturgeonController::new(
                predictor,
                setup.spec().clone(),
                setup.budget_w(),
                setup.qos_target_ms(),
                params,
            );
            let env = setup.env().clone();
            let actuators = SimActuators::new(env.spec().clone());
            let config = controller.initial_config(env.spec());
            // A rejected initial configuration is a setup defect, not a
            // panic-worthy invariant: report it through the same error
            // channel as every other constructor failure.
            actuators.apply(config).map_err(|e| {
                SturgeonError::setup(format!("node {i}: initial actuation failed: {e}"))
            })?;
            nodes.push(NodeRuntime {
                env,
                actuators,
                controller,
                config,
                log: TelemetryLog::new(),
                last_p95_ms: 0.0,
                next_qps: 0.0,
            });
        }
        Ok(Self {
            nodes,
            dispatcher,
            peak_qps_per_node: peak,
            p95_buf: vec![0.0; n],
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the cluster has no nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Aggregate peak capacity (QPS) of the cluster.
    pub fn peak_qps(&self) -> f64 {
        self.peak_qps_per_node * self.nodes.len() as f64
    }

    /// Computes this interval's dispatch weights from the nodes'
    /// last-interval p95 summaries (see [`Dispatcher::fill_weights`]).
    fn fill_weights(&mut self) -> &[f64] {
        for (slot, node) in self.p95_buf.iter_mut().zip(&self.nodes) {
            *slot = node.last_p95_ms;
        }
        self.dispatcher.fill_weights(&self.p95_buf)
    }

    /// One node's monitor → decide → actuate interval at its staged
    /// `next_qps` share.
    fn step_node(node: &mut NodeRuntime) {
        let qps = node.next_qps;
        let obs = node.env.step(&node.actuators.config(), qps);
        node.actuators.push_power(obs.power_w);
        node.last_p95_ms = obs.p95_ms;
        node.log.push(IntervalSample {
            t_s: obs.t_s,
            qps: obs.qps,
            p95_ms: obs.p95_ms,
            in_target_fraction: obs.in_target_fraction,
            power_w: obs.power_w,
            be_throughput_norm: obs.be_throughput_norm,
            config: node.actuators.config(),
        });
        let next = node.controller.decide(&obs, node.config);
        if next != node.config {
            node.actuators.apply(next).expect("valid config");
            node.config = next;
        }
    }

    /// Runs the cluster for `duration_s` intervals under a *cluster-wide*
    /// load profile whose fraction applies to the aggregate peak.
    ///
    /// Nodes step in parallel across the rayon pool: the paper's
    /// deployment model has no cross-node coordination, so each interval
    /// is embarrassingly parallel once the dispatch weights are fixed.
    pub fn run(&mut self, profile: LoadProfile, duration_s: u32) -> ClusterResult {
        for t in 0..duration_s {
            let total_qps = profile.qps_at(t as f64, self.peak_qps());
            self.fill_weights();
            for (node, w) in self.nodes.iter_mut().zip(self.dispatcher.weights()) {
                node.next_qps = total_qps * w;
            }
            self.nodes.par_iter_mut().for_each(Self::step_node);
        }
        self.result()
    }

    /// Like [`Cluster::run`], but aggregates the fleet's telemetry into
    /// `registry` after the run: per-interval p95/power/BE-throughput
    /// histograms across every node, summed robustness counters, and
    /// cluster-level gauges. Aggregation happens post-run in node order,
    /// so the registry contents are deterministic even though nodes step
    /// in parallel.
    pub fn run_with_metrics(
        &mut self,
        profile: LoadProfile,
        duration_s: u32,
        registry: &MetricsRegistry,
    ) -> ClusterResult {
        let result = self.run(profile, duration_s);
        registry.set_gauge("cluster.nodes", self.nodes.len() as f64);
        for node in &self.nodes {
            for s in node.log.samples() {
                registry.inc("run.intervals");
                registry.observe("interval.p95_ms", s.p95_ms);
                registry.observe("interval.power_w", s.power_w);
                registry.observe_with(
                    "interval.be_throughput",
                    &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0],
                    s.be_throughput_norm,
                );
            }
        }
        let c = &result.fault_counters;
        registry.add("controller.stale_intervals", c.stale_intervals);
        registry.add("controller.safe_mode_entries", c.safe_mode_entries);
        registry.add("balancer.retry_rounds", c.balancer_retry_rounds);
        let mut pruned_cells = 0u64;
        let mut pruned_slices = 0u64;
        let mut frontier_reuses = 0u64;
        for node in &self.nodes {
            let (cells, slices, reuses) = node.controller.pruned_totals();
            pruned_cells += cells;
            pruned_slices += slices;
            frontier_reuses += reuses;
        }
        registry.add("search.pruned_candidates", pruned_cells);
        registry.add("search.pruned_subspaces", pruned_slices);
        registry.add("search.frontier_reuses", frontier_reuses);
        registry.set_gauge("cluster.qos_rate", result.qos_rate);
        registry.set_gauge("cluster.total_be_throughput", result.total_be_throughput);
        registry.set_gauge("cluster.mean_power_w", result.mean_cluster_power_w);
        registry.set_gauge("cluster.budget_w", result.cluster_budget_w);
        result
    }

    fn result(&self) -> ClusterResult {
        let mut nodes = Vec::with_capacity(self.nodes.len());
        let mut total_q = 0.0;
        let mut in_target_q = 0.0;
        let mut total_tput = 0.0;
        let mut total_power = 0.0;
        let mut budget = 0.0;
        let mut fault_counters = ControllerFaultCounters::default();
        for (i, node) in self.nodes.iter().enumerate() {
            let c = node.controller.fault_counters();
            fault_counters.stale_intervals += c.stale_intervals;
            fault_counters.safe_mode_entries += c.safe_mode_entries;
            fault_counters.balancer_retry_rounds += c.balancer_retry_rounds;
            let qos = node.log.qos_guarantee_rate();
            let tput = node.log.mean_be_throughput();
            let node_budget = node.env.budget_w();
            let mean_power = if node.log.is_empty() {
                0.0
            } else {
                node.log.samples().iter().map(|s| s.power_w).sum::<f64>() / node.log.len() as f64
            };
            let q: f64 = node.log.samples().iter().map(|s| s.qps).sum();
            total_q += q;
            in_target_q += q * qos;
            total_tput += tput;
            total_power += mean_power;
            budget += node_budget;
            nodes.push(NodeResult {
                node: i,
                qos_rate: qos,
                mean_be_throughput: tput,
                overload_fraction: node.log.overload_fraction(node_budget),
                mean_power_w: mean_power,
                safe_mode_entries: c.safe_mode_entries,
            });
        }
        ClusterResult {
            nodes,
            qos_rate: if total_q > 0.0 {
                in_target_q / total_q
            } else {
                1.0
            },
            total_be_throughput: total_tput,
            mean_cluster_power_w: total_power,
            cluster_budget_w: budget,
            fault_counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sturgeon_workloads::catalog::{BeAppId, LsServiceId};

    fn pair() -> ColocationPair {
        ColocationPair::new(LsServiceId::Xapian, BeAppId::Swaptions)
    }

    #[test]
    fn even_cluster_holds_qos_and_recovers_batch_work() {
        let mut cluster = Cluster::new(pair(), 3, DispatchPolicy::Even, 42);
        assert_eq!(cluster.len(), 3);
        let r = cluster.run(LoadProfile::Constant { fraction: 0.3 }, 100);
        assert!(r.qos_rate > 0.9, "cluster QoS {}", r.qos_rate);
        assert!(
            r.total_be_throughput > 1.0,
            "3 nodes should recover > 1 machine of batch work, got {}",
            r.total_be_throughput
        );
        assert!(r.mean_cluster_power_w <= r.cluster_budget_w * 1.02);
        assert_eq!(r.nodes.len(), 3);
        // Default (non-hardened) controllers never enter the degradation
        // machinery, so the aggregated counters stay zero.
        assert_eq!(r.fault_counters.stale_intervals, 0);
        assert_eq!(r.fault_counters.safe_mode_entries, 0);
    }

    #[test]
    fn weighted_dispatch_loads_nodes_unevenly() {
        let mut cluster = Cluster::new(pair(), 2, DispatchPolicy::Weighted(vec![3.0, 1.0]), 7);
        let _ = cluster.run(LoadProfile::Constant { fraction: 0.3 }, 40);
        let q0: f64 = cluster.nodes[0].log.samples().iter().map(|s| s.qps).sum();
        let q1: f64 = cluster.nodes[1].log.samples().iter().map(|s| s.qps).sum();
        assert!((q0 / q1 - 3.0).abs() < 0.01, "ratio {}", q0 / q1);
    }

    #[test]
    fn latency_aware_dispatch_shifts_load_away_from_slow_nodes() {
        let mut cluster = Cluster::new(pair(), 2, DispatchPolicy::LatencyAware, 11);
        // Prime node 0 as "slow" and node 1 as "fast".
        cluster.nodes[0].last_p95_ms = 14.0; // near the 15 ms target
        cluster.nodes[1].last_p95_ms = 2.0;
        let w = cluster.fill_weights().to_vec();
        assert!(w[1] > w[0], "fast node must receive more load: {w:?}");
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn latency_aware_cluster_holds_qos_under_fluctuating_load() {
        // Regression guard: an undamped headroom policy oscillates against
        // the per-node controllers and collapses QoS to ~25%; the damped
        // policy must match even dispatch.
        let mut cluster = Cluster::new(pair(), 2, DispatchPolicy::LatencyAware, 5);
        let r = cluster.run(LoadProfile::paper_fluctuating(200.0), 200);
        assert!(
            r.qos_rate > 0.93,
            "latency-aware cluster QoS {}",
            r.qos_rate
        );
        assert!(r.mean_cluster_power_w <= r.cluster_budget_w);
    }

    #[test]
    #[should_panic(expected = "one weight per node")]
    fn weighted_policy_validates_length() {
        let _ = Cluster::new(pair(), 2, DispatchPolicy::Weighted(vec![1.0]), 1);
    }

    #[test]
    fn try_new_reports_setup_errors() {
        let err = Cluster::try_new(pair(), 0, DispatchPolicy::Even, 1)
            .err()
            .unwrap();
        assert!(matches!(err, SturgeonError::Setup(_)), "got {err}");
        let err = Cluster::try_new(pair(), 2, DispatchPolicy::Weighted(vec![-1.0, 2.0]), 1)
            .err()
            .unwrap();
        assert!(err.to_string().contains("non-negative"), "got {err}");
    }

    #[test]
    fn run_with_metrics_fills_registry() {
        let mut cluster = Cluster::new(pair(), 2, DispatchPolicy::Even, 42);
        let registry = MetricsRegistry::new();
        let r = cluster.run_with_metrics(LoadProfile::Constant { fraction: 0.3 }, 30, &registry);
        // Two nodes × 30 intervals, all aggregated post-run.
        assert_eq!(registry.counter("run.intervals"), 60);
        assert_eq!(registry.gauge("cluster.nodes"), Some(2.0));
        assert_eq!(registry.gauge("cluster.qos_rate"), Some(r.qos_rate));
        let p95 = registry.histogram("interval.p95_ms").unwrap();
        assert_eq!(p95.count, 60);
    }

    #[test]
    fn pruned_strategy_fleet_steps_and_reports_prune_counters() {
        use crate::search::{SearchParams, SearchStrategy};
        let params = ControllerParams {
            search: SearchParams {
                strategy: SearchStrategy::FrontierPruned,
                ..SearchParams::default()
            },
            ..ControllerParams::default()
        };
        let mut cluster =
            Cluster::try_new_with_params(pair(), 2, DispatchPolicy::Even, 42, params).unwrap();
        let registry = MetricsRegistry::new();
        // A triangle wave revisits its load levels on the way back down,
        // so later searches land in QPS buckets the frontier cache has
        // already seen.
        let r = cluster.run_with_metrics(LoadProfile::paper_fluctuating(80.0), 80, &registry);
        // The exact engine optimizes over the whole space, so the fleet
        // must still hold QoS (lenient: the exhaustive-equivalent pick can
        // sit closer to the feasibility edge than the hardened heuristic).
        assert!(r.qos_rate > 0.8, "pruned fleet QoS {}", r.qos_rate);
        assert!(
            registry.counter("search.pruned_candidates") > 0,
            "table bounds must prune at fleet scale"
        );
        assert!(
            registry.counter("search.frontier_reuses") > 0,
            "revisited load levels must hit the frontier cache"
        );
    }

    #[test]
    fn aggregate_peak_scales_with_nodes() {
        let c1 = Cluster::new(pair(), 1, DispatchPolicy::Even, 1);
        let c3 = Cluster::new(pair(), 3, DispatchPolicy::Even, 1);
        assert!((c3.peak_qps() - 3.0 * c1.peak_qps()).abs() < 1e-9);
    }
}
