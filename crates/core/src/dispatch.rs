//! The cluster-level query dispatcher (paper Fig. 4, top half).
//!
//! "The queries sent by users are first dispatched to each server by the
//! cluster-level scheduler." This module owns that scheduler: a
//! [`DispatchPolicy`] describes how the aggregate query stream splits
//! across serving units (nodes in a [`crate::cluster::Cluster`], shards
//! in a [`crate::fleet::Fleet`]), and a [`Dispatcher`] turns the policy
//! plus last-interval latency summaries into normalized weights without
//! per-interval allocation.

use crate::error::SturgeonError;

/// How the cluster scheduler splits the offered load across serving
/// units.
#[derive(Debug, Clone, PartialEq)]
pub enum DispatchPolicy {
    /// Equal share to every unit.
    Even,
    /// Fixed weights (normalized internally; must be non-negative, not
    /// all zero).
    Weighted(Vec<f64>),
    /// Adaptive: each interval, weight units by their latency headroom in
    /// the previous interval (a unit near its QoS target receives less).
    /// Weights are EWMA-smoothed and the spread is bounded (≤ 2:1) —
    /// latency signals lag one interval, and an undamped headroom policy
    /// oscillates against the per-node controllers.
    LatencyAware,
}

/// Reusable weight engine for one dispatch policy over `n` units.
///
/// The LatencyAware policy is stateful (EWMA smoothing); the others are
/// pure. All buffers are allocated once at construction and refilled in
/// place every interval.
#[derive(Debug, Clone)]
pub struct Dispatcher {
    policy: DispatchPolicy,
    qos_target_ms: f64,
    /// EWMA-smoothed per-unit weights (LatencyAware only).
    smoothed: Vec<f64>,
    /// Scratch buffer for the per-unit headroom targets, so each target
    /// is computed exactly once per interval.
    targets: Vec<f64>,
    /// The normalized weights of the most recent interval.
    weights: Vec<f64>,
}

impl Dispatcher {
    /// Builds a dispatcher over `n` units, validating the policy.
    pub fn try_new(
        policy: DispatchPolicy,
        n: usize,
        qos_target_ms: f64,
    ) -> Result<Self, SturgeonError> {
        if n == 0 {
            return Err(SturgeonError::setup("dispatcher needs at least one unit"));
        }
        if let DispatchPolicy::Weighted(w) = &policy {
            if w.len() != n {
                return Err(SturgeonError::setup("one weight per node"));
            }
            if !w.iter().all(|&x| x >= 0.0) {
                return Err(SturgeonError::setup("weights must be non-negative"));
            }
            if w.iter().sum::<f64>() <= 0.0 {
                return Err(SturgeonError::setup("weights must not all be zero"));
            }
        }
        Ok(Self {
            policy,
            qos_target_ms,
            smoothed: vec![1.0 / n as f64; n],
            targets: vec![0.0; n],
            weights: vec![0.0; n],
        })
    }

    /// The policy in force.
    pub fn policy(&self) -> &DispatchPolicy {
        &self.policy
    }

    /// Number of serving units.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when the dispatcher has no units (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Computes this interval's normalized weights from the units'
    /// last-interval p95 summaries (`last_p95_ms.len()` must equal the
    /// unit count; only LatencyAware reads it). The LatencyAware policy
    /// mutates its EWMA state. No per-interval allocation.
    pub fn fill_weights(&mut self, last_p95_ms: &[f64]) -> &[f64] {
        let n = self.weights.len();
        assert_eq!(last_p95_ms.len(), n, "one p95 summary per unit");
        match &self.policy {
            DispatchPolicy::Even => self.weights.fill(1.0 / n as f64),
            DispatchPolicy::Weighted(w) => {
                let sum: f64 = w.iter().sum();
                for (out, &x) in self.weights.iter_mut().zip(w) {
                    *out = x / sum;
                }
            }
            DispatchPolicy::LatencyAware => {
                // Bounded headroom target (spread ≤ 2:1), EWMA-damped:
                // the latency signal lags one interval, so an aggressive
                // proportional policy oscillates against the per-node
                // controllers and shreds everyone's QoS. Each target is
                // computed once into the scratch buffer, then normalized.
                let qos_target_ms = self.qos_target_ms;
                for (t, &p95) in self.targets.iter_mut().zip(last_p95_ms) {
                    let headroom = ((qos_target_ms - p95) / qos_target_ms).clamp(0.0, 1.0);
                    *t = 0.5 + 0.5 * headroom;
                }
                let sum: f64 = self.targets.iter().sum();
                for (s, &t) in self.smoothed.iter_mut().zip(&self.targets) {
                    *s = 0.9 * *s + 0.1 * (t / sum);
                }
                let total: f64 = self.smoothed.iter().sum();
                for (out, &s) in self.weights.iter_mut().zip(&self.smoothed) {
                    *out = s / total;
                }
            }
        }
        &self.weights
    }

    /// The weights computed by the most recent
    /// [`fill_weights`](Self::fill_weights) call.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_splits_equally() {
        let mut d = Dispatcher::try_new(DispatchPolicy::Even, 4, 15.0).unwrap();
        let w = d.fill_weights(&[0.0; 4]).to_vec();
        assert_eq!(w, vec![0.25; 4]);
    }

    #[test]
    fn weighted_normalizes() {
        let mut d = Dispatcher::try_new(DispatchPolicy::Weighted(vec![3.0, 1.0]), 2, 15.0).unwrap();
        let w = d.fill_weights(&[0.0, 0.0]).to_vec();
        assert!((w[0] - 0.75).abs() < 1e-12);
        assert!((w[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn latency_aware_prefers_headroom_and_stays_bounded() {
        let mut d = Dispatcher::try_new(DispatchPolicy::LatencyAware, 2, 15.0).unwrap();
        // Unit 0 near the target, unit 1 far below: after many intervals
        // the EWMA converges toward the bounded targets.
        let mut w = Vec::new();
        for _ in 0..200 {
            w = d.fill_weights(&[14.0, 2.0]).to_vec();
        }
        assert!(w[1] > w[0], "fast unit gets more: {w:?}");
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w[1] / w[0] <= 2.0 + 1e-9, "spread bounded: {w:?}");
    }

    #[test]
    fn rejects_bad_setups() {
        assert!(Dispatcher::try_new(DispatchPolicy::Even, 0, 15.0).is_err());
        assert!(Dispatcher::try_new(DispatchPolicy::Weighted(vec![1.0]), 2, 15.0).is_err());
        assert!(Dispatcher::try_new(DispatchPolicy::Weighted(vec![-1.0, 2.0]), 2, 15.0).is_err());
        assert!(Dispatcher::try_new(DispatchPolicy::Weighted(vec![0.0, 0.0]), 2, 15.0).is_err());
    }
}
