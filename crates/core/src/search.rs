//! Configuration search (paper §V-B): find the feasible configuration
//! maximizing BE throughput without sweeping the O(N⁴) space.
//!
//! The key insight is monotonicity: application performance rises with
//! every resource, so "just enough for the LS service" is a binary-search
//! target, and the maximum BE frequency under the power budget is another.
//! The resulting complexity is O(N log N) model calls:
//!
//! 1. fix F1 and L1 at maximum, binary-search the minimum C1 meeting QoS;
//! 2. binary-search the minimum L1, then minimum F1;
//! 3. C2 and L2 follow by subtraction; binary-search the maximum F2 that
//!    keeps total power within budget;
//! 4. grow C1 from its minimum, rebuilding each candidate the same way,
//!    until the BE application reaches maximum frequency;
//! 5. pick the candidate with the highest predicted BE throughput.
//!
//! An exhaustive-search oracle is provided for the §VII-E overhead
//! comparison and for validating the fast path in tests.

use crate::predictor::PerfPowerPredictor;
use std::time::{Duration, Instant};
use sturgeon_simnode::{Allocation, NodeSpec, PairConfig};

/// Search-space limits and toggles.
#[derive(Debug, Clone, Copy)]
pub struct SearchParams {
    /// Keep at least this many cores for the BE partition (≥ 1: cpuset
    /// partitions cannot be empty).
    pub min_be_cores: u32,
    /// Keep at least this many LLC ways for the BE partition.
    pub min_be_ways: u32,
    /// Relative load drift the power check anticipates: between two
    /// searches the load can keep rising, and the LS partition's power
    /// rises with it, so budget feasibility is evaluated at
    /// `qps · (1 + power_load_headroom)`.
    pub power_load_headroom: f64,
}

impl Default for SearchParams {
    fn default() -> Self {
        Self {
            min_be_cores: 1,
            min_be_ways: 1,
            power_load_headroom: 0.08,
        }
    }
}

/// Instrumentation for the §VII-E overhead accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchStats {
    /// Model invocations consumed by the search.
    pub model_calls: u64,
    /// Candidate configurations fully evaluated.
    pub candidates: usize,
    /// Wall-clock duration of the search.
    pub duration: Duration,
}

/// The search result.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Best feasible configuration, if any exists. `None` means even
    /// giving the LS service everything cannot meet QoS (the controller
    /// then applies the all-to-LS fallback).
    pub best: Option<PairConfig>,
    /// Predicted BE throughput of `best` (0 when `best` is `None`).
    pub predicted_throughput: f64,
    /// Instrumentation.
    pub stats: SearchStats,
}

/// Binary-search the least `x` in `[lo, hi]` with `pred(x)` true, given
/// that `pred` is monotone (false…false true…true). `None` if all false.
pub fn least_satisfying(lo: u32, hi: u32, mut pred: impl FnMut(u32) -> bool) -> Option<u32> {
    if lo > hi || !pred(hi) {
        return None;
    }
    let (mut lo, mut hi) = (lo, hi);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo)
}

/// Binary-search the greatest `x` in `[lo, hi]` with `pred(x)` true, given
/// that `pred` is monotone (true…true false…false). `None` if all false.
pub fn greatest_satisfying(lo: u32, hi: u32, mut pred: impl FnMut(u32) -> bool) -> Option<u32> {
    if lo > hi || !pred(lo) {
        return None;
    }
    let (mut lo, mut hi) = (lo, hi);
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if pred(mid) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    Some(lo)
}

/// The configuration searcher. Borrows the predictor; cheap to construct
/// per control interval.
#[derive(Debug)]
pub struct ConfigSearch<'p> {
    predictor: &'p PerfPowerPredictor,
    spec: NodeSpec,
    budget_w: f64,
    params: SearchParams,
}

impl<'p> ConfigSearch<'p> {
    /// A searcher over the node `spec` with the given power budget.
    pub fn new(
        predictor: &'p PerfPowerPredictor,
        spec: NodeSpec,
        budget_w: f64,
        params: SearchParams,
    ) -> Self {
        Self {
            predictor,
            spec,
            budget_w,
            params,
        }
    }

    fn max_c1(&self) -> u32 {
        self.spec.total_cores - self.params.min_be_cores
    }

    fn max_l1(&self) -> u32 {
        self.spec.total_llc_ways - self.params.min_be_ways
    }

    fn ls_ok(&self, c1: u32, level: usize, l1: u32, qps: f64) -> bool {
        self.predictor
            .ls_feasible(c1, self.spec.freq_ghz(level), l1, qps)
    }

    /// Consistency-checked feasibility: performance is monotone in every
    /// resource, so a genuinely feasible point must still be feasible
    /// with one more frequency step, way, or core. Isolated "feasible
    /// islands" produced by classifier noise fail this probe and are
    /// rejected rather than trusted by the binary search.
    fn ls_trusted(&self, c1: u32, level: usize, l1: u32, qps: f64) -> bool {
        if !self.ls_ok(c1, level, l1, qps) {
            return false;
        }
        let top = self.spec.max_freq_level();
        if level < top && !self.ls_ok(c1, level + 1, l1, qps) {
            return false;
        }
        if l1 < self.max_l1() && !self.ls_ok(c1, level, l1 + 1, qps) {
            return false;
        }
        if c1 < self.max_c1() && !self.ls_ok(c1 + 1, level, l1, qps) {
            return false;
        }
        true
    }

    /// Builds the candidate for a fixed LS core count: minimal L1 and F1
    /// for QoS, complement for the BE side, maximal F2 under the budget.
    fn candidate_for_c1(&self, c1: u32, qps: f64) -> Option<PairConfig> {
        let top = self.spec.max_freq_level();
        // Minimal LLC ways at maximum frequency.
        let l1 = least_satisfying(1, self.max_l1(), |l| self.ls_trusted(c1, top, l, qps))?;
        // Minimal frequency at that way count.
        let f1 = least_satisfying(0, top as u32, |f| {
            self.ls_trusted(c1, f as usize, l1, qps)
        })? as usize;
        let ls = Allocation::new(c1, f1, l1);
        let c2 = self.spec.total_cores - c1;
        let l2 = self.spec.total_llc_ways - l1;
        // Maximal BE frequency within the power budget, evaluated at the
        // drifted load the configuration may face before the next search.
        let qps_power = qps * (1.0 + self.params.power_load_headroom);
        let f2 = greatest_satisfying(0, top as u32, |f| {
            let cfg = PairConfig::new(ls, Allocation::new(c2, f as usize, l2));
            self.predictor.total_power_w(&cfg, &self.spec, qps_power) <= self.budget_w
        })? as usize;
        Some(PairConfig::new(ls, Allocation::new(c2, f2, l2)))
    }

    /// The §V-B binary search: O(N log N) model calls.
    pub fn best_config(&self, qps: f64) -> SearchOutcome {
        let started = Instant::now();
        let calls_before = self.predictor.prediction_count();
        let top = self.spec.max_freq_level();

        // Step 1: minimum C1 at maximum frequency and cache.
        let c1_min = least_satisfying(1, self.max_c1(), |c| {
            self.ls_trusted(c, top, self.max_l1(), qps)
        });

        let mut best: Option<(PairConfig, f64)> = None;
        let mut candidates = 0usize;
        if let Some(c1_min) = c1_min {
            // Steps 2–4: grow C1, rebuilding each candidate, until the BE
            // partition reaches maximum frequency.
            for c1 in c1_min..=self.max_c1() {
                let Some(cfg) = self.candidate_for_c1(c1, qps) else {
                    continue;
                };
                candidates += 1;
                let t = self.predictor.be_throughput(
                    cfg.be.cores,
                    self.spec.freq_ghz(cfg.be.freq_level),
                    cfg.be.llc_ways,
                );
                if best.as_ref().is_none_or(|(_, bt)| t > *bt) {
                    best = Some((cfg, t));
                }
                if cfg.be.freq_level == top {
                    break;
                }
            }
        }

        let stats = SearchStats {
            model_calls: self.predictor.prediction_count() - calls_before,
            candidates,
            duration: started.elapsed(),
        };
        match best {
            Some((cfg, t)) => SearchOutcome {
                best: Some(cfg),
                predicted_throughput: t,
                stats,
            },
            None => SearchOutcome {
                best: None,
                predicted_throughput: 0.0,
                stats,
            },
        }
    }

    /// The O(N⁴) exhaustive oracle of §VII-E: sweep every
    /// `<C1, F1, L1, F2>` (C2/L2 by subtraction) and keep the feasible
    /// configuration with the highest predicted throughput.
    pub fn exhaustive(&self, qps: f64) -> SearchOutcome {
        let started = Instant::now();
        let calls_before = self.predictor.prediction_count();
        let top = self.spec.max_freq_level();
        let mut best: Option<(PairConfig, f64)> = None;
        let mut candidates = 0usize;
        for c1 in 1..=self.max_c1() {
            let c2 = self.spec.total_cores - c1;
            for f1 in 0..=top {
                for l1 in 1..=self.max_l1() {
                    if !self.ls_ok(c1, f1, l1, qps) {
                        continue;
                    }
                    let l2 = self.spec.total_llc_ways - l1;
                    for f2 in (0..=top).rev() {
                        let cfg = PairConfig::new(
                            Allocation::new(c1, f1, l1),
                            Allocation::new(c2, f2, l2),
                        );
                        if self.predictor.total_power_w(&cfg, &self.spec, qps) > self.budget_w {
                            continue;
                        }
                        candidates += 1;
                        let t = self.predictor.be_throughput(
                            c2,
                            self.spec.freq_ghz(f2),
                            l2,
                        );
                        if best.as_ref().is_none_or(|(_, bt)| t > *bt) {
                            best = Some((cfg, t));
                        }
                        break; // lower F2 is strictly worse for this (c1,f1,l1)
                    }
                }
            }
        }
        let stats = SearchStats {
            model_calls: self.predictor.prediction_count() - calls_before,
            candidates,
            duration: started.elapsed(),
        };
        match best {
            Some((cfg, t)) => SearchOutcome {
                best: Some(cfg),
                predicted_throughput: t,
                stats,
            },
            None => SearchOutcome {
                best: None,
                predicted_throughput: 0.0,
                stats,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::{PerfPowerPredictor, PredictorConfig};
    use crate::profiler::{Profiler, ProfilerConfig};
    use sturgeon_simnode::{NodeSpec, PowerModel};
    use sturgeon_workloads::catalog::{be_app, ls_service, BeAppId, LsServiceId};
    use sturgeon_workloads::env::CoLocationEnv;
    use sturgeon_workloads::interference::InterferenceParams;

    fn setup() -> (CoLocationEnv, PerfPowerPredictor) {
        let env = CoLocationEnv::new(
            NodeSpec::xeon_e5_2630_v4(),
            PowerModel::default(),
            ls_service(LsServiceId::Memcached),
            be_app(BeAppId::Raytrace),
            InterferenceParams::none(),
            0,
        );
        let d = Profiler::new(
            &env,
            ProfilerConfig {
                ls_samples_per_load: 120,
                ls_load_fractions: vec![0.15, 0.2, 0.3, 0.4, 0.5, 0.65, 0.8],
                be_samples: 500,
                seed: 5,
            },
        )
        .collect()
        .unwrap();
        let p = PerfPowerPredictor::train(
            &d,
            PredictorConfig::default(),
            env.static_power_w(),
            env.be().params.input_level as f64,
            env.ls().params.qos_target_ms,
        )
        .unwrap();
        (env, p)
    }

    #[test]
    fn least_satisfying_finds_boundary() {
        assert_eq!(least_satisfying(0, 10, |x| x >= 7), Some(7));
        assert_eq!(least_satisfying(0, 10, |_| true), Some(0));
        assert_eq!(least_satisfying(0, 10, |_| false), None);
        assert_eq!(least_satisfying(5, 4, |_| true), None);
    }

    #[test]
    fn greatest_satisfying_finds_boundary() {
        assert_eq!(greatest_satisfying(0, 10, |x| x <= 7), Some(7));
        assert_eq!(greatest_satisfying(0, 10, |_| true), Some(10));
        assert_eq!(greatest_satisfying(0, 10, |_| false), None);
    }

    #[test]
    fn binary_search_matches_linear_scan() {
        // Property-style check over many monotone predicates.
        for threshold in 0..=20u32 {
            let pred = |x: u32| x >= threshold;
            let expect = (0..=15u32).find(|&x| pred(x));
            assert_eq!(least_satisfying(0, 15, pred), expect);
            let pred2 = |x: u32| x <= threshold;
            let expect2 = (0..=15u32).rev().find(|&x| pred2(x));
            assert_eq!(greatest_satisfying(0, 15, pred2), expect2);
        }
    }

    #[test]
    fn search_returns_feasible_config() {
        let (env, p) = setup();
        let search =
            ConfigSearch::new(&p, env.spec().clone(), env.budget_w(), SearchParams::default());
        for frac in [0.2, 0.35, 0.5, 0.7] {
            let qps = frac * env.ls().params.peak_qps;
            let out = search.best_config(qps);
            let cfg = out.best.expect("feasible config must exist");
            assert!(cfg.validate(env.spec()).is_ok());
            // The chosen config must actually be predicted feasible.
            assert!(p.feasible(&cfg, env.spec(), qps, env.budget_w()));
            assert!(out.predicted_throughput > 0.0);
        }
    }

    #[test]
    fn search_is_fast_in_model_calls() {
        let (env, p) = setup();
        let search =
            ConfigSearch::new(&p, env.spec().clone(), env.budget_w(), SearchParams::default());
        let out = search.best_config(0.3 * env.ls().params.peak_qps);
        // §VII-E bounds the fast search by (16 + 11·19)·4 models per
        // prediction round ≈ 900 calls; exhaustive needs ~40 000·4.
        assert!(
            out.stats.model_calls < 2_000,
            "model calls {}",
            out.stats.model_calls
        );
    }

    #[test]
    fn fast_search_close_to_exhaustive() {
        let (env, p) = setup();
        let search =
            ConfigSearch::new(&p, env.spec().clone(), env.budget_w(), SearchParams::default());
        let qps = 0.3 * env.ls().params.peak_qps;
        let fast = search.best_config(qps);
        let full = search.exhaustive(qps);
        let ft = fast.predicted_throughput;
        let xt = full.predicted_throughput;
        // The fast path restricts itself to minimal-LS candidates, so it
        // may be slightly below the oracle but must stay within 10%.
        assert!(ft >= 0.9 * xt, "fast {ft} vs exhaustive {xt}");
        assert!(full.stats.model_calls > fast.stats.model_calls * 5);
    }

    #[test]
    fn impossible_load_yields_none() {
        let (env, p) = setup();
        let search =
            ConfigSearch::new(&p, env.spec().clone(), env.budget_w(), SearchParams::default());
        // 5× peak load cannot be served even by the whole node.
        let out = search.best_config(5.0 * env.ls().params.peak_qps);
        assert!(out.best.is_none());
        assert_eq!(out.predicted_throughput, 0.0);
    }

    #[test]
    fn tighter_budget_never_increases_throughput() {
        let (env, p) = setup();
        let qps = 0.3 * env.ls().params.peak_qps;
        let normal =
            ConfigSearch::new(&p, env.spec().clone(), env.budget_w(), SearchParams::default())
                .best_config(qps);
        let tight = ConfigSearch::new(
            &p,
            env.spec().clone(),
            0.85 * env.budget_w(),
            SearchParams::default(),
        )
        .best_config(qps);
        assert!(tight.predicted_throughput <= normal.predicted_throughput + 1e-9);
    }
}
