//! Configuration search (paper §V-B): find the feasible configuration
//! maximizing BE throughput without sweeping the O(N⁴) space.
//!
//! The key insight is monotonicity: application performance rises with
//! every resource, so "just enough for the LS service" is a binary-search
//! target, and the maximum BE frequency under the power budget is another.
//! The resulting complexity is O(N log N) model calls:
//!
//! 1. fix F1 and L1 at maximum, binary-search the minimum C1 meeting QoS;
//! 2. binary-search the minimum L1, then minimum F1;
//! 3. C2 and L2 follow by subtraction; binary-search the maximum F2 that
//!    keeps total power within budget;
//! 4. grow C1 from its minimum, rebuilding each candidate the same way,
//!    until the BE application reaches maximum frequency;
//! 5. pick the candidate with the highest predicted BE throughput.
//!
//! An exhaustive-search oracle is provided for the §VII-E overhead
//! comparison and for validating the fast path in tests.
//!
//! ## The frontier-pruned engine ([`ConfigSearch::pruned`])
//!
//! The heuristic above is fast but inexact: it only visits minimal-LS
//! frontier points. The pruned engine returns the *oracle's* answer —
//! bit-identical configuration and predicted throughput to
//! [`ConfigSearch::exhaustive_serial`] — at a fraction of the work, via
//! three layers:
//!
//! 1. **dense model tables** ([`ModelTables`]): the QPS-independent BE
//!    throughput and BE power models are flattened per (re)train into
//!    contiguous arrays, so the inner loop's model calls become loads and
//!    admissible throughput upper bounds per `(C2, L2)` cell and per C2
//!    slice come for free;
//! 2. **branch-and-bound**: a bisected-frontier warm-up phase
//!    (`least_satisfying` over the QoS frontier, table scan over the power
//!    frontier `F2*(C1,F1,L1)`) produces a genuine incumbent candidate;
//!    the exact sweep then walks the oracle's scan order but skips every
//!    cell (and whole C1 slice) whose table bound proves it cannot beat
//!    the incumbent or the running best — the skipped work is reported in
//!    [`SearchStats::pruned_candidates`] / [`SearchStats::pruned_subspaces`];
//! 3. **cross-interval frontier reuse** ([`FrontierCache`]): winning
//!    configurations are remembered per quantized-QPS bucket and replayed
//!    as incumbents (after revalidation at the live load) on later
//!    intervals, invalidated by generation whenever the predictor
//!    retrains.
//!
//! Exactness argument: the incumbent is always a real candidate evaluated
//! under the oracle's own rules, so its value `t0` is a lower bound on the
//! oracle maximum. A cell is skipped only when its admissible bound is
//! *strictly* below `t0` (such a cell can never attain the maximum) or at
//! most the best earlier in-scan-order survivor (such a cell can never win
//! the oracle's strict-`>` first-best-wins tie-break). Every cell that
//! could be the oracle's earliest argmax therefore survives and is
//! evaluated with bit-identical arithmetic, so the sweep returns exactly
//! the oracle's configuration.

use crate::cache::FrontierCache;
use crate::predictor::PerfPowerPredictor;
use crate::tables::ModelTables;
use rayon::prelude::*;
use std::time::{Duration, Instant};
use sturgeon_simnode::{Allocation, NodeSpec, PairConfig};

/// Which engine the controller's per-interval search runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchStrategy {
    /// The paper's §V-B bisection heuristic with warm starts — the
    /// historical default, kept for trajectory stability. Uses the
    /// island-hardened `ls_trusted` feasibility probe.
    #[default]
    Heuristic,
    /// The frontier-pruned branch-and-bound engine: oracle-exact result
    /// (bit-identical to [`ConfigSearch::exhaustive_serial`]) with
    /// table-driven pruning and cross-interval frontier reuse.
    FrontierPruned,
}

/// Search-space limits and toggles.
#[derive(Debug, Clone, Copy)]
pub struct SearchParams {
    /// Keep at least this many cores for the BE partition (≥ 1: cpuset
    /// partitions cannot be empty).
    pub min_be_cores: u32,
    /// Keep at least this many LLC ways for the BE partition.
    pub min_be_ways: u32,
    /// Relative load drift the power check anticipates: between two
    /// searches the load can keep rising, and the LS partition's power
    /// rises with it, so budget feasibility is evaluated at
    /// `qps · (1 + power_load_headroom)`.
    pub power_load_headroom: f64,
    /// Relative guard band subtracted from the budget before any
    /// feasibility check: configurations are accepted against
    /// `budget · (1 − power_guard)`. Covers residual model error on
    /// boundary-hugging configurations (the power models interpolate from
    /// interior samples and systematically under-predict at the
    /// max-frequency edge of the trained domain), the same way RAPL
    /// deployments keep a guard band under the package limit.
    pub power_guard: f64,
    /// Maximum relative load drift under which
    /// [`ConfigSearch::best_config_warm`] trusts the previous interval's
    /// configuration as a seed; beyond it the warm path falls back to the
    /// full §V-B search.
    pub warm_start_drift: f64,
    /// Half-width of the C1 window scanned around the previous
    /// configuration's LS core count on the warm path.
    pub warm_start_window: u32,
    /// Which engine [`crate::controller::SturgeonController`] dispatches
    /// its per-interval searches to.
    pub strategy: SearchStrategy,
}

impl Default for SearchParams {
    fn default() -> Self {
        Self {
            min_be_cores: 1,
            min_be_ways: 1,
            power_load_headroom: 0.08,
            power_guard: 0.02,
            warm_start_drift: 0.20,
            warm_start_window: 2,
            strategy: SearchStrategy::default(),
        }
    }
}

/// Instrumentation for the §VII-E overhead accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchStats {
    /// Prediction queries consumed by the search (cached or not).
    pub model_calls: u64,
    /// Candidate configurations fully evaluated.
    pub candidates: usize,
    /// Wall-clock duration of the search.
    pub duration: Duration,
    /// Of `model_calls`, queries answered from the prediction memo cache.
    pub cache_hits: u64,
    /// Of `model_calls`, queries that ran the underlying models.
    pub cache_misses: u64,
    /// Pruned engine only: lattice cells skipped because their admissible
    /// table bound proved they cannot win.
    pub pruned_candidates: u64,
    /// Pruned engine only: whole C1 slices skipped by their slice bound.
    pub pruned_subspaces: u64,
    /// Pruned engine only: incumbents replayed from the
    /// [`FrontierCache`] instead of re-running the bisection warm-up.
    pub frontier_reuses: u64,
}

/// The search result.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Best feasible configuration, if any exists. `None` means even
    /// giving the LS service everything cannot meet QoS (the controller
    /// then applies the all-to-LS fallback).
    pub best: Option<PairConfig>,
    /// Predicted BE throughput of `best` (0 when `best` is `None`).
    pub predicted_throughput: f64,
    /// Instrumentation.
    pub stats: SearchStats,
}

/// Per-C1-slice outcome of the pruned sweep:
/// `(slice best, evaluated, pruned cells, whole slice skipped)`.
type SliceResult = (Option<(PairConfig, f64)>, usize, u64, bool);

/// Pruning counters accumulated by the frontier-pruned engine.
#[derive(Debug, Clone, Copy, Default)]
struct PruneTally {
    cells: u64,
    slices: u64,
    frontier_reuses: u64,
}

/// Binary-search the least `x` in `[lo, hi]` with `pred(x)` true, given
/// that `pred` is monotone (false…false true…true). `None` if all false.
pub fn least_satisfying(lo: u32, hi: u32, mut pred: impl FnMut(u32) -> bool) -> Option<u32> {
    if lo > hi || !pred(hi) {
        return None;
    }
    let (mut lo, mut hi) = (lo, hi);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo)
}

/// Binary-search the greatest `x` in `[lo, hi]` with `pred(x)` true, given
/// that `pred` is monotone (true…true false…false). `None` if all false.
pub fn greatest_satisfying(lo: u32, hi: u32, mut pred: impl FnMut(u32) -> bool) -> Option<u32> {
    if lo > hi || !pred(lo) {
        return None;
    }
    let (mut lo, mut hi) = (lo, hi);
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if pred(mid) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    Some(lo)
}

/// The configuration searcher. Borrows the predictor; cheap to construct
/// per control interval.
#[derive(Debug)]
pub struct ConfigSearch<'p> {
    predictor: &'p PerfPowerPredictor,
    spec: NodeSpec,
    budget_w: f64,
    params: SearchParams,
    frontiers: Option<&'p FrontierCache>,
}

impl<'p> ConfigSearch<'p> {
    /// A searcher over the node `spec` with the given power budget.
    pub fn new(
        predictor: &'p PerfPowerPredictor,
        spec: NodeSpec,
        budget_w: f64,
        params: SearchParams,
    ) -> Self {
        Self {
            predictor,
            spec,
            budget_w,
            params,
            frontiers: None,
        }
    }

    /// Attaches a cross-interval frontier cache: [`pruned`](Self::pruned)
    /// will seed its incumbent from the cache's quantized-QPS bucket (after
    /// revalidating it at the live load) and store its winner back. Results
    /// are unchanged with or without the cache — only the warm-up cost is.
    pub fn with_frontiers(mut self, cache: &'p FrontierCache) -> Self {
        self.frontiers = Some(cache);
        self
    }

    fn max_c1(&self) -> u32 {
        self.spec.total_cores - self.params.min_be_cores
    }

    /// The budget after subtracting the guard band; every feasibility
    /// check in both search paths uses this.
    fn guarded_budget(&self) -> f64 {
        self.budget_w * (1.0 - self.params.power_guard)
    }

    fn max_l1(&self) -> u32 {
        self.spec.total_llc_ways - self.params.min_be_ways
    }

    fn ls_ok(&self, c1: u32, level: usize, l1: u32, qps: f64) -> bool {
        self.predictor
            .ls_feasible(c1, self.spec.freq_ghz(level), l1, qps)
    }

    /// Consistency-checked feasibility: performance is monotone in every
    /// resource, so a genuinely feasible point must still be feasible
    /// with one more frequency step, way, or core. Isolated "feasible
    /// islands" produced by classifier noise fail this probe and are
    /// rejected rather than trusted by the binary search.
    fn ls_trusted(&self, c1: u32, level: usize, l1: u32, qps: f64) -> bool {
        if !self.ls_ok(c1, level, l1, qps) {
            return false;
        }
        let top = self.spec.max_freq_level();
        if level < top && !self.ls_ok(c1, level + 1, l1, qps) {
            return false;
        }
        if l1 < self.max_l1() && !self.ls_ok(c1, level, l1 + 1, qps) {
            return false;
        }
        if c1 < self.max_c1() && !self.ls_ok(c1 + 1, level, l1, qps) {
            return false;
        }
        true
    }

    /// Completes a fixed `<C1, L1>` choice into a full candidate: minimal
    /// F1 for QoS, complement for the BE side, maximal F2 under the
    /// budget. Returns the configuration with its predicted BE throughput.
    fn candidate_for_c1_l1(&self, c1: u32, l1: u32, qps: f64) -> Option<(PairConfig, f64)> {
        let top = self.spec.max_freq_level();
        // Minimal frequency at this way count.
        let f1 =
            least_satisfying(0, top as u32, |f| self.ls_trusted(c1, f as usize, l1, qps))? as usize;
        let ls = Allocation::new(c1, f1, l1);
        let c2 = self.spec.total_cores - c1;
        let l2 = self.spec.total_llc_ways - l1;
        // Maximal BE frequency within the power budget, evaluated at the
        // drifted load the configuration may face before the next search.
        let qps_power = qps * (1.0 + self.params.power_load_headroom);
        let f2 = greatest_satisfying(0, top as u32, |f| {
            let cfg = PairConfig::new(ls, Allocation::new(c2, f as usize, l2));
            self.predictor.total_power_w(&cfg, &self.spec, qps_power) <= self.guarded_budget()
        })? as usize;
        let cfg = PairConfig::new(ls, Allocation::new(c2, f2, l2));
        let t = self.predictor.be_throughput(c2, self.spec.freq_ghz(f2), l2);
        Some((cfg, t))
    }

    /// Builds the best candidate for a fixed LS core count.
    ///
    /// The minimal-L1 allocation is not always optimal: LS power falls as
    /// the LS partition gains LLC ways (lower utilization at lower tail
    /// latency), so under a tight budget, spare ways given to the LS side
    /// can buy the BE partition a higher frequency. A short geometric
    /// ladder of L1 values above the minimum covers that trade-off with
    /// O(1) extra binary searches.
    fn candidate_for_c1(&self, c1: u32, qps: f64) -> Option<(PairConfig, f64)> {
        let top = self.spec.max_freq_level();
        // Minimal LLC ways at maximum frequency.
        let l1_min = least_satisfying(1, self.max_l1(), |l| self.ls_trusted(c1, top, l, qps))?;
        let mut best: Option<(PairConfig, f64)> = None;
        for step in [0u32, 2, 6, 14] {
            let l1 = l1_min + step;
            if l1 > self.max_l1() {
                break;
            }
            let Some((cfg, t)) = self.candidate_for_c1_l1(c1, l1, qps) else {
                continue;
            };
            if best.as_ref().is_none_or(|(_, bt)| t > *bt) {
                best = Some((cfg, t));
            }
        }
        best
    }

    /// Snapshot of the predictor's counters taken when a search starts;
    /// [`finish`](Self::finish) turns it into a [`SearchStats`] delta.
    fn meter(&self) -> (Instant, u64, u64, u64) {
        (
            Instant::now(),
            self.predictor.prediction_count(),
            self.predictor.cache_hits(),
            self.predictor.cache_misses(),
        )
    }

    fn finish(
        &self,
        meter: (Instant, u64, u64, u64),
        best: Option<(PairConfig, f64)>,
        candidates: usize,
    ) -> SearchOutcome {
        self.finish_pruned(meter, best, candidates, PruneTally::default())
    }

    fn finish_pruned(
        &self,
        meter: (Instant, u64, u64, u64),
        best: Option<(PairConfig, f64)>,
        candidates: usize,
        tally: PruneTally,
    ) -> SearchOutcome {
        let (started, calls, hits, misses) = meter;
        let stats = SearchStats {
            model_calls: self.predictor.prediction_count() - calls,
            candidates,
            duration: started.elapsed(),
            cache_hits: self.predictor.cache_hits() - hits,
            cache_misses: self.predictor.cache_misses() - misses,
            pruned_candidates: tally.cells,
            pruned_subspaces: tally.slices,
            frontier_reuses: tally.frontier_reuses,
        };
        match best {
            Some((cfg, t)) => SearchOutcome {
                best: Some(cfg),
                predicted_throughput: t,
                stats,
            },
            None => SearchOutcome {
                best: None,
                predicted_throughput: 0.0,
                stats,
            },
        }
    }

    /// One C1 window of the §V-B scan (steps 2–4): grow C1 across
    /// `[lo, hi]`, rebuilding each candidate, keeping the best.
    ///
    /// With `early_break`, the scan stops once the BE partition has
    /// reached maximum frequency *and* the table bound proves no
    /// remaining (smaller-C2) slice can beat the running best. The
    /// historical break condition stopped on max frequency alone, which
    /// can miss the window optimum: a larger C1 lowers the LS partition's
    /// minimal way count, so the BE side can gain LLC ways — and
    /// throughput — even with its frequency already at the top. The
    /// `warm_break_equivalence` property test in `tests/search_pruned.rs`
    /// exhibits exactly that counterexample against the old rule; the
    /// bound-gated rule is provably equivalent to scanning the window
    /// exhaustively.
    fn scan_c1_window(
        &self,
        lo: u32,
        hi: u32,
        qps: f64,
        early_break: bool,
    ) -> (Option<(PairConfig, f64)>, usize) {
        let top = self.spec.max_freq_level();
        let mut tables = None;
        let mut best: Option<(PairConfig, f64)> = None;
        let mut candidates = 0usize;
        for c1 in lo..=hi {
            let Some((cfg, t)) = self.candidate_for_c1(c1, qps) else {
                continue;
            };
            candidates += 1;
            if best.as_ref().is_none_or(|(_, bt)| t > *bt) {
                best = Some((cfg, t));
            }
            if early_break && cfg.be.freq_level == top && c1 < hi {
                let bt = best.as_ref().map(|&(_, bt)| bt).unwrap_or(t);
                let tables = tables.get_or_insert_with(|| self.predictor.model_tables(&self.spec));
                // Candidates at larger C1 draw from slices of at most
                // total − (c1+1) BE cores; their prefix bound is
                // admissible over all of them.
                let remaining = tables.slice_max_tput_upto(self.spec.total_cores - (c1 + 1));
                if remaining <= bt {
                    break;
                }
            }
        }
        (best, candidates)
    }

    /// The §V-B binary search: O(N log N) model calls.
    pub fn best_config(&self, qps: f64) -> SearchOutcome {
        let meter = self.meter();
        let top = self.spec.max_freq_level();

        // Step 1: minimum C1 at maximum frequency and cache.
        let c1_min = least_satisfying(1, self.max_c1(), |c| {
            self.ls_trusted(c, top, self.max_l1(), qps)
        });

        // Steps 2–4: grow C1, rebuilding each candidate, until the BE
        // partition reaches maximum frequency and the table bound closes.
        let (best, candidates) = match c1_min {
            Some(c1_min) => self.scan_c1_window(c1_min, self.max_c1(), qps, true),
            None => (None, 0),
        };

        self.finish(meter, best, candidates)
    }

    /// Warm-started §V-B search: when the load has drifted less than
    /// [`SearchParams::warm_start_drift`] since `previous` was found, the
    /// optimal LS core count can only have moved a step or two, so only a
    /// `± warm_start_window` C1 window around the previous choice is
    /// rebuilt instead of re-running the full C1 scan. Any doubt — large
    /// drift, no feasible candidate in the window — falls back to
    /// [`best_config`](Self::best_config), so the warm path never returns
    /// `None` where the cold path would find a configuration.
    pub fn best_config_warm(
        &self,
        qps: f64,
        previous: Option<(&PairConfig, f64)>,
    ) -> SearchOutcome {
        let Some((prev, prev_qps)) = previous else {
            return self.best_config(qps);
        };
        let drift = (qps - prev_qps).abs() / prev_qps.max(1.0);
        if drift > self.params.warm_start_drift {
            return self.best_config(qps);
        }
        let meter = self.meter();
        let w = self.params.warm_start_window;
        let lo = prev.ls.cores.saturating_sub(w).max(1);
        let hi = (prev.ls.cores + w).min(self.max_c1());

        let (best, candidates) = self.scan_c1_window(lo, hi, qps, true);
        if best.is_none() {
            // The previous neighbourhood no longer contains a feasible
            // point (e.g. load rose past what ± window cores can absorb).
            return self.best_config(qps);
        }
        self.finish(meter, best, candidates)
    }

    /// One C1 slice of the exhaustive sweep: every `<F1, L1, F2>` for the
    /// fixed LS core count. Returns the slice's best candidate and how
    /// many were fully evaluated.
    fn exhaustive_slice(
        &self,
        c1: u32,
        qps: f64,
        qps_power: f64,
    ) -> (Option<(PairConfig, f64)>, usize) {
        let top = self.spec.max_freq_level();
        let c2 = self.spec.total_cores - c1;
        let mut best: Option<(PairConfig, f64)> = None;
        let mut candidates = 0usize;
        for f1 in 0..=top {
            for l1 in 1..=self.max_l1() {
                if !self.ls_ok(c1, f1, l1, qps) {
                    continue;
                }
                let l2 = self.spec.total_llc_ways - l1;
                for f2 in (0..=top).rev() {
                    let cfg =
                        PairConfig::new(Allocation::new(c1, f1, l1), Allocation::new(c2, f2, l2));
                    if self.predictor.total_power_w(&cfg, &self.spec, qps_power)
                        > self.guarded_budget()
                    {
                        continue;
                    }
                    candidates += 1;
                    let t = self.predictor.be_throughput(c2, self.spec.freq_ghz(f2), l2);
                    if best.as_ref().is_none_or(|(_, bt)| t > *bt) {
                        best = Some((cfg, t));
                    }
                    break; // lower F2 is strictly worse for this (c1,f1,l1)
                }
            }
        }
        (best, candidates)
    }

    /// In-C1-order reduction shared by the exhaustive and pruned sweeps:
    /// keeps the serial path's first-best-wins tie-breaking (strict `>`),
    /// so every engine returns the identical configuration.
    fn reduce_slices(
        slices: impl IntoIterator<Item = (Option<(PairConfig, f64)>, usize)>,
    ) -> (Option<(PairConfig, f64)>, usize) {
        let mut best: Option<(PairConfig, f64)> = None;
        let mut candidates = 0usize;
        for (slice_best, slice_candidates) in slices {
            candidates += slice_candidates;
            if let Some((cfg, t)) = slice_best {
                if best.as_ref().is_none_or(|(_, bt)| t > *bt) {
                    best = Some((cfg, t));
                }
            }
        }
        (best, candidates)
    }

    fn exhaustive_impl(&self, qps: f64, parallel: bool) -> SearchOutcome {
        let meter = self.meter();
        // Same drifted-load power check as the fast path, so both searches
        // answer the same feasibility question.
        let qps_power = qps * (1.0 + self.params.power_load_headroom);
        // The C1 range feeds the slice map directly — no per-call
        // candidate-list allocation in the search hot path. The per-slice
        // results come back in C1 order on both paths.
        let (best, candidates) = if parallel {
            let slices: Vec<(Option<(PairConfig, f64)>, usize)> = (1..self.max_c1() + 1)
                .into_par_iter()
                .map(|c1| self.exhaustive_slice(c1, qps, qps_power))
                .collect();
            Self::reduce_slices(slices)
        } else {
            Self::reduce_slices(
                (1..=self.max_c1()).map(|c1| self.exhaustive_slice(c1, qps, qps_power)),
            )
        };
        self.finish(meter, best, candidates)
    }

    /// The O(N⁴) exhaustive oracle of §VII-E: sweep every
    /// `<C1, F1, L1, F2>` (C2/L2 by subtraction) and keep the feasible
    /// configuration with the highest predicted throughput. The C1 slices
    /// are evaluated in parallel across the rayon pool; the result is
    /// identical to [`exhaustive_serial`](Self::exhaustive_serial).
    pub fn exhaustive(&self, qps: f64) -> SearchOutcome {
        self.exhaustive_impl(qps, true)
    }

    /// Single-threaded exhaustive oracle — the baseline the
    /// serial-vs-parallel Criterion bench compares against, and a
    /// reference for the equivalence tests.
    pub fn exhaustive_serial(&self, qps: f64) -> SearchOutcome {
        self.exhaustive_impl(qps, false)
    }

    /// The oracle's power frontier `F2*(C1,F1,L1)`, resolved against the
    /// flattened BE power table: the greatest F2 whose total power fits
    /// the guarded budget. A descending linear scan over the (few-entry)
    /// table row reproduces the oracle's continue-on-overbudget loop
    /// exactly, so the result matches even where model noise makes
    /// predicted power non-monotone in frequency. The float arithmetic
    /// mirrors `total_power_w`'s association order, `(static + ls) + be`,
    /// so the comparison is bit-identical.
    fn table_f2(
        &self,
        c1: u32,
        f1: usize,
        l1: u32,
        qps_power: f64,
        tables: &ModelTables,
    ) -> Option<usize> {
        let c2 = self.spec.total_cores - c1;
        let base = tables.static_power_w()
            + self
                .predictor
                .ls_power_w(c1, self.spec.freq_ghz(f1), l1, qps_power);
        let budget = self.guarded_budget();
        (0..=self.spec.max_freq_level())
            .rev()
            .find(|&f2| base + tables.be_power_w(c2, f2) <= budget)
    }

    /// Re-evaluates a frontier-cache seed at the live load. The seed's LS
    /// side is re-checked for QoS and its BE frequency re-derived from the
    /// power frontier, so the returned pair is a genuine oracle candidate
    /// for *this* interval (or `None`, and the caller falls back to the
    /// bisection warm-up).
    fn revalidate_seed(
        &self,
        seed: PairConfig,
        qps: f64,
        qps_power: f64,
        tables: &ModelTables,
    ) -> Option<(PairConfig, f64)> {
        let (c1, f1, l1) = (seed.ls.cores, seed.ls.freq_level, seed.ls.llc_ways);
        if !(1..=self.max_c1()).contains(&c1)
            || !(1..=self.max_l1()).contains(&l1)
            || f1 > self.spec.max_freq_level()
        {
            return None;
        }
        if !self.ls_ok(c1, f1, l1, qps) {
            return None;
        }
        let f2 = self.table_f2(c1, f1, l1, qps_power, tables)?;
        let c2 = self.spec.total_cores - c1;
        let l2 = self.spec.total_llc_ways - l1;
        let t = tables.be_throughput(c2, f2, l2);
        Some((
            PairConfig::new(Allocation::new(c1, f1, l1), Allocation::new(c2, f2, l2)),
            t,
        ))
    }

    /// Phase 1 of the pruned engine: a bisected-frontier warm-up that
    /// produces a high-value *incumbent* candidate. `least_satisfying`
    /// walks the QoS frontiers (`L1*(C1, qps)` at top frequency, then
    /// `F1*(C1, L1, qps)` down the frequency axis) and the power frontier
    /// `F2*` comes from the table scan. Every point probed satisfies the
    /// oracle's own feasibility predicate (`ls_ok`, not the hardened
    /// `ls_trusted`), so the incumbent's value is a true lower bound on
    /// the oracle maximum — which is all phase 2 needs; the incumbent
    /// itself never short-circuits the exact sweep.
    fn frontier_incumbent(
        &self,
        qps: f64,
        qps_power: f64,
        tables: &ModelTables,
    ) -> Option<(PairConfig, f64)> {
        let top = self.spec.max_freq_level();
        let max_l1 = self.max_l1();
        let c1_min = least_satisfying(1, self.max_c1(), |c| self.ls_ok(c, top, max_l1, qps))?;
        let mut best: Option<(PairConfig, f64)> = None;
        for c1 in c1_min..=self.max_c1() {
            let c2 = self.spec.total_cores - c1;
            if let Some((_, bt)) = &best {
                if tables.slice_max_tput_upto(c2) <= *bt {
                    break;
                }
            }
            let Some(l1_min) = least_satisfying(1, max_l1, |l| self.ls_ok(c1, top, l, qps)) else {
                continue;
            };
            // The same short L1 ladder as the heuristic path: minimal ways
            // plus a few spare-way points that can buy BE frequency under
            // a tight budget.
            for step in [0u32, 1, 3, 7] {
                let l1 = l1_min + step;
                if l1 > max_l1 {
                    break;
                }
                let l2 = self.spec.total_llc_ways - l1;
                let Some(f1) =
                    least_satisfying(0, top as u32, |f| self.ls_ok(c1, f as usize, l1, qps))
                else {
                    continue;
                };
                let f1 = f1 as usize;
                let Some(f2) = self.table_f2(c1, f1, l1, qps_power, tables) else {
                    continue;
                };
                let t = tables.be_throughput(c2, f2, l2);
                if best.as_ref().is_none_or(|(_, bt)| t > *bt) {
                    best = Some((
                        PairConfig::new(Allocation::new(c1, f1, l1), Allocation::new(c2, f2, l2)),
                        t,
                    ));
                }
            }
        }
        best
    }

    /// Phase 2, one C1 slice: the oracle's exact `(F1, L1)` scan order,
    /// with cells skipped when their admissible table bound proves they
    /// cannot become the oracle's earliest argmax — `bound < t0` (strictly
    /// below a known candidate value) or `bound <= slice best so far` (an
    /// earlier in-order survivor already ties or beats it, and the oracle
    /// breaks ties by strict `>` first-wins). Surviving cells are
    /// evaluated with the same predicate, power rule and float order as
    /// [`exhaustive_slice`](Self::exhaustive_slice).
    fn pruned_slice(
        &self,
        c1: u32,
        qps: f64,
        qps_power: f64,
        t0: f64,
        tables: &ModelTables,
    ) -> (Option<(PairConfig, f64)>, usize, u64) {
        let top = self.spec.max_freq_level();
        let c2 = self.spec.total_cores - c1;
        let mut best: Option<(PairConfig, f64)> = None;
        let mut evaluated = 0usize;
        let mut pruned = 0u64;
        for f1 in 0..=top {
            for l1 in 1..=self.max_l1() {
                let l2 = self.spec.total_llc_ways - l1;
                let bound = tables.max_tput_any_freq(c2, l2);
                if bound < t0 || best.as_ref().is_some_and(|(_, bt)| bound <= *bt) {
                    pruned += 1;
                    continue;
                }
                if !self.ls_ok(c1, f1, l1, qps) {
                    continue;
                }
                let Some(f2) = self.table_f2(c1, f1, l1, qps_power, tables) else {
                    continue;
                };
                evaluated += 1;
                let t = tables.be_throughput(c2, f2, l2);
                if best.as_ref().is_none_or(|(_, bt)| t > *bt) {
                    best = Some((
                        PairConfig::new(Allocation::new(c1, f1, l1), Allocation::new(c2, f2, l2)),
                        t,
                    ));
                }
            }
        }
        (best, evaluated, pruned)
    }

    fn pruned_impl(&self, qps: f64, parallel: bool) -> SearchOutcome {
        let meter = self.meter();
        let tables = self.predictor.model_tables(&self.spec);
        let qps_power = qps * (1.0 + self.params.power_load_headroom);
        let mut tally = PruneTally::default();

        // Incumbent: a revalidated frontier-cache seed when available,
        // else the bisected-frontier warm-up. Either way its value t0 is
        // the value of a genuine candidate, so pruning strictly below it
        // is sound; with no incumbent t0 = -inf and phase 2 degenerates to
        // the exhaustive sweep (still exact, just unpruned).
        let mut incumbent: Option<(PairConfig, f64)> = None;
        if let Some(fc) = self.frontiers {
            if let Some(seed) = fc.get(tables.generation(), qps) {
                if let Some(cand) = self.revalidate_seed(seed, qps, qps_power, &tables) {
                    tally.frontier_reuses = 1;
                    incumbent = Some(cand);
                }
            }
        }
        if incumbent.is_none() {
            incumbent = self.frontier_incumbent(qps, qps_power, &tables);
        }
        let t0 = incumbent.map_or(f64::NEG_INFINITY, |(_, t)| t);

        // Phase 2: the oracle's sweep, branch-and-bound pruned. Slices
        // run independently (optionally in parallel); the reduction is
        // the oracle's own in-C1-order strict-`>` fold. The incumbent
        // only supplies t0 — it is never folded in, so ties resolve to
        // the oracle's earliest argmax, not to the warm-up's pick.
        let total = self.spec.total_cores;
        let run_slice = |c1: u32| -> SliceResult {
            let c2 = total - c1;
            if tables.slice_max_tput(c2) < t0 {
                return (None, 0, 0, true);
            }
            let (best, evaluated, cells) = self.pruned_slice(c1, qps, qps_power, t0, &tables);
            (best, evaluated, cells, false)
        };
        let slices: Vec<SliceResult> = if parallel {
            (1..self.max_c1() + 1)
                .into_par_iter()
                .map(run_slice)
                .collect()
        } else {
            (1..=self.max_c1()).map(run_slice).collect()
        };
        let mut best: Option<(PairConfig, f64)> = None;
        let mut candidates = 0usize;
        for (slice_best, evaluated, cells, skipped) in slices {
            candidates += evaluated;
            tally.cells += cells;
            tally.slices += u64::from(skipped);
            if let Some((cfg, t)) = slice_best {
                if best.as_ref().is_none_or(|(_, bt)| t > *bt) {
                    best = Some((cfg, t));
                }
            }
        }

        if let (Some(fc), Some((cfg, _))) = (self.frontiers, best.as_ref()) {
            fc.insert(tables.generation(), qps, *cfg);
        }
        self.finish_pruned(meter, best, candidates, tally)
    }

    /// The frontier-pruned, table-driven engine: returns the *oracle's*
    /// result — bit-identical configuration and predicted throughput to
    /// [`exhaustive_serial`](Self::exhaustive_serial) — while evaluating
    /// an order of magnitude fewer candidates (see
    /// [`SearchStats::pruned_candidates`] /
    /// [`SearchStats::pruned_subspaces`]). Slices run across the rayon
    /// pool; use [`pruned_serial`](Self::pruned_serial) for the
    /// single-threaded variant (same result).
    pub fn pruned(&self, qps: f64) -> SearchOutcome {
        self.pruned_impl(qps, true)
    }

    /// Single-threaded [`pruned`](Self::pruned) (identical result).
    pub fn pruned_serial(&self, qps: f64) -> SearchOutcome {
        self.pruned_impl(qps, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::{PerfPowerPredictor, PredictorConfig};
    use crate::profiler::{Profiler, ProfilerConfig};
    use sturgeon_simnode::{NodeSpec, PowerModel};
    use sturgeon_workloads::catalog::{be_app, ls_service, BeAppId, LsServiceId};
    use sturgeon_workloads::env::CoLocationEnv;
    use sturgeon_workloads::interference::InterferenceParams;

    fn setup() -> (CoLocationEnv, PerfPowerPredictor) {
        let env = CoLocationEnv::new(
            NodeSpec::xeon_e5_2630_v4(),
            PowerModel::default(),
            ls_service(LsServiceId::Memcached),
            be_app(BeAppId::Raytrace),
            InterferenceParams::none(),
            0,
        );
        let d = Profiler::new(
            &env,
            ProfilerConfig {
                ls_samples_per_load: 120,
                ls_load_fractions: vec![0.15, 0.2, 0.3, 0.4, 0.5, 0.65, 0.8],
                be_samples: 500,
                seed: 5,
            },
        )
        .collect()
        .unwrap();
        let p = PerfPowerPredictor::train(
            &d,
            PredictorConfig::default(),
            env.static_power_w(),
            env.be().params.input_level as f64,
            env.ls().params.qos_target_ms,
        )
        .unwrap();
        (env, p)
    }

    #[test]
    fn least_satisfying_finds_boundary() {
        assert_eq!(least_satisfying(0, 10, |x| x >= 7), Some(7));
        assert_eq!(least_satisfying(0, 10, |_| true), Some(0));
        assert_eq!(least_satisfying(0, 10, |_| false), None);
        assert_eq!(least_satisfying(5, 4, |_| true), None);
    }

    #[test]
    fn greatest_satisfying_finds_boundary() {
        assert_eq!(greatest_satisfying(0, 10, |x| x <= 7), Some(7));
        assert_eq!(greatest_satisfying(0, 10, |_| true), Some(10));
        assert_eq!(greatest_satisfying(0, 10, |_| false), None);
    }

    #[test]
    fn binary_search_matches_linear_scan() {
        // Property-style check over many monotone predicates.
        for threshold in 0..=20u32 {
            let pred = |x: u32| x >= threshold;
            let expect = (0..=15u32).find(|&x| pred(x));
            assert_eq!(least_satisfying(0, 15, pred), expect);
            let pred2 = |x: u32| x <= threshold;
            let expect2 = (0..=15u32).rev().find(|&x| pred2(x));
            assert_eq!(greatest_satisfying(0, 15, pred2), expect2);
        }
    }

    #[test]
    fn search_returns_feasible_config() {
        let (env, p) = setup();
        let search = ConfigSearch::new(
            &p,
            env.spec().clone(),
            env.budget_w(),
            SearchParams::default(),
        );
        for frac in [0.2, 0.35, 0.5, 0.7] {
            let qps = frac * env.ls().params.peak_qps;
            let out = search.best_config(qps);
            let cfg = out.best.expect("feasible config must exist");
            assert!(cfg.validate(env.spec()).is_ok());
            // The chosen config must actually be predicted feasible.
            assert!(p.feasible(&cfg, env.spec(), qps, env.budget_w()));
            assert!(out.predicted_throughput > 0.0);
        }
    }

    #[test]
    fn search_is_fast_in_model_calls() {
        let (env, p) = setup();
        let search = ConfigSearch::new(
            &p,
            env.spec().clone(),
            env.budget_w(),
            SearchParams::default(),
        );
        let out = search.best_config(0.3 * env.ls().params.peak_qps);
        // §VII-E bounds the fast search by (16 + 11·19)·4 models per
        // prediction round ≈ 900 calls; exhaustive needs ~40 000·4.
        assert!(
            out.stats.model_calls < 2_000,
            "model calls {}",
            out.stats.model_calls
        );
    }

    #[test]
    fn fast_search_close_to_exhaustive() {
        let (env, p) = setup();
        let search = ConfigSearch::new(
            &p,
            env.spec().clone(),
            env.budget_w(),
            SearchParams::default(),
        );
        let qps = 0.3 * env.ls().params.peak_qps;
        let fast = search.best_config(qps);
        let full = search.exhaustive(qps);
        let ft = fast.predicted_throughput;
        let xt = full.predicted_throughput;
        // The fast path restricts itself to minimal-LS candidates, so it
        // may be slightly below the oracle but must stay within 10%.
        assert!(ft >= 0.9 * xt, "fast {ft} vs exhaustive {xt}");
        assert!(full.stats.model_calls > fast.stats.model_calls * 5);
    }

    #[test]
    fn parallel_exhaustive_matches_serial() {
        let (env, p) = setup();
        let search = ConfigSearch::new(
            &p,
            env.spec().clone(),
            env.budget_w(),
            SearchParams::default(),
        );
        for frac in [0.25, 0.5] {
            let qps = frac * env.ls().params.peak_qps;
            let par = search.exhaustive(qps);
            let ser = search.exhaustive_serial(qps);
            assert_eq!(par.best, ser.best);
            assert_eq!(par.stats.candidates, ser.stats.candidates);
            assert_eq!(par.predicted_throughput, ser.predicted_throughput);
        }
    }

    #[test]
    fn warm_start_matches_cold_search_quality() {
        let (env, p) = setup();
        let search = ConfigSearch::new(
            &p,
            env.spec().clone(),
            env.budget_w(),
            SearchParams::default(),
        );
        let peak = env.ls().params.peak_qps;
        let prev_qps = 0.30 * peak;
        let prev = search.best_config(prev_qps).best.unwrap();
        // 10% drift: well inside the warm window.
        let qps = 0.33 * peak;
        let warm = search.best_config_warm(qps, Some((&prev, prev_qps)));
        let cold = search.best_config(qps);
        let wcfg = warm.best.expect("warm search must find a config");
        assert!(wcfg.validate(env.spec()).is_ok());
        assert!(p.feasible(&wcfg, env.spec(), qps, env.budget_w()));
        // The warm window contains the cold optimum's neighbourhood, so
        // quality must match the full scan closely.
        assert!(
            warm.predicted_throughput >= 0.95 * cold.predicted_throughput,
            "warm {} vs cold {}",
            warm.predicted_throughput,
            cold.predicted_throughput
        );
    }

    #[test]
    fn warm_start_falls_back_on_large_drift() {
        let (env, p) = setup();
        let search = ConfigSearch::new(
            &p,
            env.spec().clone(),
            env.budget_w(),
            SearchParams::default(),
        );
        let peak = env.ls().params.peak_qps;
        let prev_qps = 0.2 * peak;
        let prev = search.best_config(prev_qps).best.unwrap();
        // 250% drift: far past warm_start_drift → must behave exactly like
        // the cold search.
        let qps = 0.7 * peak;
        let warm = search.best_config_warm(qps, Some((&prev, prev_qps)));
        let cold = search.best_config(qps);
        assert_eq!(warm.best, cold.best);
        // And with no previous config at all, warm == cold trivially.
        let none = search.best_config_warm(qps, None);
        assert_eq!(none.best, cold.best);
    }

    #[test]
    fn stats_expose_cache_hits() {
        let (env, p) = setup();
        let search = ConfigSearch::new(
            &p,
            env.spec().clone(),
            env.budget_w(),
            SearchParams::default(),
        );
        let qps = 0.3 * env.ls().params.peak_qps;
        let first = search.best_config(qps);
        // ls_feasible counts two queries per memoized verdict, so lookups
        // are bounded by (not equal to) the query count.
        assert!(first.stats.cache_hits + first.stats.cache_misses <= first.stats.model_calls);
        assert!(first.stats.cache_misses > 0, "fresh predictor must compute");
        // A repeated identical search is answered almost entirely from the
        // memo cache.
        let second = search.best_config(qps);
        assert!(
            second.stats.cache_misses == 0,
            "repeat search recomputed {} queries",
            second.stats.cache_misses
        );
        assert!(second.stats.cache_hits > 0);
    }

    #[test]
    fn impossible_load_yields_none() {
        let (env, p) = setup();
        let search = ConfigSearch::new(
            &p,
            env.spec().clone(),
            env.budget_w(),
            SearchParams::default(),
        );
        // 5× peak load cannot be served even by the whole node.
        let out = search.best_config(5.0 * env.ls().params.peak_qps);
        assert!(out.best.is_none());
        assert_eq!(out.predicted_throughput, 0.0);
    }

    #[test]
    fn tighter_budget_never_increases_throughput() {
        let (env, p) = setup();
        let qps = 0.3 * env.ls().params.peak_qps;
        let normal = ConfigSearch::new(
            &p,
            env.spec().clone(),
            env.budget_w(),
            SearchParams::default(),
        )
        .best_config(qps);
        let tight = ConfigSearch::new(
            &p,
            env.spec().clone(),
            0.85 * env.budget_w(),
            SearchParams::default(),
        )
        .best_config(qps);
        assert!(tight.predicted_throughput <= normal.predicted_throughput + 1e-9);
    }

    #[test]
    fn pruned_is_bit_identical_to_exhaustive_serial() {
        let (env, p) = setup();
        let search = ConfigSearch::new(
            &p,
            env.spec().clone(),
            env.budget_w(),
            SearchParams::default(),
        );
        for frac in [0.15, 0.3, 0.5, 0.8] {
            let qps = frac * env.ls().params.peak_qps;
            let full = search.exhaustive_serial(qps);
            let pruned = search.pruned(qps);
            assert_eq!(pruned.best, full.best, "config mismatch at frac {frac}");
            assert_eq!(
                pruned.predicted_throughput.to_bits(),
                full.predicted_throughput.to_bits(),
                "throughput bits differ at frac {frac}"
            );
            // The acceptance bar: an order of magnitude fewer candidate
            // evaluations than the oracle, proven via stats not wall time.
            assert!(
                full.stats.candidates >= 10 * pruned.stats.candidates.max(1),
                "frac {frac}: exhaustive {} vs pruned {} candidates",
                full.stats.candidates,
                pruned.stats.candidates
            );
            assert!(
                pruned.stats.pruned_candidates > 0,
                "pruning must actually fire"
            );
        }
    }

    #[test]
    fn pruned_serial_matches_parallel() {
        let (env, p) = setup();
        let search = ConfigSearch::new(
            &p,
            env.spec().clone(),
            env.budget_w(),
            SearchParams::default(),
        );
        for frac in [0.25, 0.6] {
            let qps = frac * env.ls().params.peak_qps;
            let par = search.pruned(qps);
            let ser = search.pruned_serial(qps);
            assert_eq!(par.best, ser.best);
            assert_eq!(par.stats.candidates, ser.stats.candidates);
            assert_eq!(par.stats.pruned_candidates, ser.stats.pruned_candidates);
            assert_eq!(par.predicted_throughput, ser.predicted_throughput);
        }
    }

    #[test]
    fn pruned_reuses_frontier_cache_across_intervals() {
        let (env, p) = setup();
        let frontiers = crate::cache::FrontierCache::default();
        let search = ConfigSearch::new(
            &p,
            env.spec().clone(),
            env.budget_w(),
            SearchParams::default(),
        )
        .with_frontiers(&frontiers);
        let qps = 0.4 * env.ls().params.peak_qps;
        let first = search.pruned(qps);
        assert_eq!(first.stats.frontier_reuses, 0);
        assert_eq!(frontiers.len(), 1);
        // A steady-state repeat lands in the same QPS bucket: the cached
        // seed supplies the incumbent and the result stays the oracle's.
        let second = search.pruned(qps * 1.001);
        assert_eq!(second.stats.frontier_reuses, 1);
        assert_eq!(second.best, first.best);
        let oracle = search.exhaustive_serial(qps * 1.001);
        assert_eq!(second.best, oracle.best);
        assert_eq!(frontiers.reuses(), 1);
    }

    #[test]
    fn pruned_impossible_load_yields_none() {
        let (env, p) = setup();
        let search = ConfigSearch::new(
            &p,
            env.spec().clone(),
            env.budget_w(),
            SearchParams::default(),
        );
        let qps = 5.0 * env.ls().params.peak_qps;
        let pruned = search.pruned(qps);
        let full = search.exhaustive_serial(qps);
        assert_eq!(pruned.best, full.best);
        assert!(pruned.best.is_none());
        assert_eq!(pruned.predicted_throughput, 0.0);
    }

    #[test]
    fn warm_break_never_misses_window_optimum() {
        // Satellite check for the early-break rule: breaking out of the C1
        // scan must never skip a window point that would have won. The old
        // rule broke as soon as any candidate ran BE at top frequency; a
        // larger C1 can still win because it lowers L1* and frees LLC ways
        // for BE. The fixed rule also requires the table bound over all
        // remaining slices to be <= the current best.
        let (env, p) = setup();
        let search = ConfigSearch::new(
            &p,
            env.spec().clone(),
            env.budget_w(),
            SearchParams::default(),
        );
        let peak = env.ls().params.peak_qps;
        for frac in [0.15, 0.25, 0.4, 0.55, 0.7, 0.85] {
            let qps = frac * peak;
            let (with_break, _) = search.scan_c1_window(1, search.max_c1(), qps, true);
            let (no_break, _) = search.scan_c1_window(1, search.max_c1(), qps, false);
            assert_eq!(
                with_break.map(|(c, t)| (c, t.to_bits())),
                no_break.map(|(c, t)| (c, t.to_bits())),
                "early break lost the optimum at frac {frac}"
            );
        }
    }
}
