//! Configuration search (paper §V-B): find the feasible configuration
//! maximizing BE throughput without sweeping the O(N⁴) space.
//!
//! The key insight is monotonicity: application performance rises with
//! every resource, so "just enough for the LS service" is a binary-search
//! target, and the maximum BE frequency under the power budget is another.
//! The resulting complexity is O(N log N) model calls:
//!
//! 1. fix F1 and L1 at maximum, binary-search the minimum C1 meeting QoS;
//! 2. binary-search the minimum L1, then minimum F1;
//! 3. C2 and L2 follow by subtraction; binary-search the maximum F2 that
//!    keeps total power within budget;
//! 4. grow C1 from its minimum, rebuilding each candidate the same way,
//!    until the BE application reaches maximum frequency;
//! 5. pick the candidate with the highest predicted BE throughput.
//!
//! An exhaustive-search oracle is provided for the §VII-E overhead
//! comparison and for validating the fast path in tests.
//!
//! ## The frontier-pruned engine ([`ConfigSearch::pruned`])
//!
//! The heuristic above is fast but inexact: it only visits minimal-LS
//! frontier points. The pruned engine runs a fully *latticed* sweep — the
//! inner loop makes zero virtual predictor calls — via four layers:
//!
//! 1. **dense BE tables** ([`ModelTables`]): the QPS-independent BE
//!    throughput and BE power models are flattened per (re)train into
//!    contiguous arrays, so the inner loop's model calls become loads and
//!    admissible throughput upper bounds per `(C2, L2)` cell come free;
//! 2. **QPS-slab lattices** ([`crate::tables::LsSlabs`]): the
//!    QPS-dependent LS feasibility and LS power models are flattened into
//!    per-quantized-load slabs; a search at load `q` takes the two slabs
//!    whose centers bracket `q` and scans their conservative *envelope* —
//!    feasibility is the AND of the bracketing bitsets (never
//!    optimistically interpolated) and LS power the pointwise `max` of
//!    the bracketing rows. At a slab center the bracket degenerates and
//!    every lattice value is bit-identical to the live model call, so the
//!    engine equals [`ConfigSearch::exhaustive_serial`] there; at every
//!    load it is bit-identical to the envelope oracle
//!    [`ConfigSearch::exhaustive_latticed`];
//! 3. **branch-and-bound over the flats**: each C1 slice is scanned in
//!    the oracle's exact order — envelope-feasible cells iterated straight
//!    off the bitset words, per-cell admissible bounds from the BE table —
//!    skipping cells that provably cannot become the slice's earliest
//!    argmax, and whole slices whose envelope has no feasible cell
//!    ([`SearchStats::pruned_candidates`] /
//!    [`SearchStats::pruned_subspaces`]);
//! 4. **incremental re-search** ([`crate::cache::IncrementalState`],
//!    parked in the [`FrontierCache`]): the sweep's per-slice envelopes
//!    and outcomes are kept between intervals. When the load's slab
//!    bracket is unchanged the previous outcome is returned verbatim;
//!    when it moves by at most one bucket, envelopes are recomputed
//!    in place and only slices whose bytes changed are rescanned
//!    ([`SearchStats::incremental_slices_reused`] /
//!    [`SearchStats::incremental_slices_rescanned`]). Drift beyond one
//!    bucket, retrain, or a budget change falls back to the full sweep.
//!
//! Exactness argument (vs the envelope oracle): every per-slice scan is
//! *self-contained* — a cell is skipped only when its admissible BE bound
//! cannot beat the slice's own running best (strict-`>` first-wins order
//! preserved), or, in the slice a revalidated [`FrontierCache`] seed
//! belongs to, when the bound is strictly below the seed's value (the
//! seed is a genuine candidate of that same slice, so its value lower-
//! bounds the slice maximum). Slice outcomes therefore never depend on
//! other slices, which is what makes reusing them across intervals sound;
//! the C1-ordered fold reproduces the oracle's global tie-break exactly.

use crate::cache::{FrontierCache, IncrementalState, SliceSnapshot};
use crate::predictor::PerfPowerPredictor;
use crate::tables::{LsSlab, ModelTables};
use rayon::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};
use sturgeon_simnode::{Allocation, NodeSpec, PairConfig};

/// Which engine the controller's per-interval search runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchStrategy {
    /// The paper's §V-B bisection heuristic with warm starts — the
    /// historical default, kept for trajectory stability. Uses the
    /// island-hardened `ls_trusted` feasibility probe.
    #[default]
    Heuristic,
    /// The frontier-pruned branch-and-bound engine: oracle-exact result
    /// (bit-identical to [`ConfigSearch::exhaustive_serial`]) with
    /// table-driven pruning and cross-interval frontier reuse.
    FrontierPruned,
}

/// Search-space limits and toggles.
#[derive(Debug, Clone, Copy)]
pub struct SearchParams {
    /// Keep at least this many cores for the BE partition (≥ 1: cpuset
    /// partitions cannot be empty).
    pub min_be_cores: u32,
    /// Keep at least this many LLC ways for the BE partition.
    pub min_be_ways: u32,
    /// Relative load drift the power check anticipates: between two
    /// searches the load can keep rising, and the LS partition's power
    /// rises with it, so budget feasibility is evaluated at
    /// `qps · (1 + power_load_headroom)`.
    pub power_load_headroom: f64,
    /// Relative guard band subtracted from the budget before any
    /// feasibility check: configurations are accepted against
    /// `budget · (1 − power_guard)`. Covers residual model error on
    /// boundary-hugging configurations (the power models interpolate from
    /// interior samples and systematically under-predict at the
    /// max-frequency edge of the trained domain), the same way RAPL
    /// deployments keep a guard band under the package limit.
    pub power_guard: f64,
    /// Maximum relative load drift under which
    /// [`ConfigSearch::best_config_warm`] trusts the previous interval's
    /// configuration as a seed; beyond it the warm path falls back to the
    /// full §V-B search.
    pub warm_start_drift: f64,
    /// Half-width of the C1 window scanned around the previous
    /// configuration's LS core count on the warm path.
    pub warm_start_window: u32,
    /// Which engine [`crate::controller::SturgeonController`] dispatches
    /// its per-interval searches to.
    pub strategy: SearchStrategy,
}

impl Default for SearchParams {
    fn default() -> Self {
        Self {
            min_be_cores: 1,
            min_be_ways: 1,
            power_load_headroom: 0.08,
            power_guard: 0.02,
            warm_start_drift: 0.20,
            warm_start_window: 2,
            strategy: SearchStrategy::default(),
        }
    }
}

/// Instrumentation for the §VII-E overhead accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchStats {
    /// Prediction queries consumed by the search (cached or not).
    pub model_calls: u64,
    /// Candidate configurations fully evaluated.
    pub candidates: usize,
    /// Wall-clock duration of the search.
    pub duration: Duration,
    /// Of `model_calls`, queries answered from the prediction memo cache.
    pub cache_hits: u64,
    /// Of `model_calls`, queries that ran the underlying models.
    pub cache_misses: u64,
    /// Pruned engine only: lattice cells skipped because their admissible
    /// table bound proved they cannot win.
    pub pruned_candidates: u64,
    /// Pruned engine only: whole C1 slices skipped by their slice bound.
    pub pruned_subspaces: u64,
    /// Pruned engine only: incumbents replayed from the
    /// [`FrontierCache`] as pruning bounds for a full sweep.
    pub frontier_reuses: u64,
    /// Incremental re-search only: C1 slices whose slab envelope was
    /// unchanged since the previous interval, so their stored outcome was
    /// reused without rescanning.
    pub incremental_slices_reused: u64,
    /// Incremental re-search only: C1 slices rescanned because their
    /// slab envelope changed across the one-bucket move.
    pub incremental_slices_rescanned: u64,
}

/// The search result.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Best feasible configuration, if any exists. `None` means even
    /// giving the LS service everything cannot meet QoS (the controller
    /// then applies the all-to-LS fallback).
    pub best: Option<PairConfig>,
    /// Predicted BE throughput of `best` (0 when `best` is `None`).
    pub predicted_throughput: f64,
    /// Instrumentation.
    pub stats: SearchStats,
}

/// Per-C1-slice outcome of the pruned sweep:
/// `(slice best, evaluated, pruned cells, whole slice skipped)`.
type SliceResult = (Option<(PairConfig, f64)>, usize, u64, bool);

/// Pruning counters accumulated by the frontier-pruned engine.
#[derive(Debug, Clone, Copy, Default)]
struct PruneTally {
    cells: u64,
    slices: u64,
    frontier_reuses: u64,
    incremental_reused: u64,
    incremental_rescanned: u64,
}

/// Binary-search the least `x` in `[lo, hi]` with `pred(x)` true, given
/// that `pred` is monotone (false…false true…true). `None` if all false.
pub fn least_satisfying(lo: u32, hi: u32, mut pred: impl FnMut(u32) -> bool) -> Option<u32> {
    if lo > hi || !pred(hi) {
        return None;
    }
    let (mut lo, mut hi) = (lo, hi);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo)
}

/// Binary-search the greatest `x` in `[lo, hi]` with `pred(x)` true, given
/// that `pred` is monotone (true…true false…false). `None` if all false.
pub fn greatest_satisfying(lo: u32, hi: u32, mut pred: impl FnMut(u32) -> bool) -> Option<u32> {
    if lo > hi || !pred(lo) {
        return None;
    }
    let (mut lo, mut hi) = (lo, hi);
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if pred(mid) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    Some(lo)
}

/// The configuration searcher. Borrows the predictor; cheap to construct
/// per control interval.
#[derive(Debug)]
pub struct ConfigSearch<'p> {
    predictor: &'p PerfPowerPredictor,
    spec: NodeSpec,
    budget_w: f64,
    params: SearchParams,
    frontiers: Option<&'p FrontierCache>,
}

impl<'p> ConfigSearch<'p> {
    /// A searcher over the node `spec` with the given power budget.
    pub fn new(
        predictor: &'p PerfPowerPredictor,
        spec: NodeSpec,
        budget_w: f64,
        params: SearchParams,
    ) -> Self {
        Self {
            predictor,
            spec,
            budget_w,
            params,
            frontiers: None,
        }
    }

    /// Attaches a cross-interval frontier cache: [`pruned`](Self::pruned)
    /// will seed its incumbent from the cache's quantized-QPS bucket (after
    /// revalidating it at the live load) and store its winner back. Results
    /// are unchanged with or without the cache — only the warm-up cost is.
    pub fn with_frontiers(mut self, cache: &'p FrontierCache) -> Self {
        self.frontiers = Some(cache);
        self
    }

    fn max_c1(&self) -> u32 {
        self.spec.total_cores - self.params.min_be_cores
    }

    /// The budget after subtracting the guard band; every feasibility
    /// check in both search paths uses this.
    fn guarded_budget(&self) -> f64 {
        self.budget_w * (1.0 - self.params.power_guard)
    }

    fn max_l1(&self) -> u32 {
        self.spec.total_llc_ways - self.params.min_be_ways
    }

    fn ls_ok(&self, c1: u32, level: usize, l1: u32, qps: f64) -> bool {
        self.predictor
            .ls_feasible(c1, self.spec.freq_ghz(level), l1, qps)
    }

    /// Consistency-checked feasibility: performance is monotone in every
    /// resource, so a genuinely feasible point must still be feasible
    /// with one more frequency step, way, or core. Isolated "feasible
    /// islands" produced by classifier noise fail this probe and are
    /// rejected rather than trusted by the binary search.
    fn ls_trusted(&self, c1: u32, level: usize, l1: u32, qps: f64) -> bool {
        if !self.ls_ok(c1, level, l1, qps) {
            return false;
        }
        let top = self.spec.max_freq_level();
        if level < top && !self.ls_ok(c1, level + 1, l1, qps) {
            return false;
        }
        if l1 < self.max_l1() && !self.ls_ok(c1, level, l1 + 1, qps) {
            return false;
        }
        if c1 < self.max_c1() && !self.ls_ok(c1 + 1, level, l1, qps) {
            return false;
        }
        true
    }

    /// Completes a fixed `<C1, L1>` choice into a full candidate: minimal
    /// F1 for QoS, complement for the BE side, maximal F2 under the
    /// budget. Returns the configuration with its predicted BE throughput.
    fn candidate_for_c1_l1(&self, c1: u32, l1: u32, qps: f64) -> Option<(PairConfig, f64)> {
        let top = self.spec.max_freq_level();
        // Minimal frequency at this way count.
        let f1 =
            least_satisfying(0, top as u32, |f| self.ls_trusted(c1, f as usize, l1, qps))? as usize;
        let ls = Allocation::new(c1, f1, l1);
        let c2 = self.spec.total_cores - c1;
        let l2 = self.spec.total_llc_ways - l1;
        // Maximal BE frequency within the power budget, evaluated at the
        // drifted load the configuration may face before the next search.
        let qps_power = qps * (1.0 + self.params.power_load_headroom);
        let f2 = greatest_satisfying(0, top as u32, |f| {
            let cfg = PairConfig::new(ls, Allocation::new(c2, f as usize, l2));
            self.predictor.total_power_w(&cfg, &self.spec, qps_power) <= self.guarded_budget()
        })? as usize;
        let cfg = PairConfig::new(ls, Allocation::new(c2, f2, l2));
        let t = self.predictor.be_throughput(c2, self.spec.freq_ghz(f2), l2);
        Some((cfg, t))
    }

    /// Builds the best candidate for a fixed LS core count.
    ///
    /// The minimal-L1 allocation is not always optimal: LS power falls as
    /// the LS partition gains LLC ways (lower utilization at lower tail
    /// latency), so under a tight budget, spare ways given to the LS side
    /// can buy the BE partition a higher frequency. A short geometric
    /// ladder of L1 values above the minimum covers that trade-off with
    /// O(1) extra binary searches.
    fn candidate_for_c1(&self, c1: u32, qps: f64) -> Option<(PairConfig, f64)> {
        let top = self.spec.max_freq_level();
        // Minimal LLC ways at maximum frequency.
        let l1_min = least_satisfying(1, self.max_l1(), |l| self.ls_trusted(c1, top, l, qps))?;
        let mut best: Option<(PairConfig, f64)> = None;
        for step in [0u32, 2, 6, 14] {
            let l1 = l1_min + step;
            if l1 > self.max_l1() {
                break;
            }
            let Some((cfg, t)) = self.candidate_for_c1_l1(c1, l1, qps) else {
                continue;
            };
            if best.as_ref().is_none_or(|(_, bt)| t > *bt) {
                best = Some((cfg, t));
            }
        }
        best
    }

    /// Snapshot of the predictor's counters taken when a search starts;
    /// [`finish`](Self::finish) turns it into a [`SearchStats`] delta.
    fn meter(&self) -> (Instant, u64, u64, u64) {
        (
            Instant::now(),
            self.predictor.prediction_count(),
            self.predictor.cache_hits(),
            self.predictor.cache_misses(),
        )
    }

    fn finish(
        &self,
        meter: (Instant, u64, u64, u64),
        best: Option<(PairConfig, f64)>,
        candidates: usize,
    ) -> SearchOutcome {
        self.finish_pruned(meter, best, candidates, PruneTally::default())
    }

    fn finish_pruned(
        &self,
        meter: (Instant, u64, u64, u64),
        best: Option<(PairConfig, f64)>,
        candidates: usize,
        tally: PruneTally,
    ) -> SearchOutcome {
        let (started, calls, hits, misses) = meter;
        let stats = SearchStats {
            model_calls: self.predictor.prediction_count() - calls,
            candidates,
            duration: started.elapsed(),
            cache_hits: self.predictor.cache_hits() - hits,
            cache_misses: self.predictor.cache_misses() - misses,
            pruned_candidates: tally.cells,
            pruned_subspaces: tally.slices,
            frontier_reuses: tally.frontier_reuses,
            incremental_slices_reused: tally.incremental_reused,
            incremental_slices_rescanned: tally.incremental_rescanned,
        };
        match best {
            Some((cfg, t)) => SearchOutcome {
                best: Some(cfg),
                predicted_throughput: t,
                stats,
            },
            None => SearchOutcome {
                best: None,
                predicted_throughput: 0.0,
                stats,
            },
        }
    }

    /// One C1 window of the §V-B scan (steps 2–4): grow C1 across
    /// `[lo, hi]`, rebuilding each candidate, keeping the best.
    ///
    /// With `early_break`, the scan stops once the BE partition has
    /// reached maximum frequency *and* the table bound proves no
    /// remaining (smaller-C2) slice can beat the running best. The
    /// historical break condition stopped on max frequency alone, which
    /// can miss the window optimum: a larger C1 lowers the LS partition's
    /// minimal way count, so the BE side can gain LLC ways — and
    /// throughput — even with its frequency already at the top. The
    /// `warm_break_equivalence` property test in `tests/search_pruned.rs`
    /// exhibits exactly that counterexample against the old rule; the
    /// bound-gated rule is provably equivalent to scanning the window
    /// exhaustively.
    fn scan_c1_window(
        &self,
        lo: u32,
        hi: u32,
        qps: f64,
        early_break: bool,
    ) -> (Option<(PairConfig, f64)>, usize) {
        let top = self.spec.max_freq_level();
        let mut tables = None;
        let mut best: Option<(PairConfig, f64)> = None;
        let mut candidates = 0usize;
        for c1 in lo..=hi {
            let Some((cfg, t)) = self.candidate_for_c1(c1, qps) else {
                continue;
            };
            candidates += 1;
            if best.as_ref().is_none_or(|(_, bt)| t > *bt) {
                best = Some((cfg, t));
            }
            if early_break && cfg.be.freq_level == top && c1 < hi {
                let bt = best.as_ref().map(|&(_, bt)| bt).unwrap_or(t);
                let tables = tables.get_or_insert_with(|| self.predictor.model_tables(&self.spec));
                // Candidates at larger C1 draw from slices of at most
                // total − (c1+1) BE cores; their prefix bound is
                // admissible over all of them.
                let remaining = tables.slice_max_tput_upto(self.spec.total_cores - (c1 + 1));
                if remaining <= bt {
                    break;
                }
            }
        }
        (best, candidates)
    }

    /// The §V-B binary search: O(N log N) model calls.
    pub fn best_config(&self, qps: f64) -> SearchOutcome {
        let meter = self.meter();
        let top = self.spec.max_freq_level();

        // Step 1: minimum C1 at maximum frequency and cache.
        let c1_min = least_satisfying(1, self.max_c1(), |c| {
            self.ls_trusted(c, top, self.max_l1(), qps)
        });

        // Steps 2–4: grow C1, rebuilding each candidate, until the BE
        // partition reaches maximum frequency and the table bound closes.
        let (best, candidates) = match c1_min {
            Some(c1_min) => self.scan_c1_window(c1_min, self.max_c1(), qps, true),
            None => (None, 0),
        };

        self.finish(meter, best, candidates)
    }

    /// Warm-started §V-B search: when the load has drifted less than
    /// [`SearchParams::warm_start_drift`] since `previous` was found, the
    /// optimal LS core count can only have moved a step or two, so only a
    /// `± warm_start_window` C1 window around the previous choice is
    /// rebuilt instead of re-running the full C1 scan. Any doubt — large
    /// drift, no feasible candidate in the window — falls back to
    /// [`best_config`](Self::best_config), so the warm path never returns
    /// `None` where the cold path would find a configuration.
    pub fn best_config_warm(
        &self,
        qps: f64,
        previous: Option<(&PairConfig, f64)>,
    ) -> SearchOutcome {
        let Some((prev, prev_qps)) = previous else {
            return self.best_config(qps);
        };
        let drift = (qps - prev_qps).abs() / prev_qps.max(1.0);
        if drift > self.params.warm_start_drift {
            return self.best_config(qps);
        }
        let meter = self.meter();
        let w = self.params.warm_start_window;
        let lo = prev.ls.cores.saturating_sub(w).max(1);
        let hi = (prev.ls.cores + w).min(self.max_c1());

        let (best, candidates) = self.scan_c1_window(lo, hi, qps, true);
        if best.is_none() {
            // The previous neighbourhood no longer contains a feasible
            // point (e.g. load rose past what ± window cores can absorb).
            return self.best_config(qps);
        }
        self.finish(meter, best, candidates)
    }

    /// One C1 slice of the exhaustive sweep: every `<F1, L1, F2>` for the
    /// fixed LS core count. Returns the slice's best candidate and how
    /// many were fully evaluated.
    fn exhaustive_slice(
        &self,
        c1: u32,
        qps: f64,
        qps_power: f64,
    ) -> (Option<(PairConfig, f64)>, usize) {
        let top = self.spec.max_freq_level();
        let c2 = self.spec.total_cores - c1;
        let mut best: Option<(PairConfig, f64)> = None;
        let mut candidates = 0usize;
        for f1 in 0..=top {
            for l1 in 1..=self.max_l1() {
                if !self.ls_ok(c1, f1, l1, qps) {
                    continue;
                }
                let l2 = self.spec.total_llc_ways - l1;
                for f2 in (0..=top).rev() {
                    let cfg =
                        PairConfig::new(Allocation::new(c1, f1, l1), Allocation::new(c2, f2, l2));
                    if self.predictor.total_power_w(&cfg, &self.spec, qps_power)
                        > self.guarded_budget()
                    {
                        continue;
                    }
                    candidates += 1;
                    let t = self.predictor.be_throughput(c2, self.spec.freq_ghz(f2), l2);
                    if best.as_ref().is_none_or(|(_, bt)| t > *bt) {
                        best = Some((cfg, t));
                    }
                    break; // lower F2 is strictly worse for this (c1,f1,l1)
                }
            }
        }
        (best, candidates)
    }

    /// In-C1-order reduction shared by the exhaustive and pruned sweeps:
    /// keeps the serial path's first-best-wins tie-breaking (strict `>`),
    /// so every engine returns the identical configuration.
    fn reduce_slices(
        slices: impl IntoIterator<Item = (Option<(PairConfig, f64)>, usize)>,
    ) -> (Option<(PairConfig, f64)>, usize) {
        let mut best: Option<(PairConfig, f64)> = None;
        let mut candidates = 0usize;
        for (slice_best, slice_candidates) in slices {
            candidates += slice_candidates;
            if let Some((cfg, t)) = slice_best {
                if best.as_ref().is_none_or(|(_, bt)| t > *bt) {
                    best = Some((cfg, t));
                }
            }
        }
        (best, candidates)
    }

    fn exhaustive_impl(&self, qps: f64, parallel: bool) -> SearchOutcome {
        let meter = self.meter();
        // Same drifted-load power check as the fast path, so both searches
        // answer the same feasibility question.
        let qps_power = qps * (1.0 + self.params.power_load_headroom);
        // The C1 range feeds the slice map directly — no per-call
        // candidate-list allocation in the search hot path. The per-slice
        // results come back in C1 order on both paths.
        let (best, candidates) = if parallel {
            let slices: Vec<(Option<(PairConfig, f64)>, usize)> = (1..self.max_c1() + 1)
                .into_par_iter()
                .map(|c1| self.exhaustive_slice(c1, qps, qps_power))
                .collect();
            Self::reduce_slices(slices)
        } else {
            Self::reduce_slices(
                (1..=self.max_c1()).map(|c1| self.exhaustive_slice(c1, qps, qps_power)),
            )
        };
        self.finish(meter, best, candidates)
    }

    /// The O(N⁴) exhaustive oracle of §VII-E: sweep every
    /// `<C1, F1, L1, F2>` (C2/L2 by subtraction) and keep the feasible
    /// configuration with the highest predicted throughput. The C1 slices
    /// are evaluated in parallel across the rayon pool; the result is
    /// identical to [`exhaustive_serial`](Self::exhaustive_serial).
    pub fn exhaustive(&self, qps: f64) -> SearchOutcome {
        self.exhaustive_impl(qps, true)
    }

    /// Single-threaded exhaustive oracle — the baseline the
    /// serial-vs-parallel Criterion bench compares against, and a
    /// reference for the equivalence tests.
    pub fn exhaustive_serial(&self, qps: f64) -> SearchOutcome {
        self.exhaustive_impl(qps, false)
    }

    /// The oracle's power frontier `F2*(C1,F1,L1)`, resolved fully on the
    /// flats: the greatest F2 whose total power fits the guarded budget,
    /// with the LS term supplied from the slab envelope (`ls_env_w`). A
    /// descending linear scan over the (few-entry) BE power row
    /// reproduces the oracle's continue-on-overbudget loop exactly, so
    /// the result matches even where model noise makes predicted power
    /// non-monotone in frequency. The float arithmetic mirrors
    /// `total_power_w`'s association order, `(static + ls) + be`, so at a
    /// slab center the comparison is bit-identical to the live check.
    #[inline]
    fn lattice_f2(&self, c2: u32, ls_env_w: f64, tables: &ModelTables) -> Option<usize> {
        let base = tables.static_power_w() + ls_env_w;
        let budget = self.guarded_budget();
        (0..=self.spec.max_freq_level())
            .rev()
            .find(|&f2| base + tables.be_power_w(c2, f2) <= budget)
    }

    /// Recomputes one C1 slice's slab envelope into the snapshot's
    /// buffers, comparing as it writes: feasibility words become the AND
    /// of the bracketing slabs' rows, power cells the pointwise `max`.
    /// Returns true when any word or power bit moved — the signal the
    /// incremental path uses to decide whether the slice needs a rescan.
    /// The buffers are reused across intervals, so the steady state
    /// allocates nothing.
    fn refresh_envelope(
        &self,
        lo: &LsSlab,
        hi: &LsSlab,
        c1: u32,
        snap: &mut SliceSnapshot,
    ) -> bool {
        let nf = self.spec.freq_level_count();
        let nw = self.spec.total_llc_ways as usize;
        let wpr = lo.words_per_row();
        let mut changed = snap.feas.len() != nf * wpr || snap.power.len() != nf * nw;
        if changed {
            snap.feas.clear();
            snap.feas.resize(nf * wpr, 0);
            snap.power.clear();
            snap.power.resize(nf * nw, 0.0);
        }
        for f1 in 0..nf {
            let (lw, hw) = (lo.feas_row(c1, f1), hi.feas_row(c1, f1));
            let out = &mut snap.feas[f1 * wpr..(f1 + 1) * wpr];
            for k in 0..wpr {
                let w = lw[k] & hw[k];
                changed |= out[k] != w;
                out[k] = w;
            }
            let (lp, hp) = (lo.power_row(c1, f1), hi.power_row(c1, f1));
            let out = &mut snap.power[f1 * nw..(f1 + 1) * nw];
            for k in 0..nw {
                let v = lp[k].max(hp[k]);
                changed |= out[k].to_bits() != v.to_bits();
                out[k] = v;
            }
        }
        changed
    }

    /// Re-evaluates a frontier-cache seed under the live slab envelope.
    /// The seed's LS side is re-checked against the envelope bitsets and
    /// its BE frequency re-derived from the envelope power frontier, so
    /// the returned pair is a genuine envelope candidate for *this*
    /// interval (or `None`, and the full sweep runs unseeded).
    fn revalidate_seed_latticed(
        &self,
        seed: PairConfig,
        lo: &LsSlab,
        hi: &LsSlab,
        tables: &ModelTables,
    ) -> Option<(PairConfig, f64)> {
        let (c1, f1, l1) = (seed.ls.cores, seed.ls.freq_level, seed.ls.llc_ways);
        if !(1..=self.max_c1()).contains(&c1)
            || !(1..=self.max_l1()).contains(&l1)
            || f1 > self.spec.max_freq_level()
        {
            return None;
        }
        if !(lo.feasible(c1, f1, l1) && hi.feasible(c1, f1, l1)) {
            return None;
        }
        let ls_w = lo.ls_power_w(c1, f1, l1).max(hi.ls_power_w(c1, f1, l1));
        let c2 = self.spec.total_cores - c1;
        let f2 = self.lattice_f2(c2, ls_w, tables)?;
        let l2 = self.spec.total_llc_ways - l1;
        let t = tables.be_throughput(c2, f2, l2);
        Some((
            PairConfig::new(Allocation::new(c1, f1, l1), Allocation::new(c2, f2, l2)),
            t,
        ))
    }

    /// The envelope oracle: an unpruned serial sweep of every
    /// `<C1, F1, L1>` cell under the exact slab-envelope semantics the
    /// pruned engine uses — AND-of-bitsets feasibility, max-of-rows LS
    /// power, table `F2*`. This is the bit-identity reference for
    /// [`pruned`](Self::pruned) at *arbitrary* loads; at a slab-center
    /// load it is additionally bit-identical to
    /// [`exhaustive_serial`](Self::exhaustive_serial), because there the
    /// bracket degenerates and every envelope value equals the live model
    /// call it was flattened from.
    pub fn exhaustive_latticed(&self, qps: f64) -> SearchOutcome {
        let meter = self.meter();
        let tables = self.predictor.model_tables(&self.spec);
        let slabs = self
            .predictor
            .ls_slabs(&self.spec, self.params.power_load_headroom);
        let (k_lo, k_hi) = slabs.bracket(qps);
        let lo = self.predictor.ls_slab(&self.spec, &slabs, k_lo);
        let hi = if k_hi == k_lo {
            Arc::clone(&lo)
        } else {
            self.predictor.ls_slab(&self.spec, &slabs, k_hi)
        };
        let top = self.spec.max_freq_level();
        let mut best: Option<(PairConfig, f64)> = None;
        let mut candidates = 0usize;
        for c1 in 1..=self.max_c1() {
            let c2 = self.spec.total_cores - c1;
            for f1 in 0..=top {
                for l1 in 1..=self.max_l1() {
                    if !(lo.feasible(c1, f1, l1) && hi.feasible(c1, f1, l1)) {
                        continue;
                    }
                    let ls_w = lo.ls_power_w(c1, f1, l1).max(hi.ls_power_w(c1, f1, l1));
                    let Some(f2) = self.lattice_f2(c2, ls_w, &tables) else {
                        continue;
                    };
                    candidates += 1;
                    let l2 = self.spec.total_llc_ways - l1;
                    let t = tables.be_throughput(c2, f2, l2);
                    if best.as_ref().is_none_or(|(_, bt)| t > *bt) {
                        best = Some((
                            PairConfig::new(
                                Allocation::new(c1, f1, l1),
                                Allocation::new(c2, f2, l2),
                            ),
                            t,
                        ));
                    }
                }
            }
        }
        self.finish(meter, best, candidates)
    }

    /// One C1 slice of the latticed sweep: the oracle's exact `(F1, L1)`
    /// scan order over the slab envelope — feasible cells iterated
    /// straight off the bitset words — with cells skipped when their
    /// admissible BE bound proves they cannot become the slice's earliest
    /// argmax: `bound < t0` (the revalidated seed value, passed only when
    /// the seed lives in this very slice, so `t0` lower-bounds the slice
    /// maximum) or `bound <= slice best so far` (an earlier in-order
    /// survivor already ties or beats it, and the oracle breaks ties by
    /// strict `>` first-wins). A slice whose masked envelope has no
    /// feasible cell is skipped whole. Every rule is slice-local, so the
    /// outcome never depends on other slices — the property that makes
    /// reusing stored slice outcomes across intervals sound.
    fn latticed_slice(
        &self,
        c1: u32,
        t0: f64,
        feas: &[u64],
        power: &[f64],
        tables: &ModelTables,
    ) -> SliceResult {
        let top = self.spec.max_freq_level();
        let nw = self.spec.total_llc_ways as usize;
        let wpr = feas.len() / (top + 1);
        let c2 = self.spec.total_cores - c1;
        let max_l1 = self.max_l1() as usize;
        // Per-word mask keeping only the L1 <= max_l1 bits in play.
        let word_mask = |k: usize| -> u64 {
            let lo_bit = k * 64;
            if max_l1 <= lo_bit {
                0
            } else if max_l1 - lo_bit >= 64 {
                u64::MAX
            } else {
                (1u64 << (max_l1 - lo_bit)) - 1
            }
        };
        if feas
            .iter()
            .enumerate()
            .all(|(i, &w)| w & word_mask(i % wpr) == 0)
        {
            return (None, 0, 0, true);
        }
        let mut best: Option<(PairConfig, f64)> = None;
        let mut evaluated = 0usize;
        let mut pruned = 0u64;
        for f1 in 0..=top {
            let row = &feas[f1 * wpr..(f1 + 1) * wpr];
            let prow = &power[f1 * nw..(f1 + 1) * nw];
            for (k, &row_word) in row.iter().enumerate() {
                let mut word = row_word & word_mask(k);
                while word != 0 {
                    let bit = word.trailing_zeros() as usize;
                    word &= word - 1;
                    let l1 = (k * 64 + bit + 1) as u32;
                    let l2 = self.spec.total_llc_ways - l1;
                    let bound = tables.max_tput_any_freq(c2, l2);
                    if bound < t0 || best.as_ref().is_some_and(|(_, bt)| bound <= *bt) {
                        pruned += 1;
                        continue;
                    }
                    let Some(f2) = self.lattice_f2(c2, prow[l1 as usize - 1], tables) else {
                        continue;
                    };
                    evaluated += 1;
                    let t = tables.be_throughput(c2, f2, l2);
                    if best.as_ref().is_none_or(|(_, bt)| t > *bt) {
                        best = Some((
                            PairConfig::new(
                                Allocation::new(c1, f1, l1),
                                Allocation::new(c2, f2, l2),
                            ),
                            t,
                        ));
                    }
                }
            }
        }
        (best, evaluated, pruned, false)
    }

    /// Stores the winner as the QPS bucket's frontier seed and parks the
    /// incremental state for the next interval's search.
    fn park(
        &self,
        qps: f64,
        generation: u64,
        best: Option<(PairConfig, f64)>,
        state: Box<IncrementalState>,
    ) {
        if let Some(fc) = self.frontiers {
            if let Some((cfg, _)) = best {
                fc.insert(generation, qps, cfg);
            }
            fc.store_incremental(state);
        }
    }

    fn pruned_impl(&self, qps: f64) -> SearchOutcome {
        let meter = self.meter();
        let tables = self.predictor.model_tables(&self.spec);
        let slabs = self
            .predictor
            .ls_slabs(&self.spec, self.params.power_load_headroom);
        let (k_lo, k_hi) = slabs.bracket(qps);
        let lo = self.predictor.ls_slab(&self.spec, &slabs, k_lo);
        let hi = if k_hi == k_lo {
            Arc::clone(&lo)
        } else {
            self.predictor.ls_slab(&self.spec, &slabs, k_hi)
        };
        let generation = slabs.generation();
        let max_c1 = self.max_c1();
        let max_l1 = self.max_l1();
        let n_slices = max_c1 as usize;
        let mut tally = PruneTally::default();

        // Reusable workspace: the previous interval's parked state when a
        // frontier cache is attached, a fresh allocation otherwise (bare
        // searches pay it; the steady-state controller path does not).
        let mut state = self
            .frontiers
            .and_then(|fc| fc.take_incremental())
            .unwrap_or_default();
        let stale = state.generation != generation
            || state.budget_bits != self.budget_w.to_bits()
            || state.headroom_bits != self.params.power_load_headroom.to_bits()
            || state.max_c1 != max_c1
            || state.max_l1 != max_l1
            || state.slices.len() != n_slices;
        let delta = k_lo
            .abs_diff(state.lo_bucket)
            .max(k_hi.abs_diff(state.hi_bucket));

        if !stale && delta == 0 {
            // Same bracket, same identity: the envelope is unchanged cell
            // for cell, so the stored outcome is this search's outcome.
            tally.incremental_reused = n_slices as u64;
            let best = state.best;
            self.park(qps, generation, best, state);
            return self.finish_pruned(meter, best, 0, tally);
        }
        let incremental = !stale && delta <= 1;

        if stale {
            state.generation = generation;
            state.budget_bits = self.budget_w.to_bits();
            state.headroom_bits = self.params.power_load_headroom.to_bits();
            state.max_c1 = max_c1;
            state.max_l1 = max_l1;
            state.slices.clear();
            state.slices.resize_with(n_slices, SliceSnapshot::default);
        }
        state.lo_bucket = k_lo;
        state.hi_bucket = k_hi;

        // A frontier seed only helps the full sweep (the incremental path
        // reuses whole slice outcomes instead): revalidated under the
        // envelope, its value is a genuine candidate value of its own C1
        // slice, pruning that slice from the first cell.
        let mut seed: Option<(PairConfig, f64)> = None;
        if !incremental {
            if let Some(fc) = self.frontiers {
                if let Some(s) = fc.get(generation, qps) {
                    if let Some(cand) = self.revalidate_seed_latticed(s, &lo, &hi, &tables) {
                        tally.frontier_reuses = 1;
                        seed = Some(cand);
                    }
                }
            }
        }

        // The sweep: refresh each slice's envelope in place; rescan the
        // slice unless the incremental path proves its bytes are
        // unchanged; fold outcomes in C1 order with the oracle's
        // strict-`>` first-wins tie-break. The seed only supplies t0 for
        // its own slice — it is never folded in, so ties resolve to the
        // oracle's earliest argmax.
        let mut best: Option<(PairConfig, f64)> = None;
        let mut candidates = 0usize;
        for c1 in 1..=max_c1 {
            let snap = &mut state.slices[(c1 - 1) as usize];
            let changed = self.refresh_envelope(&lo, &hi, c1, snap);
            if incremental && !changed {
                tally.incremental_reused += 1;
            } else {
                if incremental {
                    tally.incremental_rescanned += 1;
                }
                let t0 = match &seed {
                    Some((cfg, t)) if cfg.ls.cores == c1 => *t,
                    _ => f64::NEG_INFINITY,
                };
                let (slice_best, evaluated, cells, skipped) =
                    self.latticed_slice(c1, t0, &snap.feas, &snap.power, &tables);
                snap.best = slice_best;
                candidates += evaluated;
                tally.cells += cells;
                tally.slices += u64::from(skipped);
            }
            if let Some((cfg, t)) = snap.best {
                if best.as_ref().is_none_or(|(_, bt)| t > *bt) {
                    best = Some((cfg, t));
                }
            }
        }
        state.best = best;
        self.park(qps, generation, best, state);
        self.finish_pruned(meter, best, candidates, tally)
    }

    /// The latticed, frontier-pruned engine: zero virtual model calls in
    /// the inner loop, bit-identical to
    /// [`exhaustive_latticed`](Self::exhaustive_latticed) at every load
    /// (and to [`exhaustive_serial`](Self::exhaustive_serial) at slab
    /// centers), with per-cell/per-slice pruning and cross-interval
    /// incremental reuse — see the module docs. The whole sweep is a few
    /// thousand contiguous loads, far below the cost of fanning out to a
    /// thread pool, so both entry points run the same serial impl.
    pub fn pruned(&self, qps: f64) -> SearchOutcome {
        self.pruned_impl(qps)
    }

    /// Alias of [`pruned`](Self::pruned), kept for the historical
    /// serial/parallel split (the latticed engine is always serial).
    pub fn pruned_serial(&self, qps: f64) -> SearchOutcome {
        self.pruned_impl(qps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::{PerfPowerPredictor, PredictorConfig};
    use crate::profiler::{Profiler, ProfilerConfig};
    use sturgeon_simnode::{NodeSpec, PowerModel};
    use sturgeon_workloads::catalog::{be_app, ls_service, BeAppId, LsServiceId};
    use sturgeon_workloads::env::CoLocationEnv;
    use sturgeon_workloads::interference::InterferenceParams;

    fn setup() -> (CoLocationEnv, PerfPowerPredictor) {
        let env = CoLocationEnv::new(
            NodeSpec::xeon_e5_2630_v4(),
            PowerModel::default(),
            ls_service(LsServiceId::Memcached),
            be_app(BeAppId::Raytrace),
            InterferenceParams::none(),
            0,
        );
        let d = Profiler::new(
            &env,
            ProfilerConfig {
                ls_samples_per_load: 120,
                ls_load_fractions: vec![0.15, 0.2, 0.3, 0.4, 0.5, 0.65, 0.8],
                be_samples: 500,
                seed: 5,
            },
        )
        .collect()
        .unwrap();
        let p = PerfPowerPredictor::train(
            &d,
            PredictorConfig::default(),
            env.static_power_w(),
            env.be().params.input_level as f64,
            env.ls().params.qos_target_ms,
        )
        .unwrap();
        (env, p)
    }

    #[test]
    fn least_satisfying_finds_boundary() {
        assert_eq!(least_satisfying(0, 10, |x| x >= 7), Some(7));
        assert_eq!(least_satisfying(0, 10, |_| true), Some(0));
        assert_eq!(least_satisfying(0, 10, |_| false), None);
        assert_eq!(least_satisfying(5, 4, |_| true), None);
    }

    #[test]
    fn greatest_satisfying_finds_boundary() {
        assert_eq!(greatest_satisfying(0, 10, |x| x <= 7), Some(7));
        assert_eq!(greatest_satisfying(0, 10, |_| true), Some(10));
        assert_eq!(greatest_satisfying(0, 10, |_| false), None);
    }

    #[test]
    fn binary_search_matches_linear_scan() {
        // Property-style check over many monotone predicates.
        for threshold in 0..=20u32 {
            let pred = |x: u32| x >= threshold;
            let expect = (0..=15u32).find(|&x| pred(x));
            assert_eq!(least_satisfying(0, 15, pred), expect);
            let pred2 = |x: u32| x <= threshold;
            let expect2 = (0..=15u32).rev().find(|&x| pred2(x));
            assert_eq!(greatest_satisfying(0, 15, pred2), expect2);
        }
    }

    #[test]
    fn search_returns_feasible_config() {
        let (env, p) = setup();
        let search = ConfigSearch::new(
            &p,
            env.spec().clone(),
            env.budget_w(),
            SearchParams::default(),
        );
        for frac in [0.2, 0.35, 0.5, 0.7] {
            let qps = frac * env.ls().params.peak_qps;
            let out = search.best_config(qps);
            let cfg = out.best.expect("feasible config must exist");
            assert!(cfg.validate(env.spec()).is_ok());
            // The chosen config must actually be predicted feasible.
            assert!(p.feasible(&cfg, env.spec(), qps, env.budget_w()));
            assert!(out.predicted_throughput > 0.0);
        }
    }

    #[test]
    fn search_is_fast_in_model_calls() {
        let (env, p) = setup();
        let search = ConfigSearch::new(
            &p,
            env.spec().clone(),
            env.budget_w(),
            SearchParams::default(),
        );
        let out = search.best_config(0.3 * env.ls().params.peak_qps);
        // §VII-E bounds the fast search by (16 + 11·19)·4 models per
        // prediction round ≈ 900 calls; exhaustive needs ~40 000·4.
        assert!(
            out.stats.model_calls < 2_000,
            "model calls {}",
            out.stats.model_calls
        );
    }

    #[test]
    fn fast_search_close_to_exhaustive() {
        let (env, p) = setup();
        let search = ConfigSearch::new(
            &p,
            env.spec().clone(),
            env.budget_w(),
            SearchParams::default(),
        );
        let qps = 0.3 * env.ls().params.peak_qps;
        let fast = search.best_config(qps);
        let full = search.exhaustive(qps);
        let ft = fast.predicted_throughput;
        let xt = full.predicted_throughput;
        // The fast path restricts itself to minimal-LS candidates, so it
        // may be slightly below the oracle but must stay within 10%.
        assert!(ft >= 0.9 * xt, "fast {ft} vs exhaustive {xt}");
        assert!(full.stats.model_calls > fast.stats.model_calls * 5);
    }

    #[test]
    fn parallel_exhaustive_matches_serial() {
        let (env, p) = setup();
        let search = ConfigSearch::new(
            &p,
            env.spec().clone(),
            env.budget_w(),
            SearchParams::default(),
        );
        for frac in [0.25, 0.5] {
            let qps = frac * env.ls().params.peak_qps;
            let par = search.exhaustive(qps);
            let ser = search.exhaustive_serial(qps);
            assert_eq!(par.best, ser.best);
            assert_eq!(par.stats.candidates, ser.stats.candidates);
            assert_eq!(par.predicted_throughput, ser.predicted_throughput);
        }
    }

    #[test]
    fn warm_start_matches_cold_search_quality() {
        let (env, p) = setup();
        let search = ConfigSearch::new(
            &p,
            env.spec().clone(),
            env.budget_w(),
            SearchParams::default(),
        );
        let peak = env.ls().params.peak_qps;
        let prev_qps = 0.30 * peak;
        let prev = search.best_config(prev_qps).best.unwrap();
        // 10% drift: well inside the warm window.
        let qps = 0.33 * peak;
        let warm = search.best_config_warm(qps, Some((&prev, prev_qps)));
        let cold = search.best_config(qps);
        let wcfg = warm.best.expect("warm search must find a config");
        assert!(wcfg.validate(env.spec()).is_ok());
        assert!(p.feasible(&wcfg, env.spec(), qps, env.budget_w()));
        // The warm window contains the cold optimum's neighbourhood, so
        // quality must match the full scan closely.
        assert!(
            warm.predicted_throughput >= 0.95 * cold.predicted_throughput,
            "warm {} vs cold {}",
            warm.predicted_throughput,
            cold.predicted_throughput
        );
    }

    #[test]
    fn warm_start_falls_back_on_large_drift() {
        let (env, p) = setup();
        let search = ConfigSearch::new(
            &p,
            env.spec().clone(),
            env.budget_w(),
            SearchParams::default(),
        );
        let peak = env.ls().params.peak_qps;
        let prev_qps = 0.2 * peak;
        let prev = search.best_config(prev_qps).best.unwrap();
        // 250% drift: far past warm_start_drift → must behave exactly like
        // the cold search.
        let qps = 0.7 * peak;
        let warm = search.best_config_warm(qps, Some((&prev, prev_qps)));
        let cold = search.best_config(qps);
        assert_eq!(warm.best, cold.best);
        // And with no previous config at all, warm == cold trivially.
        let none = search.best_config_warm(qps, None);
        assert_eq!(none.best, cold.best);
    }

    #[test]
    fn stats_expose_cache_hits() {
        let (env, p) = setup();
        let search = ConfigSearch::new(
            &p,
            env.spec().clone(),
            env.budget_w(),
            SearchParams::default(),
        );
        let qps = 0.3 * env.ls().params.peak_qps;
        let first = search.best_config(qps);
        // ls_feasible counts two queries per memoized verdict, so lookups
        // are bounded by (not equal to) the query count.
        assert!(first.stats.cache_hits + first.stats.cache_misses <= first.stats.model_calls);
        assert!(first.stats.cache_misses > 0, "fresh predictor must compute");
        // A repeated identical search is answered almost entirely from the
        // memo cache.
        let second = search.best_config(qps);
        assert!(
            second.stats.cache_misses == 0,
            "repeat search recomputed {} queries",
            second.stats.cache_misses
        );
        assert!(second.stats.cache_hits > 0);
    }

    #[test]
    fn impossible_load_yields_none() {
        let (env, p) = setup();
        let search = ConfigSearch::new(
            &p,
            env.spec().clone(),
            env.budget_w(),
            SearchParams::default(),
        );
        // 5× peak load cannot be served even by the whole node.
        let out = search.best_config(5.0 * env.ls().params.peak_qps);
        assert!(out.best.is_none());
        assert_eq!(out.predicted_throughput, 0.0);
    }

    #[test]
    fn tighter_budget_never_increases_throughput() {
        let (env, p) = setup();
        let qps = 0.3 * env.ls().params.peak_qps;
        let normal = ConfigSearch::new(
            &p,
            env.spec().clone(),
            env.budget_w(),
            SearchParams::default(),
        )
        .best_config(qps);
        let tight = ConfigSearch::new(
            &p,
            env.spec().clone(),
            0.85 * env.budget_w(),
            SearchParams::default(),
        )
        .best_config(qps);
        assert!(tight.predicted_throughput <= normal.predicted_throughput + 1e-9);
    }

    #[test]
    fn pruned_is_bit_identical_to_latticed_oracle() {
        let (env, p) = setup();
        let search = ConfigSearch::new(
            &p,
            env.spec().clone(),
            env.budget_w(),
            SearchParams::default(),
        );
        for frac in [0.15, 0.3, 0.5, 0.8] {
            let qps = frac * env.ls().params.peak_qps;
            let full = search.exhaustive_latticed(qps);
            let pruned = search.pruned(qps);
            assert_eq!(pruned.best, full.best, "config mismatch at frac {frac}");
            assert_eq!(
                pruned.predicted_throughput.to_bits(),
                full.predicted_throughput.to_bits(),
                "throughput bits differ at frac {frac}"
            );
            // The engine must do strictly less work than the unpruned
            // envelope sweep, proven via stats not wall time.
            assert!(
                full.stats.candidates > pruned.stats.candidates,
                "frac {frac}: latticed oracle {} vs pruned {} candidates",
                full.stats.candidates,
                pruned.stats.candidates
            );
            assert!(
                pruned.stats.pruned_candidates > 0,
                "pruning must actually fire"
            );
            // Zero virtual model calls in the sweep (the first iteration
            // may build slabs through uncounted raw paths).
            assert_eq!(pruned.stats.model_calls, 0, "inner loop hit the models");
        }
    }

    #[test]
    fn pruned_matches_live_oracle_at_slab_centers() {
        let (env, p) = setup();
        let params = SearchParams::default();
        let search = ConfigSearch::new(&p, env.spec().clone(), env.budget_w(), params);
        let slabs = p.ls_slabs(env.spec(), params.power_load_headroom);
        // At a slab center the bracket degenerates and every envelope
        // value equals the live model call it was flattened from, so the
        // latticed engine must reproduce the live oracle bit for bit.
        for bucket in [8u64, 16, 32, 48] {
            let qps = slabs.center(bucket);
            let live = search.exhaustive_serial(qps);
            let pruned = search.pruned(qps);
            assert_eq!(pruned.best, live.best, "config mismatch at bucket {bucket}");
            assert_eq!(
                pruned.predicted_throughput.to_bits(),
                live.predicted_throughput.to_bits(),
                "throughput bits differ at bucket {bucket}"
            );
        }
    }

    #[test]
    fn pruned_serial_matches_parallel() {
        let (env, p) = setup();
        let search = ConfigSearch::new(
            &p,
            env.spec().clone(),
            env.budget_w(),
            SearchParams::default(),
        );
        for frac in [0.25, 0.6] {
            let qps = frac * env.ls().params.peak_qps;
            let par = search.pruned(qps);
            let ser = search.pruned_serial(qps);
            assert_eq!(par.best, ser.best);
            assert_eq!(par.stats.candidates, ser.stats.candidates);
            assert_eq!(par.stats.pruned_candidates, ser.stats.pruned_candidates);
            assert_eq!(par.predicted_throughput, ser.predicted_throughput);
        }
    }

    #[test]
    fn pruned_reuses_frontier_cache_across_intervals() {
        let (env, p) = setup();
        let frontiers = crate::cache::FrontierCache::default();
        let first_search = ConfigSearch::new(
            &p,
            env.spec().clone(),
            env.budget_w(),
            SearchParams::default(),
        )
        .with_frontiers(&frontiers);
        let qps = 0.4 * env.ls().params.peak_qps;
        let first = first_search.pruned(qps);
        assert_eq!(first.stats.frontier_reuses, 0);
        assert_eq!(frontiers.len(), 1);
        // A budget change stales the incremental memo, so the next search
        // runs the full sweep — warm-started from the cached frontier
        // seed, and still returning exactly the envelope oracle's answer.
        let relaxed = ConfigSearch::new(
            &p,
            env.spec().clone(),
            1.1 * env.budget_w(),
            SearchParams::default(),
        )
        .with_frontiers(&frontiers);
        let second = relaxed.pruned(qps);
        assert_eq!(second.stats.frontier_reuses, 1);
        assert_eq!(second.stats.incremental_slices_reused, 0);
        let oracle = relaxed.exhaustive_latticed(qps);
        assert_eq!(second.best, oracle.best);
        assert_eq!(frontiers.reuses(), 1);
    }

    #[test]
    fn pruned_incremental_fast_path_reuses_parked_state() {
        let (env, p) = setup();
        let frontiers = crate::cache::FrontierCache::default();
        let search = ConfigSearch::new(
            &p,
            env.spec().clone(),
            env.budget_w(),
            SearchParams::default(),
        )
        .with_frontiers(&frontiers);
        // Both loads sit strictly inside the same slab bracket, so the
        // repeat cannot cross a bucket boundary.
        let slabs = p.ls_slabs(env.spec(), SearchParams::default().power_load_headroom);
        let q = slabs.quantum();
        let qps = slabs.center(26) + 0.3 * q;
        let first = search.pruned(qps);
        assert_eq!(first.stats.incremental_slices_reused, 0);
        // A repeat in the same QPS bracket answers from the parked state:
        // identical outcome, zero candidates evaluated, every slice
        // reused verbatim.
        let second = search.pruned(qps + 0.2 * q);
        assert_eq!(second.best, first.best);
        assert_eq!(
            second.predicted_throughput.to_bits(),
            first.predicted_throughput.to_bits()
        );
        assert_eq!(second.stats.candidates, 0);
        assert_eq!(
            second.stats.incremental_slices_reused,
            u64::from(search.max_c1())
        );
        assert_eq!(second.stats.incremental_slices_rescanned, 0);
    }

    #[test]
    fn pruned_incremental_one_bucket_walk_is_bit_identical() {
        let (env, p) = setup();
        let params = SearchParams::default();
        let frontiers = crate::cache::FrontierCache::default();
        let warm = ConfigSearch::new(&p, env.spec().clone(), env.budget_w(), params)
            .with_frontiers(&frontiers);
        let cold = ConfigSearch::new(&p, env.spec().clone(), env.budget_w(), params);
        let slabs = p.ls_slabs(env.spec(), params.power_load_headroom);
        let q = slabs.quantum();
        // A QPS walk whose every step moves the bracket by at most one
        // bucket: the stateful engine takes the incremental path, the
        // stateless one re-sweeps — both must agree bit for bit.
        let mut qps = 12.3 * q;
        let mut incremental_steps = 0u64;
        for delta in [0.8, -0.5, 1.0, 0.9, -1.0, 0.4, -0.9, 0.7] {
            qps += delta * q;
            let inc = warm.pruned(qps);
            let full = cold.pruned(qps);
            assert_eq!(inc.best, full.best, "config mismatch at qps {qps}");
            assert_eq!(
                inc.predicted_throughput.to_bits(),
                full.predicted_throughput.to_bits(),
                "throughput bits differ at qps {qps}"
            );
            let oracle = cold.exhaustive_latticed(qps);
            assert_eq!(inc.best, oracle.best);
            if inc.stats.incremental_slices_reused + inc.stats.incremental_slices_rescanned > 0 {
                incremental_steps += 1;
            }
        }
        assert!(
            incremental_steps >= 7,
            "walk should stay on the incremental path ({incremental_steps}/8)"
        );
    }

    #[test]
    fn pruned_impossible_load_yields_none() {
        let (env, p) = setup();
        let search = ConfigSearch::new(
            &p,
            env.spec().clone(),
            env.budget_w(),
            SearchParams::default(),
        );
        let qps = 5.0 * env.ls().params.peak_qps;
        let pruned = search.pruned(qps);
        let full = search.exhaustive_serial(qps);
        let latticed = search.exhaustive_latticed(qps);
        assert_eq!(pruned.best, full.best);
        assert_eq!(pruned.best, latticed.best);
        assert!(pruned.best.is_none());
        assert_eq!(pruned.predicted_throughput, 0.0);
    }

    #[test]
    fn warm_break_never_misses_window_optimum() {
        // Satellite check for the early-break rule: breaking out of the C1
        // scan must never skip a window point that would have won. The old
        // rule broke as soon as any candidate ran BE at top frequency; a
        // larger C1 can still win because it lowers L1* and frees LLC ways
        // for BE. The fixed rule also requires the table bound over all
        // remaining slices to be <= the current best.
        let (env, p) = setup();
        let search = ConfigSearch::new(
            &p,
            env.spec().clone(),
            env.budget_w(),
            SearchParams::default(),
        );
        let peak = env.ls().params.peak_qps;
        for frac in [0.15, 0.25, 0.4, 0.55, 0.7, 0.85] {
            let qps = frac * peak;
            let (with_break, _) = search.scan_c1_window(1, search.max_c1(), qps, true);
            let (no_break, _) = search.scan_c1_window(1, search.max_c1(), qps, false);
            assert_eq!(
                with_break.map(|(c, t)| (c, t.to_bits())),
                no_break.map(|(c, t)| (c, t.to_bits())),
                "early break lost the optimum at frac {frac}"
            );
        }
    }
}
