//! Comparison controllers: the enhanced PARTIES baseline of §VII-A and a
//! static reservation reference.
//!
//! PARTIES (Chen et al., ASPLOS'19) is a feedback FSM: it nudges one
//! resource type at a time toward the LS service when slack is low, away
//! when slack is high, watches the next interval, and reverts moves that
//! did not help. It has no power model; the paper *enhances* it so that a
//! move observed to overload the budget is reverted and another type
//! tried. Because that check is reactive, overloads still occur while the
//! FSM converges — exactly the §VII-B observation (7 of 18 pairs).

use crate::controller::ResourceController;
use sturgeon_simnode::{NodeSpec, PairConfig};
use sturgeon_workloads::env::Observation;

/// The resource knobs PARTIES cycles through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Knob {
    /// Move one core between partitions.
    Cores,
    /// Move one LLC way between partitions.
    Cache,
    /// Step the LS partition's frequency.
    LsFreq,
    /// Step the BE partition's frequency.
    BeFreq,
}

const KNOBS: [Knob; 4] = [Knob::Cores, Knob::Cache, Knob::LsFreq, Knob::BeFreq];

/// PARTIES tunables.
#[derive(Debug, Clone, Copy)]
pub struct PartiesParams {
    /// Lower slack bound (upsize LS below this).
    pub alpha: f64,
    /// Upper slack bound (downsize LS above this).
    pub beta: f64,
    /// Relative p95 improvement required to call an upsize successful.
    pub improvement_epsilon: f64,
    /// Power awareness (the paper's enhancement). `false` gives the
    /// original, overload-prone PARTIES.
    pub power_aware: bool,
    /// Watts of headroom the enhanced version keeps before attempting a
    /// move that raises power; a reactive estimate, not a model.
    pub power_headroom_w: f64,
}

impl Default for PartiesParams {
    fn default() -> Self {
        Self {
            alpha: 0.10,
            beta: 0.20,
            improvement_epsilon: 0.02,
            power_aware: true,
            power_headroom_w: 0.0,
        }
    }
}

/// A pending adjustment awaiting its feedback interval.
#[derive(Debug, Clone, Copy)]
struct Pending {
    previous: PairConfig,
    previous_p95: f64,
    /// True when the move gave resources to the LS service.
    upsize: bool,
}

/// The enhanced-PARTIES controller.
#[derive(Debug)]
pub struct PartiesController {
    spec: NodeSpec,
    budget_w: f64,
    qos_target_ms: f64,
    params: PartiesParams,
    knob_idx: usize,
    pending: Option<Pending>,
    /// After a downsize gets reverted the FSM has converged for the
    /// current load; further downsizing is held until the load moves or
    /// the hold expires.
    hold_qps: Option<f64>,
    hold_ttl: u32,
    reverts: u64,
    overload_reactions: u64,
}

impl PartiesController {
    /// Builds the controller.
    pub fn new(spec: NodeSpec, budget_w: f64, qos_target_ms: f64, params: PartiesParams) -> Self {
        Self {
            spec,
            budget_w,
            qos_target_ms,
            params,
            knob_idx: 0,
            pending: None,
            hold_qps: None,
            hold_ttl: 0,
            reverts: 0,
            overload_reactions: 0,
        }
    }

    /// Number of reverted adjustments (convergence cost metric).
    pub fn revert_count(&self) -> u64 {
        self.reverts
    }

    /// Number of reactive power-overload corrections.
    pub fn overload_reaction_count(&self) -> u64 {
        self.overload_reactions
    }

    fn knob(&self) -> Knob {
        KNOBS[self.knob_idx % KNOBS.len()]
    }

    fn advance_knob(&mut self) {
        self.knob_idx = (self.knob_idx + 1) % KNOBS.len();
    }

    /// One unit of the knob toward the LS service (upsize). `None` when
    /// the move is illegal.
    fn upsized(&self, cfg: &PairConfig, knob: Knob) -> Option<PairConfig> {
        let mut next = *cfg;
        match knob {
            Knob::Cores => {
                if cfg.be.cores <= 1 {
                    return None;
                }
                next.be.cores -= 1;
                next.ls.cores += 1;
            }
            Knob::Cache => {
                if cfg.be.llc_ways <= 1 {
                    return None;
                }
                next.be.llc_ways -= 1;
                next.ls.llc_ways += 1;
            }
            Knob::LsFreq => {
                if cfg.ls.freq_level >= self.spec.max_freq_level() {
                    return None;
                }
                next.ls.freq_level += 1;
            }
            Knob::BeFreq => {
                // Upsizing via the BE frequency means throttling the BE
                // co-runner to relieve shared-resource pressure.
                if cfg.be.freq_level == 0 {
                    return None;
                }
                next.be.freq_level -= 1;
            }
        }
        next.validate(&self.spec).ok()?;
        Some(next)
    }

    /// One unit of the knob toward the BE application (downsize LS).
    fn downsized(&self, cfg: &PairConfig, knob: Knob) -> Option<PairConfig> {
        let mut next = *cfg;
        match knob {
            Knob::Cores => {
                if cfg.ls.cores <= 1 {
                    return None;
                }
                next.ls.cores -= 1;
                next.be.cores += 1;
            }
            Knob::Cache => {
                if cfg.ls.llc_ways <= 1 {
                    return None;
                }
                next.ls.llc_ways -= 1;
                next.be.llc_ways += 1;
            }
            Knob::LsFreq => {
                if cfg.ls.freq_level == 0 {
                    return None;
                }
                next.ls.freq_level -= 1;
            }
            Knob::BeFreq => {
                if cfg.be.freq_level >= self.spec.max_freq_level() {
                    return None;
                }
                next.be.freq_level += 1;
            }
        }
        next.validate(&self.spec).ok()?;
        Some(next)
    }

    /// Whether a downsize move raises power (cores/ways shifts barely do;
    /// frequency steps dominate).
    fn raises_power(knob: Knob, upsize: bool) -> bool {
        match knob {
            // Giving a core/way to the *BE* side raises power (BE burns
            // hotter); toward LS lowers it.
            Knob::Cores | Knob::Cache => !upsize,
            Knob::LsFreq => upsize,
            Knob::BeFreq => !upsize,
        }
    }
}

impl ResourceController for PartiesController {
    fn name(&self) -> &'static str {
        if self.params.power_aware {
            "PARTIES"
        } else {
            "PARTIES-orig"
        }
    }

    fn decide(&mut self, obs: &Observation, current: PairConfig) -> PairConfig {
        // Enhancement: a measured overload is corrected immediately by
        // reverting the last move (if any) or throttling the BE partition.
        if self.params.power_aware && obs.power_w > self.budget_w {
            self.overload_reactions += 1;
            if let Some(p) = self.pending.take() {
                self.reverts += 1;
                self.advance_knob();
                return p.previous;
            }
            let mut next = current;
            if next.be.freq_level > 0 {
                next.be.freq_level -= 1;
                return next;
            }
            if next.be.cores > 1 {
                next.be.cores -= 1;
                next.ls.cores += 1;
                return next;
            }
            return current;
        }

        let slack = (self.qos_target_ms - obs.p95_ms) / self.qos_target_ms;

        // Feedback on a pending move.
        if let Some(p) = self.pending.take() {
            if p.upsize {
                // Did the latency actually improve?
                let improved =
                    obs.p95_ms < p.previous_p95 * (1.0 - self.params.improvement_epsilon);
                if !improved && slack < self.params.alpha {
                    self.reverts += 1;
                    self.advance_knob();
                    return p.previous;
                }
            } else {
                // Downsize feedback: revert if the slack collapsed, and
                // hold further downsizing until the load moves — the FSM
                // has found the boundary for this load.
                if slack < self.params.alpha {
                    self.reverts += 1;
                    self.advance_knob();
                    self.hold_qps = Some(obs.qps);
                    self.hold_ttl = 8;
                    return p.previous;
                }
            }
        }

        if slack < self.params.alpha {
            // Upsize the LS service with the current knob; skip knobs that
            // cannot move.
            for _ in 0..KNOBS.len() {
                let knob = self.knob();
                if let Some(next) = self.upsized(&current, knob) {
                    self.pending = Some(Pending {
                        previous: current,
                        previous_p95: obs.p95_ms,
                        upsize: true,
                    });
                    // Stay on a knob that works: during violations the
                    // feedback loop doubles down on whatever helped last.
                    return next;
                }
                self.advance_knob();
            }
            return current;
        }

        if slack > self.params.beta {
            // Converged-hold: a recent downsize at this load already
            // collapsed the slack once; wait for the load to move or for
            // the hold to expire.
            if let Some(hold) = self.hold_qps {
                let load_moved = (obs.qps - hold).abs() / hold.max(1.0) >= 0.03;
                self.hold_ttl = self.hold_ttl.saturating_sub(1);
                if !load_moved && self.hold_ttl > 0 {
                    return current;
                }
                self.hold_qps = None;
            }
            for _ in 0..KNOBS.len() {
                let knob = self.knob();
                if let Some(next) = self.downsized(&current, knob) {
                    // Near the budget, skip only moves that *obviously*
                    // raise power when headroom is configured; with zero
                    // headroom this is the paper's purely reactive
                    // enhancement (overloads happen, then get reverted).
                    if self.params.power_aware
                        && self.params.power_headroom_w > 0.0
                        && Self::raises_power(knob, false)
                        && obs.power_w > self.budget_w - self.params.power_headroom_w
                    {
                        self.advance_knob();
                        continue;
                    }
                    self.pending = Some(Pending {
                        previous: current,
                        previous_p95: obs.p95_ms,
                        upsize: false,
                    });
                    self.advance_knob();
                    return next;
                }
                self.advance_knob();
            }
            return current;
        }

        current
    }
}

/// A trivial reference controller: the LS service keeps the whole node
/// forever (no co-location). Perfect QoS, zero BE throughput — the
/// datacenter-status-quo the paper's co-location motivation argues
/// against.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticReservationController;

impl ResourceController for StaticReservationController {
    fn name(&self) -> &'static str {
        "LS-reserved"
    }

    fn decide(&mut self, _obs: &Observation, current: PairConfig) -> PairConfig {
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sturgeon_simnode::Allocation;

    fn spec() -> NodeSpec {
        NodeSpec::xeon_e5_2630_v4()
    }

    fn controller() -> PartiesController {
        PartiesController::new(spec(), 80.0, 10.0, PartiesParams::default())
    }

    fn obs(p95: f64, power: f64) -> Observation {
        Observation {
            t_s: 1.0,
            qps: 12_000.0,
            p95_ms: p95,
            in_target_fraction: 0.9,
            ls_utilization: 0.7,
            power_w: power,
            be_throughput_norm: 0.4,
            be_ipc: 0.5,
            interference: 1.0,
        }
    }

    fn cfg(c1: u32, f1: usize, l1: u32, c2: u32, f2: usize, l2: u32) -> PairConfig {
        PairConfig::new(Allocation::new(c1, f1, l1), Allocation::new(c2, f2, l2))
    }

    #[test]
    fn low_slack_upsizes_ls() {
        let mut c = controller();
        let current = cfg(6, 5, 8, 14, 8, 12);
        // p95 9.5ms at 10ms target → slack 5% < α.
        let next = c.decide(&obs(9.5, 70.0), current);
        assert_ne!(next, current);
        let ls_gained = next.ls.cores > current.ls.cores
            || next.ls.llc_ways > current.ls.llc_ways
            || next.ls.freq_level > current.ls.freq_level
            || next.be.freq_level < current.be.freq_level;
        assert!(ls_gained);
    }

    #[test]
    fn high_slack_downsizes_ls() {
        let mut c = controller();
        let current = cfg(10, 5, 10, 10, 4, 10);
        // p95 2ms → slack 80% > β.
        let next = c.decide(&obs(2.0, 60.0), current);
        assert_ne!(next, current);
        let be_gained = next.be.cores > current.be.cores
            || next.be.llc_ways > current.be.llc_ways
            || next.be.freq_level > current.be.freq_level
            || next.ls.freq_level < current.ls.freq_level;
        assert!(be_gained);
    }

    #[test]
    fn in_band_slack_holds_steady() {
        let mut c = controller();
        let current = cfg(6, 5, 8, 14, 8, 12);
        // p95 8.5ms → slack 15%, inside [10%, 20%].
        let next = c.decide(&obs(8.5, 70.0), current);
        assert_eq!(next, current);
    }

    #[test]
    fn measured_overload_triggers_reaction() {
        let mut c = controller();
        let current = cfg(6, 5, 8, 14, 9, 12);
        let next = c.decide(&obs(8.5, 90.0), current); // 90 W > 80 W budget
        assert_eq!(c.overload_reaction_count(), 1);
        // The BE partition must have been throttled.
        assert!(next.be.freq_level < current.be.freq_level);
    }

    #[test]
    fn failed_upsize_is_reverted_and_knob_advanced() {
        let mut c = controller();
        let start = cfg(6, 5, 8, 14, 8, 12);
        let upsized = c.decide(&obs(9.5, 70.0), start);
        assert_ne!(upsized, start);
        // Next interval: latency did NOT improve and is still violating.
        let reverted = c.decide(&obs(9.6, 70.0), upsized);
        assert_eq!(reverted, start);
        assert_eq!(c.revert_count(), 1);
    }

    #[test]
    fn successful_upsize_is_kept() {
        let mut c = controller();
        let start = cfg(6, 5, 8, 14, 8, 12);
        let upsized = c.decide(&obs(9.5, 70.0), start);
        // Latency improved well and slack is healthy now.
        let kept = c.decide(&obs(8.5, 70.0), upsized);
        assert_eq!(kept, upsized);
        assert_eq!(c.revert_count(), 0);
    }

    #[test]
    fn downsize_reverted_when_slack_collapses() {
        let mut c = controller();
        let start = cfg(10, 5, 10, 10, 4, 10);
        let downsized = c.decide(&obs(2.0, 60.0), start);
        assert_ne!(downsized, start);
        // Next interval the slack collapsed below α.
        let reverted = c.decide(&obs(9.5, 60.0), downsized);
        assert_eq!(reverted, start);
    }

    #[test]
    fn original_parties_ignores_power() {
        let mut c = PartiesController::new(
            spec(),
            80.0,
            10.0,
            PartiesParams {
                power_aware: false,
                ..PartiesParams::default()
            },
        );
        assert_eq!(c.name(), "PARTIES-orig");
        let current = cfg(6, 5, 8, 14, 9, 12);
        // In-band slack + overload: the original controller does nothing.
        let next = c.decide(&obs(8.5, 95.0), current);
        assert_eq!(next, current);
        assert_eq!(c.overload_reaction_count(), 0);
    }

    #[test]
    fn static_reservation_never_moves() {
        let mut c = StaticReservationController;
        let current = cfg(19, 9, 19, 1, 0, 1);
        assert_eq!(c.decide(&obs(1.0, 50.0), current), current);
        assert_eq!(c.decide(&obs(50.0, 90.0), current), current);
    }

    #[test]
    fn moves_always_validate() {
        let mut c = controller();
        let mut current = cfg(6, 5, 8, 14, 8, 12);
        for i in 0..100 {
            let p95 = if i % 3 == 0 {
                9.5
            } else if i % 3 == 1 {
                2.0
            } else {
                8.5
            };
            current = c.decide(&obs(p95, 70.0), current);
            assert!(current.validate(&spec()).is_ok());
        }
    }
}
